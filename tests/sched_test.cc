#include <gtest/gtest.h>

#include "sched/inheritance.h"
#include "sched/metrics.h"
#include "sched/scheduler.h"
#include "sched/wait_graph.h"
#include "txn/job.h"
#include "txn/spec.h"

namespace pcpda {
namespace {

// --- WaitGraph ----------------------------------------------------------

TEST(WaitGraphTest, EmptyHasNoCycle) {
  WaitGraph graph;
  EXPECT_FALSE(graph.FindCycle().has_value());
  EXPECT_FALSE(graph.IsWaiting(1));
  EXPECT_TRUE(graph.waiters().empty());
}

TEST(WaitGraphTest, SetAndClearWaits) {
  WaitGraph graph;
  graph.SetWaits(1, {2, 3});
  EXPECT_TRUE(graph.IsWaiting(1));
  EXPECT_EQ(graph.HoldersBlocking(1), (std::vector<JobId>{2, 3}));
  graph.ClearWaits(1);
  EXPECT_FALSE(graph.IsWaiting(1));
  graph.SetWaits(1, {2});
  graph.SetWaits(1, {});  // empty holders == no wait
  EXPECT_FALSE(graph.IsWaiting(1));
}

TEST(WaitGraphTest, ChainHasNoCycle) {
  WaitGraph graph;
  graph.SetWaits(1, {2});
  graph.SetWaits(2, {3});
  EXPECT_FALSE(graph.FindCycle().has_value());
}

TEST(WaitGraphTest, TwoCycle) {
  WaitGraph graph;
  graph.SetWaits(1, {2});
  graph.SetWaits(2, {1});
  auto cycle = graph.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<JobId>{1, 2}));
}

TEST(WaitGraphTest, LongerCycleStartsAtSmallestId) {
  WaitGraph graph;
  graph.SetWaits(5, {7});
  graph.SetWaits(7, {3});
  graph.SetWaits(3, {5});
  auto cycle = graph.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 3u);
  EXPECT_EQ(cycle->front(), 3);
}

TEST(WaitGraphTest, SelfLoopDetected) {
  WaitGraph graph;
  graph.SetWaits(4, {4});
  auto cycle = graph.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<JobId>{4}));
}

TEST(WaitGraphTest, DiamondNoFalsePositive) {
  WaitGraph graph;
  graph.SetWaits(1, {2, 3});
  graph.SetWaits(2, {4});
  graph.SetWaits(3, {4});
  EXPECT_FALSE(graph.FindCycle().has_value());
}

TEST(WaitGraphTest, CycleBesideAcyclicPart) {
  WaitGraph graph;
  graph.SetWaits(1, {2});
  graph.SetWaits(10, {11});
  graph.SetWaits(11, {10});
  ASSERT_TRUE(graph.FindCycle().has_value());
}

TEST(WaitGraphTest, ClearRemovesEverything) {
  WaitGraph graph;
  graph.SetWaits(1, {2});
  graph.Clear();
  EXPECT_TRUE(graph.waiters().empty());
  EXPECT_FALSE(graph.FindCycle().has_value());
}

// --- Priority inheritance --------------------------------------------------

TEST(InheritanceTest, NoWaitsKeepsBase) {
  std::map<JobId, Priority> base{{1, Priority(3)}, {2, Priority(1)}};
  WaitGraph graph;
  const auto running = ComputeRunningPriorities(base, graph, true);
  EXPECT_EQ(running.at(1), Priority(3));
  EXPECT_EQ(running.at(2), Priority(1));
}

TEST(InheritanceTest, DirectInheritance) {
  std::map<JobId, Priority> base{{1, Priority(3)}, {2, Priority(1)}};
  WaitGraph graph;
  graph.SetWaits(1, {2});  // high waits on low
  const auto running = ComputeRunningPriorities(base, graph, true);
  EXPECT_EQ(running.at(2), Priority(3));
  EXPECT_EQ(running.at(1), Priority(3));
}

TEST(InheritanceTest, TransitiveInheritance) {
  std::map<JobId, Priority> base{
      {1, Priority(5)}, {2, Priority(3)}, {3, Priority(1)}};
  WaitGraph graph;
  graph.SetWaits(1, {2});
  graph.SetWaits(2, {3});
  const auto running = ComputeRunningPriorities(base, graph, true);
  EXPECT_EQ(running.at(3), Priority(5));
}

TEST(InheritanceTest, MaxOverMultipleWaiters) {
  std::map<JobId, Priority> base{
      {1, Priority(5)}, {2, Priority(4)}, {3, Priority(1)}};
  WaitGraph graph;
  graph.SetWaits(1, {3});
  graph.SetWaits(2, {3});
  const auto running = ComputeRunningPriorities(base, graph, true);
  EXPECT_EQ(running.at(3), Priority(5));
}

TEST(InheritanceTest, LowerWaiterDoesNotLowerHolder) {
  std::map<JobId, Priority> base{{1, Priority(1)}, {2, Priority(4)}};
  WaitGraph graph;
  graph.SetWaits(1, {2});  // low waits on high
  const auto running = ComputeRunningPriorities(base, graph, true);
  EXPECT_EQ(running.at(2), Priority(4));
}

TEST(InheritanceTest, DisabledKeepsBase) {
  std::map<JobId, Priority> base{{1, Priority(3)}, {2, Priority(1)}};
  WaitGraph graph;
  graph.SetWaits(1, {2});
  const auto running = ComputeRunningPriorities(base, graph, false);
  EXPECT_EQ(running.at(2), Priority(1));
}

TEST(InheritanceTest, CycleConvergesToMax) {
  std::map<JobId, Priority> base{{1, Priority(3)}, {2, Priority(1)}};
  WaitGraph graph;
  graph.SetWaits(1, {2});
  graph.SetWaits(2, {1});
  const auto running = ComputeRunningPriorities(base, graph, true);
  EXPECT_EQ(running.at(1), Priority(3));
  EXPECT_EQ(running.at(2), Priority(3));
}

TEST(InheritanceTest, StaleEdgesToDeadJobsIgnored) {
  std::map<JobId, Priority> base{{1, Priority(3)}};
  WaitGraph graph;
  graph.SetWaits(1, {99});  // 99 is not a live job
  graph.SetWaits(98, {1});  // dead waiter
  const auto running = ComputeRunningPriorities(base, graph, true);
  EXPECT_EQ(running.at(1), Priority(3));
  EXPECT_EQ(running.size(), 1u);
}

// --- DispatchOrder -----------------------------------------------------

class DispatchOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TransactionSpec hi{.name = "hi", .body = {Compute(2)}};
    TransactionSpec lo{.name = "lo", .body = {Compute(2)}};
    auto set = TransactionSet::Create({hi, lo},
                                      PriorityAssignment::kAsListed);
    ASSERT_TRUE(set.ok());
    set_ = std::make_unique<TransactionSet>(std::move(set).value());
  }

  std::unique_ptr<TransactionSet> set_;
};

TEST_F(DispatchOrderTest, HigherRunningPriorityFirst) {
  Job a(0, set_.get(), 1, 0, 0, kNoTick);  // lo spec
  Job b(1, set_.get(), 0, 0, 0, kNoTick);  // hi spec
  std::map<JobId, Priority> running{{0, set_->priority(1)},
                                    {1, set_->priority(0)}};
  const auto order = DispatchOrder({&a, &b}, running);
  EXPECT_EQ(order[0], &b);
  EXPECT_EQ(order[1], &a);
}

TEST_F(DispatchOrderTest, DonorBeforeInheritor) {
  // Both at the inherited (hi) running priority: the job whose BASE is hi
  // (the donor) is considered first.
  Job lo_job(0, set_.get(), 1, 0, 0, kNoTick);
  Job hi_job(1, set_.get(), 0, 0, 0, kNoTick);
  std::map<JobId, Priority> running{{0, set_->priority(0)},
                                    {1, set_->priority(0)}};
  const auto order = DispatchOrder({&lo_job, &hi_job}, running);
  EXPECT_EQ(order[0], &hi_job);
}

TEST_F(DispatchOrderTest, FifoWithinSpec) {
  Job first(0, set_.get(), 0, 0, 0, kNoTick);
  Job second(1, set_.get(), 0, 1, 5, kNoTick);
  std::map<JobId, Priority> running{{0, set_->priority(0)},
                                    {1, set_->priority(0)}};
  const auto order = DispatchOrder({&second, &first}, running);
  EXPECT_EQ(order[0], &first);
}

// --- Job -----------------------------------------------------------------

class JobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TransactionSpec spec{.name = "T",
                         .body = {Read(0), Compute(2), Write(1)}};
    auto set = TransactionSet::Create({spec});
    ASSERT_TRUE(set.ok());
    set_ = std::make_unique<TransactionSet>(std::move(set).value());
  }

  std::unique_ptr<TransactionSet> set_;
};

TEST_F(JobTest, ExecutesThroughBody) {
  Job job(0, set_.get(), 0, 0, 3, 13);
  EXPECT_EQ(job.RemainingWork(), 4);
  EXPECT_EQ(job.current_step().kind, StepKind::kRead);
  EXPECT_TRUE(job.ExecuteTick());  // read done
  EXPECT_EQ(job.step_index(), 1u);
  EXPECT_FALSE(job.ExecuteTick());  // compute 1/2
  EXPECT_TRUE(job.ExecuteTick());   // compute 2/2
  EXPECT_EQ(job.RemainingWork(), 1);
  EXPECT_TRUE(job.ExecuteTick());  // write done
  EXPECT_TRUE(job.BodyDone());
  EXPECT_EQ(job.RemainingWork(), 0);
}

TEST_F(JobTest, CommitLifecycle) {
  Job job(0, set_.get(), 0, 0, 3, 13);
  while (!job.BodyDone()) job.ExecuteTick();
  job.MarkCommitted(7);
  EXPECT_EQ(job.state(), JobState::kCommitted);
  EXPECT_EQ(job.commit_time(), 7);
  EXPECT_FALSE(job.active());
}

TEST_F(JobTest, StepAdmissionFlagResetsPerStep) {
  Job job(0, set_.get(), 0, 0, 0, kNoTick);
  job.set_step_admitted(true);
  EXPECT_TRUE(job.ExecuteTick());
  EXPECT_FALSE(job.step_admitted());
}

TEST_F(JobTest, RestartResetsProgress) {
  Job job(0, set_.get(), 0, 0, 0, kNoTick);
  job.set_step_admitted(true);
  job.ExecuteTick();
  job.RecordRead(0);
  job.workspace().Put(1, Value{0, 0});
  job.RecordUndo(1, Value{});
  job.ResetForRestart();
  EXPECT_EQ(job.step_index(), 0u);
  EXPECT_TRUE(job.data_read().empty());
  EXPECT_TRUE(job.workspace().empty());
  EXPECT_TRUE(job.undo_log().empty());
  EXPECT_EQ(job.restarts(), 1);
}

TEST_F(JobTest, UndoLogKeepsOldestPreimage) {
  Job job(0, set_.get(), 0, 0, 0, kNoTick);
  job.RecordUndo(1, Value{7, 3});
  job.RecordUndo(1, Value{8, 4});  // ignored: first write wins
  EXPECT_EQ(job.undo_log().at(1).writer, 7);
}

TEST_F(JobTest, PrioritiesAndNames) {
  Job job(0, set_.get(), 0, 2, 10, 20);
  EXPECT_EQ(job.base_priority(), set_->priority(0));
  EXPECT_EQ(job.running_priority(), set_->priority(0));
  job.set_running_priority(Priority(99));
  EXPECT_EQ(job.running_priority(), Priority(99));
  EXPECT_EQ(job.DebugName(), "T#2");
  EXPECT_EQ(job.write_set(), (std::set<ItemId>{1}));
}

// --- Metrics -----------------------------------------------------------

TEST(MetricsTest, Totals) {
  RunMetrics metrics;
  metrics.per_spec.resize(2);
  metrics.per_spec[0].released = 3;
  metrics.per_spec[0].committed = 2;
  metrics.per_spec[0].deadline_misses = 1;
  metrics.per_spec[1].released = 2;
  metrics.per_spec[1].committed = 2;
  metrics.per_spec[1].restarts = 4;
  EXPECT_EQ(metrics.TotalReleased(), 5);
  EXPECT_EQ(metrics.TotalCommitted(), 4);
  EXPECT_EQ(metrics.TotalMisses(), 1);
  EXPECT_EQ(metrics.TotalRestarts(), 4);
  EXPECT_FALSE(metrics.AllDeadlinesMet());
  EXPECT_DOUBLE_EQ(metrics.MissRatio(), 0.2);
}

TEST(MetricsTest, EmptyMissRatio) {
  RunMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.MissRatio(), 0.0);
  EXPECT_TRUE(metrics.AllDeadlinesMet());
}

TEST(MetricsTest, MissRatioExcludesCensoredPending) {
  RunMetrics metrics;
  metrics.per_spec.resize(1);
  metrics.per_spec[0].released = 5;
  metrics.per_spec[0].deadline_misses = 1;
  metrics.per_spec[0].pending_at_horizon = 1;
  EXPECT_EQ(metrics.TotalPending(), 1);
  // 1 miss over the 4 decided instances, not the 5 released.
  EXPECT_DOUBLE_EQ(metrics.MissRatio(), 0.25);
}

TEST(MetricsTest, MissRatioAllPendingIsZero) {
  RunMetrics metrics;
  metrics.per_spec.resize(1);
  metrics.per_spec[0].released = 2;
  metrics.per_spec[0].pending_at_horizon = 2;
  EXPECT_DOUBLE_EQ(metrics.MissRatio(), 0.0);
}


TEST(MetricsTest, MeanResponse) {
  SpecMetrics m;
  EXPECT_DOUBLE_EQ(m.MeanResponse(), 0.0);
  m.committed = 4;
  m.total_response = 10.0;
  EXPECT_DOUBLE_EQ(m.MeanResponse(), 2.5);
}

}  // namespace
}  // namespace pcpda
