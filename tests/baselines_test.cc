#include <gtest/gtest.h>

#include "history/serialization_graph.h"
#include "test_util.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs) {
  auto set = TransactionSet::Create(std::move(specs),
                                    PriorityAssignment::kAsListed);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

// --- OPCP (original PCP, exclusive locks) -----------------------------------

TEST(OpcpTest, BlocksEvenReadReadSharing) {
  // Two readers of x: OPCP treats every lock as exclusive, so the second
  // reader blocks (read sharing is RW-PCP's improvement).
  TransactionSet set = MakeSet({
      {.name = "A", .offset = 1, .body = {Read(0), Compute(1)}},
      {.name = "B", .offset = 0, .body = {Read(0), Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOpcp, 12);
  EXPECT_GT(result.metrics.per_spec[0].blocked_ticks, 0)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
}

TEST(OpcpTest, CeilingBlockingOnFreeItem) {
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 9, .body = {Write(0)}},
      {.name = "M", .offset = 1, .body = {Read(1)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOpcp, 14);
  EXPECT_EQ(result.metrics.per_spec[1].ceiling_blocks, 1)
      << FailureContext(set, result);
}

TEST(OpcpTest, ExamplesDeadlockFreeAndSerializable) {
  for (const PaperExample& example :
       {Example1(), Example3(), Example4(), Example5()}) {
    const SimResult result = RunExample(example, ProtocolKind::kOpcp);
    EXPECT_FALSE(result.deadlock_detected) << example.name;
    EXPECT_TRUE(IsSerializable(result.history)) << example.name;
    EXPECT_EQ(result.metrics.TotalRestarts(), 0) << example.name;
  }
}

// --- CCP ---------------------------------------------------------------

TEST(CcpTest, EarlyReleaseHappens) {
  // T holds x (high ceiling) and then only computes: CCP releases x right
  // after its last use; RW-PCP would hold it to commit.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 9, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(4)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kCcp, 14);
  const auto releases = result.trace.EventsOfKind(TraceKind::kEarlyRelease);
  ASSERT_EQ(releases.size(), 1u) << FailureContext(set, result);
  EXPECT_EQ(releases[0].item, 0);
  // Released during the tick in which the read step completes.
  EXPECT_EQ(releases[0].tick, 0);
}

TEST(CcpTest, EarlyReleaseShortensBlocking) {
  // M arrives while L computes: under RW-PCP M is ceiling-blocked until
  // L commits; under CCP the lock on x is already gone.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 19, .body = {Write(0)}},
      {.name = "M", .offset = 2, .body = {Read(1)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(5)}},
  });
  const SimResult ccp = RunWith(set, ProtocolKind::kCcp, 24);
  const SimResult rw = RunWith(set, ProtocolKind::kRwPcp, 24);
  EXPECT_EQ(ccp.metrics.per_spec[1].blocked_ticks, 0)
      << FailureContext(set, ccp);
  EXPECT_GT(rw.metrics.per_spec[1].blocked_ticks, 0);
}

TEST(CcpTest, NoEarlyReleaseBeforeLastAcquisition) {
  // L will later read y: x must be kept until the growing phase ends
  // (releasing earlier would leave two-phase locking).
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 19, .body = {Write(1)}},   // Wceil(y)=P1
      {.name = "M", .offset = 18, .body = {Write(0)}},   // Aceil(x)=P2
      {.name = "L",
       .offset = 0,
       .body = {Read(0), Compute(2), Read(1), Compute(1)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kCcp, 24);
  const auto releases = result.trace.EventsOfKind(TraceKind::kEarlyRelease);
  // The last acquisition (Read(1)) completes during tick 3: no release of
  // x before that, and both items go at tick 3.
  ASSERT_EQ(releases.size(), 2u) << FailureContext(set, result);
  for (const TraceEvent& e : releases) {
    EXPECT_EQ(e.tick, 3) << FailureContext(set, result);
  }
}

TEST(CcpTest, ExamplesSerializableDeadlockFree) {
  for (const PaperExample& example :
       {Example1(), Example3(), Example4(), Example5()}) {
    const SimResult result = RunExample(example, ProtocolKind::kCcp);
    EXPECT_FALSE(result.deadlock_detected) << example.name;
    EXPECT_TRUE(IsSerializable(result.history)) << example.name;
  }
}

// --- 2PL-PI -------------------------------------------------------------

TEST(TwoPlPiTest, SharedReadsAndConflictBlocking) {
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlPi, 10);
  EXPECT_EQ(result.metrics.per_spec[0].conflict_blocks, 1);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(TwoPlPiTest, DeadlocksOnCrossedAccess) {
  // The classic deadlock PCPs exist to prevent.
  TransactionSet set = MakeSet({
      {.name = "TH", .offset = 1, .body = {Read(1), Write(0)}},
      {.name = "TL", .offset = 0, .body = {Read(0), Write(1)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlPi, 12);
  EXPECT_TRUE(result.deadlock_detected)
      << FailureContext(set, result);
  EXPECT_TRUE(result.metrics.halted_on_deadlock);
}

TEST(TwoPlPiTest, DeadlockResolvedByAbort) {
  TransactionSet set = MakeSet({
      {.name = "TH", .offset = 1, .body = {Read(1), Write(0)}},
      {.name = "TL", .offset = 0, .body = {Read(0), Write(1)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlPi, 14,
                                   DeadlockPolicy::kAbortLowestPriority);
  EXPECT_TRUE(result.deadlock_detected);
  // The lower-priority member (TL) restarts; both eventually commit.
  EXPECT_GT(result.metrics.per_spec[1].restarts, 0);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(TwoPlPiTest, ChainedBlockingPossible) {
  // H is blocked by M's lock on y, and (after M completes) by L's lock on
  // x — more than one lower-priority blocker, which PCPs forbid.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 4, .body = {Read(1), Read(0)}},
      {.name = "M", .offset = 2, .body = {Write(1), Compute(3)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(7)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlPi, 30);
  // Count distinct blocking episodes of H.
  int blocks = 0;
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind == TraceKind::kBlock && e.spec == 0) ++blocks;
  }
  EXPECT_GE(blocks, 2) << FailureContext(set, result);
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- 2PL-HP -------------------------------------------------------------

TEST(TwoPlHpTest, HigherPriorityAbortsHolder) {
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlHp, 12);
  EXPECT_EQ(result.metrics.per_spec[1].restarts, 1)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0);
  EXPECT_EQ(CommitTime(result, 0, 0), 2);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(TwoPlHpTest, LowerPriorityRequesterWaits) {
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 0, .body = {Write(0), Compute(2)}},
      {.name = "L", .offset = 1, .body = {Read(0)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlHp, 12);
  EXPECT_EQ(result.metrics.TotalRestarts(), 0);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_GT(CommitTime(result, 1, 0), CommitTime(result, 0, 0));
}

TEST(TwoPlHpTest, AbortUndoesInPlaceWrites) {
  // L writes x in place, then is aborted by H, which READS x: H must see
  // the initial value, not L's dirty write.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Read(0)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlHp, 14);
  const CommittedTxn* reader = nullptr;
  for (const auto& txn : result.history.committed()) {
    if (txn.spec == 0) reader = &txn;
  }
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->ops[0].observed.writer, kInvalidJob)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.per_spec[1].restarts, 1);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(TwoPlHpTest, NoDeadlockOnCrossedAccess) {
  TransactionSet set = MakeSet({
      {.name = "TH", .offset = 1, .body = {Read(1), Write(0)}},
      {.name = "TL", .offset = 0, .body = {Read(0), Write(1)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlHp, 14);
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(TwoPlHpTest, RepeatedRestartsUnderPeriodicPressure) {
  // A periodic high-priority writer keeps aborting the long low-priority
  // transaction — the unbounded-restart weakness the paper cites.
  TransactionSet set = MakeSet({
      {.name = "H", .period = 4, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(5)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlHp, 24);
  EXPECT_GE(result.metrics.per_spec[1].restarts, 2)
      << FailureContext(set, result);
}

}  // namespace
}  // namespace pcpda
