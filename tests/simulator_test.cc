#include <gtest/gtest.h>

#include "core/pcp_da.h"
#include "history/serialization_graph.h"
#include "protocols/two_pl_pi.h"
#include "test_util.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs,
                       PriorityAssignment pa =
                           PriorityAssignment::kAsListed) {
  auto set = TransactionSet::Create(std::move(specs), pa);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

TEST(SimulatorTest, RejectsZeroHorizon) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Compute(1)}}});
  PcpDa protocol;
  Simulator sim(&set, &protocol, SimulatorOptions{});
  const SimResult result = sim.Run();
  EXPECT_FALSE(result.status.ok());
}

TEST(SimulatorTest, SingleComputeJobRunsToCommit) {
  TransactionSet set =
      MakeSet({{.name = "T", .offset = 2, .body = {Compute(3)}}});
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  ASSERT_TRUE(result.status.ok());
  const auto& m = result.metrics.per_spec[0];
  EXPECT_EQ(m.released, 1);
  EXPECT_EQ(m.committed, 1);
  EXPECT_EQ(m.busy_ticks, 3);
  EXPECT_EQ(CommitTime(result, 0, 0), 5);
  EXPECT_EQ(result.metrics.idle_ticks, 10 - 3);
}

TEST(SimulatorTest, PeriodicReleases) {
  TransactionSet set =
      MakeSet({{.name = "T", .period = 4, .body = {Compute(1)}}});
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 12);
  EXPECT_EQ(result.metrics.per_spec[0].released, 3);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 3);
  EXPECT_TRUE(result.metrics.AllDeadlinesMet());
}

TEST(SimulatorTest, HigherPriorityPreempts) {
  TransactionSet set = MakeSet({
      {.name = "hi", .offset = 2, .body = {Compute(2)}},
      {.name = "lo", .offset = 0, .body = {Compute(6)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 12);
  // lo runs [0,2), hi preempts [2,4), lo resumes [4,8).
  EXPECT_EQ(CommitTime(result, 0, 0), 4);
  EXPECT_EQ(CommitTime(result, 1, 0), 8);
  EXPECT_EQ(result.metrics.per_spec[1].preempted_ticks, 2);
  EXPECT_EQ(result.metrics.per_spec[1].blocked_ticks, 0);
}

TEST(SimulatorTest, DeadlineMissRecordedOnceAndJobContinues) {
  // C=5 but deadline (=period) is 4.
  TransactionSpec t{.name = "T", .period = 8, .body = {Compute(5)}};
  t.relative_deadline = 4;
  TransactionSet set = MakeSet({t});
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 8);
  EXPECT_EQ(result.metrics.per_spec[0].deadline_misses, 1);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
  EXPECT_EQ(CommitTime(result, 0, 0), 5);
  EXPECT_EQ(result.trace.EventsOfKind(TraceKind::kDeadlineMiss).size(), 1u);
}

TEST(SimulatorTest, DeadlineMissDropPolicy) {
  TransactionSpec t{.name = "T", .period = 8, .body = {Compute(5)}};
  t.relative_deadline = 4;
  TransactionSpec hog{.name = "hog", .offset = 0, .body = {Compute(4)}};
  // hog has higher listed priority, starving T past its deadline.
  TransactionSet set = MakeSet({hog, t});
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 8;
  options.miss_policy = DeadlineMissPolicy::kDrop;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  EXPECT_EQ(result.metrics.per_spec[1].deadline_misses, 1);
  EXPECT_EQ(result.metrics.per_spec[1].dropped, 1);
  EXPECT_EQ(result.metrics.per_spec[1].committed, 0);
}

TEST(SimulatorTest, DeadlineMissHaltPolicy) {
  TransactionSpec t{.name = "T", .period = 6, .body = {Compute(5)}};
  t.relative_deadline = 2;
  TransactionSet set = MakeSet({t});
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 20;
  options.miss_policy = DeadlineMissPolicy::kHalt;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.metrics.halted_on_miss);
  EXPECT_LT(result.trace.ticks().size(), 20u);
}

TEST(SimulatorTest, ReadObservesCommittedValue) {
  // writer (higher priority) commits, then reader reads the new value.
  TransactionSet set = MakeSet({
      {.name = "W", .offset = 0, .body = {Write(0)}},
      {.name = "R", .offset = 0, .body = {Read(0)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  ASSERT_EQ(result.history.committed().size(), 2u);
  const CommittedTxn* reader = nullptr;
  for (const auto& txn : result.history.committed()) {
    if (txn.spec == 1) reader = &txn;
  }
  ASSERT_NE(reader, nullptr);
  ASSERT_EQ(reader->ops.size(), 1u);
  EXPECT_EQ(reader->ops[0].observed.writer, 0);  // job 0 = writer
}

TEST(SimulatorTest, OwnWorkspaceReadAfterWrite) {
  TransactionSet set = MakeSet({
      {.name = "T", .offset = 0, .body = {Write(0), Read(0)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  ASSERT_EQ(result.history.committed().size(), 1u);
  const auto& ops = result.history.committed()[0].ops;
  // write (at commit), read (own).
  bool saw_own_read = false;
  for (const HistoryOp& op : ops) {
    if (op.kind == HistoryOp::Kind::kRead) {
      EXPECT_TRUE(op.own_read);
      EXPECT_EQ(op.observed.writer, 0);
      saw_own_read = true;
    }
  }
  EXPECT_TRUE(saw_own_read);
}

TEST(SimulatorTest, WorkspaceWritesApplyAtCommitOnly) {
  // Reader samples x while the lower-priority writer is mid-transaction.
  TransactionSet set = MakeSet({
      {.name = "R", .offset = 1, .body = {Read(0)}},
      {.name = "W", .offset = 0, .body = {Write(0), Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  const CommittedTxn* reader = nullptr;
  for (const auto& txn : result.history.committed()) {
    if (txn.spec == 0) reader = &txn;
  }
  ASSERT_NE(reader, nullptr);
  // The write was pending in W's workspace: R saw the initial value.
  EXPECT_EQ(reader->ops[0].observed.writer, kInvalidJob);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(SimulatorTest, InPlaceWritesApplyImmediately) {
  TransactionSet set = MakeSet({
      {.name = "W", .offset = 0, .body = {Write(0)}},
      {.name = "R", .offset = 0, .body = {Read(0)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlPi, 10);
  const CommittedTxn* reader = nullptr;
  for (const auto& txn : result.history.committed()) {
    if (txn.spec == 1) reader = &txn;
  }
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->ops[0].observed.writer, 0);
}

TEST(SimulatorTest, TraceTicksCoverHorizon) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Compute(1)}}});
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 7);
  EXPECT_EQ(result.trace.ticks().size(), 7u);
  for (std::size_t t = 0; t < 7; ++t) {
    EXPECT_EQ(result.trace.ticks()[t].tick, static_cast<Tick>(t));
  }
}

TEST(SimulatorTest, IdleFastForwardMatchesPerTickEngine) {
  // Sparse workload: 2 busy ticks then a 98-tick idle gap, every period.
  // Without an auditor the core fast-forwards the gaps; with one it walks
  // every tick. Both paths must report byte-identical results.
  TransactionSet set = MakeSet(
      {{.name = "Sparse", .period = 100, .body = {Read(0), Write(1)}}});
  auto run = [&set](bool audit) {
    auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
    SimulatorOptions options;
    options.horizon = 1000;
    options.audit = audit;
    Simulator sim(&set, protocol.get(), options);
    return sim.Run();
  };
  const SimResult fast = run(false);
  const SimResult slow = run(true);
  ASSERT_TRUE(fast.status.ok());
  ASSERT_TRUE(slow.status.ok());
  EXPECT_EQ(fast.metrics.DebugString(set), slow.metrics.DebugString(set));
  EXPECT_EQ(fast.trace.DebugString(), slow.trace.DebugString());
  EXPECT_EQ(fast.metrics.idle_ticks, 1000 - 10 * 2);
  // Skipped ticks still produce their idle TickRecords, consecutively.
  ASSERT_EQ(fast.trace.ticks().size(), 1000u);
  for (std::size_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(fast.trace.ticks()[t].tick, static_cast<Tick>(t));
    EXPECT_EQ(fast.trace.ticks()[t].running_job,
              slow.trace.ticks()[t].running_job);
  }
}

TEST(SimulatorTest, FastForwardStopsAtHorizonWithNoMoreArrivals) {
  // One-shot job, huge idle tail: the run must still account for every
  // tick up to the horizon, not stop at the last arrival.
  TransactionSet set = MakeSet(
      {{.name = "Once", .period = 0, .offset = 3, .body = {Compute(2)}}});
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 5000;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
  EXPECT_EQ(result.metrics.idle_ticks, 5000 - 2);
  EXPECT_EQ(result.trace.ticks().size(), 5000u);
  EXPECT_EQ(result.trace.ticks().back().tick, 4999);
}

TEST(SimulatorTest, MissRatioCensorsReleaseJustBeforeHorizon) {
  // A hogs every other tick, so B (needs 5 ticks out of the 4 odd ticks
  // per period) misses each deadline. B's instance released one tick
  // before the horizon has a deadline beyond it — neither met nor missed.
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 2, .body = {Compute(1)}},
          {.name = "B", .period = 8, .body = {Compute(5)}},
      },
      PriorityAssignment::kRateMonotonic);
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 9;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  const RunMetrics& m = result.metrics;
  EXPECT_EQ(m.TotalReleased(), 7);  // A at 0,2,4,6,8; B at 0,8
  EXPECT_EQ(m.TotalMisses(), 1);    // B's first instance, at tick 8
  // B@8 is censored; B@0 already missed, so it counts as decided even
  // though it is still running at the horizon.
  EXPECT_EQ(m.TotalPending(), 1);
  EXPECT_EQ(m.per_spec[1].pending_at_horizon, 1);
  EXPECT_DOUBLE_EQ(m.MissRatio(), 1.0 / 6.0);
}

TEST(SimulatorTest, ResponseTimeMetrics) {
  TransactionSet set = MakeSet({
      {.name = "hi", .period = 5, .body = {Compute(1)}},
      {.name = "lo", .period = 10, .body = {Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  EXPECT_EQ(result.metrics.per_spec[0].max_response, 1);
  // lo: runs [1,4) after hi's first instance -> response 4.
  EXPECT_EQ(result.metrics.per_spec[1].max_response, 4);
}

TEST(SimulatorTest, RecordingCanBeDisabled) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Read(0)}}});
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 5;
  options.record_trace = false;
  options.record_history = false;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.trace.events().empty());
  EXPECT_TRUE(result.trace.ticks().empty());
  EXPECT_TRUE(result.history.committed().empty());
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
}

TEST(SimulatorTest, LockReacquisitionNotNeededWithinJob) {
  // Read x twice: the second read reuses the held lock.
  TransactionSet set =
      MakeSet({{.name = "T", .body = {Read(0), Compute(1), Read(0)}}});
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  EXPECT_EQ(result.trace.EventsOfKind(TraceKind::kLockGrant).size(), 1u);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
}

TEST(SimulatorTest, LocksReleasedAtCommit) {
  TransactionSet set = MakeSet({
      {.name = "A", .offset = 0, .body = {Write(0)}},
      {.name = "B", .offset = 2, .body = {Write(0)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlPi, 10);
  EXPECT_EQ(result.metrics.per_spec[1].committed, 1);
  EXPECT_EQ(result.metrics.per_spec[1].blocked_ticks, 0);
}

}  // namespace
}  // namespace pcpda
