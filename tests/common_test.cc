#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/types.h"

namespace pcpda {
namespace {

// --- Priority ---------------------------------------------------------

TEST(PriorityTest, DummyIsLowerThanEverything) {
  EXPECT_LT(Priority::Dummy(), Priority(0));
  EXPECT_LT(Priority::Dummy(), Priority(-100));
  EXPECT_TRUE(Priority::Dummy().is_dummy());
  EXPECT_FALSE(Priority(0).is_dummy());
}

TEST(PriorityTest, HigherLevelComparesHigher) {
  EXPECT_GT(Priority(3), Priority(2));
  EXPECT_EQ(Priority(2), Priority(2));
  EXPECT_LE(Priority(1), Priority(2));
}

TEST(PriorityTest, MaxPicksLarger) {
  EXPECT_EQ(Max(Priority(1), Priority(5)), Priority(5));
  EXPECT_EQ(Max(Priority(5), Priority(1)), Priority(5));
  EXPECT_EQ(Max(Priority::Dummy(), Priority(-3)), Priority(-3));
}

TEST(PriorityTest, SpecIndexMapping) {
  // T_1 (index 0) gets the highest priority.
  EXPECT_GT(PriorityForSpecIndex(0, 4), PriorityForSpecIndex(1, 4));
  EXPECT_GT(PriorityForSpecIndex(2, 4), PriorityForSpecIndex(3, 4));
  EXPECT_GT(PriorityForSpecIndex(3, 4), Priority::Dummy());
}

// --- Status -----------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad period");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad period");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad period");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

// --- Rng --------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (int round = 0; round < 50; ++round) {
    const auto sample = rng.SampleWithoutReplacement(20, 8);
    std::set<std::int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (std::int64_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleFullRange) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<std::int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  rng.Shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 6u);
}

TEST(RngTest, ShuffleHandlesDegenerateSizes) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
  // Neither call may consume entropy: the stream is position-sensitive
  // and a draw on a 0/1-element shuffle would shift every later value.
  Rng untouched(37);
  EXPECT_EQ(rng.Next(), untouched.Next());
}

TEST(RngTest, UniformIntFullInt64Range) {
  // lo..hi spanning the whole domain must not overflow (hi - lo + 1
  // wraps to 0) and must be able to produce both signs.
  Rng rng(41);
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t v = rng.UniformInt(
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max());
    saw_negative |= v < 0;
    saw_positive |= v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(RngTest, UniformIntHalfOpenDomainBoundaries) {
  // Intervals wider than INT64_MAX exercise the unsigned span path.
  Rng rng(43);
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  for (int i = 0; i < 200; ++i) {
    const std::int64_t v = rng.UniformInt(lo, 0);
    EXPECT_LE(v, 0);
  }
  EXPECT_EQ(rng.UniformInt(lo, lo), lo);
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(rng.UniformInt(hi, hi), hi);
}

TEST(RngTest, GoldenSequencePinsGenerator) {
  // Seed 42's opening xoshiro256** outputs. Every stored scenario seed,
  // golden trace, and fuzz corpus entry depends on this exact stream —
  // a change here invalidates all of them, so it must be deliberate.
  Rng rng(42);
  const std::uint64_t expected[] = {
      0x15780b2e0c2ec716ULL, 0x6104d9866d113a7eULL,
      0xae17533239e499a1ULL, 0xecb8ad4703b360a1ULL,
      0xfde6dc7fe2ec5e64ULL, 0xc50da53101795238ULL,
      0xb82154855a65ddb2ULL, 0xd99a2743ebe60087ULL,
  };
  for (const std::uint64_t want : expected) EXPECT_EQ(rng.Next(), want);

  Rng bounded(42);
  EXPECT_EQ(bounded.UniformInt(0, 99), 42);
  EXPECT_EQ(bounded.UniformInt(0, 99), 2);
  EXPECT_EQ(bounded.UniformInt(0, 99), 9);
  EXPECT_EQ(bounded.UniformInt(0, 99), 93);
}

// --- Strings ----------------------------------------------------------

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "ab"), "x=3 y=ab");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

TEST(StringsTest, PriorityDebugString) {
  EXPECT_EQ(Priority::Dummy().DebugString(), "dummy");
  EXPECT_EQ(Priority(4).DebugString(), "prio(4)");
}

}  // namespace
}  // namespace pcpda
