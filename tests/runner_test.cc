// Tests for the parallel batch-execution engine: the work-stealing
// ExecutorPool (index coverage, reuse across many batches, exception
// determinism, edge cases) and the BatchRunner (parallel-vs-serial
// golden determinism across all 8 protocols — including under a fault
// plan — per-job failure isolation, seed derivation, per-job trace
// ring isolation under concurrency, worker exception safety, and the
// robustness policy: watchdog budgets, bounded retry, graceful stop).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "runner/batch_runner.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

std::string SourcePath(const char* relative) {
  return std::string(PCPDA_SOURCE_DIR "/") + relative;
}

Scenario LoadFaultyScenario() {
  auto scenario =
      LoadScenarioFile(SourcePath("scenarios/example3_faulty.scn"));
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  return std::move(scenario).value();
}

std::string RenderTick(const TickRecord& record) {
  std::string out = StrFormat(
      "t=%lld run=%lld spec=%d kind=%d ceil=%s",
      static_cast<long long>(record.tick),
      static_cast<long long>(record.running_job), record.running_spec,
      static_cast<int>(record.running_kind),
      record.ceiling.DebugString().c_str());
  for (const BlockedSample& blocked : record.blocked) {
    std::vector<std::string> ids;
    for (JobId id : blocked.blockers) {
      ids.push_back(StrFormat("%lld", static_cast<long long>(id)));
    }
    out += StrFormat(" blocked{job=%lld item=d%d mode=%s reason=%s by=[%s]}",
                     static_cast<long long>(blocked.job), blocked.item,
                     ToString(blocked.mode), ToString(blocked.reason),
                     Join(ids, ",").c_str());
  }
  return out;
}

/// Every observable byte of one result: trace events, per-tick schedule,
/// metrics, history, audit verdict and the trace-ring drop counters.
std::string RenderResult(const TransactionSet& set,
                         const SimResult& result) {
  std::ostringstream out;
  out << "status: " << result.status.ToString() << "\n";
  out << "audit: " << result.audit.DebugString() << "\n";
  out << "dropped: " << result.trace.dropped_events() << "/"
      << result.trace.dropped_ticks() << "\n";
  out << "[metrics]\n" << result.metrics.DebugString(set) << "\n";
  out << "[events]\n" << result.trace.DebugString() << "\n";
  out << "[ticks]\n";
  for (const TickRecord& record : result.trace.ticks()) {
    out << RenderTick(record) << "\n";
  }
  out << "[history]\n" << result.history.DebugString() << "\n";
  return out.str();
}

std::vector<RunSpec> AllProtocolSpecs(const Scenario& scenario,
                                      std::size_t max_trace_events = 0) {
  std::vector<RunSpec> specs;
  for (ProtocolKind kind : AllProtocolKinds()) {
    RunSpec spec;
    spec.scenario = &scenario;
    spec.protocol = kind;
    spec.options.audit = true;
    spec.options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    spec.options.max_trace_events = max_trace_events;
    specs.push_back(spec);
  }
  return specs;
}

// --- Seeding ---------------------------------------------------------------

TEST(SplitMixSeedTest, DeterministicAndIndexSensitive) {
  EXPECT_EQ(SplitMixSeed(1, 0), SplitMixSeed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < 100; ++index) {
    seen.insert(SplitMixSeed(42, index));
  }
  EXPECT_EQ(seen.size(), 100u) << "stream collision within one base";
  EXPECT_NE(SplitMixSeed(1, 7), SplitMixSeed(2, 7));
}

// --- ExecutorPool ----------------------------------------------------------

TEST(ExecutorPoolTest, RunsEveryIndexExactlyOnce) {
  ExecutorPool pool(8);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorPoolTest, ZeroTasksIsANoOp) {
  ExecutorPool pool(4);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "body ran for n=0"; });
}

TEST(ExecutorPoolTest, MoreExecutorsThanTasks) {
  ExecutorPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ExecutorPoolTest, SingleExecutorRunsInline) {
  ExecutorPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(4);
  pool.ParallelFor(4, [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : ran) EXPECT_EQ(id, caller);
}

TEST(ExecutorPoolTest, ClampsNonPositiveThreadCounts) {
  ExecutorPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  ExecutorPool negative(-3);
  EXPECT_EQ(negative.threads(), 1);
}

TEST(ExecutorPoolTest, ReusableAcrossManyBatches) {
  ExecutorPool pool(4);
  for (int batch = 0; batch < 200; ++batch) {
    std::atomic<int> sum{0};
    pool.ParallelFor(5, [&](std::size_t i) {
      sum += static_cast<int>(i) + 1;
    });
    ASSERT_EQ(sum.load(), 15) << "batch " << batch;
  }
}

TEST(ExecutorPoolTest, LowestIndexExceptionWinsAndBatchDrains) {
  ExecutorPool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  try {
    pool.ParallelFor(kTasks, [&](std::size_t i) {
      ++hits[i];
      if (i == 9 || i == 41) {
        throw std::runtime_error(StrFormat("task %zu failed", i));
      }
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 9 failed");
  }
  // Failures never cancel the rest of the batch.
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// --- BatchRunner: golden parallel-vs-serial determinism --------------------

TEST(BatchRunnerTest, ParallelMatchesSerialByteForByteUnderFaultPlan) {
  const Scenario scenario = LoadFaultyScenario();
  ASSERT_TRUE(scenario.faults.enabled())
      << "scenario lost its fault plan; the golden check must cover "
         "seeded fault streams";
  const std::vector<RunSpec> specs = AllProtocolSpecs(scenario);

  BatchRunner serial(BatchOptions{1});
  BatchRunner parallel(BatchOptions{8});
  const std::vector<SimResult> a = serial.Run(specs);
  const std::vector<SimResult> b = parallel.Run(specs);
  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(RenderResult(scenario.set, a[i]),
              RenderResult(scenario.set, b[i]))
        << "jobs=8 diverged from jobs=1 under "
        << ToString(specs[i].protocol);
  }
}

TEST(BatchRunnerTest, RepeatedParallelBatchesAreIdentical) {
  const Scenario scenario = LoadFaultyScenario();
  const std::vector<RunSpec> specs = AllProtocolSpecs(scenario);
  BatchRunner runner(BatchOptions{8});
  const std::vector<SimResult> first = runner.Run(specs);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const std::vector<SimResult> again = runner.Run(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_EQ(RenderResult(scenario.set, first[i]),
                RenderResult(scenario.set, again[i]))
          << "repeat " << repeat << " protocol "
          << ToString(specs[i].protocol);
    }
  }
}

TEST(BatchRunnerTest, SeedOverrideReplacesFaultStream) {
  const Scenario scenario = LoadFaultyScenario();
  RunSpec spec;
  spec.scenario = &scenario;
  spec.protocol = ProtocolKind::kPcpDa;

  // seed=0 keeps the scenario's own fault stream.
  const SimResult base = BatchRunner::RunOne(spec);
  const SimResult base_again = BatchRunner::RunOne(spec);
  EXPECT_EQ(RenderResult(scenario.set, base),
            RenderResult(scenario.set, base_again));

  // A derived per-job seed is reproducible and independent of the base
  // stream (the injected-fault schedule differs).
  RunSpec seeded = spec;
  seeded.seed = SplitMixSeed(99, 0);
  const SimResult derived = BatchRunner::RunOne(seeded);
  const SimResult derived_again = BatchRunner::RunOne(seeded);
  EXPECT_EQ(RenderResult(scenario.set, derived),
            RenderResult(scenario.set, derived_again));
  EXPECT_NE(RenderResult(scenario.set, base),
            RenderResult(scenario.set, derived))
      << "fault-seed override had no observable effect";
}

// --- BatchRunner: failure isolation ----------------------------------------

TEST(BatchRunnerTest, NullScenarioFailsThatJobOnly) {
  const Scenario scenario = LoadFaultyScenario();
  std::vector<RunSpec> specs = AllProtocolSpecs(scenario);
  specs[3].scenario = nullptr;

  BatchRunner runner(BatchOptions{8});
  const std::vector<SimResult> results = runner.Run(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 3) {
      EXPECT_FALSE(results[i].status.ok());
      continue;
    }
    EXPECT_TRUE(results[i].status.ok())
        << i << ": " << results[i].status.ToString();
  }
}

TEST(BatchRunnerTest, ThrowingTaskBecomesInternalStatusWithoutPoisoning) {
  BatchRunner runner(BatchOptions{4});
  std::vector<std::function<SimResult()>> tasks;
  for (int i = 0; i < 6; ++i) {
    if (i == 2) {
      tasks.push_back([]() -> SimResult {
        throw std::runtime_error("injected task failure");
      });
    } else {
      tasks.push_back([] { return SimResult{}; });
    }
  }
  const std::vector<SimResult> results = runner.RunTasks(tasks);
  ASSERT_EQ(results.size(), tasks.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(results[i].status.ok());
      EXPECT_NE(results[i].status.ToString().find("injected task failure"),
                std::string::npos)
          << results[i].status.ToString();
    } else {
      EXPECT_TRUE(results[i].status.ok());
    }
  }
}

TEST(BatchRunnerTest, EmptyBatchReturnsEmptyResults) {
  BatchRunner runner(BatchOptions{4});
  EXPECT_TRUE(runner.Run({}).empty());
  EXPECT_TRUE(runner.RunTasks({}).empty());
}

// --- BatchRunner: worker exception safety ----------------------------------
// Regression: an exception thrown on a pool worker used to be rethrown
// out of ParallelFor by the pool itself; GuardedCall now captures it at
// the job boundary, so the batch returns normally and the pool (and its
// worker threads) stay usable for later batches.

TEST(BatchRunnerTest, WorkerExceptionsLeaveThePoolReusable) {
  BatchRunner runner(BatchOptions{4});
  std::vector<std::function<SimResult()>> poisoned;
  for (int i = 0; i < 16; ++i) {
    poisoned.push_back([i]() -> SimResult {
      throw std::runtime_error(StrFormat("poisoned task %d", i));
    });
  }
  for (int batch = 0; batch < 3; ++batch) {
    const std::vector<SimResult> results = runner.RunTasks(poisoned);
    ASSERT_EQ(results.size(), poisoned.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].status.code(), StatusCode::kInternal)
          << "batch " << batch << " task " << i;
    }
  }
  // The pool survived 48 captured exceptions; a clean batch still runs.
  const Scenario scenario = LoadFaultyScenario();
  const std::vector<SimResult> clean =
      runner.Run(AllProtocolSpecs(scenario));
  for (const SimResult& result : clean) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
}

TEST(BatchRunnerTest, NonStdExceptionIsCapturedToo) {
  BatchRunner runner(BatchOptions{2});
  const std::vector<SimResult> results =
      runner.RunTasks({[]() -> SimResult { throw 42; }});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kInternal);
}

// --- BatchRunner: robustness policy ----------------------------------------

TEST(BatchRunnerPolicyTest, TickBudgetTimesOutDeterministically) {
  const Scenario scenario = LoadFaultyScenario();
  RunSpec spec;
  spec.scenario = &scenario;
  spec.protocol = ProtocolKind::kPcpDa;
  JobPolicy policy;
  policy.max_sim_ticks = 10;  // far below the scenario's horizon
  policy.max_retries = 3;

  BatchRunner runner(BatchOptions{2});
  const std::vector<JobResult> results =
      runner.RunWithPolicy({spec, spec}, policy);
  ASSERT_EQ(results.size(), 2u);
  for (const JobResult& job : results) {
    EXPECT_EQ(job.outcome, JobOutcome::kTimeout);
    EXPECT_EQ(job.attempts, 1)
        << "a tick-budget timeout is deterministic; retrying it would "
           "burn the same budget again";
    EXPECT_EQ(job.result.status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(BatchRunnerPolicyTest, TransientFailureIsRetriedAndReclassified) {
  BatchRunner runner(BatchOptions{2});
  JobPolicy policy;
  policy.max_retries = 2;
  const std::vector<BatchRunner::PolicyTask> tasks = {
      // Fails once, then passes: reclassified as OK with attempts == 2.
      [](const JobContext& context) -> SimResult {
        if (context.attempt == 0) throw std::runtime_error("flake");
        return SimResult{};
      },
      // Fails every attempt: retries exhaust, reported as the same
      // failure it would have been without retry.
      [](const JobContext&) -> SimResult {
        throw std::runtime_error("deterministic crash");
      },
      // Non-Internal failures are deterministic by contract — no retry.
      [](const JobContext&) {
        SimResult result;
        result.status = Status::InvalidArgument("bad config");
        return result;
      }};
  const std::vector<JobResult> results =
      runner.RunTasksWithPolicy(tasks, policy);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].outcome, JobOutcome::kOk);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(results[1].outcome, JobOutcome::kFailed);
  EXPECT_EQ(results[1].attempts, 3);
  EXPECT_EQ(results[1].result.status.code(), StatusCode::kInternal);
  EXPECT_EQ(results[2].outcome, JobOutcome::kFailed);
  EXPECT_EQ(results[2].attempts, 1);
}

TEST(BatchRunnerPolicyTest, PreTrippedStopSkipsEveryJobAndMutesTheHook) {
  BatchRunner runner(BatchOptions{2});
  const std::atomic<bool> stop{true};
  JobPolicy policy;
  policy.stop = &stop;
  std::atomic<int> hook_calls{0};
  const std::vector<BatchRunner::PolicyTask> tasks(
      4, [](const JobContext&) -> SimResult {
        ADD_FAILURE() << "a skipped job must never run";
        return SimResult{};
      });
  const std::vector<JobResult> results = runner.RunTasksWithPolicy(
      tasks, policy,
      [&](std::size_t, const JobResult&) { ++hook_calls; });
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& job : results) {
    EXPECT_EQ(job.outcome, JobOutcome::kSkipped);
    EXPECT_EQ(job.attempts, 0);
  }
  EXPECT_EQ(hook_calls.load(), 0)
      << "skipped jobs must not reach the checkpoint hook";
}

TEST(BatchRunnerPolicyTest, WallBudgetCancelsASpinningTask) {
  BatchRunner runner(BatchOptions{2});
  JobPolicy policy;
  policy.wall_budget_ms = 100;
  policy.max_retries = 3;
  const std::vector<BatchRunner::PolicyTask> tasks = {
      [](const JobContext& context) -> SimResult {
        while (!context.cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        SimResult result;
        result.status = Status::DeadlineExceeded("noticed cancellation");
        return result;
      }};
  const std::vector<JobResult> results =
      runner.RunTasksWithPolicy(tasks, policy);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, JobOutcome::kTimeout);
  EXPECT_EQ(results[0].attempts, 1) << "timeouts are not retried";
}

TEST(BatchRunnerPolicyTest, CompletionHookFiresOnceRecordedPerFinishedJob) {
  BatchRunner runner(BatchOptions{4});
  JobPolicy policy;
  std::vector<BatchRunner::PolicyTask> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([](const JobContext&) { return SimResult{}; });
  }
  std::mutex mu;
  std::set<std::size_t> seen;
  const std::vector<JobResult> results = runner.RunTasksWithPolicy(
      tasks, policy, [&](std::size_t index, const JobResult& job) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(index).second)
            << "hook fired twice for job " << index;
        EXPECT_EQ(job.outcome, JobOutcome::kOk);
      });
  ASSERT_EQ(results.size(), tasks.size());
  EXPECT_EQ(seen.size(), tasks.size());
}

// --- Bounded trace ring under concurrency ----------------------------------
// Per-run trace buffers belong to their job alone: a batch of bounded
// rings must reproduce the serial runs' retained windows and dropped
// counters exactly, and the compaction path must actually fire.

TEST(BatchRunnerTest, TraceRingIsolationAndCountersInParallelBatch) {
  const Scenario scenario = LoadFaultyScenario();
  constexpr std::size_t kRing = 8;  // small enough to force compaction
  const std::vector<RunSpec> specs = AllProtocolSpecs(scenario, kRing);

  BatchRunner serial(BatchOptions{1});
  BatchRunner parallel(BatchOptions{8});
  const std::vector<SimResult> a = serial.Run(specs);
  const std::vector<SimResult> b = parallel.Run(specs);

  bool any_dropped = false;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // The ring stayed bounded and its drop accounting is consistent.
    EXPECT_LE(b[i].trace.events().size(), 2 * kRing);
    EXPECT_EQ(b[i].trace.dropped_events(), a[i].trace.dropped_events())
        << ToString(specs[i].protocol);
    EXPECT_EQ(b[i].trace.dropped_ticks(), a[i].trace.dropped_ticks())
        << ToString(specs[i].protocol);
    any_dropped = any_dropped || b[i].trace.dropped_events() > 0;
    // No cross-run interleaving: the retained window is byte-identical
    // to the serial run's, event for event and tick for tick.
    EXPECT_EQ(RenderResult(scenario.set, a[i]),
              RenderResult(scenario.set, b[i]))
        << ToString(specs[i].protocol);
  }
  EXPECT_TRUE(any_dropped)
      << "ring never overflowed; the compaction path went unexercised";
}

}  // namespace
}  // namespace pcpda
