#include <gtest/gtest.h>

#include "core/pcp_da.h"
#include "core/serialization_order.h"
#include "history/serialization_graph.h"
#include "test_util.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs) {
  auto set = TransactionSet::Create(std::move(specs),
                                    PriorityAssignment::kAsListed);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

/// The note of the grant event for (spec, item), or "" if none.
std::string GrantNote(const SimResult& result, SpecId spec, ItemId item,
                      LockMode mode) {
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind == TraceKind::kLockGrant && e.spec == spec &&
        e.item == item && e.mode == mode) {
      return e.note;
    }
  }
  return "";
}

// --- Locking conditions, isolated scenarios -------------------------------

TEST(PcpDaLockingTest, Lc1GrantsWriteOnFreeItem) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Write(0)}}});
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 5);
  EXPECT_EQ(GrantNote(result, 0, 0, LockMode::kWrite), "LC1");
}

TEST(PcpDaLockingTest, Lc1GrantsConcurrentWriters) {
  // Blind writes never conflict: the lower-priority writer locks x first,
  // the higher-priority writer still write-locks x and preempts.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0), Compute(1)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0)
      << FailureContext(set, result);
  EXPECT_EQ(CommitTime(result, 0, 0), 3);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaLockingTest, Lc1DeniesWriteOnReadLockedItem) {
  // L read-locks x; H's write of x must wait (Case 2: Read-Write).
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  EXPECT_GT(result.metrics.per_spec[0].blocked_ticks, 0);
  EXPECT_EQ(result.metrics.per_spec[0].conflict_blocks, 1);
  // H commits after L.
  EXPECT_GT(CommitTime(result, 0, 0), CommitTime(result, 1, 0));
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaLockingTest, Lc2GrantsReadUnderWriteLock) {
  // Case 1 (Write-Read): H reads x under L's write lock and commits first.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Read(0)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 10);
  EXPECT_EQ(GrantNote(result, 0, 0, LockMode::kRead), "LC2");
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0);
  EXPECT_LT(CommitTime(result, 0, 0), CommitTime(result, 1, 0));
  EXPECT_TRUE(FindCommitOrderViolations(result.history).empty());
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaLockingTest, WrGuardBlocksCase2Preemption) {
  // L write-locked x AND has read y which H will write: granting H's read
  // of x could not guarantee H commits first -> conflict blocking.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 2, .body = {Read(0), Write(1)}},
      {.name = "L",
       .offset = 0,
       .body = {Read(1), Write(0), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 12);
  // H's read of x is denied while L holds the write lock.
  bool saw_wr_guard_block = false;
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind == TraceKind::kBlock && e.spec == 0 && e.item == 0) {
      EXPECT_EQ(e.reason, BlockReason::kConflict);
      saw_wr_guard_block = true;
    }
  }
  // Note: H may instead be ceiling-blocked on Sysceil (y read-locked by L
  // raises Wceil(y)=P_H). Either way H must wait for L and the history
  // stays serializable.
  EXPECT_GT(result.metrics.per_spec[0].blocked_ticks, 0)
      << FailureContext(set, result);
  EXPECT_GT(CommitTime(result, 0, 0), CommitTime(result, 1, 0));
  EXPECT_TRUE(IsSerializable(result.history));
  (void)saw_wr_guard_block;
}

TEST(PcpDaLockingTest, Lc3GrantsWhenItemCeilingBelowPriority) {
  // M's read of z (never written by anyone above M) proceeds although the
  // Sysceil (from L's read of y, Wceil(y)=P_H) is above P_M.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 9, .body = {Write(1)}},        // writes y
      {.name = "M", .offset = 1, .body = {Read(2)}},         // reads z
      {.name = "L", .offset = 0, .body = {Read(1), Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 14);
  EXPECT_EQ(GrantNote(result, 1, 2, LockMode::kRead), "LC3")
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.per_spec[1].blocked_ticks, 0);
}

TEST(PcpDaLockingTest, Lc4GrantsHighestWriterItself) {
  // M is itself the highest-priority writer of z (P_M == Wceil(z)); z has
  // no other reader and z is not in T*'s write set.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 9, .body = {Write(1)}},
      {.name = "M", .offset = 1, .body = {Read(2), Write(2)}},
      {.name = "L", .offset = 0, .body = {Read(1), Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 14);
  EXPECT_EQ(GrantNote(result, 1, 2, LockMode::kRead), "LC4")
      << FailureContext(set, result);
}

TEST(PcpDaLockingTest, TstarGuardBlocksWhenTstarWritesItem) {
  // Same as LC4 scenario but T* (= L's blocker-to-be... here the Sysceil
  // holder) will write z, so the guard must deny M's read.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 9, .body = {Write(1)}},
      {.name = "M", .offset = 1, .body = {Read(2), Write(2)}},
      {.name = "L",
       .offset = 0,
       .body = {Read(1), Compute(2), Write(2)}},  // T* writes z too
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 16);
  // M is ceiling-blocked at t=1 instead of being granted.
  EXPECT_GT(result.metrics.per_spec[1].ceiling_blocks, 0)
      << FailureContext(set, result);
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaLockingTest, CeilingBlockingStillOccursWhenNeeded) {
  // The paper's remaining (necessary) ceiling blocking: M must not read y
  // while L read-locks x whose Wceil >= P_M.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 9, .body = {Write(0), Write(1)}},
      {.name = "M", .offset = 1, .body = {Read(1)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 14);
  EXPECT_EQ(result.metrics.per_spec[1].ceiling_blocks, 1)
      << FailureContext(set, result);
  // Single blocking: M waits only for L, then runs.
  EXPECT_EQ(CommitTime(result, 2, 0), 4);
  EXPECT_EQ(CommitTime(result, 1, 0), 5);
}

// --- Example 3 / Figure 2 -------------------------------------------------

TEST(PcpDaExampleTest, Example3MatchesFigure2) {
  const PaperExample example = Example3();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  ASSERT_TRUE(result.status.ok());
  // T1 commits at 3 and 8; T2 commits at 9.
  EXPECT_EQ(CommitTime(result, 0, 0), 3) << FailureContext(example.set, result);
  EXPECT_EQ(CommitTime(result, 0, 1), 8);
  EXPECT_EQ(CommitTime(result, 1, 0), 9);
  // No blocking at all for T1 (the paper's headline claim).
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0);
  EXPECT_EQ(result.metrics.per_spec[0].effective_blocking_ticks, 0);
  EXPECT_TRUE(result.metrics.AllDeadlinesMet());
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_TRUE(FindCommitOrderViolations(result.history).empty());
}

// --- Example 4 / Figure 4 -------------------------------------------------

TEST(PcpDaExampleTest, Example4MatchesFigure4) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  ASSERT_TRUE(result.status.ok());
  // Narrated grants: T3 read-locks z at t=1 via LC4; T1 read-locks x at
  // t=4 via LC2; T3 write-locks z at t=2 via LC1.
  EXPECT_EQ(GrantNote(result, 2, kItemZ, LockMode::kRead), "LC4")
      << FailureContext(example.set, result);
  EXPECT_EQ(GrantNote(result, 0, kItemX, LockMode::kRead), "LC2");
  EXPECT_EQ(GrantNote(result, 2, kItemZ, LockMode::kWrite), "LC1");
  // Narrated commits: T3@3, T1@6, T4@9, T2@11.
  EXPECT_EQ(CommitTime(result, 2, 0), 3);
  EXPECT_EQ(CommitTime(result, 0, 0), 6);
  EXPECT_EQ(CommitTime(result, 3, 0), 9);
  EXPECT_EQ(CommitTime(result, 1, 0), 11);
  // Nobody blocks.
  for (const auto& m : result.metrics.per_spec) {
    EXPECT_EQ(m.blocked_ticks, 0);
  }
  // Max_Sysceil peaks at P2 (never P1), and serializability holds.
  EXPECT_EQ(result.metrics.max_ceiling, example.set.priority(1));
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- Example 5 / deadlock avoidance ----------------------------------------

TEST(PcpDaExampleTest, Example5FullProtocolAvoidsDeadlock) {
  const PaperExample example = Example5();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  EXPECT_FALSE(result.deadlock_detected)
      << FailureContext(example.set, result);
  // TH is ceiling-blocked once; TL commits at 2, TH at 4.
  EXPECT_EQ(CommitTime(result, 1, 0), 2);
  EXPECT_EQ(CommitTime(result, 0, 0), 4);
  EXPECT_EQ(result.metrics.per_spec[0].ceiling_blocks, 1);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaExampleTest, Example5NaiveCondition2Deadlocks) {
  const PaperExample example = Example5();
  PcpDaOptions options;
  options.enable_tstar_guard = false;
  PcpDa naive(options);
  const SimResult result = RunWith(example.set, &naive, example.horizon);
  EXPECT_TRUE(result.deadlock_detected)
      << FailureContext(example.set, result);
  EXPECT_TRUE(result.metrics.halted_on_deadlock);
}

TEST(PcpDaExampleTest, Example5NaiveWithAbortRecoveryCompletes) {
  const PaperExample example = Example5();
  PcpDaOptions options;
  options.enable_tstar_guard = false;
  PcpDa naive(options);
  const SimResult result = RunWith(example.set, &naive, example.horizon,
                                   DeadlockPolicy::kAbortLowestPriority);
  EXPECT_TRUE(result.deadlock_detected);
  EXPECT_GT(result.metrics.TotalRestarts(), 0);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- Example 1 under PCP-DA (the paper's motivating contrast) --------------

TEST(PcpDaExampleTest, Example1HasNoBlockingUnderPcpDa) {
  const PaperExample example = Example1();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  for (const auto& m : result.metrics.per_spec) {
    EXPECT_EQ(m.blocked_ticks, 0) << FailureContext(example.set, result);
  }
  // T1 arrives at 2 and runs immediately: commits at 4.
  EXPECT_EQ(CommitTime(result, 0, 0), 4);
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- Protocol-wide invariants on the examples -------------------------------

TEST(PcpDaInvariantTest, NoRestartsEver) {
  for (const PaperExample& example :
       {Example1(), Example3(), Example4(), Example5()}) {
    const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
    EXPECT_EQ(result.metrics.TotalRestarts(), 0) << example.name;
  }
}

TEST(PcpDaInvariantTest, AllExamplesSerializableAndDeadlockFree) {
  for (const PaperExample& example :
       {Example1(), Example3(), Example4(), Example5()}) {
    const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
    EXPECT_FALSE(result.deadlock_detected) << example.name;
    EXPECT_TRUE(IsSerializable(result.history)) << example.name;
    EXPECT_TRUE(FindCommitOrderViolations(result.history).empty())
        << example.name;
  }
}

}  // namespace
}  // namespace pcpda
