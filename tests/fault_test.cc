#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "history/serialization_graph.h"
#include "protocols/rw_pcp.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs,
                       PriorityAssignment pa =
                           PriorityAssignment::kAsListed) {
  auto set = TransactionSet::Create(std::move(specs), pa);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

/// RunWith plus a fault plan (audit stays on).
SimResult RunFaulty(const TransactionSet& set, ProtocolKind kind,
                    Tick horizon, FaultConfig faults,
                    DeadlockPolicy deadlock_policy =
                        DeadlockPolicy::kHalt) {
  auto protocol = MakeProtocol(kind);
  SimulatorOptions options;
  options.horizon = horizon;
  options.deadlock_policy = deadlock_policy;
  options.audit = true;
  options.faults = std::move(faults);
  Simulator sim(&set, protocol.get(), options);
  return sim.Run();
}

FaultSpec OneShot(FaultKind kind, SpecId spec, Tick at) {
  FaultSpec fault;
  fault.kind = kind;
  fault.spec = spec;
  fault.at = at;
  return fault;
}

// --- Configuration validation ---------------------------------------------

TEST(FaultConfigTest, RejectsMissingTrigger) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Compute(1)}}});
  FaultConfig config;
  config.faults.push_back(FaultSpec{});  // neither at nor probability
  EXPECT_FALSE(ValidateFaultConfig(config, set).ok());
}

TEST(FaultConfigTest, RejectsBothTriggers) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Compute(1)}}});
  FaultSpec fault = OneShot(FaultKind::kAbort, 0, 2);
  fault.probability = 0.5;
  FaultConfig config;
  config.faults.push_back(fault);
  EXPECT_FALSE(ValidateFaultConfig(config, set).ok());
}

TEST(FaultConfigTest, RejectsOutOfRangeSpecAndProbability) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Compute(1)}}});
  FaultConfig config;
  config.faults.push_back(OneShot(FaultKind::kAbort, 7, 2));
  EXPECT_FALSE(ValidateFaultConfig(config, set).ok());
  config.faults[0].spec = 0;
  config.faults[0].at = kNoTick;
  config.faults[0].probability = 1.5;
  EXPECT_FALSE(ValidateFaultConfig(config, set).ok());
}

TEST(FaultConfigTest, BadConfigSurfacesInRunStatus) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Compute(1)}}});
  FaultConfig config;
  config.faults.push_back(FaultSpec{});
  const SimResult result =
      RunFaulty(set, ProtocolKind::kPcpDa, 10, config);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.metrics.TotalReleased(), 0);
}

// --- Job faults -----------------------------------------------------------

TEST(FaultTest, AbortFaultRestartsAndCleansUp) {
  TransactionSet set = MakeSet(
      {{.name = "T", .body = {Read(0, 2), Compute(2)}}});
  FaultConfig config;
  config.faults.push_back(OneShot(FaultKind::kAbort, 0, 1));
  const SimResult result = RunFaulty(set, ProtocolKind::kPcpDa, 20, config);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.metrics.faults.injected_aborts, 1);
  EXPECT_EQ(result.metrics.per_spec[0].restarts, 1);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
  // The restart re-runs the full body: 1 aborted tick + 4 fresh ones.
  EXPECT_EQ(CommitTime(result, 0, 0), 5);
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_TRUE(result.audit.ok()) << result.audit.DebugString();
}

TEST(FaultTest, RestartInCsWaitsForACriticalSection) {
  TransactionSet set = MakeSet(
      {{.name = "T", .offset = 2, .body = {Read(0, 2), Compute(1)}}});
  FaultConfig config;
  // Armed from t=0 but the job only appears at t=2 and only holds the
  // read lock from t=3 on (admission happens inside the execute phase).
  config.faults.push_back(OneShot(FaultKind::kRestartInCs, 0, 0));
  const SimResult result = RunFaulty(set, ProtocolKind::kPcpDa, 20, config);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.metrics.faults.injected_restarts, 1);
  EXPECT_EQ(result.metrics.per_spec[0].restarts, 1);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
  const auto faults = result.trace.EventsOfKind(TraceKind::kFault);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].tick, 3);
  EXPECT_TRUE(result.audit.ok()) << result.audit.DebugString();
}

TEST(FaultTest, AbortFaultSkippedForEarlyReleaseProtocol) {
  TransactionSet set = MakeSet(
      {{.name = "T", .body = {Write(0, 1), Compute(2)}}});
  FaultConfig config;
  config.faults.push_back(OneShot(FaultKind::kAbort, 0, 1));
  const SimResult result = RunFaulty(set, ProtocolKind::kCcp, 20, config);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.metrics.faults.injected_aborts, 0);
  EXPECT_EQ(result.metrics.faults.skipped_aborts, 1);
  EXPECT_EQ(result.metrics.per_spec[0].restarts, 0);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
}

TEST(FaultTest, OverrunDelaysCommit) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Compute(3)}}});
  FaultSpec fault = OneShot(FaultKind::kOverrun, 0, 1);
  fault.extra = 2;
  FaultConfig config;
  config.faults.push_back(fault);
  const SimResult result = RunFaulty(set, ProtocolKind::kPcpDa, 10, config);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.metrics.faults.overruns, 1);
  EXPECT_EQ(result.metrics.faults.overrun_ticks, 2);
  EXPECT_EQ(CommitTime(result, 0, 0), 5);  // 3 nominal + 2 injected
}

// --- Arrival faults -------------------------------------------------------

TEST(FaultTest, DelayFaultDefersTheRelease) {
  TransactionSet set =
      MakeSet({{.name = "T", .period = 10, .body = {Compute(1)}}});
  FaultSpec fault = OneShot(FaultKind::kDelayArrival, 0, 0);
  fault.extra = 3;
  FaultConfig config;
  config.faults.push_back(fault);
  const SimResult result = RunFaulty(set, ProtocolKind::kPcpDa, 10, config);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.metrics.faults.delayed_arrivals, 1);
  EXPECT_GE(result.metrics.faults.delay_ticks, 1);
  EXPECT_LE(result.metrics.faults.delay_ticks, 3);
  const auto arrivals = result.trace.EventsOfKind(TraceKind::kArrival);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0].tick, result.metrics.faults.delay_ticks);
}

TEST(FaultTest, BurstFaultInjectsExtraReleases) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Compute(1)}}});
  FaultSpec fault = OneShot(FaultKind::kBurstArrival, 0, 0);
  fault.count = 2;
  FaultConfig config;
  config.faults.push_back(fault);
  const SimResult result = RunFaulty(set, ProtocolKind::kPcpDa, 10, config);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.metrics.faults.burst_arrivals, 2);
  EXPECT_EQ(result.metrics.per_spec[0].released, 3);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 3);
  EXPECT_TRUE(result.audit.ok()) << result.audit.DebugString();
}

TEST(FaultTest, SameSeedReplaysIdentically) {
  Rng workload_rng(11);
  auto set = GenerateWorkload(WorkloadParams{.num_transactions = 4},
                              workload_rng);
  ASSERT_TRUE(set.ok());
  FaultConfig config;
  config.seed = 42;
  FaultSpec abort;
  abort.kind = FaultKind::kAbort;
  abort.probability = 0.05;
  config.faults.push_back(abort);
  FaultSpec overrun;
  overrun.kind = FaultKind::kOverrun;
  overrun.probability = 0.05;
  overrun.extra = 2;
  config.faults.push_back(overrun);

  const SimResult a = RunFaulty(*set, ProtocolKind::kPcpDa, 400, config);
  const SimResult b = RunFaulty(*set, ProtocolKind::kPcpDa, 400, config);
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  EXPECT_EQ(a.metrics.faults.injected_aborts,
            b.metrics.faults.injected_aborts);
  EXPECT_EQ(a.metrics.faults.overruns, b.metrics.faults.overruns);
  EXPECT_EQ(a.metrics.TotalCommitted(), b.metrics.TotalCommitted());
  EXPECT_EQ(a.trace.events().size(), b.trace.events().size());
  // The plan actually fired (the probabilities are high enough over 400
  // ticks that a silent no-op plan would be a bug).
  EXPECT_GT(a.metrics.faults.TotalInjected(), 0);
}

// --- Policy cleanup paths (satellite: direct kDrop / deadlock tests) ------

TEST(PolicyTest, DropReleasesLocksAndUndoesInPlaceWrites) {
  // T writes x in place at t=0, then computes past its deadline at t=2.
  TransactionSpec t{.name = "T", .body = {Write(0, 1), Compute(3)}};
  t.relative_deadline = 2;
  TransactionSet set = MakeSet({t});
  auto protocol = MakeProtocol(ProtocolKind::kTwoPlPi);
  SimulatorOptions options;
  options.horizon = 8;
  options.miss_policy = DeadlineMissPolicy::kDrop;
  options.audit = true;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.metrics.per_spec[0].dropped, 1);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 0);
  // The drop released the write lock and restored the pre-image.
  EXPECT_EQ(sim.locks().lock_count(), 0u);
  EXPECT_EQ(sim.database().Read(0).writer, kInvalidJob);
  EXPECT_TRUE(result.audit.ok()) << result.audit.DebugString();
}

TEST(PolicyTest, DeadlockVictimRestartsWithLocksReleased) {
  // Crossed write/write order under 2PL-PI: TL locks x then wants y,
  // TH locks y then wants x.
  TransactionSet set = MakeSet({
      {.name = "TH", .offset = 1, .body = {Write(1, 1), Write(0, 1)}},
      {.name = "TL",
       .body = {Write(0, 1), Compute(2), Write(1, 1)}},
  });
  auto protocol = MakeProtocol(ProtocolKind::kTwoPlPi);
  SimulatorOptions options;
  options.horizon = 30;
  options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
  options.audit = true;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.metrics.deadlocks, 1);
  EXPECT_FALSE(result.metrics.halted_on_deadlock);
  // TL is the victim: restarted once, then both commit.
  EXPECT_EQ(result.metrics.per_spec[1].restarts, 1);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
  EXPECT_EQ(result.metrics.per_spec[1].committed, 1);
  EXPECT_EQ(sim.locks().lock_count(), 0u);
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_TRUE(result.audit.ok()) << result.audit.DebugString();
}

// --- The auditor itself ---------------------------------------------------

/// RW-PCP with a lobotomized ceiling report: scheduling still works (the
/// locking conditions recompute Sysceil internally) but CurrentCeiling()
/// lies, which the sysceil check must catch.
class BrokenCeilingRwPcp : public RwPcp {
 public:
  const char* name() const override { return "RW-PCP-broken"; }
  Priority CurrentCeiling() const override { return Priority::Dummy(); }
};

TEST(AuditorTest, CatchesBrokenCeilingProtocol) {
  TransactionSet set = MakeSet(
      {{.name = "T", .body = {Write(0, 1), Compute(2)}}});
  BrokenCeilingRwPcp protocol;
  const SimResult result = RunWith(set, &protocol, 10);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  ASSERT_FALSE(result.audit.ok());
  EXPECT_EQ(result.audit.violations.front().check, "sysceil");
  EXPECT_FALSE(
      result.trace.EventsOfKind(TraceKind::kAuditViolation).empty());
}

TEST(AuditorTest, PaperExamplesAuditCleanUnderAllProtocols) {
  for (const PaperExample& example :
       {Example1(), Example3(), Example4(), Example5()}) {
    for (ProtocolKind kind : AllProtocolKinds()) {
      const SimResult result =
          RunWith(example.set, kind, example.horizon,
                  DeadlockPolicy::kAbortLowestPriority);
      EXPECT_TRUE(result.status.ok())
          << example.name << " under " << ToString(kind) << ": "
          << result.status.ToString() << "\n"
          << result.audit.DebugString();
      EXPECT_GT(result.audit.ticks_audited, 0);
    }
  }
}

TEST(AuditorTest, FaultStormStaysCleanAndSerializable) {
  Rng workload_rng(5);
  auto set = GenerateWorkload(
      WorkloadParams{.num_transactions = 6, .total_utilization = 0.7},
      workload_rng);
  ASSERT_TRUE(set.ok());
  FaultConfig config;
  config.seed = 9;
  FaultSpec abort;
  abort.kind = FaultKind::kAbort;
  abort.probability = 0.03;
  config.faults.push_back(abort);
  FaultSpec overrun;
  overrun.kind = FaultKind::kOverrun;
  overrun.probability = 0.03;
  overrun.extra = 3;
  config.faults.push_back(overrun);
  FaultSpec delay;
  delay.kind = FaultKind::kDelayArrival;
  delay.probability = 0.1;
  delay.extra = 5;
  config.faults.push_back(delay);

  for (ProtocolKind kind : AllProtocolKinds()) {
    const SimResult result =
        RunFaulty(*set, kind, 600, config,
                  DeadlockPolicy::kAbortLowestPriority);
    ASSERT_TRUE(result.status.ok())
        << ToString(kind) << ": " << result.status.ToString() << "\n"
        << result.audit.DebugString();
    EXPECT_TRUE(IsSerializable(result.history)) << ToString(kind);
    EXPECT_GT(result.metrics.TotalCommitted(), 0) << ToString(kind);
  }
}

// --- Scenario DSL ---------------------------------------------------------

constexpr char kFaultyScenario[] = R"(
scenario demo
horizon 40
priority as-listed
txn T1 period=20
  read x 2
end
txn T2
  write x 1
  compute 2
end
faults seed=7
  abort T2 at=3
  overrun T1 by=2 prob=0.25
  delay * upto=4 prob=0.1
  burst T1 count=2 at=12
end
)";

TEST(ScenarioFaultTest, ParsesFaultsBlock) {
  auto scenario = ParseScenario(kFaultyScenario);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const FaultConfig& faults = scenario->faults;
  EXPECT_EQ(faults.seed, 7u);
  ASSERT_EQ(faults.faults.size(), 4u);
  EXPECT_EQ(faults.faults[0].kind, FaultKind::kAbort);
  EXPECT_EQ(faults.faults[0].spec, 1);  // resolved to T2
  EXPECT_EQ(faults.faults[0].at, 3);
  EXPECT_EQ(faults.faults[1].kind, FaultKind::kOverrun);
  EXPECT_EQ(faults.faults[1].spec, 0);
  EXPECT_EQ(faults.faults[1].extra, 2);
  EXPECT_DOUBLE_EQ(faults.faults[1].probability, 0.25);
  EXPECT_EQ(faults.faults[2].spec, kInvalidSpec);
  EXPECT_EQ(faults.faults[3].kind, FaultKind::kBurstArrival);
  EXPECT_EQ(faults.faults[3].count, 2);
}

TEST(ScenarioFaultTest, RoundTripsThroughFormat) {
  auto scenario = ParseScenario(kFaultyScenario);
  ASSERT_TRUE(scenario.ok());
  const std::string text = FormatScenario(*scenario);
  auto again = ParseScenario(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  ASSERT_EQ(again->faults.faults.size(), scenario->faults.faults.size());
  EXPECT_EQ(again->faults.seed, scenario->faults.seed);
  for (std::size_t i = 0; i < scenario->faults.faults.size(); ++i) {
    const FaultSpec& a = scenario->faults.faults[i];
    const FaultSpec& b = again->faults.faults[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.spec, b.spec) << i;
    EXPECT_EQ(a.at, b.at) << i;
    EXPECT_DOUBLE_EQ(a.probability, b.probability) << i;
    EXPECT_EQ(a.extra, b.extra) << i;
    EXPECT_EQ(a.count, b.count) << i;
  }
}

TEST(ScenarioFaultTest, ParsedPlanDrivesTheSimulator) {
  auto scenario = ParseScenario(kFaultyScenario);
  ASSERT_TRUE(scenario.ok());
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = scenario->horizon;
  options.audit = true;
  options.faults = scenario->faults;
  Simulator sim(&scenario->set, protocol.get(), options);
  const SimResult result = sim.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // The one-shot abort of T2 must have fired.
  EXPECT_EQ(result.metrics.faults.injected_aborts, 1);
  EXPECT_EQ(result.metrics.faults.burst_arrivals, 2);
  EXPECT_TRUE(result.audit.ok()) << result.audit.DebugString();
}

TEST(ScenarioFaultTest, RejectsUnknownTargetAndBadBlocks) {
  EXPECT_FALSE(ParseScenario("txn T\n compute 1\nend\n"
                             "faults\n abort nosuch at=1\nend\n")
                   .ok());
  EXPECT_FALSE(ParseScenario("txn T\n compute 1\nend\n"
                             "faults\n abort T at=1 prob=0.5\nend\n")
                   .ok());
  EXPECT_FALSE(ParseScenario("txn T\n compute 1\nend\n"
                             "faults\n explode T at=1\nend\n")
                   .ok());
  EXPECT_FALSE(ParseScenario("txn T\n compute 1\nend\n"
                             "faults\n abort T at=1\n")
                   .ok());
  EXPECT_FALSE(ParseScenario("txn T\n compute 1\nend\n"
                             "faults\nend\nfaults\nend\n")
                   .ok());
}

}  // namespace
}  // namespace pcpda
