// Randomized property tests: the paper's theorems, checked on generated
// workloads across protocols. Parameterized over (seed, utilization,
// write fraction) sweeps.

#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "analysis/blocking.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/serialization_order.h"
#include "history/replay_checker.h"
#include "history/serialization_graph.h"
#include "test_util.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

constexpr Tick kHorizon = 2000;

struct SweepParam {
  std::uint64_t seed;
  double utilization;
  double write_fraction;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  return StrFormat("seed%llu_u%02d_w%02d",
                   static_cast<unsigned long long>(info.param.seed),
                   static_cast<int>(info.param.utilization * 100),
                   static_cast<int>(info.param.write_fraction * 100));
}

class ProtocolPropertyTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  TransactionSet Generate() {
    const SweepParam& p = GetParam();
    Rng rng(p.seed);
    WorkloadParams params;
    params.num_transactions = 8;
    params.num_items = 12;
    params.total_utilization = p.utilization;
    params.min_period = 30;
    params.max_period = 400;
    params.write_fraction = p.write_fraction;
    auto set = GenerateWorkload(params, rng);
    EXPECT_TRUE(set.ok()) << set.status().ToString();
    return std::move(set).value();
  }

  /// Distinct lower-base-priority blocker jobs per blocked job.
  static std::map<JobId, std::set<JobId>> LowerPriorityBlockers(
      const TransactionSet& set, const SimResult& result) {
    std::map<JobId, std::set<JobId>> blockers;
    std::map<JobId, SpecId> spec_of;
    for (const TraceEvent& e : result.trace.events()) {
      if (e.kind == TraceKind::kArrival) spec_of[e.job] = e.spec;
    }
    for (const TickRecord& record : result.trace.ticks()) {
      for (const BlockedSample& sample : record.blocked) {
        for (JobId blocker : sample.blockers) {
          auto it = spec_of.find(blocker);
          if (it == spec_of.end()) continue;
          if (set.priority(it->second) < set.priority(sample.spec)) {
            blockers[sample.job].insert(blocker);
          }
        }
      }
    }
    return blockers;
  }

  static void ExpectEngineConservation(const TransactionSet& set,
                                       const SimResult& result) {
    // CPU conservation: busy + idle == horizon.
    Tick busy = 0;
    for (const auto& m : result.metrics.per_spec) busy += m.busy_ticks;
    EXPECT_EQ(busy + result.metrics.idle_ticks, result.metrics.horizon);
    // Lifecycle conservation.
    for (SpecId i = 0; i < set.size(); ++i) {
      const auto& m = result.metrics.per_spec[static_cast<std::size_t>(i)];
      EXPECT_LE(m.committed + m.dropped, m.released);
      EXPECT_GE(m.released, 0);
    }
  }
};

TEST_P(ProtocolPropertyTest, PcpDaTheorems) {
  const TransactionSet set = Generate();
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, kHorizon);
  ASSERT_TRUE(result.status.ok());

  // Theorem 2: deadlock freedom.
  EXPECT_FALSE(result.deadlock_detected);
  // No-restart design goal.
  EXPECT_EQ(result.metrics.TotalRestarts(), 0);
  // Theorem 3: serializability.
  EXPECT_TRUE(IsSerializable(result.history));
  // Lemma 9 / Case 1: a committed transaction never had write-read
  // conflicts with executing ones (readers commit first).
  EXPECT_TRUE(FindCommitOrderViolations(result.history).empty());
  ExpectEngineConservation(set, result);

  // Theorem 1 (single blocking), in the paper's schedulable setting.
  if (result.metrics.AllDeadlinesMet()) {
    for (const auto& [job, blockers] : LowerPriorityBlockers(set, result)) {
      EXPECT_LE(blockers.size(), 1u)
          << "job " << job << " blocked by " << blockers.size()
          << " distinct lower-priority jobs";
    }
  }
}

TEST_P(ProtocolPropertyTest, PcpDaBlockingWithinAnalysisBound) {
  const TransactionSet set = Generate();
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, kHorizon);
  if (!result.metrics.AllDeadlinesMet()) GTEST_SKIP() << "overloaded run";
  const BlockingAnalysis analysis =
      ComputeBlocking(set, ProtocolKind::kPcpDa);
  for (SpecId i = 0; i < set.size(); ++i) {
    EXPECT_LE(result.metrics.per_spec[static_cast<std::size_t>(i)]
                  .max_effective_blocking,
              analysis.B(i))
        << set.spec(i).name << " exceeded its Section-9 bound";
  }
}

TEST_P(ProtocolPropertyTest, RwPcpProperties) {
  const TransactionSet set = Generate();
  const SimResult result = RunWith(set, ProtocolKind::kRwPcp, kHorizon);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_EQ(result.metrics.TotalRestarts(), 0);
  EXPECT_TRUE(IsSerializable(result.history));
  ExpectEngineConservation(set, result);
  if (result.metrics.AllDeadlinesMet()) {
    for (const auto& [job, blockers] : LowerPriorityBlockers(set, result)) {
      EXPECT_LE(blockers.size(), 1u);
    }
    const BlockingAnalysis analysis =
        ComputeBlocking(set, ProtocolKind::kRwPcp);
    for (SpecId i = 0; i < set.size(); ++i) {
      EXPECT_LE(result.metrics.per_spec[static_cast<std::size_t>(i)]
                    .max_effective_blocking,
                analysis.B(i));
    }
  }
}

TEST_P(ProtocolPropertyTest, CcpProperties) {
  const TransactionSet set = Generate();
  const SimResult result = RunWith(set, ProtocolKind::kCcp, kHorizon);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_EQ(result.metrics.TotalRestarts(), 0);
  EXPECT_TRUE(IsSerializable(result.history));
  ExpectEngineConservation(set, result);
}

TEST_P(ProtocolPropertyTest, OpcpProperties) {
  const TransactionSet set = Generate();
  const SimResult result = RunWith(set, ProtocolKind::kOpcp, kHorizon);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_EQ(result.metrics.TotalRestarts(), 0);
  EXPECT_TRUE(IsSerializable(result.history));
  ExpectEngineConservation(set, result);
}

TEST_P(ProtocolPropertyTest, TwoPlHpProperties) {
  const TransactionSet set = Generate();
  const SimResult result = RunWith(set, ProtocolKind::kTwoPlHp, kHorizon);
  ASSERT_TRUE(result.status.ok());
  // HP is deadlock-free: waits only ever point at higher priorities.
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_TRUE(IsSerializable(result.history));
  ExpectEngineConservation(set, result);
}

TEST_P(ProtocolPropertyTest, TwoPlPiSerializableWithAbortRecovery) {
  const TransactionSet set = Generate();
  const SimResult result =
      RunWith(set, ProtocolKind::kTwoPlPi, kHorizon,
              DeadlockPolicy::kAbortLowestPriority);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(IsSerializable(result.history));
  ExpectEngineConservation(set, result);
}

TEST_P(ProtocolPropertyTest, PcpDaAvoidsBlockingRwPcpSuffers) {
  // The paper's comparative claim, in aggregate: blocking events under
  // PCP-DA never exceed RW-PCP's on the same workload (schedules diverge,
  // so we compare the episode counts, which the paper's argument makes
  // one-sided).
  const TransactionSet set = Generate();
  const SimResult da = RunWith(set, ProtocolKind::kPcpDa, kHorizon);
  const SimResult rw = RunWith(set, ProtocolKind::kRwPcp, kHorizon);
  if (!da.metrics.AllDeadlinesMet() || !rw.metrics.AllDeadlinesMet()) {
    GTEST_SKIP() << "overloaded run";
  }
  std::int64_t da_blocks = 0;
  std::int64_t rw_blocks = 0;
  for (SpecId i = 0; i < set.size(); ++i) {
    da_blocks += da.metrics.per_spec[static_cast<std::size_t>(i)]
                     .ceiling_blocks +
                 da.metrics.per_spec[static_cast<std::size_t>(i)]
                     .conflict_blocks;
    rw_blocks += rw.metrics.per_spec[static_cast<std::size_t>(i)]
                     .ceiling_blocks +
                 rw.metrics.per_spec[static_cast<std::size_t>(i)]
                     .conflict_blocks;
  }
  EXPECT_LE(da_blocks, rw_blocks);
}


TEST_P(ProtocolPropertyTest, OccBcProperties) {
  const TransactionSet set = Generate();
  const SimResult result = RunWith(set, ProtocolKind::kOccBc, kHorizon);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_TRUE(IsSerializable(result.history));
  // Optimistic execution never blocks.
  for (const auto& m : result.metrics.per_spec) {
    EXPECT_EQ(m.blocked_ticks, 0);
  }
  ExpectEngineConservation(set, result);
}

TEST_P(ProtocolPropertyTest, OccDaProperties) {
  const TransactionSet set = Generate();
  const SimResult bc = RunWith(set, ProtocolKind::kOccBc, kHorizon);
  const SimResult da = RunWith(set, ProtocolKind::kOccDa, kHorizon);
  ASSERT_TRUE(da.status.ok());
  EXPECT_FALSE(da.deadlock_detected);
  EXPECT_TRUE(IsSerializable(da.history));
  ExpectEngineConservation(set, da);
  // Dynamic adjustment of serialization order: never MORE restarts than
  // broadcast commit on the same workload.
  EXPECT_LE(da.metrics.TotalRestarts(), bc.metrics.TotalRestarts());
}

TEST_P(ProtocolPropertyTest, SerialWitnessReplaysForEveryProtocol) {
  // The strongest end-to-end check: every read of every committed
  // transaction must match a serial re-execution in the witness order.
  const TransactionSet set = Generate();
  for (ProtocolKind kind : AllProtocolKinds()) {
    const SimResult result =
        RunWith(set, kind, kHorizon, DeadlockPolicy::kAbortLowestPriority);
    const auto replay = ReplaySerialWitness(result.history,
                                            set.item_count());
    EXPECT_TRUE(replay.ok())
        << ToString(kind) << ": "
        << (replay.serializable && !replay.mismatches.empty()
                ? replay.mismatches[0].DebugString()
                : std::string("not serializable"));
  }
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> params;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (double u : {0.3, 0.6, 0.85}) {
      for (double w : {0.1, 0.4}) {
        params.push_back({seed, u, w});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolPropertyTest,
                         ::testing::ValuesIn(SweepParams()), ParamName);

}  // namespace
}  // namespace pcpda
