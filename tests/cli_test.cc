// Tests for the strict CLI/env numeric parsing (src/common/parse.*) and
// regression coverage for the example binaries: a typo'd numeric flag
// used to be silently std::atoi'd to 0 and the run "succeeded" with a
// nonsense configuration; now every such flag fails loudly with exit
// code 2. The spawned-binary cases use the real executables under
// PCPDA_BINARY_DIR (set by tests/CMakeLists.txt).

#include "common/parse.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace pcpda {
namespace {

// --- ParseInt64 / ParseUInt64 / ParseDouble / ParseTick ------------------

TEST(ParseIntTest, AcceptsPlainAndSignedIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("+13").value(), 13);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseIntTest, RejectsGarbageSuffixesAndEmpty) {
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("10x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64(" 5").ok());
  EXPECT_FALSE(ParseInt64("5 ").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("0x10").ok());
}

TEST(ParseIntTest, RejectsOverflowAndOutOfRange) {
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
  EXPECT_FALSE(ParseInt64("5", /*min=*/10, /*max=*/20).ok());
  EXPECT_FALSE(ParseInt64("25", /*min=*/10, /*max=*/20).ok());
  EXPECT_EQ(ParseInt64("15", 10, 20).value(), 15);
}

TEST(ParseUIntTest, RejectsNegativeInsteadOfWrapping) {
  // strtoull would silently wrap "-1" to UINT64_MAX.
  EXPECT_FALSE(ParseUInt64("-1").ok());
  EXPECT_EQ(ParseUInt64("18446744073709551615").value(),
            18446744073709551615ull);
  EXPECT_FALSE(ParseUInt64("18446744073709551616").ok());
}

TEST(ParseDoubleTest, AcceptsDecimalsRejectsGarbageAndNonFinite) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5", 0.0, 1.0).value(), 0.5);
  EXPECT_FALSE(ParseDouble("half", 0.0, 1.0).ok());
  EXPECT_FALSE(ParseDouble("0.5x", 0.0, 1.0).ok());
  EXPECT_FALSE(ParseDouble("1.5", 0.0, 1.0).ok());
  EXPECT_FALSE(ParseDouble("nan", 0.0, 1.0).ok());
  EXPECT_FALSE(ParseDouble("inf", 0.0, 1e308).ok());
}

TEST(ParseTickTest, DefaultsRejectNegativeTicks) {
  EXPECT_EQ(ParseTick("3000").value(), 3000);
  EXPECT_FALSE(ParseTick("-1").ok());
  EXPECT_FALSE(ParseTick("10h").ok());
}

// --- JobsFromEnv ---------------------------------------------------------

class JobsFromEnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("PCPDA_TEST_JOBS"); }
};

TEST_F(JobsFromEnvTest, UnsetYieldsFallback) {
  unsetenv("PCPDA_TEST_JOBS");
  EXPECT_EQ(JobsFromEnv("PCPDA_TEST_JOBS", 4), 4);
}

TEST_F(JobsFromEnvTest, InRangeValueIsUsedOutOfRangeFallsBack) {
  setenv("PCPDA_TEST_JOBS", "8", 1);
  EXPECT_EQ(JobsFromEnv("PCPDA_TEST_JOBS", 1), 8);
  setenv("PCPDA_TEST_JOBS", "1024", 1);
  EXPECT_EQ(JobsFromEnv("PCPDA_TEST_JOBS", 1), 1024);
  // Out of the sane [1, 1024] range warns and degrades to the fallback.
  setenv("PCPDA_TEST_JOBS", "0", 1);
  EXPECT_EQ(JobsFromEnv("PCPDA_TEST_JOBS", 2), 2);
  setenv("PCPDA_TEST_JOBS", "999999", 1);
  EXPECT_EQ(JobsFromEnv("PCPDA_TEST_JOBS", 2), 2);
}

TEST_F(JobsFromEnvTest, GarbageWarnsAndFallsBack) {
  // PCPDA_JOBS=abc used to be atoi'd to 0 workers; now it degrades to
  // the fallback (the warning itself goes to stderr).
  setenv("PCPDA_TEST_JOBS", "abc", 1);
  EXPECT_EQ(JobsFromEnv("PCPDA_TEST_JOBS", 3), 3);
  setenv("PCPDA_TEST_JOBS", "-2", 1);
  EXPECT_EQ(JobsFromEnv("PCPDA_TEST_JOBS", 3), 3);
}

// --- spawned example binaries: bad numeric flags exit 2 ------------------

#ifdef PCPDA_BINARY_DIR

int RunCli(const std::string& command) {
  const std::string full = std::string(PCPDA_BINARY_DIR "/examples/") +
                           command + " >/dev/null 2>&1";
  const int raw = std::system(full.c_str());
  return WEXITSTATUS(raw);
}

TEST(CliRegressionTest, BatchRejectsNonNumericJobs) {
  EXPECT_EQ(RunCli("pcpda_batch --dir=. --jobs=abc"), 2);
  EXPECT_EQ(RunCli("pcpda_batch --dir=. --jobs=0"), 2);
  EXPECT_EQ(RunCli("pcpda_batch --dir=. --horizon=10x"), 2);
  EXPECT_EQ(RunCli("pcpda_batch --dir=. --horizon=-5"), 2);
}

TEST(CliRegressionTest, FuzzRejectsGarbageNumerics) {
  EXPECT_EQ(RunCli("pcpda_fuzz --iters=abc"), 2);
  EXPECT_EQ(RunCli("pcpda_fuzz --seed=-1"), 2);
  EXPECT_EQ(RunCli("pcpda_fuzz --fault-prob=1.5"), 2);
  EXPECT_EQ(RunCli("pcpda_fuzz --jobs=99999999999999999999"), 2);
}

TEST(CliRegressionTest, CampaignRejectsGarbageNumerics) {
  EXPECT_EQ(RunCli("pcpda_campaign --out=/tmp/x --horizon=-5"), 2);
  EXPECT_EQ(RunCli("pcpda_campaign --out=/tmp/x --scenarios=lots"), 2);
  EXPECT_EQ(RunCli("pcpda_campaign --out=/tmp/x --shard=one"), 2);
}

TEST(CliRegressionTest, RunScenarioRejectsGarbageHorizon) {
  const std::string scn =
      std::string(PCPDA_SOURCE_DIR "/scenarios/example4.scn");
  EXPECT_EQ(RunCli("run_scenario " + scn + " PCP-DA 10x"), 2);
  EXPECT_EQ(
      RunCli("run_scenario " + scn + " PCP-DA 99999999999999999999999"),
      2);
}

#endif  // PCPDA_BINARY_DIR

}  // namespace
}  // namespace pcpda
