#include <gtest/gtest.h>

#include "core/serialization_order.h"
#include "history/history.h"
#include "history/serialization_graph.h"

namespace pcpda {
namespace {

// Handy builders for synthetic histories.
void Read(History& h, JobId job, ItemId item, Tick tick, std::int64_t seq,
          JobId from = kInvalidJob) {
  h.RecordRead(job, item, tick, seq, Value{from, 0}, false);
}
void Write(History& h, JobId job, ItemId item, Tick tick,
           std::int64_t seq) {
  h.RecordWrite(job, item, tick, seq);
}
void Commit(History& h, JobId job, Tick tick, std::int64_t seq) {
  h.RecordCommit(job, 0, 0, tick, seq);
}

// --- History bookkeeping ----------------------------------------------------

TEST(HistoryTest, PendingUntilCommit) {
  History h;
  Read(h, 1, 0, 0, 0);
  EXPECT_TRUE(h.committed().empty());
  EXPECT_EQ(h.pending_jobs(), 1u);
  Commit(h, 1, 2, 1);
  ASSERT_EQ(h.committed().size(), 1u);
  EXPECT_EQ(h.committed()[0].ops.size(), 1u);
  EXPECT_EQ(h.pending_jobs(), 0u);
}

TEST(HistoryTest, DiscardPendingDropsOps) {
  History h;
  Write(h, 1, 0, 0, 0);
  h.DiscardPending(1);
  Commit(h, 1, 2, 1);
  ASSERT_EQ(h.committed().size(), 1u);
  EXPECT_TRUE(h.committed()[0].ops.empty());
}

TEST(HistoryTest, CommitWithoutOps) {
  History h;
  Commit(h, 5, 1, 0);
  ASSERT_EQ(h.committed().size(), 1u);
  EXPECT_EQ(h.committed()[0].job, 5);
}

// --- SerializationGraph -----------------------------------------------------

TEST(SerializationGraphTest, EmptyHistorySerializable) {
  History h;
  EXPECT_TRUE(IsSerializable(h));
}

TEST(SerializationGraphTest, SingleTxnSerializable) {
  History h;
  Read(h, 1, 0, 0, 0);
  Write(h, 1, 0, 1, 1);
  Commit(h, 1, 2, 2);
  const auto graph = SerializationGraph::Build(h);
  EXPECT_EQ(graph.node_count(), 1u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_TRUE(graph.CheckAcyclic().serializable);
}

TEST(SerializationGraphTest, ReadWriteEdgeDirection) {
  History h;
  Read(h, 1, 0, 0, 0);   // r1(x)
  Write(h, 2, 0, 1, 1);  // w2(x) after
  Commit(h, 1, 2, 2);
  Commit(h, 2, 3, 3);
  const auto graph = SerializationGraph::Build(h);
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_FALSE(graph.HasEdge(2, 1));
}

TEST(SerializationGraphTest, WriteWriteEdge) {
  History h;
  Write(h, 1, 0, 0, 0);
  Write(h, 2, 0, 1, 1);
  Commit(h, 1, 2, 2);
  Commit(h, 2, 3, 3);
  const auto graph = SerializationGraph::Build(h);
  EXPECT_TRUE(graph.HasEdge(1, 2));
}

TEST(SerializationGraphTest, ReadsDoNotConflict) {
  History h;
  Read(h, 1, 0, 0, 0);
  Read(h, 2, 0, 1, 1);
  Commit(h, 1, 2, 2);
  Commit(h, 2, 3, 3);
  const auto graph = SerializationGraph::Build(h);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(SerializationGraphTest, OwnReadsExcluded) {
  History h;
  h.RecordRead(1, 0, 1, 1, Value{1, 0}, /*own_read=*/true);
  Write(h, 2, 0, 0, 0);
  Commit(h, 2, 2, 2);
  Commit(h, 1, 3, 3);
  const auto graph = SerializationGraph::Build(h);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(SerializationGraphTest, DetectsTwoCycle) {
  History h;
  Read(h, 1, 0, 0, 0);   // r1(x)
  Read(h, 2, 1, 1, 1);   // r2(y)
  Write(h, 2, 0, 2, 2);  // w2(x): 1 -> 2
  Write(h, 1, 1, 3, 3);  // w1(y): 2 -> 1
  Commit(h, 1, 4, 4);
  Commit(h, 2, 5, 5);
  const auto result = SerializationGraph::Build(h).CheckAcyclic();
  EXPECT_FALSE(result.serializable);
  EXPECT_GE(result.cycle.size(), 2u);
}

TEST(SerializationGraphTest, SerialOrderWitnessIsTopological) {
  History h;
  Read(h, 1, 0, 0, 0);
  Write(h, 2, 0, 1, 1);  // 1 -> 2
  Read(h, 3, 1, 2, 2);
  Write(h, 1, 1, 3, 3);  // 3 -> 1
  Commit(h, 1, 4, 4);
  Commit(h, 2, 5, 5);
  Commit(h, 3, 6, 6);
  const auto graph = SerializationGraph::Build(h);
  const auto result = graph.CheckAcyclic();
  ASSERT_TRUE(result.serializable);
  ASSERT_EQ(result.serial_order.size(), 3u);
  // Every edge goes forward in the witness order.
  auto pos = [&](JobId j) {
    for (std::size_t i = 0; i < result.serial_order.size(); ++i) {
      if (result.serial_order[i] == j) return i;
    }
    return std::size_t{999};
  };
  for (JobId from : graph.nodes()) {
    for (JobId to : graph.successors(from)) {
      EXPECT_LT(pos(from), pos(to));
    }
  }
}

TEST(SerializationGraphTest, ThreeCycleDetected) {
  History h;
  Read(h, 1, 0, 0, 0);
  Write(h, 2, 0, 1, 1);  // 1->2
  Read(h, 2, 1, 2, 2);
  Write(h, 3, 1, 3, 3);  // 2->3
  Read(h, 3, 2, 4, 4);
  Write(h, 1, 2, 5, 5);  // 3->1
  Commit(h, 1, 6, 6);
  Commit(h, 2, 7, 7);
  Commit(h, 3, 8, 8);
  EXPECT_FALSE(IsSerializable(h));
}

TEST(SerializationGraphTest, TieBrokenBySeqWithinTick) {
  History h;
  Write(h, 1, 0, 5, 10);
  Write(h, 2, 0, 5, 11);  // same tick, later seq
  Commit(h, 1, 6, 12);
  Commit(h, 2, 6, 13);
  const auto graph = SerializationGraph::Build(h);
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_FALSE(graph.HasEdge(2, 1));
}

// --- Serialization-order constraints -----------------------------------------

TEST(SerializationOrderTest, DerivesReaderBeforeWriter) {
  History h;
  Read(h, 1, 0, 0, 0);
  Write(h, 2, 0, 3, 1);
  Commit(h, 1, 2, 2);
  Commit(h, 2, 4, 3);
  const auto constraints = DeriveOrderConstraints(h);
  ASSERT_EQ(constraints.size(), 1u);
  EXPECT_EQ(constraints[0].reader, 1);
  EXPECT_EQ(constraints[0].writer, 2);
  EXPECT_EQ(constraints[0].item, 0);
}

TEST(SerializationOrderTest, NoConstraintWhenWriteFirst) {
  History h;
  Write(h, 2, 0, 0, 0);
  Read(h, 1, 0, 1, 1);
  Commit(h, 2, 2, 2);
  Commit(h, 1, 3, 3);
  EXPECT_TRUE(DeriveOrderConstraints(h).empty());
}

TEST(SerializationOrderTest, ViolationWhenReaderCommitsLate) {
  History h;
  Read(h, 1, 0, 0, 0);   // reader reads first...
  Write(h, 2, 0, 1, 1);  // writer overwrites...
  Commit(h, 2, 2, 2);    // and commits BEFORE the reader
  Commit(h, 1, 3, 3);
  const auto violations = FindCommitOrderViolations(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].reader, 1);
}

TEST(SerializationOrderTest, HonoredWhenReaderCommitsFirst) {
  History h;
  Read(h, 1, 0, 0, 0);
  Commit(h, 1, 2, 1);
  Write(h, 2, 0, 3, 2);
  Commit(h, 2, 4, 3);
  EXPECT_TRUE(FindCommitOrderViolations(h).empty());
}

TEST(SerializationOrderTest, OwnReadsCreateNoConstraints) {
  History h;
  h.RecordRead(1, 0, 0, 0, Value{1, 0}, /*own_read=*/true);
  Write(h, 2, 0, 1, 1);
  Commit(h, 2, 2, 2);
  Commit(h, 1, 3, 3);
  EXPECT_TRUE(DeriveOrderConstraints(h).empty());
}

}  // namespace
}  // namespace pcpda
