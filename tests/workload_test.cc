#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/ceilings.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace pcpda {
namespace {

// --- UUniFast -----------------------------------------------------------

TEST(UUniFastTest, SumsToTotal) {
  Rng rng(1);
  for (int n : {1, 2, 5, 20}) {
    const auto u = UUniFast(n, 0.7, rng);
    ASSERT_EQ(u.size(), static_cast<std::size_t>(n));
    double sum = 0;
    for (double v : u) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 0.7 + 1e-9);
      sum += v;
    }
    EXPECT_NEAR(sum, 0.7, 1e-9);
  }
}

TEST(UUniFastTest, SingleTransactionGetsEverything) {
  Rng rng(2);
  const auto u = UUniFast(1, 0.5, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.5);
}

// --- SampleUtilizations (campaign generator distributions) -----------------

TEST(DistributionTest, NamesRoundTripThroughParser) {
  for (UtilDistribution distribution :
       {UtilDistribution::kUUniFast, UtilDistribution::kRandFixedSum,
        UtilDistribution::kExponential, UtilDistribution::kBimodal}) {
    const auto parsed = UtilDistributionByName(ToString(distribution));
    ASSERT_TRUE(parsed.has_value()) << ToString(distribution);
    EXPECT_EQ(*parsed, distribution);
  }
  EXPECT_FALSE(UtilDistributionByName("gaussian").has_value());
}

TEST(DistributionTest, BoundedShapesSumToTotalWithinPerTaskBounds) {
  for (UtilDistribution distribution :
       {UtilDistribution::kRandFixedSum, UtilDistribution::kExponential,
        UtilDistribution::kBimodal}) {
    WorkloadParams params;
    params.distribution = distribution;
    params.min_task_utilization = 0.01;
    params.max_task_utilization = 0.5;
    Rng rng(7);
    for (int round = 0; round < 50; ++round) {
      const auto u = SampleUtilizations(8, 0.6, params, rng);
      ASSERT_EQ(u.size(), 8u);
      double sum = 0.0;
      for (double v : u) {
        EXPECT_GE(v, params.min_task_utilization - 1e-9)
            << ToString(distribution);
        EXPECT_LE(v, params.max_task_utilization + 1e-9)
            << ToString(distribution);
        sum += v;
      }
      EXPECT_NEAR(sum, 0.6, 1e-6)
          << ToString(distribution) << " round " << round;
    }
  }
}

TEST(DistributionTest, SamplesAreDeterministicPerSeed) {
  WorkloadParams params;
  params.distribution = UtilDistribution::kBimodal;
  Rng a(11);
  Rng b(11);
  EXPECT_EQ(SampleUtilizations(8, 0.6, params, a),
            SampleUtilizations(8, 0.6, params, b));
}

TEST(GeneratorTest, RejectsInfeasibleBoundsForBoundedShapes) {
  Rng rng(5);
  WorkloadParams params;
  params.distribution = UtilDistribution::kRandFixedSum;
  // 8 tasks x min 0.2 = 1.6 > total 0.6: no assignment can exist.
  params.min_task_utilization = 0.2;
  auto result = GenerateWorkload(params, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("infeasible"),
            std::string::npos)
      << result.status().ToString();

  // Inverted bounds are a config error, not a sampling problem.
  params = {};
  params.distribution = UtilDistribution::kExponential;
  params.min_task_utilization = 0.8;
  params.max_task_utilization = 0.2;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());

  // The same bounds are ignored (valid) under plain UUniFast.
  params.distribution = UtilDistribution::kUUniFast;
  EXPECT_TRUE(GenerateWorkload(params, rng).ok());
}

TEST(GeneratorTest, BoundedShapesGenerateValidWorkloads) {
  for (UtilDistribution distribution :
       {UtilDistribution::kRandFixedSum, UtilDistribution::kExponential,
        UtilDistribution::kBimodal}) {
    Rng rng(6);
    WorkloadParams params;
    params.distribution = distribution;
    auto set = GenerateWorkload(params, rng);
    ASSERT_TRUE(set.ok())
        << ToString(distribution) << ": " << set.status().ToString();
    EXPECT_EQ(set->size(), params.num_transactions);
  }
}

// --- GenerateWorkload ------------------------------------------------------

TEST(GeneratorTest, ValidatesParams) {
  Rng rng(3);
  WorkloadParams params;
  params.num_transactions = 0;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());
  params = {};
  params.num_items = 0;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());
  params = {};
  params.total_utilization = 0.0;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());
  params = {};
  params.total_utilization = 1.5;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());
  params = {};
  params.min_period = 100;
  params.max_period = 50;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());
  params = {};
  params.min_ops = 5;
  params.max_ops = 2;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());
}

TEST(GeneratorTest, ValidationErrorsAreDescriptive) {
  Rng rng(3);
  WorkloadParams params;
  // Transactions draw distinct items, so max_ops can't exceed num_items.
  params.num_items = 3;
  params.min_ops = 1;
  params.max_ops = 5;
  auto result = GenerateWorkload(params, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("max_ops 5 exceeds num_items 3"),
            std::string::npos)
      << result.status().ToString();

  params = {};
  params.min_period = 80;
  params.max_period = 40;
  result = GenerateWorkload(params, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("min_period 80"),
            std::string::npos)
      << result.status().ToString();

  params = {};
  params.total_utilization = -0.5;
  result = GenerateWorkload(params, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("total_utilization"),
            std::string::npos)
      << result.status().ToString();

  params = {};
  params.write_fraction = 1.25;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());
  params.write_fraction = -0.1;
  EXPECT_FALSE(GenerateWorkload(params, rng).ok());
}

TEST(GeneratorTest, ProducesRequestedShape) {
  Rng rng(4);
  WorkloadParams params;
  params.num_transactions = 10;
  params.num_items = 15;
  const auto set = GenerateWorkload(params, rng);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 10);
  EXPECT_LE(set->item_count(), 15);
  for (SpecId i = 0; i < set->size(); ++i) {
    const TransactionSpec& spec = set->spec(i);
    EXPECT_GE(spec.period, params.min_period);
    EXPECT_LE(spec.period, params.max_period);
    EXPECT_GE(spec.offset, 0);
    EXPECT_LT(spec.offset, spec.period);
    const auto ops = spec.AccessSet().size();
    EXPECT_GE(static_cast<int>(ops), 1);
    EXPECT_LE(static_cast<int>(ops), params.max_ops);
    EXPECT_LE(spec.ExecutionTime(), spec.period);
  }
}

TEST(GeneratorTest, RateMonotonicOrder) {
  Rng rng(5);
  WorkloadParams params;
  const auto set = GenerateWorkload(params, rng);
  ASSERT_TRUE(set.ok());
  for (SpecId i = 1; i < set->size(); ++i) {
    EXPECT_LE(set->spec(i - 1).period, set->spec(i).period);
  }
}

TEST(GeneratorTest, UtilizationNearTarget) {
  Rng rng(6);
  WorkloadParams params;
  params.num_transactions = 12;
  params.total_utilization = 0.6;
  params.min_period = 100;
  params.max_period = 2000;
  const auto set = GenerateWorkload(params, rng);
  ASSERT_TRUE(set.ok());
  // Rounding and the >=1-tick-per-op floor move the total a bit.
  EXPECT_NEAR(set->Utilization(), 0.6, 0.15);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  WorkloadParams params;
  Rng a(42), b(42);
  const auto set_a = GenerateWorkload(params, a);
  const auto set_b = GenerateWorkload(params, b);
  ASSERT_TRUE(set_a.ok());
  ASSERT_TRUE(set_b.ok());
  EXPECT_EQ(set_a->DebugString(), set_b->DebugString());
  Rng c(43);
  const auto set_c = GenerateWorkload(params, c);
  ASSERT_TRUE(set_c.ok());
  EXPECT_NE(set_a->DebugString(), set_c->DebugString());
}

TEST(GeneratorTest, WriteFractionExtremes) {
  WorkloadParams params;
  params.write_fraction = 0.0;
  Rng rng(7);
  auto read_only = GenerateWorkload(params, rng);
  ASSERT_TRUE(read_only.ok());
  for (SpecId i = 0; i < read_only->size(); ++i) {
    EXPECT_TRUE(read_only->spec(i).WriteSet().empty());
  }
  params.write_fraction = 1.0;
  auto write_only = GenerateWorkload(params, rng);
  ASSERT_TRUE(write_only.ok());
  for (SpecId i = 0; i < write_only->size(); ++i) {
    EXPECT_TRUE(write_only->spec(i).ReadSet().empty());
  }
}

// --- Paper examples ---------------------------------------------------------

TEST(PaperExamplesTest, Example1Shape) {
  const PaperExample example = Example1();
  EXPECT_EQ(example.set.size(), 3);
  EXPECT_EQ(example.set.spec(0).name, "T1");
  EXPECT_EQ(example.set.spec(2).WriteSet(), (std::set<ItemId>{kItemX}));
  EXPECT_GT(example.set.priority(0), example.set.priority(2));
}

TEST(PaperExamplesTest, Example3Shape) {
  const PaperExample example = Example3();
  EXPECT_EQ(example.set.size(), 2);
  EXPECT_EQ(example.set.spec(0).period, 5);
  EXPECT_EQ(example.set.spec(0).ExecutionTime(), 2);
  EXPECT_EQ(example.set.spec(1).ExecutionTime(), 5);
}

TEST(PaperExamplesTest, Example4CeilingsMatchPaper) {
  const PaperExample example = Example4();
  const StaticCeilings ceilings(example.set);
  EXPECT_EQ(ceilings.Wceil(kItemY), example.set.priority(1));  // P2
  EXPECT_EQ(ceilings.Wceil(kItemZ), example.set.priority(2));  // P3
}

TEST(PaperExamplesTest, Example5CrossedAccess) {
  const PaperExample example = Example5();
  EXPECT_EQ(example.set.spec(0).WriteSet(), (std::set<ItemId>{kItemX}));
  EXPECT_EQ(example.set.spec(1).WriteSet(), (std::set<ItemId>{kItemY}));
  EXPECT_EQ(example.set.spec(0).ReadSet(), (std::set<ItemId>{kItemY}));
  EXPECT_EQ(example.set.spec(1).ReadSet(), (std::set<ItemId>{kItemX}));
}

}  // namespace
}  // namespace pcpda
