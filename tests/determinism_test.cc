// Golden determinism test: a full simulator run over
// scenarios/example3_faulty.scn must be byte-identical — trace events,
// per-tick schedule, metrics, history and audit verdict — for every
// protocol, run after run and engine rewrite after engine rewrite. The
// golden file was recorded from the pre-event-driven (per-tick full-scan)
// engine, so it pins the event-driven core to the exact behavior of its
// predecessor. Regenerate deliberately with
//
//   PCPDA_REGEN_GOLDEN=1 ./tests/determinism_test
//
// only after verifying that a behavior change is intended.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "plan/compiled_plan.h"
#include "protocols/factory.h"
#include "sched/simulator.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

std::string SourcePath(const char* relative) {
  return std::string(PCPDA_SOURCE_DIR "/") + relative;
}

Scenario LoadScenario() {
  auto scenario = LoadScenarioFile(SourcePath("scenarios/example3_faulty.scn"));
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  return std::move(scenario).value();
}

std::string RenderTick(const TickRecord& record) {
  std::string out = StrFormat(
      "t=%lld run=%lld spec=%d kind=%d ceil=%s",
      static_cast<long long>(record.tick),
      static_cast<long long>(record.running_job), record.running_spec,
      static_cast<int>(record.running_kind),
      record.ceiling.DebugString().c_str());
  for (const BlockedSample& blocked : record.blocked) {
    std::vector<std::string> ids;
    for (JobId id : blocked.blockers) {
      ids.push_back(StrFormat("%lld", static_cast<long long>(id)));
    }
    out += StrFormat(" blocked{job=%lld item=d%d mode=%s reason=%s by=[%s]}",
                     static_cast<long long>(blocked.job), blocked.item,
                     ToString(blocked.mode), ToString(blocked.reason),
                     Join(ids, ",").c_str());
  }
  return out;
}

/// One protocol's full run rendered as text. Everything observable lands
/// here: any engine change that perturbs the schedule shows up as a diff.
/// With a plan the run goes through the compiled path; the contract is
/// that both paths render byte-identically.
std::string RenderRun(const Scenario& scenario, ProtocolKind kind,
                      const CompiledPlan* plan = nullptr) {
  auto protocol = MakeProtocol(kind);
  SimulatorOptions options;
  options.horizon = scenario.horizon;
  options.faults = scenario.faults;
  options.audit = true;
  options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
  const SimResult result = [&] {
    if (plan != nullptr) {
      Simulator sim(*plan, protocol.get(), options);
      return sim.Run();
    }
    Simulator sim(&scenario.set, protocol.get(), options);
    return sim.Run();
  }();

  std::ostringstream out;
  out << "=== " << ToString(kind) << " ===\n";
  out << "status: " << result.status.ToString() << "\n";
  out << "audit: " << result.audit.DebugString() << "\n";
  out << "[metrics]\n" << result.metrics.DebugString(scenario.set) << "\n";
  out << "[events]\n" << result.trace.DebugString() << "\n";
  out << "[ticks]\n";
  for (const TickRecord& record : result.trace.ticks()) {
    out << RenderTick(record) << "\n";
  }
  out << "[history]\n" << result.history.DebugString() << "\n";
  return out.str();
}

std::string RenderAllProtocols(const Scenario& scenario) {
  std::ostringstream out;
  for (ProtocolKind kind : AllProtocolKinds()) {
    out << RenderRun(scenario, kind);
  }
  return out.str();
}

TEST(DeterminismTest, GoldenExample3FaultyAllProtocols) {
  const Scenario scenario = LoadScenario();
  const std::string actual = RenderAllProtocols(scenario);
  const std::string golden_path =
      SourcePath("tests/golden/example3_faulty.golden");

  if (std::getenv("PCPDA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with PCPDA_REGEN_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();

  if (actual != expected.str()) {
    // Locate the first divergence to keep the failure readable.
    const std::string& want = expected.str();
    std::size_t at = 0;
    while (at < actual.size() && at < want.size() &&
           actual[at] == want[at]) {
      ++at;
    }
    const std::size_t from = at < 120 ? 0 : at - 120;
    FAIL() << "run diverges from golden at byte " << at << "\n--- golden:\n"
           << want.substr(from, 240) << "\n--- actual:\n"
           << actual.substr(from, 240);
  }
}

// The compiled path (one CompiledPlan shared by all 8 protocols, dense
// hot-path state) must be byte-identical to the interpreted path on the
// richest scenario we have: fault plan active, auditor on, deadlock
// aborts. Any divergence in trace events, per-tick schedule, blocked
// annotations, metrics, history or audit verdict fails here.
TEST(DeterminismTest, CompiledMatchesInterpretedAllProtocols) {
  const Scenario scenario = LoadScenario();
  CompileOptions compile_options;
  compile_options.lint = false;
  auto compiled = CompiledPlan::Compile(scenario, compile_options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  for (ProtocolKind kind : AllProtocolKinds()) {
    EXPECT_EQ(RenderRun(scenario, kind),
              RenderRun(scenario, kind, &compiled.value()))
        << "compiled path diverges under " << ToString(kind);
  }
}

// And the compiled path must match the recorded golden directly (not
// just the interpreted run of this build), pinning it to the
// pre-CompiledPlan engine byte for byte.
TEST(DeterminismTest, CompiledMatchesGolden) {
  if (std::getenv("PCPDA_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden being regenerated";
  }
  const Scenario scenario = LoadScenario();
  CompileOptions compile_options;
  compile_options.lint = false;
  auto compiled = CompiledPlan::Compile(scenario, compile_options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  std::ostringstream actual;
  for (ProtocolKind kind : AllProtocolKinds()) {
    actual << RenderRun(scenario, kind, &compiled.value());
  }

  std::ifstream in(SourcePath("tests/golden/example3_faulty.golden"),
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual.str(), expected.str());
}

TEST(DeterminismTest, BackToBackRunsAreIdentical) {
  const Scenario scenario = LoadScenario();
  for (ProtocolKind kind : AllProtocolKinds()) {
    EXPECT_EQ(RenderRun(scenario, kind), RenderRun(scenario, kind))
        << "protocol " << ToString(kind) << " is not deterministic";
  }
}

}  // namespace
}  // namespace pcpda
