#include <gtest/gtest.h>

#include "test_util.h"
#include "trace/svg.h"

namespace pcpda {
namespace {

std::size_t Count(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgTest, WellFormedDocument) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  const std::string svg = RenderSvg(example.set, result.trace);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Balanced rect/line/text elements are all self-closing or simple.
  EXPECT_EQ(Count(svg, "<svg"), 1u);
}

TEST(SvgTest, OneRowLabelPerSpec) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  const std::string svg = RenderSvg(example.set, result.trace);
  for (SpecId i = 0; i < example.set.size(); ++i) {
    EXPECT_NE(svg.find(">" + example.set.spec(i).name + "<"),
              std::string::npos);
  }
}

TEST(SvgTest, ExecutionCellsMatchBusyTicks) {
  const PaperExample example = Example1();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  const std::string svg = RenderSvg(example.set, result.trace);
  Tick busy = 0;
  for (const auto& m : result.metrics.per_spec) busy += m.busy_ticks;
  // One colored rect per executed tick (blocked cells use the pattern).
  const std::size_t colored = Count(svg, "fill=\"#4e9a06\"") +
                              Count(svg, "fill=\"#c4500e\"") +
                              Count(svg, "fill=\"#3465a4\"");
  EXPECT_EQ(colored, static_cast<std::size_t>(busy));
}

TEST(SvgTest, BlockedCellsUsePattern) {
  const PaperExample example = Example3();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  const std::string svg = RenderSvg(example.set, result.trace);
  Tick blocked = 0;
  for (const auto& m : result.metrics.per_spec) blocked += m.blocked_ticks;
  EXPECT_EQ(Count(svg, "url(#blocked)"),
            static_cast<std::size_t>(blocked));
}

TEST(SvgTest, CeilingLineToggle) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  SvgOptions with;
  SvgOptions without;
  without.show_ceiling = false;
  EXPECT_NE(RenderSvg(example.set, result.trace, with).find("Max_Sysceil"),
            std::string::npos);
  EXPECT_EQ(
      RenderSvg(example.set, result.trace, without).find("Max_Sysceil"),
      std::string::npos);
}

TEST(SvgTest, TitleRendered) {
  const PaperExample example = Example1();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  SvgOptions options;
  options.title = "Figure 1";
  const std::string svg = RenderSvg(example.set, result.trace, options);
  EXPECT_NE(svg.find("Figure 1"), std::string::npos);
}

TEST(SvgTest, MissMarkerPresent) {
  const PaperExample example = Example3();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  const std::string svg = RenderSvg(example.set, result.trace);
  EXPECT_NE(svg.find("font-weight=\"bold\">x</text>"), std::string::npos);
}

}  // namespace
}  // namespace pcpda
