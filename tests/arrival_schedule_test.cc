#include <gtest/gtest.h>

#include "common/rng.h"
#include "history/serialization_graph.h"
#include "sim/arrival_schedule.h"
#include "test_util.h"

namespace pcpda {
namespace {

TransactionSet TwoSpecs() {
  TransactionSpec a{.name = "A", .period = 10, .body = {Compute(1)}};
  TransactionSpec b{.name = "B",
                    .period = 25,
                    .offset = 3,
                    .body = {Compute(2)}};
  auto set = TransactionSet::Create({a, b});
  return std::move(set).value();
}

TEST(ArrivalScheduleTest, PeriodicMatchesCalendar) {
  const TransactionSet set = TwoSpecs();
  const ArrivalSchedule schedule = ArrivalSchedule::Periodic(set, 50);
  const ArrivalCalendar calendar(&set);
  EXPECT_EQ(schedule.arrivals(), calendar.Before(50));
  EXPECT_EQ(schedule.CountFor(0), 5);
  EXPECT_EQ(schedule.CountFor(1), 2);
}

TEST(ArrivalScheduleTest, AtQueriesMatchList) {
  const TransactionSet set = TwoSpecs();
  const ArrivalSchedule schedule = ArrivalSchedule::Periodic(set, 50);
  std::size_t total = 0;
  for (Tick t = 0; t < 50; ++t) total += schedule.At(t).size();
  EXPECT_EQ(total, schedule.arrivals().size());
  EXPECT_EQ(schedule.At(3).size(), 1u);
  EXPECT_TRUE(schedule.At(4).empty());
}

TEST(ArrivalScheduleTest, SporadicRespectsMinimumInterArrival) {
  const TransactionSet set = TwoSpecs();
  Rng rng(5);
  const ArrivalSchedule schedule =
      ArrivalSchedule::Sporadic(set, 500, 0.5, rng);
  Tick previous_a = -1;
  for (const Arrival& arrival : schedule.arrivals()) {
    if (arrival.spec != 0) continue;
    if (previous_a >= 0) {
      const Tick gap = arrival.tick - previous_a;
      EXPECT_GE(gap, 10);
      EXPECT_LE(gap, 15);
    }
    previous_a = arrival.tick;
  }
  // Fewer or equal arrivals than strictly periodic.
  EXPECT_LE(schedule.CountFor(0), 50);
  EXPECT_GE(schedule.CountFor(0), 500 / 15);
}

TEST(ArrivalScheduleTest, SporadicZeroJitterIsPeriodic) {
  const TransactionSet set = TwoSpecs();
  Rng rng(5);
  const ArrivalSchedule sporadic =
      ArrivalSchedule::Sporadic(set, 100, 0.0, rng);
  const ArrivalSchedule periodic = ArrivalSchedule::Periodic(set, 100);
  EXPECT_EQ(sporadic.arrivals(), periodic.arrivals());
}

TEST(ArrivalScheduleTest, PoissonMeanRateTracksLoad) {
  TransactionSpec a{.name = "A", .period = 20, .body = {Compute(1)}};
  auto set = TransactionSet::Create({a});
  ASSERT_TRUE(set.ok());
  Rng rng(9);
  const Tick horizon = 200000;
  const ArrivalSchedule low =
      ArrivalSchedule::Poisson(*set, horizon, 0.5, rng);
  const ArrivalSchedule high =
      ArrivalSchedule::Poisson(*set, horizon, 2.0, rng);
  // Expected counts: horizon/period*load = 5000 and 20000.
  EXPECT_NEAR(low.CountFor(0), 5000, 500);
  EXPECT_NEAR(high.CountFor(0), 20000, 2000);
}

TEST(ArrivalScheduleTest, InstancesNumberedPerSpec) {
  const TransactionSet set = TwoSpecs();
  Rng rng(11);
  const ArrivalSchedule schedule =
      ArrivalSchedule::Poisson(set, 300, 1.0, rng);
  std::map<SpecId, int> expected;
  for (const Arrival& arrival : schedule.arrivals()) {
    EXPECT_EQ(arrival.instance, expected[arrival.spec]++);
  }
}

TEST(ArrivalScheduleTest, FromArrivalsValidates) {
  const TransactionSet set = TwoSpecs();
  EXPECT_TRUE(
      ArrivalSchedule::FromArrivals(set, {{0, 0, 0}, {5, 1, 0}}).ok());
  EXPECT_FALSE(
      ArrivalSchedule::FromArrivals(set, {{5, 0, 0}, {0, 1, 0}}).ok());
  EXPECT_FALSE(ArrivalSchedule::FromArrivals(set, {{-1, 0, 0}}).ok());
  EXPECT_FALSE(ArrivalSchedule::FromArrivals(set, {{0, 7, 0}}).ok());
}

TEST(ArrivalScheduleTest, FromArrivalsRenumbersInstances) {
  const TransactionSet set = TwoSpecs();
  auto schedule = ArrivalSchedule::FromArrivals(
      set, {{0, 0, 99}, {4, 0, 99}, {4, 1, 99}});
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->arrivals()[0].instance, 0);
  EXPECT_EQ(schedule->arrivals()[1].instance, 1);
  EXPECT_EQ(schedule->arrivals()[2].instance, 0);
}

// --- Calendar arrival semantics ----------------------------------------------

TransactionSet BoundarySpecs() {
  // Periodic A (offset 0), periodic B (offset 3), one-shot Once (offset 7).
  TransactionSpec a{.name = "A", .period = 10, .body = {Compute(1)}};
  TransactionSpec b{.name = "B",
                    .period = 25,
                    .offset = 3,
                    .body = {Compute(2)}};
  TransactionSpec once{
      .name = "Once", .period = 0, .offset = 7, .body = {Compute(1)}};
  auto set = TransactionSet::Create({a, b, once});
  return std::move(set).value();
}

TEST(ArrivalCalendarTest, HorizonBoundaryIsHalfOpen) {
  const TransactionSet set = BoundarySpecs();
  const ArrivalCalendar calendar(&set);
  // A releases at 0, 10, 20, ...: the release at exactly the horizon is
  // out, the one at horizon-1 is in.
  EXPECT_EQ(calendar.CountBefore(0, 10), 1);
  EXPECT_EQ(calendar.CountBefore(0, 11), 2);
  // B's offset equals the horizon: its first release has not happened yet.
  EXPECT_EQ(calendar.CountBefore(1, 3), 0);
  EXPECT_EQ(calendar.CountBefore(1, 4), 1);
  // One-shot: exactly one release ever, subject to the same boundary.
  EXPECT_EQ(calendar.CountBefore(2, 7), 0);
  EXPECT_EQ(calendar.CountBefore(2, 8), 1);
  EXPECT_EQ(calendar.CountBefore(2, 1000), 1);
  // Degenerate horizon.
  EXPECT_TRUE(calendar.Before(0).empty());
  EXPECT_EQ(calendar.CountBefore(0, 0), 0);
}

TEST(ArrivalCalendarTest, BeforeAtAndCountBeforeAgree) {
  const TransactionSet set = BoundarySpecs();
  const ArrivalCalendar calendar(&set);
  const Tick horizon = 53;
  const std::vector<Arrival> all = calendar.Before(horizon);
  std::vector<Arrival> from_at;
  for (Tick t = 0; t < horizon; ++t) {
    for (const Arrival& arrival : calendar.At(t)) from_at.push_back(arrival);
  }
  EXPECT_EQ(all, from_at);
  for (SpecId i = 0; i < set.size(); ++i) {
    int in_list = 0;
    for (const Arrival& arrival : all) {
      if (arrival.spec == i) ++in_list;
    }
    EXPECT_EQ(calendar.CountBefore(i, horizon), in_list) << "spec " << i;
  }
}

TEST(ArrivalCalendarTest, CursorMatchesBeforeAndOrdersSimultaneous) {
  // Equal periods: both specs release together every 10 ticks.
  TransactionSpec a{.name = "A", .period = 10, .body = {Compute(1)}};
  TransactionSpec b{.name = "B", .period = 10, .body = {Compute(1)}};
  auto set = TransactionSet::Create({a, b});
  ASSERT_TRUE(set.ok());
  const ArrivalCalendar calendar(&*set);
  ArrivalCalendar::Cursor cursor = calendar.MakeCursor();
  std::vector<Arrival> walked;
  for (Tick next = cursor.NextTick(); next != kNoTick && next < 35;
       next = cursor.NextTick()) {
    // PopAt on an arrival-free tick in between is a no-op.
    if (next > 0) {
      EXPECT_TRUE(cursor.PopAt(next - 1).empty());
    }
    for (const Arrival& arrival : cursor.PopAt(next)) {
      walked.push_back(arrival);
    }
  }
  EXPECT_EQ(walked, calendar.Before(35));
  // Simultaneous releases come out in spec-id (priority) order.
  ASSERT_EQ(walked.size(), 8u);
  for (std::size_t i = 0; i + 1 < walked.size(); i += 2) {
    EXPECT_EQ(walked[i].tick, walked[i + 1].tick);
    EXPECT_EQ(walked[i].spec, 0);
    EXPECT_EQ(walked[i + 1].spec, 1);
  }
}

TEST(ArrivalCalendarTest, CursorExhaustsOneShots) {
  TransactionSpec once{
      .name = "Once", .period = 0, .offset = 4, .body = {Compute(1)}};
  auto set = TransactionSet::Create({once});
  ASSERT_TRUE(set.ok());
  ArrivalCalendar::Cursor cursor = ArrivalCalendar(&*set).MakeCursor();
  EXPECT_EQ(cursor.NextTick(), 4);
  const std::vector<Arrival> due = cursor.PopAt(4);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], (Arrival{4, 0, 0}));
  EXPECT_EQ(cursor.NextTick(), kNoTick);
  EXPECT_TRUE(cursor.PopAt(5).empty());
}

// --- Simulator integration ---------------------------------------------------

TEST(ArrivalScheduleTest, SimulatorUsesOverride) {
  TransactionSpec a{.name = "A", .period = 10, .body = {Compute(2)}};
  auto set = TransactionSet::Create({a});
  ASSERT_TRUE(set.ok());
  auto schedule =
      ArrivalSchedule::FromArrivals(*set, {{2, 0, 0}, {7, 0, 0}});
  ASSERT_TRUE(schedule.ok());
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 20;
  options.arrival_schedule = &*schedule;
  Simulator sim(&*set, protocol.get(), options);
  const SimResult result = sim.Run();
  // Exactly the two trace arrivals, not the periodic calendar's two at
  // 0 and 10.
  EXPECT_EQ(result.metrics.per_spec[0].released, 2);
  const auto arrivals = result.trace.EventsOfKind(TraceKind::kArrival);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].tick, 2);
  EXPECT_EQ(arrivals[1].tick, 7);
}

TEST(ArrivalScheduleTest, OverloadedPoissonRunStaysSerializable) {
  TransactionSpec a{.name = "A", .period = 8, .body = {Read(0), Write(1)}};
  TransactionSpec b{.name = "B",
                    .period = 16,
                    .body = {Read(1), Write(0), Compute(2)}};
  auto set = TransactionSet::Create({a, b});
  ASSERT_TRUE(set.ok());
  Rng rng(3);
  const ArrivalSchedule schedule =
      ArrivalSchedule::Poisson(*set, 500, 1.5, rng);
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 500;
  options.arrival_schedule = &schedule;
  options.miss_policy = DeadlineMissPolicy::kDrop;
  Simulator sim(&*set, protocol.get(), options);
  const SimResult result = sim.Run();
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_GT(result.metrics.TotalCommitted(), 0);
}

}  // namespace
}  // namespace pcpda
