#include <gtest/gtest.h>

#include "common/rng.h"
#include "history/serialization_graph.h"
#include "sim/arrival_schedule.h"
#include "test_util.h"

namespace pcpda {
namespace {

TransactionSet TwoSpecs() {
  TransactionSpec a{.name = "A", .period = 10, .body = {Compute(1)}};
  TransactionSpec b{.name = "B",
                    .period = 25,
                    .offset = 3,
                    .body = {Compute(2)}};
  auto set = TransactionSet::Create({a, b});
  return std::move(set).value();
}

TEST(ArrivalScheduleTest, PeriodicMatchesCalendar) {
  const TransactionSet set = TwoSpecs();
  const ArrivalSchedule schedule = ArrivalSchedule::Periodic(set, 50);
  const ArrivalCalendar calendar(&set);
  EXPECT_EQ(schedule.arrivals(), calendar.Before(50));
  EXPECT_EQ(schedule.CountFor(0), 5);
  EXPECT_EQ(schedule.CountFor(1), 2);
}

TEST(ArrivalScheduleTest, AtQueriesMatchList) {
  const TransactionSet set = TwoSpecs();
  const ArrivalSchedule schedule = ArrivalSchedule::Periodic(set, 50);
  std::size_t total = 0;
  for (Tick t = 0; t < 50; ++t) total += schedule.At(t).size();
  EXPECT_EQ(total, schedule.arrivals().size());
  EXPECT_EQ(schedule.At(3).size(), 1u);
  EXPECT_TRUE(schedule.At(4).empty());
}

TEST(ArrivalScheduleTest, SporadicRespectsMinimumInterArrival) {
  const TransactionSet set = TwoSpecs();
  Rng rng(5);
  const ArrivalSchedule schedule =
      ArrivalSchedule::Sporadic(set, 500, 0.5, rng);
  Tick previous_a = -1;
  for (const Arrival& arrival : schedule.arrivals()) {
    if (arrival.spec != 0) continue;
    if (previous_a >= 0) {
      const Tick gap = arrival.tick - previous_a;
      EXPECT_GE(gap, 10);
      EXPECT_LE(gap, 15);
    }
    previous_a = arrival.tick;
  }
  // Fewer or equal arrivals than strictly periodic.
  EXPECT_LE(schedule.CountFor(0), 50);
  EXPECT_GE(schedule.CountFor(0), 500 / 15);
}

TEST(ArrivalScheduleTest, SporadicZeroJitterIsPeriodic) {
  const TransactionSet set = TwoSpecs();
  Rng rng(5);
  const ArrivalSchedule sporadic =
      ArrivalSchedule::Sporadic(set, 100, 0.0, rng);
  const ArrivalSchedule periodic = ArrivalSchedule::Periodic(set, 100);
  EXPECT_EQ(sporadic.arrivals(), periodic.arrivals());
}

TEST(ArrivalScheduleTest, PoissonMeanRateTracksLoad) {
  TransactionSpec a{.name = "A", .period = 20, .body = {Compute(1)}};
  auto set = TransactionSet::Create({a});
  ASSERT_TRUE(set.ok());
  Rng rng(9);
  const Tick horizon = 200000;
  const ArrivalSchedule low =
      ArrivalSchedule::Poisson(*set, horizon, 0.5, rng);
  const ArrivalSchedule high =
      ArrivalSchedule::Poisson(*set, horizon, 2.0, rng);
  // Expected counts: horizon/period*load = 5000 and 20000.
  EXPECT_NEAR(low.CountFor(0), 5000, 500);
  EXPECT_NEAR(high.CountFor(0), 20000, 2000);
}

TEST(ArrivalScheduleTest, InstancesNumberedPerSpec) {
  const TransactionSet set = TwoSpecs();
  Rng rng(11);
  const ArrivalSchedule schedule =
      ArrivalSchedule::Poisson(set, 300, 1.0, rng);
  std::map<SpecId, int> expected;
  for (const Arrival& arrival : schedule.arrivals()) {
    EXPECT_EQ(arrival.instance, expected[arrival.spec]++);
  }
}

TEST(ArrivalScheduleTest, FromArrivalsValidates) {
  const TransactionSet set = TwoSpecs();
  EXPECT_TRUE(
      ArrivalSchedule::FromArrivals(set, {{0, 0, 0}, {5, 1, 0}}).ok());
  EXPECT_FALSE(
      ArrivalSchedule::FromArrivals(set, {{5, 0, 0}, {0, 1, 0}}).ok());
  EXPECT_FALSE(ArrivalSchedule::FromArrivals(set, {{-1, 0, 0}}).ok());
  EXPECT_FALSE(ArrivalSchedule::FromArrivals(set, {{0, 7, 0}}).ok());
}

TEST(ArrivalScheduleTest, FromArrivalsRenumbersInstances) {
  const TransactionSet set = TwoSpecs();
  auto schedule = ArrivalSchedule::FromArrivals(
      set, {{0, 0, 99}, {4, 0, 99}, {4, 1, 99}});
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->arrivals()[0].instance, 0);
  EXPECT_EQ(schedule->arrivals()[1].instance, 1);
  EXPECT_EQ(schedule->arrivals()[2].instance, 0);
}

// --- Simulator integration ---------------------------------------------------

TEST(ArrivalScheduleTest, SimulatorUsesOverride) {
  TransactionSpec a{.name = "A", .period = 10, .body = {Compute(2)}};
  auto set = TransactionSet::Create({a});
  ASSERT_TRUE(set.ok());
  auto schedule =
      ArrivalSchedule::FromArrivals(*set, {{2, 0, 0}, {7, 0, 0}});
  ASSERT_TRUE(schedule.ok());
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 20;
  options.arrival_schedule = &*schedule;
  Simulator sim(&*set, protocol.get(), options);
  const SimResult result = sim.Run();
  // Exactly the two trace arrivals, not the periodic calendar's two at
  // 0 and 10.
  EXPECT_EQ(result.metrics.per_spec[0].released, 2);
  const auto arrivals = result.trace.EventsOfKind(TraceKind::kArrival);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].tick, 2);
  EXPECT_EQ(arrivals[1].tick, 7);
}

TEST(ArrivalScheduleTest, OverloadedPoissonRunStaysSerializable) {
  TransactionSpec a{.name = "A", .period = 8, .body = {Read(0), Write(1)}};
  TransactionSpec b{.name = "B",
                    .period = 16,
                    .body = {Read(1), Write(0), Compute(2)}};
  auto set = TransactionSet::Create({a, b});
  ASSERT_TRUE(set.ok());
  Rng rng(3);
  const ArrivalSchedule schedule =
      ArrivalSchedule::Poisson(*set, 500, 1.5, rng);
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 500;
  options.arrival_schedule = &schedule;
  options.miss_policy = DeadlineMissPolicy::kDrop;
  Simulator sim(&*set, protocol.get(), options);
  const SimResult result = sim.Run();
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_GT(result.metrics.TotalCommitted(), 0);
}

}  // namespace
}  // namespace pcpda
