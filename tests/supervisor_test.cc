// Tests for the process-isolated campaign supervisor (src/supervisor/):
// the seeded chaos schedule, spec-to-flags serialization, and — spawning
// the real pcpda_campaign binary as workers — end-to-end supervision:
// byte-identical merges vs in-process runs, poison-job isolation by
// bisection, chaos-kill recovery, and clean degradation when the worker
// binary is broken.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/spec.h"
#include "supervisor/chaos.h"
#include "supervisor/supervisor.h"

namespace pcpda {
namespace {

namespace fs = std::filesystem;

fs::path TestDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("supervisor_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir;
}

/// Mirrors campaign_test's SmallSpec: 12 fast jobs across 2 shards.
CampaignSpec SmallSpec() {
  CampaignSpec spec;
  spec.base_seed = 7;
  spec.scenarios = 3;
  spec.utilizations = {0.3, 0.6};
  spec.protocols = {ProtocolKind::kPcpDa, ProtocolKind::kOpcp};
  spec.horizon = 300;
  spec.max_retries = 1;
  spec.shards = 2;
  spec.workload.num_transactions = 4;
  spec.workload.num_items = 8;
  return spec;
}

std::string MustRead(const fs::path& path) {
  auto contents = ReadFileToString(path.string());
  EXPECT_TRUE(contents.ok()) << path << ": "
                             << contents.status().ToString();
  return contents.ok() ? *contents : std::string();
}

// --- ChaosSchedule ---------------------------------------------------------

TEST(ChaosScheduleTest, SeedDeterminesEventsExactly) {
  const ChaosSchedule a = ChaosSchedule::Make(42, 10, 3);
  const ChaosSchedule b = ChaosSchedule::Make(42, 10, 3);
  ASSERT_EQ(a.events().size(), 13u);
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at_heartbeat, b.events()[i].at_heartbeat);
    EXPECT_EQ(a.events()[i].kill, b.events()[i].kill);
  }
  // A different seed must produce a different interleaving or spacing
  // (13 events with gap range [2,8] collide with ~0 probability).
  const ChaosSchedule c = ChaosSchedule::Make(43, 10, 3);
  bool differs = false;
  for (std::size_t i = 0; i < c.events().size(); ++i) {
    differs = differs ||
              c.events()[i].at_heartbeat != a.events()[i].at_heartbeat ||
              c.events()[i].kill != a.events()[i].kill;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosScheduleTest, KindCountsAndGapBoundsHold) {
  const ChaosSchedule schedule = ChaosSchedule::Make(7, 12, 5);
  int kills = 0, stops = 0;
  std::uint64_t prev = 0;
  for (const ChaosEvent& event : schedule.events()) {
    (event.kill ? kills : stops)++;
    const std::uint64_t gap = event.at_heartbeat - prev;
    EXPECT_GE(gap, 2u);
    EXPECT_LE(gap, 8u);
    prev = event.at_heartbeat;
  }
  EXPECT_EQ(kills, 12);
  EXPECT_EQ(stops, 5);
}

TEST(ChaosScheduleTest, DueAdvancesPastReturnedEvents) {
  ChaosSchedule schedule = ChaosSchedule::Make(1, 3, 0);
  EXPECT_TRUE(schedule.active());
  EXPECT_EQ(schedule.Due(0), nullptr) << "no event is due before gap 2";
  // At a heartbeat count past the last event, Due drains one per call.
  int drained = 0;
  while (schedule.Due(1'000'000) != nullptr) ++drained;
  EXPECT_EQ(drained, 3);
  EXPECT_FALSE(schedule.active());
}

TEST(ChaosScheduleTest, EmptyScheduleIsInert) {
  ChaosSchedule schedule = ChaosSchedule::Make(9, 0, 0);
  EXPECT_FALSE(schedule.active());
  EXPECT_EQ(schedule.Due(1'000'000), nullptr);
}

// --- CampaignSpec::ToFlags and ShardOfJob ----------------------------------

TEST(SpecFlagsTest, ShardOfJobInvertsJobsForShard) {
  CampaignSpec spec = SmallSpec();
  spec.scenarios = 5;
  spec.shards = 3;
  for (int shard = 0; shard < spec.shards; ++shard) {
    for (const CampaignJob& job : spec.JobsForShard(shard)) {
      EXPECT_EQ(spec.ShardOfJob(job.id), shard) << "job " << job.id;
    }
  }
}

TEST(SpecFlagsTest, ToFlagsRoundTripsDoublesBitExactly) {
  CampaignSpec spec = SmallSpec();
  // Values with no short decimal representation: %.17g must carry them
  // through the exec boundary bit-exactly or the worker's fingerprint
  // would diverge from the supervisor's.
  spec.utilizations = {0.1 + 0.2, 1.0 / 3.0};
  spec.workload.write_fraction = 2.0 / 7.0;
  bool checked_utils = false;
  for (const std::string& flag : spec.ToFlags()) {
    if (flag.rfind("--utils=", 0) == 0) {
      const std::string list = flag.substr(std::string("--utils=").size());
      const std::size_t comma = list.find(',');
      ASSERT_NE(comma, std::string::npos);
      EXPECT_EQ(std::strtod(list.substr(0, comma).c_str(), nullptr),
                0.1 + 0.2);
      EXPECT_EQ(std::strtod(list.substr(comma + 1).c_str(), nullptr),
                1.0 / 3.0);
      checked_utils = true;
    }
    if (flag.rfind("--write-fraction=", 0) == 0) {
      EXPECT_EQ(
          std::strtod(flag.c_str() + std::string("--write-fraction=").size(),
                      nullptr),
          2.0 / 7.0);
    }
  }
  EXPECT_TRUE(checked_utils);
}

TEST(SpecFlagsTest, ToFlagsCoversEveryFingerprintField) {
  // Every flag a worker needs to recompute the fingerprint must be
  // present; a missing one would surface as a checkpoint refusal at
  // runtime, this catches it at unit-test time.
  const std::set<std::string> expected = {
      "--seed",          "--scenarios",     "--shards",
      "--horizon",       "--max-sim-ticks", "--wall-budget-ms",
      "--retries",       "--utils",         "--protocols",
      "--dist",          "--txns",          "--items",
      "--min-period",    "--max-period",    "--min-ops",
      "--max-ops",       "--write-fraction", "--task-util-min",
      "--task-util-max", "--exp-mean",      "--bimodal-split",
      "--bimodal-light"};
  std::set<std::string> seen;
  for (const std::string& flag : SmallSpec().ToFlags()) {
    const std::size_t eq = flag.find('=');
    ASSERT_NE(eq, std::string::npos) << flag;
    seen.insert(flag.substr(0, eq));
  }
  EXPECT_EQ(seen, expected);
}

// --- end-to-end supervision (spawns the real worker binary) ----------------

#ifdef PCPDA_BINARY_DIR

std::string WorkerBinary() {
  return std::string(PCPDA_BINARY_DIR "/examples/pcpda_campaign");
}

SupervisorOptions FastOptions(const fs::path& dir) {
  SupervisorOptions options;
  options.out_dir = dir.string();
  options.worker_binary = WorkerBinary();
  options.max_workers = 2;
  options.worker_jobs = 2;
  options.fsync = false;  // logic tests; durability is the smoke's job
  options.stall_timeout_ms = 5'000;
  options.term_grace_ms = 1'000;
  options.backoff_base_ms = 10;
  options.backoff_cap_ms = 50;
  return options;
}

/// The BENCH bytes of an undisturbed in-process run — the golden value
/// every supervised run must reproduce byte-identically.
const std::string& ReferenceBench() {
  static const std::string* bench = [] {
    const fs::path dir =
        TestDir("reference_" + std::to_string(::getpid()));
    CampaignOptions options;
    options.out_dir = dir.string();
    options.jobs = 2;
    options.fsync = false;
    Campaign campaign(SmallSpec(), options);
    auto report = campaign.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->merged);
    return new std::string(MustRead(dir / "BENCH_campaign.json"));
  }();
  return *bench;
}

TEST(SupervisorTest, SupervisedRunMergesByteIdenticallyToInProcess) {
  const fs::path dir = TestDir("clean");
  Supervisor supervisor(SmallSpec(), FastOptions(dir));
  const auto report = supervisor.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->merged);
  EXPECT_EQ(report->ok, 12);
  EXPECT_EQ(report->pending, 0);
  EXPECT_EQ(MustRead(dir / "BENCH_campaign.json"), ReferenceBench());
  const SupervisorStats& stats = supervisor.stats();
  EXPECT_EQ(stats.workers_spawned, 2) << "one worker per shard";
  EXPECT_EQ(stats.clean_exits, 2);
  EXPECT_EQ(stats.crash_deaths, 0);
  EXPECT_GE(stats.heartbeats, 12) << "one per record plus startup";
  EXPECT_TRUE(fs::exists(dir / "SUPERVISOR.json"));
}

TEST(SupervisorTest, PoisonJobIsBisectedQuarantinedAndOnlyIt) {
  const fs::path dir = TestDir("poison");
  CampaignSpec spec = SmallSpec();
  SupervisorOptions options = FastOptions(dir);
  // Job 1 of 12 SIGSEGVs its process on every attempt. Serial workers
  // (worker_jobs=1) leave jobs 2..5 of shard 0 unrecorded behind it, so
  // only bisection can get them done.
  options.worker_jobs = 1;
  options.inject_segv_job = 1;
  Supervisor supervisor(spec, options);
  const auto report = supervisor.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->merged)
      << "the poison job must not block the campaign";
  EXPECT_EQ(report->ok, 11);
  EXPECT_EQ(report->quarantined, 1);
  EXPECT_EQ(report->pending, 0);

  const SupervisorStats& stats = supervisor.stats();
  EXPECT_GE(stats.crash_deaths, 2);
  EXPECT_GE(stats.bisections, 1)
      << "jobs 2..5 pending behind the poison force a range split";
  EXPECT_EQ(stats.poison_jobs, 1);
  EXPECT_EQ(stats.abandoned_tasks, 0);

  // Exactly the poison job carries outcome "crash"; it is quarantined
  // with a replayable .scn like any other poisoned job.
  const auto loaded = LoadCheckpoint(Campaign::ShardPath(dir.string(), 0),
                                     spec.Fingerprint());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  int crashes = 0;
  for (const JobRecord& record : loaded->records) {
    if (record.outcome == "crash") {
      EXPECT_EQ(record.job_id, 1);
      EXPECT_EQ(record.code, "Internal");
      EXPECT_TRUE(record.quarantined());
      ++crashes;
    }
  }
  EXPECT_EQ(crashes, 1);
  EXPECT_TRUE(fs::exists(dir / "quarantine" / "job_000001.json"));
  EXPECT_TRUE(fs::exists(dir / "quarantine" / "job_000001.scn"));
}

TEST(SupervisorTest, ChaosKillsCostRetriesNeverResults) {
  const fs::path dir = TestDir("chaos");
  SupervisorOptions options = FastOptions(dir);
  options.chaos_seed = 1234;
  options.chaos_kills = 4;  // sized to the 12-job grid's heartbeat count
  Supervisor supervisor(SmallSpec(), options);
  const auto report = supervisor.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->merged);
  EXPECT_EQ(report->ok, 12);
  EXPECT_EQ(report->quarantined, 0);
  EXPECT_EQ(MustRead(dir / "BENCH_campaign.json"), ReferenceBench())
      << "chaos may cost respawns, never a byte of the merged result";
  const SupervisorStats& stats = supervisor.stats();
  EXPECT_GE(stats.chaos_kills_injected, 1);
  EXPECT_EQ(stats.abandoned_tasks, 0)
      << "chaos deaths must not consume task attempts";
  EXPECT_EQ(stats.poison_jobs, 0)
      << "chaos deaths must not trip bisection into false positives";
}

TEST(SupervisorTest, BrokenWorkerBinaryDegradesToAbandonedTasksNotHang) {
  const fs::path dir = TestDir("broken");
  SupervisorOptions options = FastOptions(dir);
  options.worker_binary = "/nonexistent/worker";
  options.max_task_attempts = 2;
  Supervisor supervisor(SmallSpec(), options);
  const auto report = supervisor.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->merged);
  EXPECT_EQ(report->pending, 12) << "nothing ran, nothing lost";
  const SupervisorStats& stats = supervisor.stats();
  EXPECT_EQ(stats.abandoned_tasks, 2);
  EXPECT_GE(stats.error_exits, 2) << "exec failure exits 127";
  // The partial manifest still lands, so the failure is diagnosable.
  EXPECT_TRUE(fs::exists(dir / "MANIFEST.json"));
}

#endif  // PCPDA_BINARY_DIR

}  // namespace
}  // namespace pcpda
