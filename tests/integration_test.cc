// Cross-module integration tests: simulator results vs the offline
// analyses, inherited-priority locking, trace/CSV consistency, and the
// end-to-end deadlock scenario the running-priority semantics fix.

#include <gtest/gtest.h>

#include "analysis/blocking.h"
#include "analysis/report.h"
#include "analysis/response_time.h"
#include "analysis/rm_bound.h"
#include "core/serialization_order.h"
#include "history/serialization_graph.h"
#include "test_util.h"
#include "trace/csv.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs,
                       PriorityAssignment pa =
                           PriorityAssignment::kAsListed) {
  auto set = TransactionSet::Create(std::move(specs), pa);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

// --- The inherited-priority regression (DESIGN.md §4b) ----------------------

// Distilled from the random workload that deadlocked with base-priority
// locking conditions: T_low read-locks an item T_high writes; T_high
// blocks on it and donates its priority; T_mid read-locks items whose
// Wceil sits between low's base and high's priority; T_low then needs
// another read lock. With running priorities T_low clears the ceiling via
// LC2; with base priorities this would deadlock.
TEST(InheritedPriorityTest, BlockerClearsCeilingViaInheritance) {
  TransactionSet set = MakeSet({
      // T1 (highest): writes a (so Wceil(a) = P1).
      {.name = "T1", .offset = 3, .body = {Write(0)}},
      // T2: writes b (Wceil(b) = P2) and reads c later.
      {.name = "T2", .offset = 2, .body = {Read(3), Write(1)}},
      // T3 (lowest): read-locks a, then — while blocking T1 and running
      // at P1 — needs to read d.
      {.name = "T3",
       .offset = 0,
       .body = {Read(0), Compute(4), Read(2), Compute(1)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 20);
  EXPECT_FALSE(result.deadlock_detected) << FailureContext(set, result);
  EXPECT_EQ(result.metrics.TotalCommitted(), 3);
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_TRUE(FindCommitOrderViolations(result.history).empty());
}

// The exact two-party shape from the bug: T_low holds a read lock on x
// (written by T_high); T_high blocks on Wlock(x); T_low, inheriting, then
// read-locks y although T_high's read locks (taken via LC3 before
// blocking) raised the ceiling above T_low's base priority.
TEST(InheritedPriorityTest, TwoPartyNoDeadlock) {
  TransactionSet set = MakeSet({
      // TH: reads u,v via LC3, then writes x.
      {.name = "TH",
       .offset = 2,
       .body = {Read(1), Read(2), Write(0)}},
      // TM: writes u — gives u a mid ceiling P2 > P3.
      {.name = "TM", .offset = 30, .body = {Write(1), Write(2)}},
      // TL: read-locks x (Wceil = P1), long compute, then reads w.
      {.name = "TL",
       .offset = 0,
       .body = {Read(0), Compute(6), Read(3), Compute(1)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 40);
  EXPECT_FALSE(result.deadlock_detected) << FailureContext(set, result);
  EXPECT_EQ(result.metrics.TotalCommitted(), 3);
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- Analysis vs simulation on a periodic set --------------------------------

TEST(AnalysisVsSimTest, SimulatedBlockingWithinBoundsOverHyperperiod) {
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 10, .body = {Read(0), Compute(1)}},
          {.name = "B",
           .period = 20,
           .body = {Write(0), Read(1), Compute(1)}},
          {.name = "C",
           .period = 40,
           .body = {Read(0), Write(1), Compute(3)}},
      },
      PriorityAssignment::kRateMonotonic);
  const Tick hyper = set.Hyperperiod();
  ASSERT_EQ(hyper, 40);
  for (ProtocolKind kind :
       {ProtocolKind::kPcpDa, ProtocolKind::kRwPcp, ProtocolKind::kCcp,
        ProtocolKind::kOpcp}) {
    const SimResult result = RunWith(set, kind, 3 * hyper);
    ASSERT_TRUE(result.status.ok());
    EXPECT_TRUE(result.metrics.AllDeadlinesMet()) << ToString(kind);
    const BlockingAnalysis analysis = ComputeBlocking(set, kind);
    for (SpecId i = 0; i < set.size(); ++i) {
      EXPECT_LE(result.metrics.per_spec[static_cast<std::size_t>(i)]
                    .max_effective_blocking,
                analysis.B(i))
          << ToString(kind) << " " << set.spec(i).name;
    }
  }
}

TEST(AnalysisVsSimTest, RtaPredictsMaxResponse) {
  // Synchronous release (offset 0) is the critical instant: the simulated
  // max response must never exceed the RTA fixpoint.
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 8, .body = {Read(0), Compute(1)}},
          {.name = "B", .period = 16, .body = {Write(0), Compute(2)}},
          {.name = "C", .period = 32, .body = {Read(0), Compute(4)}},
      },
      PriorityAssignment::kRateMonotonic);
  const BlockingAnalysis blocking =
      ComputeBlocking(set, ProtocolKind::kPcpDa);
  const auto rta = ResponseTimeAnalysis(set, blocking.AllB());
  ASSERT_TRUE(rta.ok());
  ASSERT_TRUE(rta->schedulable);
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 96);
  for (SpecId i = 0; i < set.size(); ++i) {
    EXPECT_LE(result.metrics.per_spec[static_cast<std::size_t>(i)]
                  .max_response,
              rta->per_spec[static_cast<std::size_t>(i)].response)
        << set.spec(i).name;
  }
}

TEST(AnalysisVsSimTest, LiuLaylandPassImpliesNoMisses) {
  // A set passing the sufficient test must meet every deadline in
  // simulation (checked across all phasings implicitly via offsets).
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 12, .body = {Read(0)}},
          {.name = "B", .period = 24, .body = {Write(0), Compute(1)}},
      },
      PriorityAssignment::kRateMonotonic);
  const BlockingAnalysis blocking =
      ComputeBlocking(set, ProtocolKind::kPcpDa);
  const auto ll = LiuLaylandTest(set, blocking.AllB());
  ASSERT_TRUE(ll.ok());
  ASSERT_TRUE(ll->schedulable);
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 240);
  EXPECT_TRUE(result.metrics.AllDeadlinesMet());
}

// --- Trace / CSV / history consistency ---------------------------------------

TEST(ConsistencyTest, BusyTicksMatchScheduleRows) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  for (SpecId i = 0; i < example.set.size(); ++i) {
    EXPECT_EQ(result.trace.RunningTicks(i),
              result.metrics.per_spec[static_cast<std::size_t>(i)]
                  .busy_ticks);
  }
}

TEST(ConsistencyTest, CommitsMatchHistory) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  EXPECT_EQ(result.history.committed().size(),
            static_cast<std::size_t>(result.metrics.TotalCommitted()));
  EXPECT_EQ(result.trace.EventsOfKind(TraceKind::kCommit).size(),
            result.history.committed().size());
}

TEST(ConsistencyTest, SerialWitnessRespectsOrderConstraints) {
  const PaperExample example = Example3();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  const auto graph = SerializationGraph::Build(result.history);
  const auto check = graph.CheckAcyclic();
  ASSERT_TRUE(check.serializable);
  auto pos = [&](JobId j) {
    for (std::size_t i = 0; i < check.serial_order.size(); ++i) {
      if (check.serial_order[i] == j) return i;
    }
    ADD_FAILURE() << "job missing from witness";
    return std::size_t{0};
  };
  for (const OrderConstraint& c :
       DeriveOrderConstraints(result.history)) {
    EXPECT_LT(pos(c.reader), pos(c.writer)) << c.DebugString();
  }
}

TEST(ConsistencyTest, ReportsRunOnPeriodicizedExample) {
  TransactionSet set = MakeSet(
      {
          {.name = "T1", .period = 20, .body = {Read(0), Compute(1)}},
          {.name = "T2", .period = 30, .body = {Write(1), Compute(1)}},
          {.name = "T3",
           .period = 40,
           .body = {Read(2), Write(2)}},
          {.name = "T4",
           .period = 60,
           .body = {Read(1), Write(0), Compute(3)}},
      },
      PriorityAssignment::kRateMonotonic);
  const std::string report = SchedulabilityReport(set);
  EXPECT_NE(report.find("PCP-DA"), std::string::npos);
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 120);
  EXPECT_TRUE(result.metrics.AllDeadlinesMet())
      << FailureContext(set, result);
}

}  // namespace
}  // namespace pcpda
