#include <gtest/gtest.h>

#include "history/serialization_graph.h"
#include "test_util.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs) {
  auto set = TransactionSet::Create(std::move(specs),
                                    PriorityAssignment::kAsListed);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

// --- Core locking semantics --------------------------------------------

TEST(RwPcpTest, GrantsWhenNothingLocked) {
  TransactionSet set = MakeSet({{.name = "T", .body = {Read(0), Write(1)}}});
  const SimResult result = RunWith(set, ProtocolKind::kRwPcp, 6);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0);
}

TEST(RwPcpTest, WriteLockRaisesAceilAndBlocksReaders) {
  // L write-locks x; H's read is conflict-blocked until L commits
  // (update-in-place: no reading under write locks).
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Read(0)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kRwPcp, 10);
  EXPECT_EQ(result.metrics.per_spec[0].conflict_blocks, 1)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.per_spec[0].effective_blocking_ticks, 2);
  EXPECT_EQ(CommitTime(result, 1, 0), 3);
  EXPECT_EQ(CommitTime(result, 0, 0), 4);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(RwPcpTest, SharedReadsAllowedAbovewceil) {
  // Two readers of x share the lock when Wceil(x) is below both
  // priorities (nobody writes x).
  TransactionSet set = MakeSet({
      {.name = "A", .offset = 1, .body = {Read(0), Compute(1)}},
      {.name = "B", .offset = 0, .body = {Read(0), Compute(3)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kRwPcp, 10);
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0)
      << FailureContext(set, result);
  EXPECT_EQ(CommitTime(result, 0, 0), 3);
}

TEST(RwPcpTest, ReadLockBlocksLowerPriorityReaderOfOtherItem) {
  // Ceiling blocking: L2 cannot read y while L1 read-locks x with
  // Wceil(x) = P_H >= P_L2 — even though y is free.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 9, .body = {Write(0)}},
      {.name = "L2", .offset = 1, .body = {Read(1)}},
      {.name = "L1", .offset = 0, .body = {Read(0), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kRwPcp, 14);
  EXPECT_EQ(result.metrics.per_spec[1].ceiling_blocks, 1)
      << FailureContext(set, result);
}

TEST(RwPcpTest, UpgradeOwnReadToWrite) {
  // A transaction read-locks z then write-locks z; its own lock must not
  // stand in its way.
  TransactionSet set = MakeSet({{.name = "T", .body = {Read(0), Write(0)}}});
  const SimResult result = RunWith(set, ProtocolKind::kRwPcp, 6);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0);
}

TEST(RwPcpTest, NoDeadlockOnCrossedAccess) {
  // The Example-5 access pattern: RW-PCP's ceilings prevent the deadlock.
  TransactionSet set = MakeSet({
      {.name = "TH", .offset = 1, .body = {Read(1), Write(0)}},
      {.name = "TL", .offset = 0, .body = {Read(0), Write(1)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kRwPcp, 12);
  EXPECT_FALSE(result.deadlock_detected)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- Example 1 / Figure 1 ---------------------------------------------------

TEST(RwPcpExampleTest, Example1MatchesFigure1) {
  const PaperExample example = Example1();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  ASSERT_TRUE(result.status.ok());
  // T2 is ceiling-blocked at t=1, T1 conflict-blocked at t=2, both by T3.
  EXPECT_EQ(result.metrics.per_spec[1].ceiling_blocks, 1)
      << FailureContext(example.set, result);
  EXPECT_EQ(result.metrics.per_spec[0].conflict_blocks, 1);
  // T3 commits at 3 (runs 0..3 via inherited priority), then T1 (t=3..5),
  // then T2 (t=5..7).
  EXPECT_EQ(CommitTime(result, 2, 0), 3);
  EXPECT_EQ(CommitTime(result, 0, 0), 5);
  EXPECT_EQ(CommitTime(result, 1, 0), 7);
  // Effective blocking: T1 one tick (t=2..3), T2 two ticks (t=1..3).
  EXPECT_EQ(result.metrics.per_spec[0].effective_blocking_ticks, 1);
  EXPECT_EQ(result.metrics.per_spec[1].effective_blocking_ticks, 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- Example 3 / Figure 3 ---------------------------------------------------

TEST(RwPcpExampleTest, Example3MatchesFigure3) {
  const PaperExample example = Example3();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  ASSERT_TRUE(result.status.ok());
  // T1#0 is blocked t=1..5 (worst-case effective blocking 4) and misses
  // its deadline at t=6; T2 commits at 5.
  EXPECT_EQ(result.metrics.per_spec[0].max_effective_blocking, 4)
      << FailureContext(example.set, result);
  EXPECT_EQ(result.metrics.per_spec[0].deadline_misses, 1);
  EXPECT_EQ(CommitTime(result, 1, 0), 5);
  EXPECT_EQ(CommitTime(result, 0, 0), 7);
  const auto misses = result.trace.EventsOfKind(TraceKind::kDeadlineMiss);
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].tick, 6);
  EXPECT_EQ(misses[0].spec, 0);
  EXPECT_EQ(misses[0].instance, 0);
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- Example 4 / Figure 5 ---------------------------------------------------

TEST(RwPcpExampleTest, Example4MatchesFigure5) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  ASSERT_TRUE(result.status.ok());
  // T3 ceiling-blocked with effective blocking 4; T1 conflict-blocked 1.
  EXPECT_EQ(result.metrics.per_spec[2].ceiling_blocks, 1)
      << FailureContext(example.set, result);
  EXPECT_EQ(result.metrics.per_spec[2].effective_blocking_ticks, 4);
  EXPECT_EQ(result.metrics.per_spec[0].conflict_blocks, 1);
  EXPECT_EQ(result.metrics.per_spec[0].effective_blocking_ticks, 1);
  // T4 commits at 5 (inheriting), T1 at 7, T3 at 9, T2 at 11.
  EXPECT_EQ(CommitTime(result, 3, 0), 5);
  EXPECT_EQ(CommitTime(result, 0, 0), 7);
  EXPECT_EQ(CommitTime(result, 2, 0), 9);
  EXPECT_EQ(CommitTime(result, 1, 0), 11);
  // Max_Sysceil reaches P1 (vs P2 under PCP-DA) — the push-down argument.
  EXPECT_EQ(result.metrics.max_ceiling, example.set.priority(0));
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- Single blocking across the examples ------------------------------------

TEST(RwPcpInvariantTest, ExamplesDeadlockFreeSerializableNoRestarts) {
  for (const PaperExample& example :
       {Example1(), Example3(), Example4(), Example5()}) {
    const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
    EXPECT_FALSE(result.deadlock_detected) << example.name;
    EXPECT_EQ(result.metrics.TotalRestarts(), 0) << example.name;
    EXPECT_TRUE(IsSerializable(result.history)) << example.name;
  }
}

}  // namespace
}  // namespace pcpda
