#!/bin/sh
# Static-analyzer smoke test, run by ctest as `analysis-smoke`.
#
#   analysis_smoke.sh <pcpda_analyze binary> <scenario dir> <scratch dir>
#
# Four phases:
#   a) every shipped scenario analyzes under every protocol (including
#      unbounded 2PL-PI) with --deny=none and exit 0;
#   b) JSON output parses structurally: balanced array framing plus the
#      required keys on every row;
#   c) the exit-code matrix: 2 for usage errors and missing files, 1 for
#      a denied verdict, 0 for a passing file;
#   d) a known-schedulable and a known-denied scenario land on the
#      expected side of the --deny gate.

BIN="$1"
SCENARIOS="$2"
WORK="$3"
[ -n "$BIN" ] && [ -n "$SCENARIOS" ] && [ -n "$WORK" ] || {
  echo "usage: $0 BIN SCENARIODIR WORKDIR"; exit 2; }

fail() { echo "analysis-smoke: FAIL: $*"; exit 1; }

rm -rf "$WORK" || fail "cannot clean $WORK"
mkdir -p "$WORK" || fail "cannot create $WORK"

# --- phase a: all scenarios, all protocols, nothing denied -------------
"$BIN" --dir="$SCENARIOS" --protocols=all --deny=none \
  > "$WORK/all.txt" 2>&1
rc=$?
[ $rc -eq 0 ] || fail "phase a: expected exit 0 with --deny=none, got $rc"
grep -q "2PL-PI" "$WORK/all.txt" || \
  fail "phase a: 2PL-PI missing from --protocols=all output"
grep -q "B=unbounded" "$WORK/all.txt" || \
  fail "phase a: no unbounded B reported for 2PL-PI"

# --- phase b: JSON structure -------------------------------------------
"$BIN" --dir="$SCENARIOS" --protocols=analyzable --deny=none \
  --format=json > "$WORK/all.json" 2>&1
rc=$?
[ $rc -eq 0 ] || fail "phase b: json run exited $rc"
head -c 1 "$WORK/all.json" | grep -q '\[' || \
  fail "phase b: output is not a JSON array"
tail -c 3 "$WORK/all.json" | grep -q '\]' || \
  fail "phase b: JSON array is not closed"
for key in '"file"' '"protocols"' '"protocol"' '"verdict"' '"specs"' \
           '"B"' '"response"' '"bts"' '"restarts"'; do
  grep -q "$key" "$WORK/all.json" || fail "phase b: missing key $key"
done
# Balanced braces/brackets: crude but catches truncated rendering.
opens=$(tr -cd '{' < "$WORK/all.json" | wc -c)
closes=$(tr -cd '}' < "$WORK/all.json" | wc -c)
[ "$opens" -eq "$closes" ] || \
  fail "phase b: unbalanced braces ($opens vs $closes)"

# --- phase c: exit-code matrix -----------------------------------------
"$BIN" > /dev/null 2>&1
[ $? -eq 2 ] || fail "phase c: no arguments should exit 2"
"$BIN" --format=bogus x.scn > /dev/null 2>&1
[ $? -eq 2 ] || fail "phase c: bad --format should exit 2"
"$BIN" --protocols=NOPE x.scn > /dev/null 2>&1
[ $? -eq 2 ] || fail "phase c: unknown protocol should exit 2"
"$BIN" "$WORK/does-not-exist.scn" > /dev/null 2>&1
[ $? -eq 2 ] || fail "phase c: missing file should exit 2"

# --- phase d: the deny gate discriminates ------------------------------
cat > "$WORK/sched.scn" <<'EOF'
scenario smoke_sched
horizon 40
txn A period=10
  read x 1
end
txn B period=20
  write x 1
end
EOF
"$BIN" --protocols=PCP-DA "$WORK/sched.scn" > /dev/null 2>&1
[ $? -eq 0 ] || fail "phase d: schedulable scenario was denied"

cat > "$WORK/unsched.scn" <<'EOF'
scenario smoke_unsched
horizon 40
txn A period=4
  compute 3
end
txn B period=8
  compute 4
end
EOF
"$BIN" --protocols=PCP-DA "$WORK/unsched.scn" > /dev/null 2>&1
[ $? -eq 1 ] || fail "phase d: overloaded scenario was not denied"
# One-shot specs have no RTA model: unknown passes the default gate but
# falls to --deny=unknown.
cat > "$WORK/oneshot.scn" <<'EOF'
scenario smoke_oneshot
horizon 40
txn A
  read x 1
end
EOF
"$BIN" --protocols=PCP-DA "$WORK/oneshot.scn" > /dev/null 2>&1
[ $? -eq 0 ] || fail "phase d: unknown verdict tripped the default gate"
"$BIN" --protocols=PCP-DA --deny=unknown "$WORK/oneshot.scn" \
  > /dev/null 2>&1
[ $? -eq 1 ] || fail "phase d: --deny=unknown did not deny a one-shot"

echo "analysis-smoke: PASS"
exit 0
