#!/bin/sh
# Campaign-engine smoke test, run by ctest as `campaign-smoke`.
#
#   campaign_smoke.sh <pcpda_campaign binary> <scratch dir>
#
# Three phases:
#   a) a campaign with a seeded crash (job 3 throws every attempt) and a
#      seeded hang (job 7 spins until the wall watchdog cancels it) must
#      quarantine both, still merge, and exit 1;
#   b) a campaign SIGKILL'd mid-run and re-invoked must resume and merge
#      byte-identically to an uninterrupted twin;
#   c) a campaign stopped gracefully (--stop-after, the deterministic
#      SIGINT stand-in) must leave work pending without a BENCH, then
#      resume to the same byte-identical merge.

BIN="$1"
WORK="$2"
[ -n "$BIN" ] && [ -n "$WORK" ] || { echo "usage: $0 BIN WORKDIR"; exit 2; }

fail() { echo "campaign-smoke: FAIL: $*"; exit 1; }

rm -rf "$WORK" || fail "cannot clean $WORK"
mkdir -p "$WORK" || fail "cannot create $WORK"

# Small grid shared by every phase: 4 scenarios x 2 utils x 2 protocols
# = 16 jobs over 2 shards (phase a), 10 x 2 x 2 = 40 jobs (phases b, c).
GRID_A="--scenarios=4 --utils=0.3,0.6 --protocols=PCP-DA,PCP --shards=2 \
  --horizon=400 --jobs=4"
GRID_BC="--scenarios=10 --utils=0.2,0.5 --protocols=PCP-DA,2PL-HP \
  --shards=2 --horizon=400 --jobs=2"

# --- phase a: crash + hang are quarantined, campaign still merges ------
"$BIN" --out="$WORK/a" $GRID_A --retries=1 --wall-budget-ms=500 \
  --inject-crash=3 --inject-hang=7 > "$WORK/a.out" 2>&1
rc=$?
[ $rc -eq 1 ] || fail "phase a: expected exit 1 (quarantined jobs), got $rc"
[ -f "$WORK/a/BENCH_campaign.json" ] || fail "phase a: no BENCH written"
[ -f "$WORK/a/quarantine/job_000003.json" ] || \
  fail "phase a: crash job not quarantined"
[ -f "$WORK/a/quarantine/job_000003.scn" ] || \
  fail "phase a: crash job has no .scn repro"
[ -f "$WORK/a/quarantine/job_000007.json" ] || \
  fail "phase a: hang job not quarantined"
grep -q '"quarantined": 2' "$WORK/a/MANIFEST.json" || \
  fail "phase a: manifest does not account 2 quarantined jobs"
grep -q '"pending": 0' "$WORK/a/MANIFEST.json" || \
  fail "phase a: manifest reports pending jobs"

# --- uninterrupted reference run for phases b and c --------------------
"$BIN" --out="$WORK/ref" $GRID_BC > "$WORK/ref.out" 2>&1 || \
  fail "reference run failed (exit $?)"
[ -f "$WORK/ref/BENCH_campaign.json" ] || fail "reference: no BENCH"

# --- phase b: SIGKILL mid-run, then resume -----------------------------
"$BIN" --out="$WORK/b" $GRID_BC > "$WORK/b.out" 2>&1 &
pid=$!
# Give it a moment to start appending records, then kill -9. If the
# campaign already finished, the resume below is a no-op — the
# byte-identical assertion holds either way.
sleep 0.2
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
"$BIN" --out="$WORK/b" $GRID_BC > "$WORK/b2.out" 2>&1
rc=$?
[ $rc -eq 0 ] || fail "phase b: resume expected exit 0, got $rc"
cmp -s "$WORK/b/BENCH_campaign.json" "$WORK/ref/BENCH_campaign.json" || \
  fail "phase b: resumed BENCH differs from uninterrupted run"

# --- phase c: graceful stop, then resume -------------------------------
"$BIN" --out="$WORK/c" $GRID_BC --stop-after=5 > "$WORK/c.out" 2>&1
rc=$?
[ $rc -eq 1 ] || fail "phase c: expected exit 1 (stopped partial), got $rc"
[ ! -f "$WORK/c/BENCH_campaign.json" ] || \
  fail "phase c: partial campaign must not merge"
[ -f "$WORK/c/MANIFEST.json" ] || fail "phase c: no partial manifest"
grep -q '"stopped": true' "$WORK/c/MANIFEST.json" || \
  fail "phase c: manifest does not record the stop"
"$BIN" --out="$WORK/c" $GRID_BC > "$WORK/c2.out" 2>&1
rc=$?
[ $rc -eq 0 ] || fail "phase c: resume expected exit 0, got $rc"
grep -q "resumed" "$WORK/c2.out" || fail "phase c: resume not reported"
cmp -s "$WORK/c/BENCH_campaign.json" "$WORK/ref/BENCH_campaign.json" || \
  fail "phase c: resumed BENCH differs from uninterrupted run"

echo "campaign-smoke: PASS"
exit 0
