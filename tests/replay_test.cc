#include <gtest/gtest.h>

#include "history/replay_checker.h"
#include "test_util.h"

namespace pcpda {
namespace {

void Read(History& h, JobId job, ItemId item, Tick tick, std::int64_t seq,
          JobId from) {
  h.RecordRead(job, item, tick, seq, Value{from, 0}, false);
}
void Write(History& h, JobId job, ItemId item, Tick tick,
           std::int64_t seq) {
  h.RecordWrite(job, item, tick, seq);
}
void Commit(History& h, JobId job, Tick tick, std::int64_t seq) {
  h.RecordCommit(job, 0, 0, tick, seq);
}

TEST(ReplayCheckerTest, EmptyHistoryOk) {
  History h;
  const auto result = ReplaySerialWitness(h, 4);
  EXPECT_TRUE(result.ok());
}

TEST(ReplayCheckerTest, MatchingReadsPass) {
  History h;
  Write(h, 1, 0, 0, 0);
  Commit(h, 1, 1, 1);
  Read(h, 2, 0, 2, 2, /*from=*/1);
  Commit(h, 2, 3, 3);
  const auto result = ReplaySerialWitness(h, 1);
  EXPECT_TRUE(result.ok()) << result.mismatches.size();
}

TEST(ReplayCheckerTest, WrongObservedValueFlagged) {
  History h;
  Write(h, 1, 0, 0, 0);
  Commit(h, 1, 1, 1);
  // Job 2 reads AFTER job 1's write but claims to have seen the initial
  // value: a capture bug the replay must flag.
  Read(h, 2, 0, 2, 2, /*from=*/kInvalidJob);
  Commit(h, 2, 3, 3);
  const auto result = ReplaySerialWitness(h, 1);
  EXPECT_TRUE(result.serializable);
  ASSERT_EQ(result.mismatches.size(), 1u);
  EXPECT_EQ(result.mismatches[0].job, 2);
  EXPECT_EQ(result.mismatches[0].replayed.writer, 1);
}

TEST(ReplayCheckerTest, ReadFromUncommittedWriterCensoredNotFlagged) {
  // Job 2 observes job 9's write, but job 9 never commits within the
  // history (still in flight at the horizon, legal under early lock
  // release). The committed projection can't validate the read: it must
  // be counted as censored, not reported as a mismatch.
  History h;
  Read(h, 2, 0, 2, 2, /*from=*/9);
  Commit(h, 2, 3, 3);
  const auto result = ReplaySerialWitness(h, 1);
  EXPECT_TRUE(result.ok()) << result.mismatches.size();
  EXPECT_EQ(result.censored_reads, 1);
}

TEST(ReplayCheckerTest, CensoredCountZeroOnFullyCommittedHistory) {
  History h;
  Write(h, 1, 0, 0, 0);
  Commit(h, 1, 1, 1);
  Read(h, 2, 0, 2, 2, /*from=*/1);
  Commit(h, 2, 3, 3);
  const auto result = ReplaySerialWitness(h, 1);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.censored_reads, 0);
}

TEST(ReplayCheckerTest, NonSerializableReported) {
  History h;
  Read(h, 1, 0, 0, 0, kInvalidJob);
  Read(h, 2, 1, 1, 1, kInvalidJob);
  Write(h, 2, 0, 2, 2);
  Write(h, 1, 1, 3, 3);
  Commit(h, 1, 4, 4);
  Commit(h, 2, 5, 5);
  const auto result = ReplaySerialWitness(h, 2);
  EXPECT_FALSE(result.serializable);
  EXPECT_FALSE(result.ok());
}

TEST(ReplayCheckerTest, OwnReadsValidatedAgainstOwnWrites) {
  History h;
  Write(h, 1, 0, 0, 0);
  h.RecordRead(1, 0, 1, 1, Value{1, 0}, /*own_read=*/true);
  Commit(h, 1, 2, 2);
  EXPECT_TRUE(ReplaySerialWitness(h, 1).ok());
}

TEST(ReplayCheckerTest, OwnReadWithWrongWriterFlagged) {
  History h;
  Write(h, 1, 0, 0, 0);
  h.RecordRead(1, 0, 1, 1, Value{99, 0}, /*own_read=*/true);
  Commit(h, 1, 2, 2);
  const auto result = ReplaySerialWitness(h, 1);
  EXPECT_EQ(result.mismatches.size(), 1u);
}

// End-to-end: every protocol's run on every paper example must replay.
TEST(ReplayCheckerTest, AllProtocolsAllExamplesReplay) {
  for (ProtocolKind kind : AllProtocolKinds()) {
    for (const PaperExample& example :
         {Example1(), Example3(), Example4(), Example5()}) {
      SimResult result = [&] {
        auto protocol = MakeProtocol(kind);
        SimulatorOptions options;
        options.horizon = example.horizon;
        options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
        Simulator sim(&example.set, protocol.get(), options);
        return sim.Run();
      }();
      const auto replay =
          ReplaySerialWitness(result.history, example.set.item_count());
      EXPECT_TRUE(replay.ok())
          << ToString(kind) << " on " << example.name << ": "
          << (replay.mismatches.empty()
                  ? std::string("not serializable")
                  : replay.mismatches[0].DebugString());
    }
  }
}

}  // namespace
}  // namespace pcpda
