#include <gtest/gtest.h>

#include "test_util.h"
#include "trace/csv.h"
#include "trace/gantt.h"
#include "trace/trace.h"

namespace pcpda {
namespace {

// --- Trace container ---------------------------------------------------

TEST(TraceTest, EventQueries) {
  Trace trace;
  TraceEvent arrival;
  arrival.tick = 0;
  arrival.kind = TraceKind::kArrival;
  arrival.job = 1;
  arrival.spec = 0;
  trace.AddEvent(arrival);
  TraceEvent commit = arrival;
  commit.tick = 5;
  commit.kind = TraceKind::kCommit;
  trace.AddEvent(commit);

  EXPECT_EQ(trace.EventsOfKind(TraceKind::kArrival).size(), 1u);
  EXPECT_EQ(trace.EventsOfKind(TraceKind::kCommit, 0).size(), 1u);
  EXPECT_TRUE(trace.EventsOfKind(TraceKind::kCommit, 1).empty());
  ASSERT_TRUE(trace.FirstEvent(TraceKind::kCommit, 1).has_value());
  EXPECT_EQ(trace.FirstEvent(TraceKind::kCommit, 1)->tick, 5);
  EXPECT_FALSE(trace.FirstEvent(TraceKind::kRestart, 1).has_value());
}

TEST(TraceTest, TickQueries) {
  Trace trace;
  for (Tick t = 0; t < 4; ++t) {
    TickRecord record;
    record.tick = t;
    record.running_job = t < 2 ? 7 : kInvalidJob;
    record.running_spec = t < 2 ? 1 : kInvalidSpec;
    record.ceiling = t == 1 ? Priority(3) : Priority::Dummy();
    if (t == 2) {
      BlockedSample sample;
      sample.job = 9;
      sample.spec = 0;
      record.blocked.push_back(sample);
    }
    trace.AddTick(record);
  }
  EXPECT_EQ(trace.RunningSpecAt(0), 1);
  EXPECT_EQ(trace.RunningSpecAt(3), kInvalidSpec);
  EXPECT_EQ(trace.RunningSpecAt(99), kInvalidSpec);
  EXPECT_EQ(trace.RunningTicks(1), 2);
  EXPECT_EQ(trace.BlockedTicks(9), 1);
  EXPECT_EQ(trace.BlockedTicks(7), 0);
  EXPECT_EQ(trace.MaxCeiling(), Priority(3));
}

TEST(TraceTest, CapacityBoundsRetainedWindow) {
  Trace trace;
  trace.SetCapacity(4);
  for (Tick t = 0; t < 20; ++t) {
    TraceEvent event;
    event.tick = t;
    event.kind = TraceKind::kArrival;
    event.job = t;
    trace.AddEvent(event);
    TickRecord record;
    record.tick = t;
    record.running_spec = static_cast<SpecId>(t % 3);
    trace.AddTick(record);
  }
  // Amortized compaction keeps at most 2x the capacity resident, the
  // newest entries survive, and every eviction is counted.
  EXPECT_LE(trace.events().size(), 8u);
  EXPECT_GE(trace.events().size(), 4u);
  EXPECT_EQ(trace.events().back().tick, 19);
  EXPECT_EQ(trace.dropped_events() +
                static_cast<std::int64_t>(trace.events().size()),
            20);
  EXPECT_EQ(trace.dropped_ticks() +
                static_cast<std::int64_t>(trace.ticks().size()),
            20);
  // Tick lookups answer over the retained window, offset-aware.
  const Tick first = trace.ticks().front().tick;
  EXPECT_GT(first, 0);
  EXPECT_EQ(trace.RunningSpecAt(first - 1), kInvalidSpec);
  EXPECT_EQ(trace.RunningSpecAt(19), static_cast<SpecId>(19 % 3));
}

TEST(TraceTest, ZeroCapacityKeepsEverything) {
  Trace trace;
  trace.SetCapacity(0);
  for (Tick t = 0; t < 50; ++t) {
    TickRecord record;
    record.tick = t;
    trace.AddTick(record);
  }
  EXPECT_EQ(trace.ticks().size(), 50u);
  EXPECT_EQ(trace.dropped_ticks(), 0);
}

TEST(TraceTest, BoundedTraceLeavesSimulationUnchanged) {
  // The ring drops old records but must not perturb the run itself:
  // metrics from a bounded run match the unbounded run exactly.
  const PaperExample example = Example3();
  const TransactionSet& set = example.set;
  auto run = [&set](std::size_t cap) {
    auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
    SimulatorOptions options;
    options.horizon = 200;
    options.max_trace_events = cap;
    Simulator sim(&set, protocol.get(), options);
    return sim.Run();
  };
  const SimResult unbounded = run(0);
  const SimResult bounded = run(16);
  EXPECT_EQ(unbounded.metrics.DebugString(set),
            bounded.metrics.DebugString(set));
  EXPECT_EQ(unbounded.trace.dropped_events(), 0);
  EXPECT_GT(bounded.trace.dropped_events(), 0);
  EXPECT_LE(bounded.trace.events().size(), 32u);
  EXPECT_LE(bounded.trace.ticks().size(), 32u);
  // The retained suffix of the bounded trace equals the tail of the full
  // trace.
  const auto& full = unbounded.trace.events();
  const auto& kept = bounded.trace.events();
  ASSERT_LE(kept.size(), full.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].DebugString(),
              full[full.size() - kept.size() + i].DebugString());
  }
}

TEST(TraceTest, EventDebugString) {
  TraceEvent e;
  e.tick = 3;
  e.kind = TraceKind::kBlock;
  e.job = 2;
  e.spec = 1;
  e.item = 4;
  e.mode = LockMode::kWrite;
  e.reason = BlockReason::kCeiling;
  e.others = {5, 6};
  e.note = "LC-denied";
  const std::string s = e.DebugString();
  EXPECT_NE(s.find("block"), std::string::npos);
  EXPECT_NE(s.find("d4"), std::string::npos);
  EXPECT_NE(s.find("ceiling"), std::string::npos);
  EXPECT_NE(s.find("LC-denied"), std::string::npos);
}

// --- Gantt -----------------------------------------------------------------

TEST(GanttTest, Example4PcpDaChart) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  const std::string chart = RenderGantt(example.set, result.trace);
  // Every transaction row present.
  for (SpecId i = 0; i < example.set.size(); ++i) {
    EXPECT_NE(chart.find(example.set.spec(i).name), std::string::npos);
  }
  EXPECT_NE(chart.find("ceiling"), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
  // T4 row starts with a read tick at t=0.
  const auto t4_pos = chart.find("T4");
  ASSERT_NE(t4_pos, std::string::npos);
  const std::string t4_row = chart.substr(t4_pos, 30);
  EXPECT_EQ(t4_row[t4_row.find('|') + 1], 'r');
}

TEST(GanttTest, BlockedShownAsB) {
  const PaperExample example = Example3();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  const std::string chart = RenderGantt(example.set, result.trace);
  // T1 is blocked t=1..5 under RW-PCP: its row contains 'B'.
  const auto t1_pos = chart.find("T1");
  const auto line_end = chart.find('\n', t1_pos);
  const std::string t1_row = chart.substr(t1_pos, line_end - t1_pos);
  EXPECT_NE(t1_row.find('B'), std::string::npos) << chart;
  EXPECT_NE(t1_row.find('!'), std::string::npos) << chart;  // miss marker
}

TEST(GanttTest, OptionsDisableRows) {
  const PaperExample example = Example1();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  GanttOptions options;
  options.show_ceiling = false;
  options.show_legend = false;
  const std::string chart = RenderGantt(example.set, result.trace, options);
  EXPECT_EQ(chart.find("ceiling"), std::string::npos);
  EXPECT_EQ(chart.find("legend"), std::string::npos);
}

// --- CSV -----------------------------------------------------------------

TEST(CsvTest, EventsCsvWellFormed) {
  const PaperExample example = Example1();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  const std::string csv = TraceEventsCsv(result.trace);
  EXPECT_EQ(csv.find("tick,kind,job"), 0u);
  // Header + one line per event.
  const std::size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, result.trace.events().size() + 1);
}

TEST(CsvTest, ScheduleCsvHasOneRowPerTick) {
  const PaperExample example = Example1();
  const SimResult result = RunExample(example, ProtocolKind::kRwPcp);
  const std::string csv = ScheduleCsv(example.set, result.trace);
  const std::size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, result.trace.ticks().size() + 1);
  EXPECT_NE(csv.find("T3"), std::string::npos);
}

TEST(CsvTest, MetricsCsvHasOneRowPerSpec) {
  const PaperExample example = Example4();
  const SimResult result = RunExample(example, ProtocolKind::kPcpDa);
  const std::string csv = MetricsCsv(example.set, result.metrics);
  const std::size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, static_cast<std::size_t>(example.set.size()) + 1);
}

}  // namespace
}  // namespace pcpda
