// Deeper PCP-DA coverage: multi-writer interleavings, lock upgrades,
// backlog handling, inheritance chains, and interplay with the
// deadline-miss policies — beyond the paper's worked examples.

#include <gtest/gtest.h>

#include "core/pcp_da.h"
#include "core/serialization_order.h"
#include "history/replay_checker.h"
#include "history/serialization_graph.h"
#include "test_util.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs) {
  auto set = TransactionSet::Create(std::move(specs),
                                    PriorityAssignment::kAsListed);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

SimResult RunDa(const TransactionSet& set, Tick horizon) {
  return RunWith(set, ProtocolKind::kPcpDa, horizon);
}

TEST(PcpDaDepthTest, ThreeConcurrentWritersAllCommit) {
  // Three blind writers of the same item coexist; the final value belongs
  // to the last committer.
  TransactionSet set = MakeSet({
      {.name = "A", .offset = 2, .body = {Write(0), Compute(1)}},
      {.name = "B", .offset = 1, .body = {Write(0), Compute(3)}},
      {.name = "C", .offset = 0, .body = {Write(0), Compute(5)}},
  });
  const SimResult result = RunDa(set, 20);
  EXPECT_EQ(result.metrics.TotalCommitted(), 3);
  for (const auto& m : result.metrics.per_spec) {
    EXPECT_EQ(m.blocked_ticks, 0);
  }
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_TRUE(ReplaySerialWitness(result.history, set.item_count()).ok());
}

TEST(PcpDaDepthTest, ReadThenWriteUpgradeOfOwnItem) {
  // A transaction upgrades its own read lock to a write lock: LC1 must
  // not see its own read lock as a conflict.
  TransactionSet set = MakeSet({
      {.name = "T", .body = {Read(0), Compute(1), Write(0)}},
  });
  const SimResult result = RunDa(set, 10);
  EXPECT_EQ(result.metrics.per_spec[0].committed, 1);
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0);
}

TEST(PcpDaDepthTest, UpgradeBlockedByOtherReader) {
  // H and L both read x; L then wants to write x and must wait for H's
  // read lock even though H has LOWER priority... (H here arrives later
  // and is higher priority; L's upgrade waits until H commits).
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Read(0), Compute(2)}},
      {.name = "L", .offset = 0, .body = {Read(0), Write(0)}},
  });
  const SimResult result = RunDa(set, 12);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  // L's write of x waits for H (conflict with H's read lock).
  EXPECT_GT(result.metrics.per_spec[1].blocked_ticks, 0)
      << FailureContext(set, result);
  EXPECT_GT(CommitTime(result, 1, 0), CommitTime(result, 0, 0));
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaDepthTest, CeilingPreventsChainedBlocking) {
  // An attempted two-level chain (H waits on M waits on L) cannot form
  // under PCP-DA: M is ceiling-blocked at its FIRST lock request (L's
  // read of z carries Wceil(z) = P_M), so M never holds the read lock on
  // y and H never blocks at all — Theorem 1 in action.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 4, .body = {Write(1)}},
      {.name = "X", .offset = 5, .body = {Compute(5)}},
      {.name = "M",
       .offset = 2,
       .body = {Read(1), Compute(2), Write(2)}},
      {.name = "L", .offset = 0, .body = {Read(2), Compute(4)}},
  });
  const SimResult result = RunDa(set, 24);
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_EQ(result.metrics.TotalCommitted(), 4);
  // H never blocks.
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0)
      << FailureContext(set, result);
  // M is blocked exactly once (single blocking), by L alone.
  EXPECT_EQ(result.metrics.per_spec[2].ceiling_blocks +
                result.metrics.per_spec[2].conflict_blocks,
            1);
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind == TraceKind::kBlock && e.spec == 2) {
      ASSERT_EQ(e.others.size(), 1u);
      const auto arrival =
          result.trace.FirstEvent(TraceKind::kArrival, e.others[0]);
      ASSERT_TRUE(arrival.has_value());
      EXPECT_EQ(arrival->spec, 3);  // the blocker is L
    }
  }
  // M's effective blocking respects the Section-9 bound (B_M <= C_L = 5).
  EXPECT_LE(result.metrics.per_spec[2].max_effective_blocking, 5);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaDepthTest, BacklogRunsFifoWithinSpec) {
  // Period shorter than execution time: instances pile up and must
  // commit in release order.
  TransactionSet set = MakeSet({
      {.name = "T", .period = 2, .body = {Read(0), Compute(2)}},
  });
  const SimResult result = RunDa(set, 20);
  Tick previous = -1;
  for (int instance = 0; instance < 5; ++instance) {
    const Tick commit = CommitTime(result, 0, instance);
    if (commit < 0) break;
    EXPECT_GT(commit, previous);
    previous = commit;
  }
  EXPECT_GT(result.metrics.per_spec[0].deadline_misses, 0);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaDepthTest, DropPolicyReleasesLocksCleanly) {
  // A low-priority reader is dropped at its deadline while holding a
  // read lock; the pending writer then proceeds.
  TransactionSpec reader{.name = "R",
                         .period = 6,
                         .body = {Read(0), Compute(5)}};
  reader.relative_deadline = 3;
  TransactionSpec hog{.name = "HOG", .offset = 0, .body = {Compute(3)}};
  TransactionSpec writer{.name = "W", .offset = 4, .body = {Write(0)}};
  // Priorities: HOG > W > R? We want R to start, get preempted, miss.
  auto made = TransactionSet::Create({hog, writer, reader},
                                     PriorityAssignment::kAsListed);
  ASSERT_TRUE(made.ok());
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 24;
  options.miss_policy = DeadlineMissPolicy::kDrop;
  Simulator sim(&*made, protocol.get(), options);
  const SimResult result = sim.Run();
  EXPECT_GT(result.metrics.per_spec[2].dropped, 0);
  EXPECT_GT(result.metrics.per_spec[1].committed, 0);
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaDepthTest, ReaderUnderTwoWriteLocks) {
  // Both L1 and L2 hold write locks on x (blind writes); H reads x and
  // must pass the wr-guard against BOTH holders.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 2, .body = {Read(0)}},
      {.name = "L1", .offset = 1, .body = {Write(0), Compute(4)}},
      {.name = "L2", .offset = 0, .body = {Write(0), Compute(6)}},
  });
  const SimResult result = RunDa(set, 20);
  EXPECT_EQ(result.metrics.per_spec[0].blocked_ticks, 0)
      << FailureContext(set, result);
  // H reads the initial value (both writes still in workspaces).
  const CommittedTxn* reader = nullptr;
  for (const auto& txn : result.history.committed()) {
    if (txn.spec == 0) reader = &txn;
  }
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->ops[0].observed.writer, kInvalidJob);
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_TRUE(FindCommitOrderViolations(result.history).empty());
}

TEST(PcpDaDepthTest, WrGuardAgainstSecondWriterOnly) {
  // L1's write lock on x is harmless, but L2 (also write-locking x) has
  // read an item H writes: the wr-guard must block H because of L2 alone.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 2, .body = {Read(0), Write(1)}},
      {.name = "L1", .offset = 1, .body = {Write(0), Compute(5)}},
      {.name = "L2",
       .offset = 0,
       .body = {Read(2), Write(0), Compute(5)}},
  });
  // DataRead(L2) = {2}; WriteSet(H) = {1} -> disjoint, so H is fine!
  // Change: L2 reads item 1 which H writes.
  TransactionSet set2 = MakeSet({
      {.name = "H", .offset = 2, .body = {Read(0), Write(1)}},
      {.name = "L1", .offset = 1, .body = {Write(0), Compute(5)}},
      {.name = "L2",
       .offset = 0,
       .body = {Read(1), Write(0), Compute(5)}},
  });
  (void)set;
  const SimResult result = RunWith(set2, ProtocolKind::kPcpDa, 24);
  bool saw_wr_guard = false;
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind == TraceKind::kBlock && e.spec == 0 &&
        e.note == "wr-guard") {
      saw_wr_guard = true;
      // Only L2 (job 0, released at t=0) blocks H.
      EXPECT_EQ(e.others.size(), 1u);
    }
  }
  EXPECT_TRUE(saw_wr_guard) << FailureContext(set2, result);
  EXPECT_TRUE(IsSerializable(result.history));
  EXPECT_FALSE(result.deadlock_detected);
}

TEST(PcpDaDepthTest, Lc4DeniedWhenAnotherReaderHoldsItem) {
  // LC4 requires No_Rlock(x). A HIGHER-priority reader R holds z when M
  // (the highest-priority writer of z, P_M == Wceil(z)) asks to read it:
  // LC2 fails (R's read lock raises Sysceil to Wceil(z) = P_M), LC3
  // fails, and LC4's No_Rlock(z) fails — M waits for R. (A lower-priority
  // second reader is impossible here by Lemma 5.)
  TransactionSet set = MakeSet({
      {.name = "R", .offset = 0, .body = {Read(2), Compute(6)}},
      {.name = "M", .offset = 2, .body = {Read(2), Write(2)}},
  });
  const SimResult result = RunDa(set, 20);
  EXPECT_GT(result.metrics.per_spec[1].blocked_ticks, 0)
      << FailureContext(set, result);
  // M proceeds right after R commits.
  EXPECT_EQ(CommitTime(result, 0, 0), 7);
  EXPECT_EQ(CommitTime(result, 1, 0), 9);
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(PcpDaDepthTest, SporadicArrivalsKeepTheorems) {
  TransactionSpec a{.name = "A", .period = 7, .body = {Read(0), Write(1)}};
  TransactionSpec b{.name = "B",
                    .period = 13,
                    .body = {Read(1), Write(0), Compute(2)}};
  TransactionSpec c{.name = "C",
                    .period = 29,
                    .body = {Read(0), Read(1), Compute(4)}};
  auto set = TransactionSet::Create({a, b, c});
  ASSERT_TRUE(set.ok());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const ArrivalSchedule schedule =
        ArrivalSchedule::Sporadic(*set, 600, 0.4, rng);
    auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
    SimulatorOptions options;
    options.horizon = 600;
    options.arrival_schedule = &schedule;
    Simulator sim(&*set, protocol.get(), options);
    const SimResult result = sim.Run();
    EXPECT_FALSE(result.deadlock_detected) << "seed " << seed;
    EXPECT_EQ(result.metrics.TotalRestarts(), 0);
    EXPECT_TRUE(IsSerializable(result.history));
    EXPECT_TRUE(FindCommitOrderViolations(result.history).empty());
    EXPECT_TRUE(
        ReplaySerialWitness(result.history, set->item_count()).ok());
  }
}

}  // namespace
}  // namespace pcpda
