#include <gtest/gtest.h>

#include "analysis/blocking.h"
#include "common/rng.h"
#include "test_util.h"
#include "workload/generator.h"
#include "analysis/report.h"
#include "analysis/response_time.h"
#include "analysis/rm_bound.h"
#include "workload/paper_examples.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs,
                       PriorityAssignment pa =
                           PriorityAssignment::kAsListed) {
  auto set = TransactionSet::Create(std::move(specs), pa);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

// --- ComputeBlocking: BTS membership rules ---------------------------------

TEST(BlockingTest, PcpDaOnlyReadersBlock) {
  // L writes x (Aceil(x) = P_H because H reads it): under RW-PCP L blocks
  // H; under PCP-DA writes are preemptable so BTS_H is empty.
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Read(0)}},
      {.name = "L", .period = 20, .body = {Write(0), Compute(2)}},
  });
  const auto pcpda = ComputeBlocking(set, ProtocolKind::kPcpDa);
  const auto rwpcp = ComputeBlocking(set, ProtocolKind::kRwPcp);
  EXPECT_TRUE(pcpda.per_spec[0].bts.empty());
  EXPECT_EQ(pcpda.B(0), 0);
  EXPECT_EQ(rwpcp.per_spec[0].bts, (std::vector<SpecId>{1}));
  EXPECT_EQ(rwpcp.B(0), 3);
}

TEST(BlockingTest, PcpDaReaderOfHighCeilingItemBlocks) {
  // L reads x which H writes: Wceil(x) = P_H, so L ∈ BTS_H under PCP-DA.
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Write(0)}},
      {.name = "L", .period = 20, .body = {Read(0), Compute(3)}},
  });
  const auto pcpda = ComputeBlocking(set, ProtocolKind::kPcpDa);
  EXPECT_EQ(pcpda.per_spec[0].bts, (std::vector<SpecId>{1}));
  EXPECT_EQ(pcpda.B(0), 4);
}

TEST(BlockingTest, IntermediateSpecBlockedThroughCeiling) {
  // M neither reads nor writes x, but L's read of x (Wceil = P_H >= P_M)
  // can ceiling-block M.
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Write(0)}},
      {.name = "M", .period = 20, .body = {Read(1)}},
      {.name = "L", .period = 40, .body = {Read(0), Compute(2)}},
  });
  const auto pcpda = ComputeBlocking(set, ProtocolKind::kPcpDa);
  EXPECT_EQ(pcpda.per_spec[1].bts, (std::vector<SpecId>{2}));
  EXPECT_EQ(pcpda.B(1), 3);
}

TEST(BlockingTest, HigherPriorityNeverInBts) {
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Write(0)}},
      {.name = "L", .period = 20, .body = {Read(0)}},
  });
  for (ProtocolKind kind : AnalyzableProtocolKinds()) {
    const auto analysis = ComputeBlocking(set, kind);
    EXPECT_TRUE(analysis.per_spec[1].bts.empty())
        << ToString(kind) << ": lowest spec has nobody below it";
  }
}

TEST(BlockingTest, PcpDaBtsSubsetOfRwPcp) {
  const TransactionSet set = Example4().set;
  const auto pcpda = ComputeBlocking(set, ProtocolKind::kPcpDa);
  const auto rwpcp = ComputeBlocking(set, ProtocolKind::kRwPcp);
  for (SpecId i = 0; i < set.size(); ++i) {
    const auto& sub = pcpda.per_spec[static_cast<std::size_t>(i)].bts;
    const auto& super = rwpcp.per_spec[static_cast<std::size_t>(i)].bts;
    for (SpecId l : sub) {
      EXPECT_NE(std::find(super.begin(), super.end(), l), super.end());
    }
    EXPECT_LE(pcpda.B(i), rwpcp.B(i));
  }
}

TEST(BlockingTest, OpcpAtLeastAsPessimisticAsRwPcp) {
  const TransactionSet set = Example4().set;
  const auto opcp = ComputeBlocking(set, ProtocolKind::kOpcp);
  const auto rwpcp = ComputeBlocking(set, ProtocolKind::kRwPcp);
  for (SpecId i = 0; i < set.size(); ++i) {
    EXPECT_GE(opcp.B(i), rwpcp.B(i));
  }
}

TEST(BlockingTest, Example4Numbers) {
  const TransactionSet set = Example4().set;  // T1,T2,T3,T4 as listed
  const auto pcpda = ComputeBlocking(set, ProtocolKind::kPcpDa);
  const auto rwpcp = ComputeBlocking(set, ProtocolKind::kRwPcp);
  // T4 (C=5) reads y (Wceil=P2): blocks T2..T3 under PCP-DA; its write of
  // x (Aceil=P1) additionally blocks T1 under RW-PCP only.
  EXPECT_EQ(pcpda.B(0), 0);  // T1: nobody below reads a >=P1 item
  EXPECT_EQ(rwpcp.B(0), 5);  // T4's write of x has Aceil = P1
  EXPECT_EQ(pcpda.B(1), 5);  // T4 reads y, Wceil(y)=P2
  EXPECT_EQ(pcpda.B(2), 5);
}

// --- CCP holding window -----------------------------------------------------

TEST(CcpWindowTest, ReleaseAfterLastUseShortensWindow) {
  // body: Read(x) then 4 compute ticks; x ceiling >= level; no future
  // locks -> released after tick 1: window = 1, not C = 5.
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Write(0)}},
      {.name = "L", .period = 40, .body = {Read(0), Compute(4)}},
  });
  const StaticCeilings ceilings(set);
  EXPECT_EQ(CcpHoldingWindow(set.spec(1), ceilings, set.priority(0)), 1);
  const auto ccp = ComputeBlocking(set, ProtocolKind::kCcp);
  const auto rwpcp = ComputeBlocking(set, ProtocolKind::kRwPcp);
  EXPECT_EQ(ccp.B(0), 1);
  EXPECT_EQ(rwpcp.B(0), 5);
}

TEST(CcpWindowTest, HeldToEndWhenHigherCeilingFollows) {
  // L reads x (low ceiling) then later reads y (high ceiling): x cannot
  // be released before y's acquisition.
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Write(1)}},   // Wceil(y)=P1
      {.name = "M", .period = 20, .body = {Write(0)}},   // Wceil(x)=P2
      {.name = "L",
       .period = 40,
       .body = {Read(0), Compute(2), Read(1), Compute(1)}},
  });
  const StaticCeilings ceilings(set);
  // Window at level P2: x acquired at 0; release only when no higher
  // future ceiling remains: y (ceiling P1) is read at step 3, so x is
  // held until after that read -> window spans [0, 4); y itself is
  // released at 4 (last step has no higher ceiling) -> max release 4.
  EXPECT_EQ(CcpHoldingWindow(set.spec(2), ceilings, set.priority(1)), 4);
}

TEST(CcpWindowTest, ZeroWhenNoOffendingItems) {
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Read(0)}},
      {.name = "L", .period = 40, .body = {Read(1), Compute(2)}},
  });
  const StaticCeilings ceilings(set);
  EXPECT_EQ(CcpHoldingWindow(set.spec(1), ceilings, set.priority(0)), 0);
}

// --- Liu-Layland test -------------------------------------------------------

TEST(RmBoundTest, BoundValues) {
  EXPECT_DOUBLE_EQ(RmUtilizationBound(1), 1.0);
  EXPECT_NEAR(RmUtilizationBound(2), 0.8284, 1e-3);
  EXPECT_NEAR(RmUtilizationBound(3), 0.7798, 1e-3);
}

TEST(RmBoundTest, AcceptsLowUtilization) {
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 10, .body = {Compute(2)}},
          {.name = "B", .period = 20, .body = {Compute(2)}},
      },
      PriorityAssignment::kRateMonotonic);
  const auto result = LiuLaylandTest(set, {0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schedulable);
}

TEST(RmBoundTest, BlockingTermCanBreakIt) {
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 10, .body = {Compute(2)}},
          {.name = "B", .period = 20, .body = {Compute(2)}},
      },
      PriorityAssignment::kRateMonotonic);
  // B_1 = 7 adds 0.7 to A's term: 0.2 + 0.7 < 1.0 still OK; B_1 = 9
  // pushes it over.
  auto ok = LiuLaylandTest(set, {7, 0});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->schedulable);
  auto bad = LiuLaylandTest(set, {9, 0});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->schedulable);
  EXPECT_FALSE(bad->per_spec[0].schedulable);
}

TEST(RmBoundTest, RejectsOneShotSpecs) {
  TransactionSet set = MakeSet({{.name = "A", .body = {Compute(1)}}});
  EXPECT_FALSE(LiuLaylandTest(set, {0}).ok());
}

TEST(RmBoundTest, RejectsWrongVectorSize) {
  TransactionSet set = MakeSet(
      {{.name = "A", .period = 10, .body = {Compute(1)}}},
      PriorityAssignment::kRateMonotonic);
  EXPECT_FALSE(LiuLaylandTest(set, {0, 0}).ok());
}

TEST(RmBoundTest, RejectsNonRmOrder) {
  TransactionSet set = MakeSet(
      {
          {.name = "slow", .period = 20, .body = {Compute(1)}},
          {.name = "fast", .period = 10, .body = {Compute(1)}},
      },
      PriorityAssignment::kAsListed);
  EXPECT_FALSE(LiuLaylandTest(set, {0, 0}).ok());
}

// --- Response-time analysis ---------------------------------------------------

TEST(ResponseTimeTest, ExactFixpoint) {
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 10, .body = {Compute(3)}},
          {.name = "B", .period = 20, .body = {Compute(4)}},
      },
      PriorityAssignment::kRateMonotonic);
  const auto result = ResponseTimeAnalysis(set, {0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schedulable);
  EXPECT_EQ(result->per_spec[0].response, 3);
  EXPECT_EQ(result->per_spec[1].response, 7);  // 4 + one preemption by A
}

TEST(ResponseTimeTest, BlockingAddsDirectly) {
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 10, .body = {Compute(3)}},
          {.name = "B", .period = 20, .body = {Compute(4)}},
      },
      PriorityAssignment::kRateMonotonic);
  const auto result = ResponseTimeAnalysis(set, {2, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_spec[0].response, 5);
}

TEST(ResponseTimeTest, DetectsUnschedulable) {
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 4, .body = {Compute(3)}},
          {.name = "B", .period = 8, .body = {Compute(4)}},
      },
      PriorityAssignment::kRateMonotonic);
  const auto result = ResponseTimeAnalysis(set, {0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->per_spec[0].schedulable);
  EXPECT_FALSE(result->per_spec[1].schedulable);
  EXPECT_FALSE(result->schedulable);
}

TEST(ResponseTimeTest, TighterThanLiuLayland) {
  // Classic case: utilization above the LL bound yet schedulable.
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 4, .body = {Compute(2)}},
          {.name = "B", .period = 8, .body = {Compute(4)}},
      },
      PriorityAssignment::kRateMonotonic);
  const auto ll = LiuLaylandTest(set, {0, 0});
  const auto rta = ResponseTimeAnalysis(set, {0, 0});
  ASSERT_TRUE(ll.ok());
  ASSERT_TRUE(rta.ok());
  EXPECT_FALSE(ll->schedulable);   // U = 1.0 > 0.828
  EXPECT_TRUE(rta->schedulable);   // exact test: fits perfectly
}

// --- Reports -----------------------------------------------------------------

TEST(ReportTest, BlockingComparisonTableMentionsAllProtocols) {
  const std::string table = BlockingComparisonTable(Example4().set);
  EXPECT_NE(table.find("PCP-DA"), std::string::npos);
  EXPECT_NE(table.find("RW-PCP"), std::string::npos);
  EXPECT_NE(table.find("CCP"), std::string::npos);
  EXPECT_NE(table.find("T4"), std::string::npos);
}

TEST(ReportTest, SchedulabilityReportRunsOnPeriodicSet) {
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 10, .body = {Read(0)}},
          {.name = "B", .period = 20, .body = {Write(0), Compute(1)}},
      },
      PriorityAssignment::kRateMonotonic);
  const std::string report = SchedulabilityReport(set);
  EXPECT_NE(report.find("Liu-Layland"), std::string::npos);
  EXPECT_NE(report.find("response-time"), std::string::npos);
  EXPECT_NE(report.find("schedulable"), std::string::npos);
}


// --- Hyperbolic bound (extension) --------------------------------------------

TEST(HyperbolicTest, TighterThanLiuLayland) {
  // U = 0.5 + 0.333 = 0.833 > LL bound 0.828, but the hyperbolic product
  // (1.5)(1.333) = 2.0 <= 2 admits it.
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 2, .body = {Compute(1)}},
          {.name = "B", .period = 3, .body = {Compute(1)}},
      },
      PriorityAssignment::kRateMonotonic);
  const auto ll = LiuLaylandTest(set, {0, 0});
  const auto hb = HyperbolicTest(set, {0, 0});
  ASSERT_TRUE(ll.ok());
  ASSERT_TRUE(hb.ok());
  EXPECT_FALSE(ll->schedulable);
  EXPECT_TRUE(hb->schedulable);
}

TEST(HyperbolicTest, BlockingFactorCanBreakIt) {
  TransactionSet set = MakeSet(
      {
          {.name = "A", .period = 10, .body = {Compute(4)}},
          {.name = "B", .period = 20, .body = {Compute(6)}},
      },
      PriorityAssignment::kRateMonotonic);
  auto ok = HyperbolicTest(set, {0, 0});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->schedulable);  // A: 1.4 <= 2; B: 1.4 * 1.3 = 1.82 <= 2
  // B_1 = 7 makes A's term 0.4 + 0.7 + 1 = 2.1 > 2.
  auto bad = HyperbolicTest(set, {7, 0});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->schedulable);
  EXPECT_FALSE(bad->per_spec[0].schedulable);
  EXPECT_TRUE(bad->per_spec[1].schedulable);
}

TEST(HyperbolicTest, RejectsOneShotAndBadSizes) {
  TransactionSet one_shot = MakeSet({{.name = "A", .body = {Compute(1)}}});
  EXPECT_FALSE(HyperbolicTest(one_shot, {0}).ok());
  TransactionSet periodic = MakeSet(
      {{.name = "A", .period = 10, .body = {Compute(1)}}},
      PriorityAssignment::kRateMonotonic);
  EXPECT_FALSE(HyperbolicTest(periodic, {0, 0}).ok());
}

TEST(HyperbolicTest, NeverRejectsWhatLiuLaylandAccepts) {
  // The hyperbolic bound dominates LL: anything LL admits passes.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    WorkloadParams params;
    params.total_utilization = 0.55;
    auto set = GenerateWorkload(params, rng);
    ASSERT_TRUE(set.ok());
    const auto blocking = ComputeBlocking(*set, ProtocolKind::kPcpDa);
    const auto ll = LiuLaylandTest(*set, blocking.AllB());
    const auto hb = HyperbolicTest(*set, blocking.AllB());
    ASSERT_TRUE(ll.ok());
    ASSERT_TRUE(hb.ok());
    if (ll->schedulable) {
      EXPECT_TRUE(hb->schedulable) << "seed " << seed;
    }
  }
}

// --- Deadline-monotonic assignment (extension) -------------------------------

TEST(DeadlineMonotonicTest, OrdersByEffectiveDeadline) {
  TransactionSpec a{.name = "long", .period = 10, .body = {Compute(1)}};
  TransactionSpec b{.name = "short", .period = 50, .body = {Compute(1)}};
  b.relative_deadline = 5;  // shorter deadline than a's period
  auto set = TransactionSet::Create(
      {a, b}, PriorityAssignment::kDeadlineMonotonic);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->spec(0).name, "short");
  EXPECT_EQ(set->spec(1).name, "long");
}

TEST(DeadlineMonotonicTest, EqualsRateMonotonicWithoutDeadlines) {
  TransactionSpec a{.name = "a", .period = 30, .body = {Compute(1)}};
  TransactionSpec b{.name = "b", .period = 10, .body = {Compute(1)}};
  auto dm = TransactionSet::Create(
      {a, b}, PriorityAssignment::kDeadlineMonotonic);
  auto rm = TransactionSet::Create({a, b});
  ASSERT_TRUE(dm.ok());
  ASSERT_TRUE(rm.ok());
  EXPECT_EQ(dm->DebugString(), rm->DebugString());
}

TEST(DeadlineMonotonicTest, CanScheduleWhatRmMisses) {
  // Classic: a long-period transaction with a tight deadline needs DM.
  TransactionSpec urgent{.name = "urgent",
                         .period = 100,
                         .body = {Compute(2)}};
  urgent.relative_deadline = 4;
  TransactionSpec frequent{.name = "frequent",
                           .period = 10,
                           .body = {Compute(3)}};
  auto rm = TransactionSet::Create({urgent, frequent});
  auto dm = TransactionSet::Create(
      {urgent, frequent}, PriorityAssignment::kDeadlineMonotonic);
  ASSERT_TRUE(rm.ok());
  ASSERT_TRUE(dm.ok());
  const SimResult rm_run = RunWith(*rm, ProtocolKind::kPcpDa, 100);
  const SimResult dm_run = RunWith(*dm, ProtocolKind::kPcpDa, 100);
  EXPECT_GT(rm_run.metrics.TotalMisses(), 0);
  EXPECT_EQ(dm_run.metrics.TotalMisses(), 0);
}

// --- Response percentiles (extension) ----------------------------------------

TEST(ResponsePercentileTest, NearestRank) {
  SpecMetrics m;
  m.responses = {5, 1, 9, 3, 7};
  EXPECT_EQ(m.ResponsePercentile(0.0), 1);
  EXPECT_EQ(m.ResponsePercentile(0.5), 5);
  EXPECT_EQ(m.ResponsePercentile(1.0), 9);
}

TEST(ResponsePercentileTest, ExtremesAreExactOrderStatistics) {
  SpecMetrics m;
  m.responses = {4, 2, 8, 6};  // even count: rounding ranks would drift
  EXPECT_EQ(m.ResponsePercentile(0.0), 2);  // exact minimum
  EXPECT_EQ(m.ResponsePercentile(1.0), 8);  // exact maximum
  // Nearest rank: index ceil(p*n)-1 over the sorted sample {2,4,6,8}.
  EXPECT_EQ(m.ResponsePercentile(0.25), 2);
  EXPECT_EQ(m.ResponsePercentile(0.5), 4);
  EXPECT_EQ(m.ResponsePercentile(0.75), 6);
}

TEST(ResponsePercentileTest, SingleSample) {
  SpecMetrics m;
  m.responses = {7};
  EXPECT_EQ(m.ResponsePercentile(0.0), 7);
  EXPECT_EQ(m.ResponsePercentile(0.5), 7);
  EXPECT_EQ(m.ResponsePercentile(1.0), 7);
}

TEST(ResponsePercentileTest, EmptyIsZero) {
  SpecMetrics m;
  EXPECT_EQ(m.ResponsePercentile(0.9), 0);
}

TEST(ResponsePercentileTest, BatchMatchesPerCallOnBothPaths) {
  SpecMetrics m;
  m.responses = {12, 4, 20, 4, 16, 8, 2, 18};
  // > 2 quantiles takes the sort-once path; <= 2 the nth_element path.
  // Both must agree elementwise with the per-call answers, regardless of
  // the order the quantiles are asked in.
  const std::vector<double> many = {1.0, 0.0, 0.5, 0.25, 0.75, 0.9};
  const std::vector<Tick> batch = m.ResponsePercentiles(many);
  ASSERT_EQ(batch.size(), many.size());
  for (std::size_t i = 0; i < many.size(); ++i) {
    EXPECT_EQ(batch[i], m.ResponsePercentile(many[i])) << "p=" << many[i];
  }
  const std::vector<Tick> pair = m.ResponsePercentiles({0.95, 0.05});
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0], m.ResponsePercentile(0.95));
  EXPECT_EQ(pair[1], m.ResponsePercentile(0.05));
}

TEST(ResponsePercentileTest, BatchOnEmptyYieldsZeros) {
  SpecMetrics m;
  const std::vector<Tick> out = m.ResponsePercentiles({0.0, 0.5, 1.0});
  EXPECT_EQ(out, (std::vector<Tick>{0, 0, 0}));
}

TEST(ResponsePercentileTest, PopulatedBySimulator) {
  TransactionSet set = MakeSet(
      {{.name = "T", .period = 5, .body = {Compute(2)}}},
      PriorityAssignment::kRateMonotonic);
  const SimResult result = RunWith(set, ProtocolKind::kPcpDa, 25);
  const auto& m = result.metrics.per_spec[0];
  EXPECT_EQ(m.responses.size(), 5u);
  EXPECT_EQ(m.ResponsePercentile(1.0), m.max_response);
}

// --- ProtocolTraits analyzability -----------------------------------------

TEST(TraitsTest, AnalyzableDerivedFromBlockingBound) {
  for (ProtocolKind kind : AllProtocolKinds()) {
    const ProtocolTraits traits = TraitsOf(kind);
    EXPECT_EQ(traits.analyzable(),
              traits.blocking_bound != BlockingBoundKind::kUnbounded)
        << ToString(kind);
  }
  // Exactly 2PL-PI lacks a finite bound.
  const auto kinds = AnalyzableProtocolKinds();
  EXPECT_EQ(kinds.size(), AllProtocolKinds().size() - 1);
  for (ProtocolKind kind : kinds) {
    EXPECT_NE(kind, ProtocolKind::kTwoPlPi);
  }
}

// --- protocol-specific blocking terms --------------------------------------

TEST(BlockingTest, TwoPlHpSumsConflictingLowerSpecs) {
  // 2PL-HP riders: a lock wait can queue behind EVERY conflicting lower
  // spec, so B sums their execution times (ceiling protocols take the
  // max of one critical section instead).
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Write(0)}},
      {.name = "M", .period = 20, .body = {Read(0), Compute(1)}},
      {.name = "L", .period = 40, .body = {Write(0), Compute(3)}},
  });
  const auto hp = ComputeBlocking(set, ProtocolKind::kTwoPlHp);
  EXPECT_EQ(hp.per_spec[0].bts, (std::vector<SpecId>{1, 2}));
  EXPECT_EQ(hp.B(0), 2 + 4);
  EXPECT_EQ(hp.B(1), 4);
  EXPECT_EQ(hp.B(2), 0);
  // Higher-priority conflicting specs abort instead of blocking: they
  // become restart sources, one abort per conflicting lock request.
  ASSERT_EQ(hp.per_spec[1].restart_sources.size(), 1u);
  EXPECT_EQ(hp.per_spec[1].restart_sources[0].spec, 0);
  EXPECT_EQ(hp.per_spec[1].restart_sources[0].per_release, 1);
  ASSERT_EQ(hp.per_spec[2].restart_sources.size(), 2u);
  EXPECT_EQ(hp.per_spec[2].restart_sources[0].spec, 0);
  EXPECT_EQ(hp.per_spec[2].restart_sources[1].spec, 1);
}

TEST(BlockingTest, OccNeverBlocksOnlyRestarts) {
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Write(0)}},
      {.name = "M", .period = 20, .body = {Read(0), Compute(1)}},
      {.name = "L", .period = 40, .body = {Read(1), Compute(1)}},
  });
  for (ProtocolKind kind :
       {ProtocolKind::kOccBc, ProtocolKind::kOccDa}) {
    const auto occ = ComputeBlocking(set, kind);
    EXPECT_EQ(occ.AllB(), (std::vector<Tick>{0, 0, 0})) << ToString(kind);
    // Only M reads what H writes; L's read set is disjoint.
    EXPECT_TRUE(occ.per_spec[0].restart_sources.empty());
    ASSERT_EQ(occ.per_spec[1].restart_sources.size(), 1u);
    EXPECT_EQ(occ.per_spec[1].restart_sources[0].spec, 0);
    EXPECT_EQ(occ.per_spec[1].restart_sources[0].per_release, 1);
    EXPECT_TRUE(occ.per_spec[2].restart_sources.empty());
  }
}

TEST(BlockingTest, TwoPlPiUnboundedOnlyWhenConflicting) {
  TransactionSet set = MakeSet({
      {.name = "A", .period = 10, .body = {Write(0)}},
      {.name = "B", .period = 20, .body = {Read(0)}},
      {.name = "C", .period = 40, .body = {Read(1)}},
  });
  const auto pi = ComputeBlocking(set, ProtocolKind::kTwoPlPi);
  EXPECT_FALSE(pi.bounded);
  EXPECT_FALSE(pi.per_spec[0].bounded);
  EXPECT_FALSE(pi.per_spec[1].bounded);
  // C touches only d1, which nobody writes: no chained blocking.
  EXPECT_TRUE(pi.per_spec[2].bounded);
  EXPECT_EQ(pi.ForSpec(2).worst_blocking, 0);
}

#if GTEST_HAS_DEATH_TEST
TEST(BlockingDeathTest, UnboundedBRefusesToAnswer) {
  TransactionSet set = MakeSet({
      {.name = "A", .period = 10, .body = {Write(0)}},
      {.name = "B", .period = 20, .body = {Read(0)}},
  });
  const auto pi = ComputeBlocking(set, ProtocolKind::kTwoPlPi);
  EXPECT_DEATH(pi.B(0), "no finite blocking bound");
}

TEST(BlockingDeathTest, OutOfRangeSpecIdRefused) {
  TransactionSet set = MakeSet({
      {.name = "A", .period = 10, .body = {Write(0)}},
  });
  const auto analysis = ComputeBlocking(set, ProtocolKind::kPcpDa);
  EXPECT_DEATH(analysis.ForSpec(1), "out of range");
  EXPECT_DEATH(analysis.B(-1), "out of range");
}
#endif  // GTEST_HAS_DEATH_TEST

// --- AnalyzeResponseTimes: verdicts ----------------------------------------

TEST(SchedAnalysisTest, SchedulableWithCeilingBlocking) {
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Read(0)}},
      {.name = "L", .period = 20, .body = {Write(0), Compute(2)}},
  });
  const auto sched = AnalyzeResponseTimes(
      set, ComputeBlocking(set, ProtocolKind::kRwPcp));
  // R_H = C_H + B_H = 1 + 3; R_L = 3 + ceil(4/10) * 1.
  EXPECT_EQ(sched.per_spec[0].verdict, SchedVerdict::kSchedulable);
  EXPECT_EQ(sched.per_spec[0].response, 4);
  EXPECT_EQ(sched.per_spec[1].verdict, SchedVerdict::kSchedulable);
  EXPECT_EQ(sched.per_spec[1].response, 4);
  EXPECT_EQ(sched.verdict, SchedVerdict::kSchedulable);
}

TEST(SchedAnalysisTest, OverloadIsUnschedulable) {
  TransactionSet set = MakeSet({
      {.name = "H", .period = 4, .body = {Compute(3)}},
      {.name = "L", .period = 8, .body = {Compute(4)}},
  });
  const auto sched = AnalyzeResponseTimes(
      set, ComputeBlocking(set, ProtocolKind::kPcpDa));
  EXPECT_EQ(sched.per_spec[0].verdict, SchedVerdict::kSchedulable);
  EXPECT_EQ(sched.per_spec[1].verdict, SchedVerdict::kUnschedulable);
  EXPECT_EQ(sched.per_spec[1].response, kNoTick);
  EXPECT_EQ(sched.verdict, SchedVerdict::kUnschedulable);
}

TEST(SchedAnalysisTest, OneShotSetIsUnknown) {
  TransactionSet set = MakeSet({
      {.name = "A", .body = {Read(0)}},
      {.name = "B", .period = 10, .body = {Write(0)}},
  });
  const auto sched = AnalyzeResponseTimes(
      set, ComputeBlocking(set, ProtocolKind::kPcpDa));
  EXPECT_EQ(sched.per_spec[0].verdict, SchedVerdict::kUnknown);
  EXPECT_EQ(sched.per_spec[1].verdict, SchedVerdict::kUnknown);
  EXPECT_EQ(sched.verdict, SchedVerdict::kUnknown);
}

TEST(SchedAnalysisTest, UnboundedSpecAndEverythingBelowIsUnknown) {
  TransactionSet set = MakeSet({
      {.name = "A", .period = 10, .body = {Write(0)}},
      {.name = "B", .period = 20, .body = {Read(0)}},
      {.name = "C", .period = 40, .body = {Read(1)}},
  });
  const auto sched = AnalyzeResponseTimes(
      set, ComputeBlocking(set, ProtocolKind::kTwoPlPi));
  EXPECT_EQ(sched.per_spec[0].verdict, SchedVerdict::kUnknown);
  EXPECT_EQ(sched.per_spec[1].verdict, SchedVerdict::kUnknown);
  // C is bounded and its fixpoint converges, but the unbounded specs
  // above it could overrun arbitrarily — no sound claim exists.
  EXPECT_EQ(sched.per_spec[2].verdict, SchedVerdict::kUnknown);
  EXPECT_EQ(sched.verdict, SchedVerdict::kUnknown);
}

TEST(SchedAnalysisTest, UnschedulableHigherSpecDegradesLowerClaim) {
  TransactionSet set = MakeSet({
      {.name = "H",
       .period = 10,
       .relative_deadline = 2,
       .body = {Compute(3)}},
      {.name = "L", .period = 10, .body = {Compute(1)}},
  });
  const auto sched = AnalyzeResponseTimes(
      set, ComputeBlocking(set, ProtocolKind::kPcpDa));
  EXPECT_EQ(sched.per_spec[0].verdict, SchedVerdict::kUnschedulable);
  // L's fixpoint converges (R = 4 <= 10) but H's overrun carries backlog
  // the interference term does not model: claim degrades to unknown.
  EXPECT_EQ(sched.per_spec[1].verdict, SchedVerdict::kUnknown);
  EXPECT_EQ(sched.per_spec[1].response, 4);
  EXPECT_EQ(sched.verdict, SchedVerdict::kUnschedulable);
}

TEST(SchedAnalysisTest, RestartCostInflatesResponse) {
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Write(0)}},
      {.name = "L", .period = 30, .body = {Read(0), Compute(1)}},
  });
  const auto occ = ComputeBlocking(set, ProtocolKind::kOccBc);
  ASSERT_EQ(occ.per_spec[1].restart_sources.size(), 1u);
  const auto sched = AnalyzeResponseTimes(set, occ);
  // R_L = C_L + ceil(R/10) C_H + (ceil(R/10) + 1) * 1 * C_L
  //     = 2 + 1 + 2*2 = 7 at the fixpoint — well above the
  // restart-free R = 3.
  EXPECT_EQ(sched.per_spec[1].verdict, SchedVerdict::kSchedulable);
  EXPECT_EQ(sched.per_spec[1].response, 7);
}

// --- shipped-scenario goldens (hand-computed Section-9 numbers) ------------

std::string ScenarioPath(const char* name) {
  return std::string(PCPDA_SOURCE_DIR) + "/scenarios/" + name;
}

TEST(ScenarioGoldenTest, Example1BlockingNumbers) {
  // T1 reads x, C=2; T2 reads y, C=2; T3 writes x then computes, C=3.
  const auto scenario = LoadScenarioFile(ScenarioPath("example1.scn"));
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const TransactionSet& set = scenario->set;
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kPcpDa).AllB(),
            (std::vector<Tick>{0, 0, 0}));
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kRwPcp).AllB(),
            (std::vector<Tick>{3, 3, 0}));
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kOpcp).AllB(),
            (std::vector<Tick>{3, 3, 0}));
  // CCP: T3's write of x is released after its holding window (1 tick),
  // not at commit.
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kCcp).AllB(),
            (std::vector<Tick>{1, 1, 0}));
  const auto hp = ComputeBlocking(set, ProtocolKind::kTwoPlHp);
  EXPECT_EQ(hp.AllB(), (std::vector<Tick>{3, 0, 0}));
  ASSERT_EQ(hp.ForSpec(2).restart_sources.size(), 1u);
  EXPECT_EQ(hp.ForSpec(2).restart_sources[0].spec, 0);
  EXPECT_EQ(hp.ForSpec(2).restart_sources[0].per_release, 1);
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kOccBc).AllB(),
            (std::vector<Tick>{0, 0, 0}));
  // One-shot transactions: no RTA model, every verdict unknown.
  const auto sched = AnalyzeResponseTimes(
      set, ComputeBlocking(set, ProtocolKind::kPcpDa));
  EXPECT_EQ(sched.verdict, SchedVerdict::kUnknown);
}

TEST(ScenarioGoldenTest, Example3BlockingNumbers) {
  // T1 (period 5) reads x and y, C=2; T2 one-shot writes x then y with
  // computes in between, C=5.
  const auto scenario = LoadScenarioFile(ScenarioPath("example3.scn"));
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const TransactionSet& set = scenario->set;
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kPcpDa).AllB(),
            (std::vector<Tick>{0, 0}));
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kRwPcp).AllB(),
            (std::vector<Tick>{5, 0}));
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kOpcp).AllB(),
            (std::vector<Tick>{5, 0}));
  // CCP: T2's last acquisition is the write of y ending at offset 4, so
  // both writes stay held over the window [0, 4).
  EXPECT_EQ(ComputeBlocking(set, ProtocolKind::kCcp).AllB(),
            (std::vector<Tick>{4, 0}));
  const auto hp = ComputeBlocking(set, ProtocolKind::kTwoPlHp);
  EXPECT_EQ(hp.AllB(), (std::vector<Tick>{5, 0}));
  // T1's two reads both land on items T2 writes: two aborts per release.
  ASSERT_EQ(hp.ForSpec(1).restart_sources.size(), 1u);
  EXPECT_EQ(hp.ForSpec(1).restart_sources[0].spec, 0);
  EXPECT_EQ(hp.ForSpec(1).restart_sources[0].per_release, 2);
  // Mixed periodic/one-shot: still no RTA model.
  const auto sched = AnalyzeResponseTimes(
      set, ComputeBlocking(set, ProtocolKind::kRwPcp));
  EXPECT_EQ(sched.verdict, SchedVerdict::kUnknown);
}

// --- AnalyzeSet / renderers ------------------------------------------------

TEST(ReportTest, AnalyzeSetCoversRequestedProtocols) {
  TransactionSet set = MakeSet({
      {.name = "H", .period = 10, .body = {Read(0)}},
      {.name = "L", .period = 20, .body = {Write(0), Compute(2)}},
  });
  const AnalysisReport report = AnalyzeSet(
      set, {ProtocolKind::kRwPcp, ProtocolKind::kTwoPlPi});
  ASSERT_EQ(report.per_protocol.size(), 2u);
  EXPECT_EQ(report.per_protocol[0].sched.verdict,
            SchedVerdict::kSchedulable);
  EXPECT_FALSE(report.per_protocol[1].blocking.bounded);
  EXPECT_EQ(report.per_protocol[1].sched.verdict, SchedVerdict::kUnknown);
  EXPECT_TRUE(report.AnyVerdict(SchedVerdict::kSchedulable));
  EXPECT_TRUE(report.AnyVerdict(SchedVerdict::kUnknown));
  EXPECT_FALSE(report.AnyVerdict(SchedVerdict::kUnschedulable));

  const std::string json = RenderAnalysisJson("x.scn", set, report);
  for (const char* key :
       {"\"file\"", "\"protocols\"", "\"verdict\"", "\"specs\"", "\"B\"",
        "\"response\"", "\"bts\"", "\"restarts\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // 2PL-PI's unbounded B renders as null, not a number.
  EXPECT_NE(json.find("\"B\": null"), std::string::npos);
}

// --- generated sweep: simulation never exceeds the analytical bound --------

TEST(AnalysisSweepTest, ObservedBlockingWithinBoundOnThousandScenarios) {
  // 1000 seeded workloads x every protocol with a finite bound: the
  // worst observed per-instance effective blocking must stay within the
  // analytical B_i. Small periods + a tight item pool keep contention
  // high and the horizon cheap.
  WorkloadParams params;
  params.num_transactions = 5;
  params.num_items = 6;
  params.min_period = 10;
  params.max_period = 40;
  params.min_ops = 2;
  params.max_ops = 4;
  params.write_fraction = 0.5;
  const double utils[] = {0.3, 0.5, 0.7, 0.9};
  const Tick horizon = 120;
  int generated = 0;
  for (int s = 0; s < 1000; ++s) {
    params.total_utilization = utils[s % 4];
    Rng rng(SplitMixSeed(0xb10c, static_cast<std::uint64_t>(s)));
    const auto set = GenerateWorkload(params, rng);
    if (!set.ok()) continue;
    ++generated;
    for (ProtocolKind kind : AnalyzableProtocolKinds()) {
      const BlockingAnalysis analysis = ComputeBlocking(*set, kind);
      auto protocol = MakeProtocol(kind);
      SimulatorOptions options;
      options.horizon = horizon;
      options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
      options.record_trace = false;
      options.record_history = false;
      Simulator sim(&set.value(), protocol.get(), options);
      const SimResult result = sim.Run();
      ASSERT_TRUE(result.status.ok())
          << ToString(kind) << " seed " << s << ": "
          << result.status.ToString();
      for (SpecId i = 0; i < set->size(); ++i) {
        EXPECT_LE(result.metrics.per_spec[static_cast<std::size_t>(i)]
                      .max_effective_blocking,
                  analysis.B(i))
            << ToString(kind) << " seed " << s << " spec "
            << set->spec(i).name;
      }
    }
  }
  // The generator must not silently reject the sweep's parameters.
  EXPECT_GE(generated, 900);
}

}  // namespace
}  // namespace pcpda
