#include <gtest/gtest.h>

#include "sim/calendar.h"
#include "txn/spec.h"

namespace pcpda {
namespace {

TransactionSpec Periodic(std::string name, Tick period, Tick offset,
                         std::vector<Step> body) {
  TransactionSpec spec;
  spec.name = std::move(name);
  spec.period = period;
  spec.offset = offset;
  spec.body = std::move(body);
  return spec;
}

TransactionSpec OneShot(std::string name, Tick offset,
                        std::vector<Step> body) {
  return Periodic(std::move(name), 0, offset, std::move(body));
}

// --- Step ----------------------------------------------------------------

TEST(StepTest, Constructors) {
  const Step c = Compute(3);
  EXPECT_EQ(c.kind, StepKind::kCompute);
  EXPECT_EQ(c.item, kInvalidItem);
  EXPECT_EQ(c.duration, 3);

  const Step r = Read(4);
  EXPECT_EQ(r.kind, StepKind::kRead);
  EXPECT_EQ(r.item, 4);
  EXPECT_EQ(r.duration, 1);

  const Step w = Write(2, 5);
  EXPECT_EQ(w.kind, StepKind::kWrite);
  EXPECT_EQ(w.item, 2);
  EXPECT_EQ(w.duration, 5);
}

TEST(StepTest, DebugString) {
  EXPECT_EQ(Compute(2).DebugString(), "Compute(2)");
  EXPECT_EQ(Read(1).DebugString(), "Read(d1,1)");
  EXPECT_EQ(Write(0, 3).DebugString(), "Write(d0,3)");
}

// --- TransactionSpec -------------------------------------------------------

TEST(TransactionSpecTest, DerivedSets) {
  TransactionSpec spec = OneShot(
      "T", 0, {Read(0), Write(1), Compute(2), Read(1), Write(0)});
  EXPECT_EQ(spec.ExecutionTime(), 6);
  EXPECT_EQ(spec.ReadSet(), (std::set<ItemId>{0, 1}));
  EXPECT_EQ(spec.WriteSet(), (std::set<ItemId>{0, 1}));
  EXPECT_EQ(spec.AccessSet(), (std::set<ItemId>{0, 1}));
}

TEST(TransactionSpecTest, ComputeOnlyBody) {
  TransactionSpec spec = OneShot("T", 0, {Compute(5)});
  EXPECT_EQ(spec.ExecutionTime(), 5);
  EXPECT_TRUE(spec.ReadSet().empty());
  EXPECT_TRUE(spec.WriteSet().empty());
}

// --- TransactionSet validation --------------------------------------------

TEST(TransactionSetTest, RejectsEmptySet) {
  auto set = TransactionSet::Create({});
  EXPECT_FALSE(set.ok());
  EXPECT_EQ(set.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransactionSetTest, RejectsEmptyBody) {
  TransactionSpec spec;
  spec.period = 10;
  auto set = TransactionSet::Create({spec});
  EXPECT_FALSE(set.ok());
}

TEST(TransactionSetTest, RejectsNonPositiveDuration) {
  TransactionSpec spec = Periodic("T", 10, 0, {Compute(0)});
  EXPECT_FALSE(TransactionSet::Create({spec}).ok());
}

TEST(TransactionSetTest, RejectsComputeWithItem) {
  TransactionSpec spec = Periodic("T", 10, 0, {Compute(1)});
  spec.body[0].item = 3;
  EXPECT_FALSE(TransactionSet::Create({spec}).ok());
}

TEST(TransactionSetTest, RejectsDataStepWithoutItem) {
  TransactionSpec spec = Periodic("T", 10, 0, {Read(0)});
  spec.body[0].item = kInvalidItem;
  EXPECT_FALSE(TransactionSet::Create({spec}).ok());
}

TEST(TransactionSetTest, AcceptsInfeasibleExecutionTime) {
  // Overload experiments simulate infeasible specs; the offline analyses
  // are what reject them.
  TransactionSpec spec = Periodic("T", 3, 0, {Compute(4)});
  EXPECT_TRUE(TransactionSet::Create({spec}).ok());
}

TEST(TransactionSetTest, RejectsDeadlinePastPeriod) {
  TransactionSpec spec = Periodic("T", 10, 0, {Compute(1)});
  spec.relative_deadline = 12;
  EXPECT_FALSE(TransactionSet::Create({spec}).ok());
}

TEST(TransactionSetTest, RejectsDuplicateNames) {
  TransactionSpec a = Periodic("T", 10, 0, {Compute(1)});
  TransactionSpec b = Periodic("T", 20, 0, {Compute(1)});
  EXPECT_FALSE(TransactionSet::Create({a, b}).ok());
}

TEST(TransactionSetTest, RejectsNegativeOffset) {
  TransactionSpec spec = Periodic("T", 10, -1, {Compute(1)});
  EXPECT_FALSE(TransactionSet::Create({spec}).ok());
}

// --- TransactionSet ordering & accessors ------------------------------------

TEST(TransactionSetTest, RateMonotonicOrdersByPeriod) {
  TransactionSpec slow = Periodic("slow", 100, 0, {Compute(1)});
  TransactionSpec fast = Periodic("fast", 10, 0, {Compute(1)});
  TransactionSpec mid = Periodic("mid", 50, 0, {Compute(1)});
  auto set = TransactionSet::Create({slow, fast, mid});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->spec(0).name, "fast");
  EXPECT_EQ(set->spec(1).name, "mid");
  EXPECT_EQ(set->spec(2).name, "slow");
  EXPECT_GT(set->priority(0), set->priority(1));
  EXPECT_GT(set->priority(1), set->priority(2));
}

TEST(TransactionSetTest, OneShotsRankBelowPeriodic) {
  TransactionSpec periodic = Periodic("p", 100, 0, {Compute(1)});
  TransactionSpec shot = OneShot("s", 0, {Compute(1)});
  auto set = TransactionSet::Create({shot, periodic});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->spec(0).name, "p");
  EXPECT_EQ(set->spec(1).name, "s");
}

TEST(TransactionSetTest, AsListedKeepsOrder) {
  TransactionSpec slow = Periodic("slow", 100, 0, {Compute(1)});
  TransactionSpec fast = Periodic("fast", 10, 0, {Compute(1)});
  auto set = TransactionSet::Create({slow, fast},
                                    PriorityAssignment::kAsListed);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->spec(0).name, "slow");
  EXPECT_GT(set->priority(0), set->priority(1));
}

TEST(TransactionSetTest, AutoNamesAfterOrdering) {
  TransactionSpec a = Periodic("", 100, 0, {Compute(1)});
  TransactionSpec b = Periodic("", 10, 0, {Compute(1)});
  auto set = TransactionSet::Create({a, b});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->spec(0).name, "T1");  // the period-10 one
  EXPECT_EQ(set->spec(0).period, 10);
  EXPECT_EQ(set->spec(1).name, "T2");
}

TEST(TransactionSetTest, ItemCount) {
  TransactionSpec spec = OneShot("T", 0, {Read(7), Write(2)});
  auto set = TransactionSet::Create({spec});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->item_count(), 8);
}

TEST(TransactionSetTest, ItemCountZeroWithoutDataSteps) {
  TransactionSpec spec = OneShot("T", 0, {Compute(1)});
  auto set = TransactionSet::Create({spec});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->item_count(), 0);
}

TEST(TransactionSetTest, RelativeDeadlineDefaults) {
  TransactionSpec periodic = Periodic("p", 10, 0, {Compute(1)});
  TransactionSpec shot = OneShot("s", 0, {Compute(1)});
  TransactionSpec tight = Periodic("t", 10, 0, {Compute(1)});
  tight.relative_deadline = 4;
  auto set = TransactionSet::Create({periodic, shot, tight},
                                    PriorityAssignment::kAsListed);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->RelativeDeadline(0), 10);
  EXPECT_EQ(set->RelativeDeadline(1), kNoTick);
  EXPECT_EQ(set->RelativeDeadline(2), 4);
}

TEST(TransactionSetTest, Utilization) {
  TransactionSpec a = Periodic("a", 10, 0, {Compute(2)});
  TransactionSpec b = Periodic("b", 20, 0, {Compute(5)});
  TransactionSpec c = OneShot("c", 0, {Compute(3)});  // not counted
  auto set = TransactionSet::Create({a, b, c});
  ASSERT_TRUE(set.ok());
  EXPECT_DOUBLE_EQ(set->Utilization(), 0.2 + 0.25);
}

TEST(TransactionSetTest, Hyperperiod) {
  TransactionSpec a = Periodic("a", 6, 0, {Compute(1)});
  TransactionSpec b = Periodic("b", 10, 0, {Compute(1)});
  auto set = TransactionSet::Create({a, b});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->Hyperperiod(), 30);
}

TEST(TransactionSetTest, HyperperiodNoPeriodic) {
  TransactionSpec a = OneShot("a", 0, {Compute(1)});
  auto set = TransactionSet::Create({a});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->Hyperperiod(), 0);
}

// --- ArrivalCalendar --------------------------------------------------------

TEST(CalendarTest, PeriodicArrivals) {
  TransactionSpec a = Periodic("a", 5, 1, {Compute(1)});
  auto set = TransactionSet::Create({a});
  ASSERT_TRUE(set.ok());
  ArrivalCalendar cal(&*set);
  const auto arrivals = cal.Before(12);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], (Arrival{1, 0, 0}));
  EXPECT_EQ(arrivals[1], (Arrival{6, 0, 1}));
  EXPECT_EQ(arrivals[2], (Arrival{11, 0, 2}));
}

TEST(CalendarTest, OneShotArrivesOnce) {
  TransactionSpec a = OneShot("a", 3, {Compute(1)});
  auto set = TransactionSet::Create({a});
  ASSERT_TRUE(set.ok());
  ArrivalCalendar cal(&*set);
  EXPECT_EQ(cal.Before(100).size(), 1u);
  EXPECT_EQ(cal.At(3).size(), 1u);
  EXPECT_TRUE(cal.At(6).empty());
}

TEST(CalendarTest, SortedByTickThenPriority) {
  TransactionSpec hi = Periodic("hi", 4, 0, {Compute(1)});
  TransactionSpec lo = Periodic("lo", 8, 0, {Compute(1)});
  auto set = TransactionSet::Create({lo, hi});
  ASSERT_TRUE(set.ok());
  ArrivalCalendar cal(&*set);
  const auto arrivals = cal.Before(8);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0].spec, 0);  // hi at 0
  EXPECT_EQ(arrivals[1].spec, 1);  // lo at 0
  EXPECT_EQ(arrivals[2].tick, 4);
}

TEST(CalendarTest, CountBefore) {
  TransactionSpec a = Periodic("a", 5, 1, {Compute(1)});
  auto set = TransactionSet::Create({a});
  ASSERT_TRUE(set.ok());
  ArrivalCalendar cal(&*set);
  EXPECT_EQ(cal.CountBefore(0, 1), 0);
  EXPECT_EQ(cal.CountBefore(0, 2), 1);
  EXPECT_EQ(cal.CountBefore(0, 6), 1);
  EXPECT_EQ(cal.CountBefore(0, 7), 2);
  EXPECT_EQ(cal.CountBefore(0, 100), 20);
}

TEST(CalendarTest, AtMatchesBefore) {
  TransactionSpec a = Periodic("a", 3, 2, {Compute(1)});
  TransactionSpec b = Periodic("b", 7, 0, {Compute(1)});
  auto set = TransactionSet::Create({a, b});
  ASSERT_TRUE(set.ok());
  ArrivalCalendar cal(&*set);
  std::size_t total = 0;
  for (Tick t = 0; t < 21; ++t) total += cal.At(t).size();
  EXPECT_EQ(total, cal.Before(21).size());
}

}  // namespace
}  // namespace pcpda
