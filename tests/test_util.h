#ifndef PCPDA_TESTS_TEST_UTIL_H_
#define PCPDA_TESTS_TEST_UTIL_H_

#include <string>

#include "protocols/factory.h"
#include "sched/simulator.h"
#include "trace/gantt.h"
#include "txn/spec.h"
#include "workload/paper_examples.h"

namespace pcpda {

/// Runs `set` under a fresh protocol of `kind` for `horizon` ticks. The
/// invariant auditor is on: any run that corrupts lock/ceiling/inheritance
/// state fails through SimResult.status.
inline SimResult RunWith(const TransactionSet& set, ProtocolKind kind,
                         Tick horizon,
                         DeadlockPolicy deadlock_policy =
                             DeadlockPolicy::kHalt) {
  auto protocol = MakeProtocol(kind);
  SimulatorOptions options;
  options.horizon = horizon;
  options.deadlock_policy = deadlock_policy;
  options.audit = true;
  Simulator sim(&set, protocol.get(), options);
  return sim.Run();
}

/// Runs `set` under a caller-provided protocol instance.
inline SimResult RunWith(const TransactionSet& set, Protocol* protocol,
                         Tick horizon,
                         DeadlockPolicy deadlock_policy =
                             DeadlockPolicy::kHalt) {
  SimulatorOptions options;
  options.horizon = horizon;
  options.deadlock_policy = deadlock_policy;
  options.audit = true;
  Simulator sim(&set, protocol, options);
  return sim.Run();
}

inline SimResult RunExample(const PaperExample& example,
                            ProtocolKind kind) {
  return RunWith(example.set, kind, example.horizon);
}

/// Gantt + metrics, for EXPECT failure messages.
inline std::string FailureContext(const TransactionSet& set,
                                  const SimResult& result) {
  return RenderGantt(set, result.trace) + "\n" +
         result.metrics.DebugString(set);
}

/// Commit time of the instance-`instance` job of `spec`, or -1.
inline Tick CommitTime(const SimResult& result, SpecId spec, int instance) {
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind == TraceKind::kCommit && e.spec == spec &&
        e.instance == instance) {
      return e.tick;
    }
  }
  return -1;
}

}  // namespace pcpda

#endif  // PCPDA_TESTS_TEST_UTIL_H_
