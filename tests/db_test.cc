#include <gtest/gtest.h>

#include "db/ceilings.h"
#include "db/database.h"
#include "db/lock_table.h"
#include "txn/spec.h"
#include "txn/workspace.h"

namespace pcpda {
namespace {

// --- Database ---------------------------------------------------------

TEST(DatabaseTest, InitialState) {
  Database db(3);
  EXPECT_EQ(db.item_count(), 3);
  for (ItemId i = 0; i < 3; ++i) {
    EXPECT_EQ(db.Read(i).writer, kInvalidJob);
    EXPECT_EQ(db.Read(i).version, 0);
  }
  EXPECT_EQ(db.write_count(), 0);
}

TEST(DatabaseTest, WritesStampMonotoneVersions) {
  Database db(2);
  const Value v1 = db.Write(0, 10);
  const Value v2 = db.Write(1, 11);
  const Value v3 = db.Write(0, 12);
  EXPECT_EQ(v1.version, 1);
  EXPECT_EQ(v2.version, 2);
  EXPECT_EQ(v3.version, 3);
  EXPECT_EQ(db.Read(0).writer, 12);
  EXPECT_EQ(db.Read(1).writer, 11);
  EXPECT_EQ(db.write_count(), 3);
}

TEST(DatabaseTest, RestoreReinstatesWithoutVersionBump) {
  Database db(1);
  const Value before = db.Read(0);
  db.Write(0, 5);
  db.Restore(0, before);
  EXPECT_EQ(db.Read(0), before);
  EXPECT_EQ(db.write_count(), 1);  // the write still happened
  const Value next = db.Write(0, 6);
  EXPECT_EQ(next.version, 2);
}

// --- Workspace --------------------------------------------------------

TEST(WorkspaceTest, PutGet) {
  Workspace ws;
  EXPECT_TRUE(ws.empty());
  EXPECT_FALSE(ws.Get(0).has_value());
  ws.Put(0, Value{1, 0});
  ASSERT_TRUE(ws.Get(0).has_value());
  EXPECT_EQ(ws.Get(0)->writer, 1);
  EXPECT_TRUE(ws.Contains(0));
  EXPECT_FALSE(ws.Contains(1));
  EXPECT_EQ(ws.size(), 1u);
}

TEST(WorkspaceTest, OverwriteKeepsLatest) {
  Workspace ws;
  ws.Put(0, Value{1, 0});
  ws.Put(0, Value{2, 0});
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.Get(0)->writer, 2);
}

TEST(WorkspaceTest, WritesOrderedByItem) {
  Workspace ws;
  ws.Put(5, Value{});
  ws.Put(1, Value{});
  ws.Put(3, Value{});
  std::vector<ItemId> items;
  for (const auto& [item, value] : ws.writes()) items.push_back(item);
  EXPECT_EQ(items, (std::vector<ItemId>{1, 3, 5}));
}

TEST(WorkspaceTest, Clear) {
  Workspace ws;
  ws.Put(0, Value{});
  ws.Clear();
  EXPECT_TRUE(ws.empty());
}

// --- LockTable --------------------------------------------------------

TEST(LockTableTest, AcquireAndQuery) {
  LockTable locks(4);
  locks.AcquireRead(1, 0);
  locks.AcquireWrite(2, 0);
  EXPECT_TRUE(locks.HoldsRead(1, 0));
  EXPECT_FALSE(locks.HoldsWrite(1, 0));
  EXPECT_TRUE(locks.HoldsWrite(2, 0));
  EXPECT_TRUE(locks.HoldsAny(2, 0));
  EXPECT_FALSE(locks.HoldsAny(3, 0));
  EXPECT_EQ(locks.lock_count(), 2u);
}

TEST(LockTableTest, IdempotentAcquire) {
  LockTable locks(2);
  locks.AcquireRead(1, 0);
  locks.AcquireRead(1, 0);
  EXPECT_EQ(locks.lock_count(), 1u);
}

TEST(LockTableTest, MultipleWritersAllowed) {
  // The table is mechanism only: PCP-DA permits concurrent write locks.
  LockTable locks(1);
  locks.AcquireWrite(1, 0);
  locks.AcquireWrite(2, 0);
  EXPECT_EQ(locks.writers(0).size(), 2u);
}

TEST(LockTableTest, NoReaderOtherThan) {
  LockTable locks(2);
  EXPECT_TRUE(locks.NoReaderOtherThan(1, 0));
  locks.AcquireRead(1, 0);
  EXPECT_TRUE(locks.NoReaderOtherThan(1, 0));
  locks.AcquireRead(2, 0);
  EXPECT_FALSE(locks.NoReaderOtherThan(1, 0));
  EXPECT_TRUE(locks.NoReaderOtherThan(1, 1));
}

TEST(LockTableTest, NoWriterOtherThan) {
  LockTable locks(1);
  locks.AcquireWrite(7, 0);
  EXPECT_TRUE(locks.NoWriterOtherThan(7, 0));
  EXPECT_FALSE(locks.NoWriterOtherThan(8, 0));
}

TEST(LockTableTest, ReleaseSingle) {
  LockTable locks(2);
  locks.AcquireRead(1, 0);
  locks.AcquireWrite(1, 1);
  locks.Release(1, 0, LockMode::kRead);
  EXPECT_FALSE(locks.HoldsRead(1, 0));
  EXPECT_TRUE(locks.HoldsWrite(1, 1));
  EXPECT_EQ(locks.lock_count(), 1u);
}

TEST(LockTableTest, ReleaseAll) {
  LockTable locks(3);
  locks.AcquireRead(1, 0);
  locks.AcquireWrite(1, 1);
  locks.AcquireRead(2, 2);
  locks.ReleaseAll(1);
  EXPECT_FALSE(locks.HoldsAny(1, 0));
  EXPECT_FALSE(locks.HoldsAny(1, 1));
  EXPECT_TRUE(locks.HoldsRead(2, 2));
  EXPECT_EQ(locks.lock_count(), 1u);
  // Releasing a job with no locks is a no-op.
  locks.ReleaseAll(99);
}

TEST(LockTableTest, PerJobIndexes) {
  LockTable locks(4);
  locks.AcquireRead(1, 2);
  locks.AcquireRead(1, 0);
  locks.AcquireWrite(1, 3);
  EXPECT_EQ(locks.read_items(1), (std::set<ItemId>{0, 2}));
  EXPECT_EQ(locks.write_items(1), (std::set<ItemId>{3}));
  EXPECT_TRUE(locks.read_items(42).empty());
}

TEST(LockTableTest, Holders) {
  LockTable locks(2);
  EXPECT_TRUE(locks.holders().empty());
  locks.AcquireRead(3, 0);
  locks.AcquireWrite(5, 1);
  const auto holders = locks.holders();
  EXPECT_EQ(holders, (std::vector<JobId>{3, 5}));
}

// --- StaticCeilings ----------------------------------------------------

TransactionSet ExampleSet() {
  // T1 reads x; T2 writes y; T3 reads z, writes z; T4 reads y, writes x.
  TransactionSpec t1{.name = "T1", .body = {Read(0)}};
  TransactionSpec t2{.name = "T2", .body = {Write(1)}};
  TransactionSpec t3{.name = "T3", .body = {Read(2), Write(2)}};
  TransactionSpec t4{.name = "T4", .body = {Read(1), Write(0)}};
  auto set = TransactionSet::Create({t1, t2, t3, t4},
                                    PriorityAssignment::kAsListed);
  return std::move(set).value();
}

TEST(CeilingsTest, WceilMatchesExample4) {
  const TransactionSet set = ExampleSet();
  const StaticCeilings ceilings(set);
  // Wceil(x)=P4 (T4 writes x), Wceil(y)=P2, Wceil(z)=P3.
  EXPECT_EQ(ceilings.Wceil(0), set.priority(3));
  EXPECT_EQ(ceilings.Wceil(1), set.priority(1));
  EXPECT_EQ(ceilings.Wceil(2), set.priority(2));
}

TEST(CeilingsTest, AceilIsHighestAccessor) {
  const TransactionSet set = ExampleSet();
  const StaticCeilings ceilings(set);
  // Aceil(x)=P1 (T1 reads x), Aceil(y)=P2, Aceil(z)=P3.
  EXPECT_EQ(ceilings.Aceil(0), set.priority(0));
  EXPECT_EQ(ceilings.Aceil(1), set.priority(1));
  EXPECT_EQ(ceilings.Aceil(2), set.priority(2));
}

TEST(CeilingsTest, UntouchedItemHasDummyCeilings) {
  TransactionSpec t{.name = "T", .body = {Read(3)}};
  auto set = TransactionSet::Create({t});
  ASSERT_TRUE(set.ok());
  const StaticCeilings ceilings(*set);
  EXPECT_TRUE(ceilings.Wceil(0).is_dummy());
  EXPECT_TRUE(ceilings.Aceil(0).is_dummy());
  // Item 3 is read but never written: Wceil dummy, Aceil = P1.
  EXPECT_TRUE(ceilings.Wceil(3).is_dummy());
  EXPECT_EQ(ceilings.Aceil(3), set->priority(0));
}

TEST(CeilingsTest, AccessorLists) {
  const TransactionSet set = ExampleSet();
  const StaticCeilings ceilings(set);
  EXPECT_EQ(ceilings.WritersOf(0), (std::vector<SpecId>{3}));
  EXPECT_EQ(ceilings.ReadersOf(0), (std::vector<SpecId>{0}));
  EXPECT_EQ(ceilings.ReadersOf(1), (std::vector<SpecId>{3}));
  EXPECT_EQ(ceilings.WritersOf(1), (std::vector<SpecId>{1}));
}

TEST(CeilingsTest, WceilNeverAboveAceil) {
  const TransactionSet set = ExampleSet();
  const StaticCeilings ceilings(set);
  for (ItemId x = 0; x < ceilings.item_count(); ++x) {
    EXPECT_LE(ceilings.Wceil(x), ceilings.Aceil(x));
  }
}

}  // namespace
}  // namespace pcpda
