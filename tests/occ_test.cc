#include <gtest/gtest.h>

#include "history/replay_checker.h"
#include "history/serialization_graph.h"
#include "protocols/occ.h"
#include "test_util.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs) {
  auto set = TransactionSet::Create(std::move(specs),
                                    PriorityAssignment::kAsListed);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

// --- OCC-BC -------------------------------------------------------------

TEST(OccBcTest, NeverBlocks) {
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0), Read(1)}},
      {.name = "L", .offset = 0, .body = {Read(0), Write(1), Compute(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOccBc, 14);
  for (const auto& m : result.metrics.per_spec) {
    EXPECT_EQ(m.blocked_ticks, 0);
  }
  EXPECT_FALSE(result.deadlock_detected);
}

TEST(OccBcTest, BroadcastCommitAbortsReader) {
  // L reads x; H commits a write of x while L still runs -> L restarts.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(4)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOccBc, 14);
  EXPECT_EQ(result.metrics.per_spec[1].restarts, 1)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
  // The restarted L re-read x and must have observed H's value.
  const CommittedTxn* reader = nullptr;
  for (const auto& txn : result.history.committed()) {
    if (txn.spec == 1) reader = &txn;
  }
  ASSERT_NE(reader, nullptr);
  // H is job 1 (L, released at t=0, is job 0).
  EXPECT_EQ(reader->ops[0].observed.writer, 1);
}

TEST(OccBcTest, NonConflictingCommitLeavesOthersAlone) {
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(2)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(4)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOccBc, 14);
  EXPECT_EQ(result.metrics.TotalRestarts(), 0);
}

TEST(OccBcTest, ReadOnlyCommitAbortsNobody) {
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Read(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(4)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOccBc, 14);
  EXPECT_EQ(result.metrics.TotalRestarts(), 0);
}

TEST(OccBcTest, CrossedAccessResolvesBySacrifice) {
  // The Example-5 pattern: under OCC the first committer wins.
  const PaperExample example = Example5();
  const SimResult result = RunExample(example, ProtocolKind::kOccBc);
  EXPECT_FALSE(result.deadlock_detected);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

// --- OCC-DA -------------------------------------------------------------

TEST(OccDaTest, ConstraintInsteadOfAbort) {
  // L reads x, H overwrites x and commits; L has no writes into H's reads
  // and never re-reads x -> L survives with a before-constraint.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(4)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOccDa, 14);
  EXPECT_EQ(result.metrics.TotalRestarts(), 0)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
  // L read the ORIGINAL x although it committed after H: the adjusted
  // serialization order puts L first.
  const CommittedTxn* reader = nullptr;
  for (const auto& txn : result.history.committed()) {
    if (txn.spec == 1) reader = &txn;
  }
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->ops[0].observed.writer, kInvalidJob);
  const auto replay = ReplaySerialWitness(result.history, set.item_count());
  EXPECT_TRUE(replay.ok());
}

TEST(OccDaTest, ContradictoryConstraintAborts) {
  // L reads x (overwritten by H) AND statically writes y which H read:
  // L would have to serialize both before and after H -> restart.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Read(1), Write(0)}},
      {.name = "L",
       .offset = 0,
       .body = {Read(0), Compute(3), Write(1)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOccDa, 16);
  EXPECT_EQ(result.metrics.per_spec[1].restarts, 1)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(OccDaTest, RereadHazardAborts) {
  // L read x and will read x again after H's overwrite commits: the old
  // version is gone in a single-version store -> restart.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L",
       .offset = 0,
       .body = {Read(0), Compute(3), Read(0)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOccDa, 16);
  EXPECT_EQ(result.metrics.per_spec[1].restarts, 1)
      << FailureContext(set, result);
  EXPECT_TRUE(IsSerializable(result.history));
}

TEST(OccDaTest, SnapshotCheckBlocksLaterState) {
  // L (constrained before H's commit) later reads an item H also wrote:
  // the value is newer than L's snapshot -> self-abort, then clean rerun.
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0), Write(2)}},
      {.name = "L",
       .offset = 0,
       .body = {Read(0), Compute(4), Read(2)}},
  });
  const SimResult result = RunWith(set, ProtocolKind::kOccDa, 20);
  EXPECT_GE(result.metrics.per_spec[1].restarts, 1)
      << FailureContext(set, result);
  EXPECT_EQ(result.metrics.TotalCommitted(), 2);
  EXPECT_TRUE(IsSerializable(result.history));
  const auto replay = ReplaySerialWitness(result.history, set.item_count());
  EXPECT_TRUE(replay.ok());
}

TEST(OccDaTest, FewerRestartsThanBroadcastCommit) {
  // A workload where OCC-BC keeps killing a long reader that OCC-DA can
  // tolerate via constraints.
  TransactionSet set = MakeSet({
      {.name = "W", .period = 6, .body = {Write(0)}},
      {.name = "R", .offset = 0, .body = {Read(0), Compute(13)}},
  });
  const SimResult bc = RunWith(set, ProtocolKind::kOccBc, 40);
  const SimResult da = RunWith(set, ProtocolKind::kOccDa, 40);
  EXPECT_GT(bc.metrics.per_spec[1].restarts, 0);
  EXPECT_EQ(da.metrics.per_spec[1].restarts, 0)
      << FailureContext(set, da);
  EXPECT_LT(da.metrics.TotalRestarts(), bc.metrics.TotalRestarts());
  EXPECT_TRUE(IsSerializable(bc.history));
  EXPECT_TRUE(IsSerializable(da.history));
  EXPECT_TRUE(ReplaySerialWitness(da.history, set.item_count()).ok());
}

TEST(OccDaTest, MustPrecedeBookkeeping) {
  TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(6)}},
  });
  OccDa protocol;
  SimulatorOptions options;
  options.horizon = 4;  // stop while L is still running, after H commits
  Simulator sim(&set, &protocol, options);
  const SimResult result = sim.Run();
  (void)result;
  // L is job 0 (released at t=0), H is job 1.
  EXPECT_EQ(protocol.MustPrecede(0), (std::set<JobId>{1}));
  EXPECT_TRUE(protocol.MustPrecede(1).empty());
}

// --- Both OCC protocols on the paper examples ------------------------------

TEST(OccInvariantTest, ExamplesSerializableNoDeadlocksNoBlocking) {
  for (ProtocolKind kind : {ProtocolKind::kOccBc, ProtocolKind::kOccDa}) {
    for (const PaperExample& example :
         {Example1(), Example3(), Example4(), Example5()}) {
      const SimResult result = RunExample(example, kind);
      EXPECT_FALSE(result.deadlock_detected)
          << ToString(kind) << " " << example.name;
      EXPECT_TRUE(IsSerializable(result.history))
          << ToString(kind) << " " << example.name;
      const auto replay =
          ReplaySerialWitness(result.history, example.set.item_count());
      EXPECT_TRUE(replay.ok()) << ToString(kind) << " " << example.name;
      for (const auto& m : result.metrics.per_spec) {
        EXPECT_EQ(m.blocked_ticks, 0) << ToString(kind);
      }
    }
  }
}

}  // namespace
}  // namespace pcpda
