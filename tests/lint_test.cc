// Tests for the static scenario analyzer (src/lint/): per-rule unit
// tests with source-span assertions, the golden corpus of seeded
// defects under scenarios/bad/, and the guarantee that every shipped
// scenario lints without errors.

#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "protocols/factory.h"
#include "protocols/protocol.h"
#include "workload/paper_examples.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

std::string SourcePath(const std::string& relative) {
  return std::string(PCPDA_SOURCE_DIR "/") + relative;
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// The diagnostics matching `rule`.
std::vector<LintDiagnostic> OfRule(const LintReport& report,
                                   const std::string& rule) {
  std::vector<LintDiagnostic> out;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

bool HasRule(const LintReport& report, const std::string& rule) {
  return !OfRule(report, rule).empty();
}

TEST(LintCeilingsTest, WceilMismatchCarriesSpanAndActualHolder) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn TH\n"
      "  write x\n"
      "end\n"
      "txn TL\n"
      "  read x\n"
      "end\n"
      "expect\n"
      "  wceil x TL\n"
      "end\n");
  const auto findings = OfRule(report, "wceil-mismatch");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(findings[0].entity, "x");
  EXPECT_EQ(findings[0].span, (SourceSpan{10, 3}));
  EXPECT_NE(findings[0].message.find("TH"), std::string::npos);
  EXPECT_FALSE(report.clean());
}

TEST(LintCeilingsTest, CorrectExpectationsAreClean) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "txn TH\n"
      "  write x\n"
      "  read y\n"
      "end\n"
      "txn TL\n"
      "  write y\n"
      "end\n"
      "expect\n"
      "  wceil x TH\n"
      "  wceil y TL\n"
      "  aceil y TH\n"
      "end\n");
  EXPECT_FALSE(HasRule(report, "wceil-mismatch"));
  EXPECT_FALSE(HasRule(report, "aceil-mismatch"));
  EXPECT_TRUE(report.clean());
}

TEST(LintCeilingsTest, DummyExpectationOnUnaccessedItem) {
  // `expect aceil y dummy` holds (nothing touches y); asserting a txn
  // priority on it is the mismatch, reported as "dummy" actual.
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "txn T1\n"
      "  read x\n"
      "end\n"
      "expect\n"
      "  aceil y dummy\n"
      "  aceil y T1\n"
      "end\n");
  EXPECT_FALSE(report.clean());
  const auto findings = OfRule(report, "aceil-mismatch");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("dummy"), std::string::npos);
}

TEST(LintCeilingsTest, DanglingExpectReferencesAreErrors) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1\n"
      "  write x\n"
      "end\n"
      "expect\n"
      "  wceil ghost T1\n"
      "  aceil x phantom\n"
      "end\n");
  ASSERT_TRUE(HasRule(report, "expect-unknown-item"));
  ASSERT_TRUE(HasRule(report, "expect-unknown-txn"));
  EXPECT_EQ(OfRule(report, "expect-unknown-item")[0].span,
            (SourceSpan{7, 3}));
  EXPECT_EQ(OfRule(report, "expect-unknown-txn")[0].span,
            (SourceSpan{8, 3}));
  EXPECT_EQ(report.errors(), 2);
}

TEST(LintNestingTest, CrossingCriticalSectionsWarn) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item a\n"
      "item b\n"
      "txn T1\n"
      "  read a\n"
      "  read b\n"
      "  write a\n"
      "  write b\n"
      "end\n");
  const auto findings = OfRule(report, "cs-overlap");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
  // Anchored at b's first access, where the nesting breaks.
  EXPECT_EQ(findings[0].span, (SourceSpan{6, 3}));
  EXPECT_TRUE(report.clean()) << "warnings do not make a scenario dirty";
}

TEST(LintNestingTest, ProperlyNestedSectionsDoNotWarn) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item a\n"
      "item b\n"
      "txn T1\n"
      "  read a\n"
      "  read b\n"
      "  write b\n"
      "  write a\n"
      "end\n");
  EXPECT_FALSE(HasRule(report, "cs-overlap"));
}

TEST(LintNestingTest, AdjacentSameModeAccessWarns) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1\n"
      "  write x\n"
      "  write x\n"
      "end\n");
  const auto findings = OfRule(report, "duplicate-access");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].span, (SourceSpan{5, 3}));
}

TEST(LintNestingTest, UpgradeAndSeparatedReaccessDoNotWarn) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1\n"
      "  read x\n"
      "  write x\n"
      "  compute 2\n"
      "  write x\n"
      "end\n");
  EXPECT_FALSE(HasRule(report, "duplicate-access"));
}

TEST(LintDeadlockTest, CrossedAccessOrderIsFlagged) {
  // The shape of the paper's Example 5.
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "txn TH\n"
      "  read y\n"
      "  write x\n"
      "end\n"
      "txn TL\n"
      "  read x\n"
      "  write y\n"
      "end\n");
  const auto findings = OfRule(report, "potential-deadlock");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(findings[0].span, (SourceSpan{4, 5}));
  EXPECT_NE(findings[0].message.find("TH"), std::string::npos);
  EXPECT_NE(findings[0].message.find("TL"), std::string::npos);
  EXPECT_NE(findings[0].message.find("2PL-PI"), std::string::npos);
}

TEST(LintDeadlockTest, ConsistentAccessOrderIsCycleFree) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "txn TH\n"
      "  write x\n"
      "  write y\n"
      "end\n"
      "txn TL\n"
      "  read x\n"
      "  read y\n"
      "end\n");
  EXPECT_FALSE(HasRule(report, "potential-deadlock"));
}

TEST(LintDeadlockTest, ReadOnlySharingIsNotAConflict) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "item z\n"
      "txn A\n"
      "  write y\n"
      "  read x\n"
      "end\n"
      "txn B\n"
      "  write z\n"
      "  read x\n"
      "end\n");
  EXPECT_FALSE(HasRule(report, "potential-deadlock"));
}

TEST(LintDeadEntityTest, UnusedItemWarnsAtDeclaration) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "txn T1\n"
      "  read x\n"
      "end\n");
  const auto findings = OfRule(report, "unused-item");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entity, "y");
  EXPECT_EQ(findings[0].span, (SourceSpan{3, 6}));
}

TEST(LintDeadEntityTest, EntitiesBeyondHorizonWarn) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "horizon 10\n"
      "item x\n"
      "txn worker\n"
      "  write x\n"
      "end\n"
      "txn sleeper offset=12\n"
      "  read x\n"
      "end\n"
      "faults seed=1\n"
      "  abort worker at=15\n"
      "end\n");
  ASSERT_TRUE(HasRule(report, "txn-beyond-horizon"));
  ASSERT_TRUE(HasRule(report, "fault-beyond-horizon"));
  EXPECT_EQ(OfRule(report, "txn-beyond-horizon")[0].entity, "sleeper");
  EXPECT_EQ(OfRule(report, "fault-beyond-horizon")[0].span,
            (SourceSpan{11, 3}));
}

TEST(LintDeadEntityTest, InHorizonEntitiesDoNotWarn) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "horizon 10\n"
      "item x\n"
      "txn worker\n"
      "  write x\n"
      "end\n"
      "faults seed=1\n"
      "  abort worker at=3\n"
      "end\n");
  EXPECT_FALSE(HasRule(report, "txn-beyond-horizon"));
  EXPECT_FALSE(HasRule(report, "fault-beyond-horizon"));
}

TEST(LintDeadEntityTest, OverlongBodyWarns) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1 period=6\n"
      "  read x\n"
      "  compute 8\n"
      "end\n");
  const auto findings = OfRule(report, "overlong-body");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entity, "T1");
}

TEST(LintSchedulabilityTest, OverloadAndUnschedulableWarn) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1 period=4\n"
      "  read x\n"
      "  compute 3\n"
      "end\n"
      "txn T2 period=4\n"
      "  write x\n"
      "  compute 1\n"
      "end\n");
  EXPECT_TRUE(HasRule(report, "utilization-overload"));
  const auto findings = OfRule(report, "unschedulable");
  ASSERT_GE(findings.size(), 1u);
  EXPECT_EQ(findings[0].entity, "T2");
  EXPECT_TRUE(report.clean());
}

TEST(LintSchedulabilityTest, OneShotSetsSkipWithNote) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1\n"
      "  read x\n"
      "end\n");
  EXPECT_TRUE(HasRule(report, "analysis-skipped"));
  EXPECT_FALSE(HasRule(report, "unschedulable"));

  LintOptions no_notes;
  no_notes.include_notes = false;
  const LintReport quiet = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1\n"
      "  read x\n"
      "end\n",
      no_notes);
  EXPECT_FALSE(HasRule(quiet, "analysis-skipped"));
}

TEST(LintSchedulabilityTest, FeasiblePeriodicSetIsQuiet) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1 period=10\n"
      "  read x\n"
      "end\n"
      "txn T2 period=20\n"
      "  write x\n"
      "end\n");
  EXPECT_FALSE(HasRule(report, "utilization-overload"));
  EXPECT_FALSE(HasRule(report, "unschedulable"));
  EXPECT_TRUE(report.clean());
}

TEST(LintParseErrorTest, SpanIsLiftedFromParserMessage) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "txn T1\n"
      "  read x\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const LintDiagnostic& d = report.diagnostics[0];
  EXPECT_EQ(d.rule, "parse-error");
  EXPECT_EQ(d.severity, LintSeverity::kError);
  EXPECT_EQ(d.span, (SourceSpan{3, 5}));
  EXPECT_NE(d.message.find("unterminated txn 'T1'"), std::string::npos)
      << d.message;
  // The position lives in the span, not duplicated in the message.
  EXPECT_EQ(d.message.find("line "), std::string::npos);
  EXPECT_FALSE(report.clean());
}

TEST(LintReportTest, RenderAndJsonCarryRuleAndPosition) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "txn T1\n"
      "  read x\n"
      "end\n");
  const std::string text = report.Render("file.scn");
  EXPECT_NE(text.find("file.scn:3:6: warning: "), std::string::npos)
      << text;
  EXPECT_NE(text.find("[unused-item]"), std::string::npos);
  EXPECT_NE(text.find("0 error(s), 1 warning(s), 1 note(s)"),
            std::string::npos);

  const std::string json = report.RenderJson("file.scn");
  EXPECT_NE(json.find("\"rule\": \"unused-item\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 0"), std::string::npos);
}

TEST(LintReportTest, DiagnosticsAreOrderedBySourcePosition) {
  const LintReport report = LintScenarioText(
      "scenario s\n"
      "item used\n"
      "item zz\n"
      "item aa\n"
      "txn T1\n"
      "  read used\n"
      "end\n");
  ASSERT_GE(report.diagnostics.size(), 2u);
  int last_line = 0;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (!d.span.valid()) continue;
    EXPECT_GE(d.span.line, last_line);
    last_line = d.span.line;
  }
  // Synthetic spans (the analysis-skipped note) sort last.
  EXPECT_FALSE(report.diagnostics.back().span.valid());
}

TEST(LintFilterTest, PaperExamplesAreNotRejected) {
  for (PaperExample example :
       {Example1(), Example3(), Example4(), Example5()}) {
    const Scenario scenario{example.name, std::move(example.set),
                            example.horizon, {}, {}, {}, {}};
    EXPECT_FALSE(LintRejects(scenario)) << example.name;
  }
}

TEST(LintFilterTest, FilterIgnoresWarningsButNotErrors) {
  // Crossed access order: warning only -> not rejected.
  auto deadlock = ParseScenario(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "txn A\n"
      "  read y\n"
      "  write x\n"
      "end\n"
      "txn B\n"
      "  read x\n"
      "  write y\n"
      "end\n");
  ASSERT_TRUE(deadlock.ok());
  EXPECT_FALSE(LintRejects(*deadlock));

  auto mismatch = ParseScenario(
      "scenario s\n"
      "item x\n"
      "txn A\n"
      "  read x\n"
      "end\n"
      "expect\n"
      "  wceil x A\n"
      "end\n");
  ASSERT_TRUE(mismatch.ok());
  EXPECT_TRUE(LintRejects(*mismatch));
}

TEST(LintTraitsTest, TraitsOfMatchesProtocolVirtuals) {
  for (ProtocolKind kind : AllProtocolKinds()) {
    const ProtocolTraits traits = TraitsOf(kind);
    const auto protocol = MakeProtocol(kind);
    EXPECT_EQ(traits.update_model, protocol->update_model())
        << ToString(kind);
    EXPECT_EQ(traits.ceiling_rule, protocol->ceiling_rule())
        << ToString(kind);
    EXPECT_EQ(traits.priority_inheritance,
              protocol->uses_priority_inheritance())
        << ToString(kind);
    EXPECT_EQ(traits.releases_early, protocol->releases_early())
        << ToString(kind);
  }
  // The deadlock-freedom flags the deadlock rule's message relies on:
  // exactly 2PL-PI is vulnerable.
  for (ProtocolKind kind : AllProtocolKinds()) {
    EXPECT_EQ(TraitsOf(kind).deadlock_free,
              kind != ProtocolKind::kTwoPlPi)
        << ToString(kind);
  }
}

TEST(LintGoldenTest, BadCorpusMatchesGoldenDiagnostics) {
  const std::string dir = SourcePath("scenarios/bad");
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".scn") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 10u);
  for (const std::string& file : files) {
    const std::string stem = std::filesystem::path(file).stem().string();
    const auto report = LintScenarioFile(file, LintOptions{});
    ASSERT_TRUE(report.ok()) << file;
    // Every seeded defect must be caught at warning strength or above,
    // and anchored into the file.
    EXPECT_GT(report->CountAtLeast(LintSeverity::kWarning), 0) << file;
    bool spanned = false;
    for (const LintDiagnostic& d : report->diagnostics) {
      spanned |= d.span.valid();
    }
    EXPECT_TRUE(spanned) << file;
    const std::string golden =
        ReadFile(SourcePath("tests/golden/lint/" + stem + ".golden"));
    EXPECT_EQ(report->Render(stem + ".scn"), golden) << file;
  }
}

TEST(LintGoldenTest, ShippedScenariosLintClean) {
  LintOptions options;
  options.analysis_protocols = AnalyzableProtocolKinds();
  const std::string dir = SourcePath("scenarios");
  int seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".scn") continue;
    ++seen;
    const auto report = LintScenarioFile(entry.path().string(), options);
    ASSERT_TRUE(report.ok()) << entry.path();
    EXPECT_EQ(report->errors(), 0)
        << entry.path() << "\n" << report->Render(entry.path().string());
  }
  EXPECT_GE(seen, 6);
}

}  // namespace
}  // namespace pcpda
