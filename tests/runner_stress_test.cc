// Concurrency stress for the runner subsystem, built to run under the
// tsan preset (PCPDA_SANITIZE=thread). Three hammers:
//
//   1. The pool itself: thousands of small batches through one pool so
//      the epoch handoff, work-stealing deques and teardown wait are
//      exercised far past what the unit tests reach.
//   2. Whole simulations in parallel: batches of seeded fault-plan runs,
//      checked against a serial reference — any shared mutable state on
//      the simulate path shows up as a tsan race or a digest mismatch.
//   3. The audited "pure" entry points — MakeProtocol/ComputeBlocking/
//      ParseScenario — called concurrently from every executor. The
//      thread-safety audit found no mutable statics behind them; this
//      pins that audit so a future lazily-initialized cache cannot land
//      without tripping tsan here.
//
// Registered as the `runner-stress` ctest target (plain add_test so the
// name is stable for scripts and CI invocations).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "analysis/blocking.h"
#include "common/rng.h"
#include "plan/compiled_plan.h"
#include "protocols/factory.h"
#include "runner/batch_runner.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

constexpr char kScenarioText[] = R"(scenario stress
horizon 24
priority as-listed
item x
item y

txn T1 period=5 offset=1
  read x
  read y
end
txn T2 offset=0
  write x
  compute 2
  write y
  compute 1
end

faults seed=7
  abort T2 at=3
  overrun T1 by=1 prob=0.10
end
)";

Scenario LoadStressScenario() {
  auto scenario = ParseScenario(kScenarioText);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  return std::move(scenario).value();
}

TEST(RunnerStressTest, ManySmallBatches) {
  ExecutorPool pool(8);
  std::atomic<long long> total{0};
  long long expected = 0;
  for (int batch = 0; batch < 3000; ++batch) {
    const std::size_t n = static_cast<std::size_t>(batch % 17);
    expected += static_cast<long long>(n);
    pool.ParallelFor(n, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(RunnerStressTest, InterleavedPoolsAndBatchSizes) {
  // Two pools alive at once, batches alternating between them, with
  // sizes straddling the executor count so both the inline-serial and
  // stealing paths run.
  ExecutorPool a(2);
  ExecutorPool b(6);
  std::atomic<long long> total{0};
  for (int round = 0; round < 500; ++round) {
    a.ParallelFor(1, [&](std::size_t) { ++total; });
    b.ParallelFor(13, [&](std::size_t) { ++total; });
    a.ParallelFor(64, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 500LL * (1 + 13 + 64));
}

TEST(RunnerStressTest, ParallelSimulationsMatchSerialReference) {
  const Scenario scenario = LoadStressScenario();
  const std::vector<ProtocolKind> kinds = AllProtocolKinds();

  // 8 protocols x 8 distinct derived fault seeds = 64 concurrent runs.
  std::vector<RunSpec> specs;
  for (ProtocolKind kind : kinds) {
    for (std::uint64_t stream = 0; stream < 8; ++stream) {
      RunSpec spec;
      spec.scenario = &scenario;
      spec.protocol = kind;
      spec.seed = SplitMixSeed(11, stream);
      spec.options.audit = true;
      spec.options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
      specs.push_back(spec);
    }
  }

  BatchRunner serial(BatchOptions{1});
  const std::vector<SimResult> want = serial.Run(specs);
  BatchRunner parallel(BatchOptions{8});
  for (int repeat = 0; repeat < 20; ++repeat) {
    const std::vector<SimResult> got = parallel.Run(specs);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].status.ToString(), want[i].status.ToString());
      ASSERT_EQ(got[i].metrics.DebugString(scenario.set),
                want[i].metrics.DebugString(scenario.set))
          << "repeat " << repeat << " spec " << i;
      ASSERT_EQ(got[i].trace.DebugString(), want[i].trace.DebugString())
          << "repeat " << repeat << " spec " << i;
      ASSERT_EQ(got[i].history.DebugString(), want[i].history.DebugString())
          << "repeat " << repeat << " spec " << i;
      ASSERT_TRUE(got[i].audit.ok()) << got[i].audit.DebugString();
    }
  }
}

TEST(RunnerStressTest, SharedCompiledPlanAcrossConcurrentRuns) {
  // One immutable CompiledPlan shared by 64 concurrent simulations: the
  // plan's ceilings/calendar/bitsets are read-only after Compile, so any
  // write to them from the simulate path is a tsan race here, and any
  // behavioral divergence is a digest mismatch against the interpreted
  // serial reference.
  const Scenario scenario = LoadStressScenario();
  CompileOptions compile_options;
  compile_options.lint = false;
  auto compiled = CompiledPlan::Compile(scenario, compile_options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  const std::vector<ProtocolKind> kinds = AllProtocolKinds();
  std::vector<RunSpec> interpreted;
  std::vector<RunSpec> planned;
  for (ProtocolKind kind : kinds) {
    for (std::uint64_t stream = 0; stream < 8; ++stream) {
      RunSpec spec;
      spec.scenario = &scenario;
      spec.protocol = kind;
      spec.seed = SplitMixSeed(13, stream);
      spec.options.audit = true;
      spec.options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
      interpreted.push_back(spec);
      spec.plan = &compiled.value();
      planned.push_back(spec);
    }
  }

  BatchRunner serial(BatchOptions{1});
  const std::vector<SimResult> want = serial.Run(interpreted);
  BatchRunner parallel(BatchOptions{8});
  for (int repeat = 0; repeat < 10; ++repeat) {
    const std::vector<SimResult> got = parallel.Run(planned);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].status.ToString(), want[i].status.ToString());
      ASSERT_EQ(got[i].metrics.DebugString(scenario.set),
                want[i].metrics.DebugString(scenario.set))
          << "repeat " << repeat << " spec " << i;
      ASSERT_EQ(got[i].trace.DebugString(), want[i].trace.DebugString())
          << "repeat " << repeat << " spec " << i;
      ASSERT_EQ(got[i].history.DebugString(), want[i].history.DebugString())
          << "repeat " << repeat << " spec " << i;
      ASSERT_TRUE(got[i].audit.ok()) << got[i].audit.DebugString();
    }
  }
}

TEST(RunnerStressTest, FactoryAnalysisAndParserAreThreadSafe) {
  const Scenario scenario = LoadStressScenario();
  const std::vector<ProtocolKind> kinds = AllProtocolKinds();
  const std::vector<ProtocolKind> analyzable = {
      ProtocolKind::kPcpDa, ProtocolKind::kRwPcp, ProtocolKind::kCcp,
      ProtocolKind::kOpcp};

  ExecutorPool pool(8);
  std::atomic<int> failures{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](std::size_t i) {
      // Factory: every construction path, concurrently.
      auto protocol = MakeProtocol(kinds[i % kinds.size()]);
      if (protocol == nullptr) ++failures;
      // Static analysis over a shared const TransactionSet.
      const BlockingAnalysis blocking = ComputeBlocking(
          scenario.set, analyzable[i % analyzable.size()]);
      if (blocking.AllB().size() !=
          static_cast<std::size_t>(scenario.set.size())) {
        ++failures;
      }
      // Parser: full text -> Scenario on every executor at once.
      auto parsed = ParseScenario(kScenarioText);
      if (!parsed.ok() || parsed.value().set.size() != 2) {
        ++failures;
      }
    });
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace pcpda
