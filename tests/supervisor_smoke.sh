#!/bin/sh
# Supervisor smoke test, run by ctest as `supervisor-smoke`.
#
#   supervisor_smoke.sh <pcpda_campaign binary> <scratch dir>
#
# Three phases against the process-isolated supervisor (--supervise):
#   a) chaos self-test: a seeded schedule of 10 SIGKILL + 2 SIGSTOP
#      injections against live workers. Every kill loses at most the
#      in-flight job, every stop must be broken by the SIGTERM->SIGKILL
#      escalation, and the merged BENCH_campaign.json must be
#      byte-identical to an undisturbed in-process run;
#   b) poison job: --inject-crash-job SIGSEGVs the worker process on one
#      job, every attempt. Bisection must isolate exactly that job,
#      quarantine it as outcome "crash", and the campaign must still
#      merge with nothing pending;
#   c) uncooperative hang: --inject-spin-job spins without polling
#      cancellation, so only the stall detector's escalation ends the
#      worker; the job must end quarantined, the campaign merged.

BIN="$1"
WORK="$2"
[ -n "$BIN" ] && [ -n "$WORK" ] || { echo "usage: $0 BIN WORKDIR"; exit 2; }

fail() { echo "supervisor-smoke: FAIL: $*"; exit 1; }

rm -rf "$WORK" || fail "cannot clean $WORK"
mkdir -p "$WORK" || fail "cannot create $WORK"

# Chaos grid: 25 scenarios x 2 utils x 2 protocols = 100 jobs over 3
# shards. 100 durable records = 100 guaranteed heartbeats, comfortably
# past the schedule's worst-case last event (12 events x max gap 8 = 96),
# so all 12 injections always fire.
GRID="--scenarios=25 --utils=0.3,0.6 --protocols=PCP-DA,2PL-HP \
  --shards=3 --horizon=300 --jobs=2"
SUP="--supervise --workers=3 --backoff-ms=20 --backoff-cap-ms=100"

# Small serial grid for the poison/hang phases: 4 cells x 2 protocols =
# 8 jobs in one shard, one job at a time, so jobs queued behind the bad
# one can only complete through bisection.
SMALL="--scenarios=4 --utils=0.4 --protocols=PCP-DA,2PL-HP --shards=1 \
  --horizon=300 --jobs=1"

# --- undisturbed in-process reference for phase a ----------------------
"$BIN" --out="$WORK/ref" $GRID > "$WORK/ref.out" 2>&1 || \
  fail "reference run failed (exit $?)"
[ -f "$WORK/ref/BENCH_campaign.json" ] || fail "reference: no BENCH"

# --- phase a: chaos run merges byte-identically ------------------------
"$BIN" --out="$WORK/chaos" $GRID $SUP --chaos-seed=20260809 \
  --chaos-kills=10 --chaos-stops=2 --stall-ms=2000 --term-grace-ms=500 \
  > "$WORK/chaos.out" 2>&1
rc=$?
[ $rc -eq 0 ] || fail "phase a: chaos run expected exit 0, got $rc"
grep -q '"chaos_kills_injected": 10' "$WORK/chaos/SUPERVISOR.json" || \
  fail "phase a: not all 10 SIGKILL injections fired"
grep -q '"chaos_stops_injected": 2' "$WORK/chaos/SUPERVISOR.json" || \
  fail "phase a: not all 2 SIGSTOP injections fired"
cmp -s "$WORK/chaos/BENCH_campaign.json" "$WORK/ref/BENCH_campaign.json" \
  || fail "phase a: chaos BENCH differs from undisturbed run"

# --- phase b: poison job is bisected and quarantined -------------------
"$BIN" --out="$WORK/poison" $SMALL $SUP --inject-crash-job=1 \
  > "$WORK/poison.out" 2>&1
rc=$?
[ $rc -eq 1 ] || fail "phase b: expected exit 1 (quarantined job), got $rc"
[ -f "$WORK/poison/BENCH_campaign.json" ] || \
  fail "phase b: poison job blocked the merge"
grep -q '"quarantined": 1' "$WORK/poison/MANIFEST.json" || \
  fail "phase b: manifest does not account exactly 1 quarantined job"
grep -q '"pending": 0' "$WORK/poison/MANIFEST.json" || \
  fail "phase b: jobs left pending behind the poison job"
[ -f "$WORK/poison/quarantine/job_000001.json" ] || \
  fail "phase b: poison job not quarantined"
[ -f "$WORK/poison/quarantine/job_000001.scn" ] || \
  fail "phase b: poison job has no .scn repro"
grep -q '"outcome": "crash"' "$WORK/poison/quarantine/job_000001.json" || \
  fail "phase b: poison job not recorded as a crash"

# --- phase c: uncooperative hang is escalated and quarantined ----------
"$BIN" --out="$WORK/hang" $SMALL $SUP --inject-spin-job=2 \
  --stall-ms=400 --term-grace-ms=200 > "$WORK/hang.out" 2>&1
rc=$?
[ $rc -eq 1 ] || fail "phase c: expected exit 1 (quarantined job), got $rc"
[ -f "$WORK/hang/BENCH_campaign.json" ] || \
  fail "phase c: hung job blocked the merge"
grep -q '"quarantined": 1' "$WORK/hang/MANIFEST.json" || \
  fail "phase c: manifest does not account exactly 1 quarantined job"
grep -q '"pending": 0' "$WORK/hang/MANIFEST.json" || \
  fail "phase c: jobs left pending behind the hung job"
grep -qv '"hang_escalations": 0' "$WORK/hang/SUPERVISOR.json" || \
  fail "phase c: the stall detector never escalated"

echo "supervisor-smoke: PASS"
exit 0
