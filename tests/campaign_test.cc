// Tests for the crash-safe campaign engine (src/campaign/): grid
// indexing and shard partitioning, the checkpoint record codec and its
// torn-tail handling, fingerprint guarding, and end-to-end campaigns —
// byte-identical merges across shard layouts, resume after a torn
// checkpoint, quarantine of crashing/hanging jobs, and graceful stop
// with partial results.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/spec.h"
#include "common/rng.h"

namespace pcpda {
namespace {

namespace fs = std::filesystem;

fs::path TestDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("campaign_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir;
}

/// A 3-scenario x 2-util x 2-protocol grid (12 jobs) that runs in well
/// under a second — small enough for end-to-end campaigns in unit tests.
CampaignSpec SmallSpec() {
  CampaignSpec spec;
  spec.base_seed = 7;
  spec.scenarios = 3;
  spec.utilizations = {0.3, 0.6};
  spec.protocols = {ProtocolKind::kPcpDa, ProtocolKind::kOpcp};
  spec.horizon = 300;
  spec.max_retries = 1;
  spec.workload.num_transactions = 4;
  spec.workload.num_items = 8;
  return spec;
}

CampaignOptions DirOptions(const fs::path& dir, int jobs = 2) {
  CampaignOptions options;
  options.out_dir = dir.string();
  options.jobs = jobs;
  options.fsync = false;  // logic tests; durability is the smoke test's job
  return options;
}

std::string MustRead(const fs::path& path) {
  auto contents = ReadFileToString(path.string());
  EXPECT_TRUE(contents.ok()) << path << ": " << contents.status().ToString();
  return contents.ok() ? *contents : std::string();
}

/// The BENCH bytes of an uninterrupted single-shard run of SmallSpec(),
/// computed once — the golden value every resume/reshard test compares
/// against.
const std::string& ReferenceBench() {
  static const std::string* bench = [] {
    // Per-process dir: ctest runs each test in its own process, and
    // parallel processes must not share (and remove_all) one directory.
    const fs::path dir =
        TestDir("reference_" + std::to_string(::getpid()));
    Campaign campaign(SmallSpec(), DirOptions(dir));
    auto report = campaign.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->merged);
    return new std::string(MustRead(dir / "BENCH_campaign.json"));
  }();
  return *bench;
}

JobRecord SampleRecord() {
  JobRecord record;
  record.job_id = 42;
  record.outcome = "ok";
  record.attempts = 2;
  record.code = "Ok";
  record.message = "";
  record.released = 30;
  record.committed = 28;
  record.misses = 1;
  record.blocking_ticks = 17;
  record.restarts = 3;
  record.deadlocks = 1;
  return record;
}

// --- CampaignSpec: grid indexing and sharding ------------------------------

TEST(CampaignSpecTest, ShardsPartitionTheGridExactlyOnceInIdOrder) {
  CampaignSpec spec = SmallSpec();
  spec.scenarios = 5;
  spec.utilizations = {0.2, 0.4, 0.6};
  spec.shards = 4;  // 15 cells over 4 shards: uneven split
  ASSERT_TRUE(spec.Validate().ok());

  std::int64_t next_id = 0;
  for (int shard = 0; shard < spec.shards; ++shard) {
    ASSERT_EQ(spec.CellBegin(shard) * spec.num_protocols(), next_id);
    for (const CampaignJob& job : spec.JobsForShard(shard)) {
      EXPECT_EQ(job.id, next_id) << "shard " << shard;
      ++next_id;
    }
    // Shards own whole cells: every protocol of a cell lands together.
    EXPECT_EQ(next_id % spec.num_protocols(), 0);
  }
  EXPECT_EQ(next_id, spec.num_jobs());
  EXPECT_EQ(spec.CellBegin(spec.shards), spec.num_cells());
}

TEST(CampaignSpecTest, JobByIdMatchesEnumerationAndSeedsPerCell) {
  const CampaignSpec spec = SmallSpec();
  for (const CampaignJob& job : spec.JobsForShard(0)) {
    const CampaignJob by_id = spec.JobById(job.id);
    EXPECT_EQ(by_id.id, job.id);
    EXPECT_EQ(by_id.scenario_index, job.scenario_index);
    EXPECT_EQ(by_id.util_index, job.util_index);
    EXPECT_EQ(by_id.protocol_index, job.protocol_index);
    EXPECT_EQ(by_id.scenario_seed, job.scenario_seed);
    // The seed is a per-cell SplitMix stream: shared by every protocol
    // of the cell, independent of shard layout.
    const std::int64_t cell =
        job.scenario_index * spec.num_utils() + job.util_index;
    EXPECT_EQ(job.scenario_seed, SplitMixSeed(spec.base_seed, cell));
  }
}

TEST(CampaignSpecTest, ValidateRejectsBadGrids) {
  EXPECT_FALSE([&] {
    CampaignSpec spec = SmallSpec();
    spec.protocols.clear();
    return spec.Validate();
  }().ok());
  EXPECT_FALSE([&] {
    CampaignSpec spec = SmallSpec();
    spec.scenarios = 0;
    return spec.Validate();
  }().ok());
  EXPECT_FALSE([&] {
    CampaignSpec spec = SmallSpec();
    spec.shards = 0;
    return spec.Validate();
  }().ok());
  EXPECT_FALSE([&] {
    CampaignSpec spec = SmallSpec();
    spec.shards = static_cast<int>(spec.num_cells()) + 1;
    return spec.Validate();
  }().ok());
  EXPECT_FALSE([&] {
    CampaignSpec spec = SmallSpec();
    spec.utilizations = {0.0};
    return spec.Validate();
  }().ok());
  EXPECT_FALSE([&] {
    CampaignSpec spec = SmallSpec();
    spec.utilizations = {1.5};
    return spec.Validate();
  }().ok());
  // A sweep point the generator would refuse for every scenario of its
  // cell (4 tasks x min 0.3 = 1.2 > 0.9) is caught up front.
  EXPECT_FALSE([&] {
    CampaignSpec spec = SmallSpec();
    spec.workload.distribution = UtilDistribution::kRandFixedSum;
    spec.workload.min_task_utilization = 0.3;
    spec.utilizations = {0.9};
    return spec.Validate();
  }().ok());
}

TEST(CampaignSpecTest, FingerprintIgnoresExecutionKnobsOnly) {
  const CampaignSpec base = SmallSpec();
  // Shard layout is execution, not identity: a 3-shard rerun may resume
  // a 1-shard checkpoint.
  CampaignSpec resharded = base;
  resharded.shards = 3;
  EXPECT_EQ(base.Fingerprint(), resharded.Fingerprint());

  // Everything that changes job inputs changes the fingerprint.
  CampaignSpec reseeded = base;
  reseeded.base_seed = 8;
  EXPECT_NE(base.Fingerprint(), reseeded.Fingerprint());
  CampaignSpec more_scenarios = base;
  more_scenarios.scenarios = 4;
  EXPECT_NE(base.Fingerprint(), more_scenarios.Fingerprint());
  CampaignSpec other_protocols = base;
  other_protocols.protocols = {ProtocolKind::kPcpDa};
  EXPECT_NE(base.Fingerprint(), other_protocols.Fingerprint());
  CampaignSpec other_sweep = base;
  other_sweep.utilizations = {0.3, 0.7};
  EXPECT_NE(base.Fingerprint(), other_sweep.Fingerprint());
  CampaignSpec other_horizon = base;
  other_horizon.horizon = 301;
  EXPECT_NE(base.Fingerprint(), other_horizon.Fingerprint());
  CampaignSpec other_workload = base;
  other_workload.workload.distribution = UtilDistribution::kBimodal;
  EXPECT_NE(base.Fingerprint(), other_workload.Fingerprint());
}

// --- Checkpoint codec ------------------------------------------------------

TEST(CheckpointTest, RecordRoundTripsThroughEncodeDecode) {
  const JobRecord record = SampleRecord();
  const auto decoded = DecodeJobRecord(EncodeJobRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, record);
}

TEST(CheckpointTest, MessageEscapingRoundTrips) {
  JobRecord record = SampleRecord();
  record.outcome = "failed";
  record.code = "Internal";
  record.message = "quote \" backslash \\ newline \n tab \t bell \x07 done";
  const std::string line = EncodeJobRecord(record);
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "encoded record must stay a single line";
  const auto decoded = DecodeJobRecord(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, record);
}

TEST(CheckpointTest, DecodeRejectsMalformedLines) {
  const std::string good = EncodeJobRecord(SampleRecord());
  EXPECT_FALSE(DecodeJobRecord("").ok());
  EXPECT_FALSE(DecodeJobRecord(good.substr(0, good.size() / 2)).ok())
      << "a truncated line must read as torn, not as a record";
  EXPECT_FALSE(DecodeJobRecord(good + "x").ok())
      << "trailing garbage must be rejected";
  JobRecord bad_outcome = SampleRecord();
  bad_outcome.outcome = "exploded";
  EXPECT_FALSE(DecodeJobRecord(EncodeJobRecord(bad_outcome)).ok());
  JobRecord bad_id = SampleRecord();
  bad_id.job_id = -1;
  EXPECT_FALSE(DecodeJobRecord(EncodeJobRecord(bad_id)).ok());
}

// --- Checkpoint writer / loader --------------------------------------------

TEST(CheckpointTest, WriterAppendsAndLoaderReadsBack) {
  const fs::path dir = TestDir("writer");
  const std::string path = (dir / "shard.ckpt").string();
  std::vector<JobRecord> records;
  for (int i = 0; i < 3; ++i) {
    JobRecord record = SampleRecord();
    record.job_id = i;
    record.committed = 10 + i;
    records.push_back(record);
  }

  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open(path, "fp", 0, /*fsync=*/false).ok());
  for (const JobRecord& record : records) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  const auto loaded = LoadCheckpoint(path, "fp");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records, records);
  EXPECT_EQ(loaded->torn_bytes, 0);
}

TEST(CheckpointTest, MissingFileIsAnEmptyCheckpoint) {
  const fs::path dir = TestDir("missing");
  const auto loaded = LoadCheckpoint((dir / "absent.ckpt").string(), "fp");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->records.empty());
  EXPECT_EQ(loaded->valid_bytes, 0);
  EXPECT_EQ(loaded->torn_bytes, 0);
}

TEST(CheckpointTest, FingerprintMismatchIsAnError) {
  const fs::path dir = TestDir("fingerprint");
  const std::string path = (dir / "shard.ckpt").string();
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open(path, "campaign-a", 0, false).ok());
  ASSERT_TRUE(writer.Append(SampleRecord()).ok());
  ASSERT_TRUE(writer.Close().ok());

  const auto loaded = LoadCheckpoint(path, "campaign-b");
  ASSERT_FALSE(loaded.ok())
      << "resuming a different campaign into this checkpoint must fail";
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, TornTailIsDiscardedAndTruncatedOnReopen) {
  const fs::path dir = TestDir("torn");
  const std::string path = (dir / "shard.ckpt").string();
  JobRecord first = SampleRecord();
  first.job_id = 0;
  JobRecord second = SampleRecord();
  second.job_id = 1;

  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open(path, "fp", 0, false).ok());
  ASSERT_TRUE(writer.Append(first).ok());
  ASSERT_TRUE(writer.Append(second).ok());
  ASSERT_TRUE(writer.Close().ok());

  // Simulate a crash mid-append: a partial third record with no newline.
  {
    std::ofstream tail(path, std::ios::app | std::ios::binary);
    tail << R"({"job": 2, "outcome": "ok)";
  }
  const auto torn = LoadCheckpoint(path, "fp");
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_EQ(torn->records, (std::vector<JobRecord>{first, second}));
  EXPECT_GT(torn->torn_bytes, 0);

  // Reopening at valid_bytes drops the tail; the next append lands clean.
  CheckpointWriter resume;
  ASSERT_TRUE(resume.Open(path, "fp", torn->valid_bytes, false).ok());
  JobRecord third = SampleRecord();
  third.job_id = 2;
  ASSERT_TRUE(resume.Append(third).ok());
  ASSERT_TRUE(resume.Close().ok());

  const auto reloaded = LoadCheckpoint(path, "fp");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->records,
            (std::vector<JobRecord>{first, second, third}));
  EXPECT_EQ(reloaded->torn_bytes, 0);
}

// --- Campaign end-to-end ---------------------------------------------------

TEST(CampaignTest, CompletesMergesAndResumesAsNoOp) {
  const fs::path dir = TestDir("complete");
  Campaign campaign(SmallSpec(), DirOptions(dir));
  const auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_jobs, 12);
  EXPECT_EQ(report->ok + report->failed + report->quarantined +
                report->pending,
            report->total_jobs);
  EXPECT_EQ(report->pending, 0);
  EXPECT_TRUE(report->merged);
  EXPECT_FALSE(report->stopped);
  EXPECT_TRUE(fs::exists(dir / "MANIFEST.json"));
  EXPECT_EQ(MustRead(dir / "BENCH_campaign.json"), ReferenceBench());

  // Re-invoking resumes everything from the checkpoint: nothing re-runs
  // and the merged bytes do not change.
  Campaign again(SmallSpec(), DirOptions(dir));
  const auto resumed = again.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (const ShardSummary& shard : resumed->shards) {
    EXPECT_EQ(shard.ran, 0) << "shard " << shard.shard;
    EXPECT_EQ(shard.resumed, shard.jobs) << "shard " << shard.shard;
  }
  EXPECT_EQ(MustRead(dir / "BENCH_campaign.json"), ReferenceBench());
}

TEST(CampaignTest, BenchBytesAreIndependentOfShardAndWorkerLayout) {
  const fs::path dir = TestDir("resharded");
  CampaignSpec spec = SmallSpec();
  spec.shards = 3;
  Campaign campaign(spec, DirOptions(dir, /*jobs=*/4));
  const auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->merged);
  EXPECT_EQ(MustRead(dir / "BENCH_campaign.json"), ReferenceBench())
      << "3 shards x 4 workers must merge byte-identically to 1 x 2";
}

TEST(CampaignTest, ResumesByteIdenticallyAfterTornCheckpoint) {
  const fs::path dir = TestDir("resume_torn");
  // Phase 1: a deterministic partial run — one worker, stop after 4
  // completions, so exactly 4 records land in the shard checkpoint.
  CampaignOptions partial = DirOptions(dir, /*jobs=*/1);
  partial.stop_after = 4;
  Campaign first(SmallSpec(), partial);
  const auto stopped = first.Run();
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_TRUE(stopped->stopped);
  EXPECT_FALSE(stopped->merged);
  EXPECT_EQ(stopped->pending, 8);
  EXPECT_FALSE(fs::exists(dir / "BENCH_campaign.json"));

  // Phase 2: tear the checkpoint tail, as a SIGKILL mid-append would.
  const std::string ckpt = Campaign::ShardPath(dir.string(), 0);
  const std::string bytes = MustRead(ckpt);
  ASSERT_GT(bytes.size(), 5u);
  {
    std::ofstream chopped(ckpt, std::ios::trunc | std::ios::binary);
    chopped << bytes.substr(0, bytes.size() - 5);
  }

  // Phase 3: resume. The torn record is re-run, the rest is reused, and
  // the merge is byte-identical to an uninterrupted campaign.
  Campaign second(SmallSpec(), DirOptions(dir, /*jobs=*/2));
  const auto resumed = second.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->shards.size(), 1u);
  EXPECT_GT(resumed->shards[0].torn_bytes, 0)
      << "the chopped tail was not detected as torn";
  EXPECT_EQ(resumed->shards[0].resumed, 3);
  EXPECT_EQ(resumed->shards[0].ran, 9);
  EXPECT_TRUE(resumed->merged);
  EXPECT_EQ(MustRead(dir / "BENCH_campaign.json"), ReferenceBench());
}

TEST(CampaignTest, CrashAndHangAreQuarantinedAndStillMerge) {
  const fs::path dir = TestDir("quarantine");
  CampaignSpec spec = SmallSpec();
  spec.wall_budget_ms = 500;  // the hang's only way out
  CampaignOptions options = DirOptions(dir);
  options.inject_crash_job = 2;
  options.inject_hang_job = 5;
  Campaign campaign(spec, options);
  const auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->quarantined, 2);
  EXPECT_EQ(report->ok, 10);
  EXPECT_EQ(report->pending, 0);
  EXPECT_TRUE(report->merged)
      << "quarantined jobs are recorded; they must not block the merge";

  for (const char* name :
       {"job_000002.json", "job_000002.scn", "job_000005.json",
        "job_000005.scn"}) {
    EXPECT_TRUE(fs::exists(dir / "quarantine" / name)) << name;
  }

  // The checkpoint records carry the failure taxonomy: the crash
  // exhausted its retry and stayed Internal, the hang timed out once.
  const auto loaded = LoadCheckpoint(Campaign::ShardPath(dir.string(), 0),
                                     SmallSpec().Fingerprint());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  int checked = 0;
  for (const JobRecord& record : loaded->records) {
    if (record.job_id == 2) {
      EXPECT_EQ(record.outcome, "failed");
      EXPECT_EQ(record.code, "Internal");
      EXPECT_EQ(record.attempts, 2);
      EXPECT_TRUE(record.quarantined());
      ++checked;
    } else if (record.job_id == 5) {
      EXPECT_EQ(record.outcome, "timeout");
      EXPECT_EQ(record.attempts, 1) << "timeouts must not be retried";
      EXPECT_TRUE(record.quarantined());
      ++checked;
    } else {
      EXPECT_EQ(record.outcome, "ok") << "job " << record.job_id;
    }
  }
  EXPECT_EQ(checked, 2);
}

TEST(CampaignTest, GracefulStopWritesPartialManifestThenResumesClean) {
  const fs::path dir = TestDir("graceful_stop");
  CampaignOptions partial = DirOptions(dir, /*jobs=*/1);
  partial.stop_after = 3;
  Campaign first(SmallSpec(), partial);
  const auto stopped = first.Run();
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_TRUE(stopped->stopped);
  EXPECT_FALSE(stopped->merged);
  EXPECT_EQ(stopped->ok + stopped->failed + stopped->quarantined +
                stopped->pending,
            stopped->total_jobs);
  const std::string manifest = MustRead(dir / "MANIFEST.json");
  EXPECT_NE(manifest.find("\"stopped\": true"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"complete\": false"), std::string::npos)
      << manifest;
  EXPECT_FALSE(fs::exists(dir / "BENCH_campaign.json"));

  Campaign second(SmallSpec(), DirOptions(dir));
  const auto resumed = second.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->stopped);
  EXPECT_TRUE(resumed->merged);
  EXPECT_EQ(MustRead(dir / "BENCH_campaign.json"), ReferenceBench());
  const std::string final_manifest = MustRead(dir / "MANIFEST.json");
  EXPECT_NE(final_manifest.find("\"complete\": true"), std::string::npos)
      << final_manifest;
}

TEST(CampaignTest, ExternalStopFlagSkipsEverything) {
  const fs::path dir = TestDir("external_stop");
  const std::atomic<bool> stop{true};
  CampaignOptions options = DirOptions(dir);
  options.stop = &stop;
  Campaign campaign(SmallSpec(), options);
  const auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->stopped);
  EXPECT_EQ(report->pending, report->total_jobs);
  EXPECT_FALSE(report->merged);
  EXPECT_TRUE(fs::exists(dir / "MANIFEST.json"))
      << "even an immediately-stopped campaign leaves a manifest";
}

// --- checkpoint torn-tail edge cases ---------------------------------------

TEST(CheckpointTest, GarbageBytesAfterLastNewlineAreTornNotFatal) {
  const fs::path dir = TestDir("torn_garbage");
  const std::string path = (dir / "shard.ckpt").string();
  JobRecord record = SampleRecord();
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open(path, "fp", 0, false).ok());
  ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Close().ok());

  // Not a JSON prefix at all: raw bytes a disk- or FS-level corruption
  // (or a crash straddling an unrelated buffer) could leave behind.
  {
    std::ofstream tail(path, std::ios::app | std::ios::binary);
    const std::string garbage("\x00\xff garbage \x7f", 13);
    tail.write(garbage.data(),
               static_cast<std::streamsize>(garbage.size()));
  }
  const auto loaded = LoadCheckpoint(path, "fp");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records, (std::vector<JobRecord>{record}));
  EXPECT_GT(loaded->torn_bytes, 0);

  CheckpointWriter resume;
  ASSERT_TRUE(resume.Open(path, "fp", loaded->valid_bytes, false).ok());
  ASSERT_TRUE(resume.Close().ok());
  const auto clean = LoadCheckpoint(path, "fp");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->torn_bytes, 0) << "reopen must truncate the garbage";
  EXPECT_EQ(clean->records, (std::vector<JobRecord>{record}));
}

TEST(CheckpointTest, ZeroLengthTrailingRecordIsRejectedAsTorn) {
  const fs::path dir = TestDir("torn_empty");
  const std::string path = (dir / "shard.ckpt").string();
  JobRecord record = SampleRecord();
  CheckpointWriter writer;
  ASSERT_TRUE(writer.Open(path, "fp", 0, false).ok());
  ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Close().ok());

  // A lone '\n': a zero-length record line. It *is* newline-terminated,
  // so naive tail handling would try to decode "" as a record; it must
  // be treated as torn, not crash the load or sneak in as data.
  {
    std::ofstream tail(path, std::ios::app | std::ios::binary);
    tail << "\n";
  }
  const auto loaded = LoadCheckpoint(path, "fp");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records, (std::vector<JobRecord>{record}));
  EXPECT_GT(loaded->torn_bytes, 0);

  CheckpointWriter resume;
  ASSERT_TRUE(resume.Open(path, "fp", loaded->valid_bytes, false).ok());
  JobRecord next = SampleRecord();
  next.job_id = 43;
  ASSERT_TRUE(resume.Append(next).ok());
  ASSERT_TRUE(resume.Close().ok());
  const auto reloaded = LoadCheckpoint(path, "fp");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->records, (std::vector<JobRecord>{record, next}));
  EXPECT_EQ(reloaded->torn_bytes, 0);
}

TEST(CampaignTest, FingerprintMismatchedShardFileIsRefusedByRun) {
  const fs::path dir = TestDir("fp_mismatch");
  // A checkpoint from a *different* campaign (other seed) in our slot.
  CampaignSpec other = SmallSpec();
  other.base_seed = 999;
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer
                    .Open(Campaign::ShardPath(dir.string(), 0),
                          other.Fingerprint(), 0, false)
                    .ok());
    ASSERT_TRUE(writer.Append(SampleRecord()).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  Campaign campaign(SmallSpec(), DirOptions(dir));
  const auto report = campaign.Run();
  ASSERT_FALSE(report.ok())
      << "resuming a different campaign's checkpoint must be refused, "
         "never silently remixed";
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

// --- ENOSPC injection (failing-writer shim) --------------------------------

TEST(CampaignTest, AppendFailureAbortsCleanlyAndResumesByteIdentically) {
  const fs::path dir = TestDir("enospc");
  // Serial worker: after 5 records land the 6th append hits injected
  // ENOSPC. The engine must fail loudly (exit-2 path), keep the durable
  // prefix intact, and resume byte-identically once space is back.
  SetCheckpointAppendFailureForTest(5);
  Campaign campaign(SmallSpec(), DirOptions(dir, /*jobs=*/1));
  const auto report = campaign.Run();
  SetCheckpointAppendFailureForTest(-1);
  ASSERT_FALSE(report.ok())
      << "a lost append means lost durability; it must not be reported "
         "as success";
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
  EXPECT_NE(report.status().message().find("No space left"),
            std::string::npos)
      << report.status().ToString();

  const auto loaded = LoadCheckpoint(Campaign::ShardPath(dir.string(), 0),
                                     SmallSpec().Fingerprint());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.size(), 5u)
      << "the records before the failure stay durable";

  Campaign resume(SmallSpec(), DirOptions(dir));
  const auto resumed = resume.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->merged);
  EXPECT_EQ(MustRead(dir / "BENCH_campaign.json"), ReferenceBench());
}

// --- new outcomes: generator_defect and crash ------------------------------

TEST(CheckpointTest, GeneratorDefectAndCrashOutcomesRoundTrip) {
  for (const char* outcome : {"generator_defect", "crash"}) {
    JobRecord record = SampleRecord();
    record.outcome = outcome;
    record.code = outcome == std::string("crash") ? "Internal"
                                                  : "FailedPrecondition";
    record.message = "why it was poisoned";
    const auto decoded = DecodeJobRecord(EncodeJobRecord(record));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, record);
    EXPECT_TRUE(decoded->quarantined()) << outcome;
    EXPECT_FALSE(decoded->accepted()) << outcome;
  }
}

TEST(CampaignTest, LintPreflightQuarantinesDefectiveCellAsGeneratorBug) {
  const fs::path dir = TestDir("lint_preflight");
  CampaignOptions options = DirOptions(dir);
  options.inject_lint_defect_cell = 2;
  Campaign campaign(SmallSpec(), options);
  const auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Both protocol jobs of cell 2 (ids 4 and 5) are rejected before any
  // simulation; the campaign still completes and merges.
  EXPECT_EQ(report->quarantined, 2);
  EXPECT_EQ(report->ok, 10);
  EXPECT_EQ(report->pending, 0);
  EXPECT_TRUE(report->merged);

  const auto loaded = LoadCheckpoint(Campaign::ShardPath(dir.string(), 0),
                                     SmallSpec().Fingerprint());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  int defects = 0;
  for (const JobRecord& record : loaded->records) {
    if (record.job_id == 4 || record.job_id == 5) {
      EXPECT_EQ(record.outcome, "generator_defect");
      EXPECT_EQ(record.code, "FailedPrecondition");
      EXPECT_EQ(record.attempts, 1)
          << "a deterministic lint rejection must not be retried";
      EXPECT_NE(record.message.find("lint pre-flight"), std::string::npos);
      ++defects;
    } else {
      EXPECT_EQ(record.outcome, "ok") << "job " << record.job_id;
    }
  }
  EXPECT_EQ(defects, 2);
  // The offending scenario is quarantined for the generator's author.
  EXPECT_TRUE(fs::exists(dir / "quarantine" / "job_000004.scn"));
  EXPECT_TRUE(fs::exists(dir / "quarantine" / "job_000005.json"));

  // The defect is charged to the generator, not the protocols: the
  // merged bench must not count it in any protocol's failed tally.
  const std::string bench = MustRead(dir / "BENCH_campaign.json");
  EXPECT_NE(bench.find("\"generator_defect\""), std::string::npos);
  EXPECT_EQ(bench.find("\"failed\": 1"), std::string::npos) << bench;
}

TEST(CampaignTest, LintPreflightOffRunsTheDefectiveCellAnyway) {
  const fs::path dir = TestDir("lint_off");
  CampaignOptions options = DirOptions(dir);
  options.inject_lint_defect_cell = 2;
  options.lint_preflight = false;
  Campaign campaign(SmallSpec(), options);
  const auto report = campaign.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The injected defect is a dangling `expect` assertion — lint-visible
  // but harmless to simulate, so with the gate off everything passes.
  EXPECT_EQ(report->ok, 12);
  EXPECT_EQ(report->quarantined, 0);
}

}  // namespace
}  // namespace pcpda
