#include <gtest/gtest.h>

#include <string>

#include "test_util.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

constexpr char kExample4Text[] = R"(
# Example 4 of the paper (Figures 4 and 5)
scenario example4
horizon 12
priority as-listed
item x
item y
item z

txn T1 offset=4
  read x
  compute 1
end
txn T2 offset=9
  write y
  compute 1
end
txn T3 offset=1
  read z
  write z
end
txn T4 offset=0
  read y
  write x
  compute 3
end
)";

TEST(ScenarioTest, ParsesExample4) {
  const auto scenario = ParseScenario(kExample4Text);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_EQ(scenario->name, "example4");
  EXPECT_EQ(scenario->horizon, 12);
  EXPECT_EQ(scenario->set.size(), 4);
  EXPECT_EQ(scenario->items.size(), 3u);
  EXPECT_EQ(scenario->items.at("x"), 0);
  EXPECT_EQ(scenario->items.at("z"), 2);
  EXPECT_EQ(scenario->set.spec(3).body.size(), 3u);
  EXPECT_EQ(scenario->set.spec(3).body[0], Read(1));
}

TEST(ScenarioTest, ParsedExample4BehavesLikeBuiltin) {
  const auto scenario = ParseScenario(kExample4Text);
  ASSERT_TRUE(scenario.ok());
  const SimResult parsed =
      RunWith(scenario->set, ProtocolKind::kPcpDa, scenario->horizon);
  const PaperExample builtin = Example4();
  const SimResult expected = RunExample(builtin, ProtocolKind::kPcpDa);
  ASSERT_EQ(parsed.trace.ticks().size(), expected.trace.ticks().size());
  for (std::size_t t = 0; t < parsed.trace.ticks().size(); ++t) {
    EXPECT_EQ(parsed.trace.ticks()[t].running_spec,
              expected.trace.ticks()[t].running_spec)
        << "tick " << t;
  }
}

TEST(ScenarioTest, AutoDeclaresItems) {
  const auto scenario = ParseScenario(
      "txn T period=10\n  read a\n  write b\nend\n");
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->items.size(), 2u);
  EXPECT_EQ(scenario->set.item_count(), 2);
}

TEST(ScenarioTest, DurationsAndDeadlines) {
  const auto scenario = ParseScenario(
      "txn T period=20 offset=3 deadline=15\n"
      "  read a 2\n  compute 5\n  write a 3\nend\n");
  ASSERT_TRUE(scenario.ok());
  const TransactionSpec& spec = scenario->set.spec(0);
  EXPECT_EQ(spec.period, 20);
  EXPECT_EQ(spec.offset, 3);
  EXPECT_EQ(spec.relative_deadline, 15);
  EXPECT_EQ(spec.ExecutionTime(), 10);
  EXPECT_EQ(spec.body[0].duration, 2);
}

TEST(ScenarioTest, DefaultsRateMonotonic) {
  const auto scenario = ParseScenario(
      "txn slow period=50\n  compute 1\nend\n"
      "txn fast period=10\n  compute 1\nend\n");
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->set.spec(0).name, "fast");
}

TEST(ScenarioTest, CommentsAndBlankLines) {
  const auto scenario = ParseScenario(
      "# header comment\n\n"
      "txn T period=10   # trailing comment\n"
      "  compute 1       # another\n"
      "end\n");
  ASSERT_TRUE(scenario.ok());
}

// --- Errors -------------------------------------------------------------

TEST(ScenarioTest, ErrorsCarryLineAndColumn) {
  const auto scenario = ParseScenario("scenario s\nbogus directive\n");
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("line 2:1:"),
            std::string::npos)
      << scenario.status().message();

  // The column points at the offending token, not the line start.
  const auto bad_mode = ParseScenario("priority fancy\n");
  ASSERT_FALSE(bad_mode.ok());
  EXPECT_NE(bad_mode.status().message().find("line 1:10:"),
            std::string::npos)
      << bad_mode.status().message();
}

TEST(ScenarioTest, RejectsUnterminatedTxn) {
  EXPECT_FALSE(ParseScenario("txn T period=10\n  compute 1\n").ok());
}

TEST(ScenarioTest, RejectsEmptyScenario) {
  EXPECT_FALSE(ParseScenario("scenario empty\n").ok());
}

TEST(ScenarioTest, RejectsBadStep) {
  EXPECT_FALSE(
      ParseScenario("txn T period=10\n  fetch x\nend\n").ok());
  EXPECT_FALSE(
      ParseScenario("txn T period=10\n  compute zero\nend\n").ok());
  EXPECT_FALSE(
      ParseScenario("txn T period=10\n  compute -3\nend\n").ok());
  EXPECT_FALSE(ParseScenario("txn T period=10\n  read\nend\n").ok());
}

TEST(ScenarioTest, RejectsBadAttributes) {
  EXPECT_FALSE(ParseScenario("txn T cadence=10\n  compute 1\nend\n").ok());
  EXPECT_FALSE(ParseScenario("txn T period\n  compute 1\nend\n").ok());
  EXPECT_FALSE(
      ParseScenario("priority fancy\ntxn T period=10\n  compute 1\nend\n")
          .ok());
  EXPECT_FALSE(
      ParseScenario("horizon 0\ntxn T period=10\n  compute 1\nend\n")
          .ok());
}

TEST(ScenarioTest, RejectsInvalidTransactionSet) {
  // Duplicate names surface from TransactionSet::Create.
  EXPECT_FALSE(ParseScenario("txn T period=10\n  compute 1\nend\n"
                             "txn T period=20\n  compute 1\nend\n")
                   .ok());
}

TEST(ScenarioTest, DuplicateTxnNameFlaggedAtItsLine) {
  // The parser itself rejects the clash (not just TransactionSet later)
  // so the error names the offending line of the second definition.
  const auto scenario =
      ParseScenario("txn T period=10\n  compute 1\nend\n"
                    "txn T period=20\n  compute 1\nend\n");
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("line 4"), std::string::npos);
  EXPECT_NE(scenario.status().message().find("duplicate txn name 'T'"),
            std::string::npos);
}

TEST(ScenarioTest, RejectsDuplicateFaultsBlock) {
  const auto scenario = ParseScenario(
      "txn T period=10\n  compute 1\nend\n"
      "faults\n  abort T at=1\nend\n"
      "faults\n  abort T at=2\nend\n");
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("line 7"), std::string::npos);
}

TEST(ScenarioTest, RejectsNegativeTxnAttributes) {
  for (const char* attr : {"period=-5", "offset=-1", "deadline=-3"}) {
    const auto scenario = ParseScenario(
        std::string("txn T ") + attr + "\n  compute 1\nend\n");
    ASSERT_FALSE(scenario.ok()) << attr;
    EXPECT_NE(scenario.status().message().find("line 1"),
              std::string::npos)
        << scenario.status().ToString();
  }
}

TEST(ScenarioTest, RejectsOutOfRangeFaultAttributes) {
  const char* const kBodies[] = {
      "  abort T at=-1\n",        // negative tick
      "  abort T prob=1.5\n",     // probability above 1
      "  abort T prob=-0.25\n",   // probability below 0
      "  overrun T at=0 by=0\n",  // non-positive overrun
      "  abort T at=0 count=0\n"  // non-positive count
  };
  for (const char* body : kBodies) {
    const auto scenario = ParseScenario(
        std::string("txn T period=10\n  compute 1\nend\nfaults\n") +
        body + "end\n");
    ASSERT_FALSE(scenario.ok()) << body;
    EXPECT_NE(scenario.status().message().find("line 5"),
              std::string::npos)
        << scenario.status().ToString();
  }
}

// --- Round trip -----------------------------------------------------------

TEST(ScenarioTest, FormatRoundTrips) {
  const PaperExample example = Example4();
  const std::string text =
      FormatScenario("roundtrip", example.set, example.horizon);
  const auto scenario = ParseScenario(text);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString() << "\n"
                             << text;
  EXPECT_EQ(scenario->horizon, example.horizon);
  ASSERT_EQ(scenario->set.size(), example.set.size());
  for (SpecId i = 0; i < example.set.size(); ++i) {
    EXPECT_EQ(scenario->set.spec(i).name, example.set.spec(i).name);
    EXPECT_EQ(scenario->set.spec(i).body, example.set.spec(i).body);
    EXPECT_EQ(scenario->set.spec(i).period, example.set.spec(i).period);
    EXPECT_EQ(scenario->set.spec(i).offset, example.set.spec(i).offset);
  }
}

TEST(ScenarioTest, FaultSeedRoundTripsFullUint64) {
  // Seeds live in the full uint64 domain; int64 parsing used to clamp
  // the upper half, silently changing every probabilistic fault draw.
  const auto scenario = ParseScenario(
      "txn T period=10\n  compute 1\nend\n"
      "faults seed=18446744073709551615\n  abort T prob=0.5\nend\n");
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_EQ(scenario->faults.seed, 18446744073709551615ULL);
  const auto reparsed = ParseScenario(FormatScenario(*scenario));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->faults.seed, scenario->faults.seed);
  EXPECT_FALSE(
      ParseScenario("txn T period=10\n  compute 1\nend\n"
                    "faults seed=18446744073709551616\nend\n")
          .ok());  // one past the domain
}

TEST(ScenarioTest, FaultProbabilityRoundTripsExactly) {
  Scenario scenario = ParseScenario(
                          "txn T period=10\n  compute 1\nend\n"
                          "faults seed=7\n  abort T prob=0.5\nend\n")
                          .value();
  // A full-precision double that %g would truncate.
  scenario.faults.faults[0].probability = 0.24437737720555081;
  const auto reparsed = ParseScenario(FormatScenario(scenario));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->faults.faults[0].probability,
            0.24437737720555081);
}

TEST(ScenarioTest, LoadScenarioFileMissing) {
  EXPECT_FALSE(LoadScenarioFile("/nonexistent/path.scn").ok());
}

// --- Source spans and the expect block ----------------------------------

TEST(ScenarioTest, RecordsSpansForParsedEntities) {
  const auto scenario = ParseScenario(
      "scenario s\n"
      "horizon 12\n"
      "item x\n"
      "txn A offset=1\n"
      "  read x\n"
      "  compute 2\n"
      "end\n"
      "faults seed=1\n"
      "  abort A at=3\n"
      "end\n");
  ASSERT_TRUE(scenario.ok());
  const ScenarioSpans& spans = scenario->spans;
  EXPECT_EQ(spans.horizon, (SourceSpan{2, 1}));
  ASSERT_TRUE(spans.items.count("x"));
  EXPECT_EQ(spans.items.at("x"), (SourceSpan{3, 6}));
  ASSERT_TRUE(spans.txns.count("A"));
  EXPECT_EQ(spans.txns.at("A"), (SourceSpan{4, 5}));
  ASSERT_EQ(spans.steps.at("A").size(), 2u);
  EXPECT_EQ(spans.steps.at("A")[0], (SourceSpan{5, 3}));
  EXPECT_EQ(spans.steps.at("A")[1], (SourceSpan{6, 3}));
  ASSERT_EQ(spans.faults.size(), 1u);
  EXPECT_EQ(spans.faults[0], (SourceSpan{9, 3}));
}

TEST(ScenarioTest, AutoDeclaredItemSpanIsFirstUse) {
  const auto scenario = ParseScenario(
      "scenario s\n"
      "txn A\n"
      "  write d\n"
      "end\n");
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->spans.items.at("d"), (SourceSpan{3, 9}));
}

TEST(ScenarioTest, InMemoryScenariosHaveSyntheticSpans) {
  EXPECT_FALSE(SourceSpan{}.valid());
  EXPECT_EQ(SourceSpan{}.DebugString(), "?");
  EXPECT_EQ((SourceSpan{12, 5}).DebugString(), "12:5");
}

TEST(ScenarioTest, ParsesExpectBlock) {
  const auto scenario = ParseScenario(
      "scenario s\n"
      "item x\n"
      "txn A\n"
      "  write x\n"
      "end\n"
      "expect\n"
      "  wceil x A\n"
      "  aceil x dummy\n"
      "end\n");
  ASSERT_TRUE(scenario.ok());
  ASSERT_EQ(scenario->expects.size(), 2u);
  EXPECT_TRUE(scenario->expects[0].write_ceiling);
  EXPECT_EQ(scenario->expects[0].item, "x");
  EXPECT_EQ(scenario->expects[0].txn, "A");
  EXPECT_EQ(scenario->expects[0].span, (SourceSpan{7, 3}));
  EXPECT_FALSE(scenario->expects[1].write_ceiling);
  EXPECT_EQ(scenario->expects[1].txn, "dummy");
}

TEST(ScenarioTest, RejectsMalformedExpectLines) {
  EXPECT_FALSE(ParseScenario("txn A\n  read x\nend\n"
                             "expect\n  wceil x\nend\n")
                   .ok());
  EXPECT_FALSE(ParseScenario("txn A\n  read x\nend\n"
                             "expect\n  ceiling x A\nend\n")
                   .ok());
  EXPECT_FALSE(ParseScenario("txn A\n  read x\nend\nexpect\n").ok());
}

TEST(ScenarioTest, ExpectBlockRoundTrips) {
  const auto scenario = ParseScenario(
      "scenario s\n"
      "item x\n"
      "item y\n"
      "txn A\n"
      "  write x\n"
      "  read y\n"
      "end\n"
      "expect\n"
      "  wceil x A\n"
      "  aceil y dummy\n"
      "end\n");
  ASSERT_TRUE(scenario.ok());
  // Item references come back under the formatter's d<id> names, txn
  // references unchanged, kinds and order preserved.
  const auto reparsed = ParseScenario(FormatScenario(*scenario));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->expects.size(), 2u);
  EXPECT_TRUE(reparsed->expects[0].write_ceiling);
  EXPECT_EQ(reparsed->expects[0].item, "d0");
  EXPECT_EQ(reparsed->expects[0].txn, "A");
  EXPECT_FALSE(reparsed->expects[1].write_ceiling);
  EXPECT_EQ(reparsed->expects[1].item, "d1");
  EXPECT_EQ(reparsed->expects[1].txn, "dummy");

  // parse -> format -> parse is a fixpoint: formatting the reparse
  // yields the same bytes (d<id> names are stable under re-formatting).
  EXPECT_EQ(FormatScenario(*reparsed), FormatScenario(*scenario));
}

TEST(ScenarioTest, DanglingExpectNamesSurviveRoundTripVerbatim) {
  const auto scenario = ParseScenario(
      "scenario s\n"
      "txn A\n"
      "  write x\n"
      "end\n"
      "expect\n"
      "  wceil ghost A\n"
      "end\n");
  ASSERT_TRUE(scenario.ok());
  // `ghost` resolves to no item; the formatter keeps the name so the
  // linter still sees (and flags) the same dangling reference.
  const auto reparsed = ParseScenario(FormatScenario(*scenario));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->expects.size(), 1u);
  EXPECT_EQ(reparsed->expects[0].item, "ghost");
}

}  // namespace
}  // namespace pcpda
