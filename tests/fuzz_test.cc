// Tests for the differential scenario fuzzer: oracle stack, shrinker,
// campaign determinism, the broken-build acceptance check, and replay of
// the committed crash corpus under the correct protocols.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/fuzzer.h"
#include "fuzz/oracles.h"
#include "fuzz/shrinker.h"
#include "lint/lint.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

FuzzOptions SmokeOptions() {
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 200;
  options.horizon_cap = 160;
  return options;
}

// --- Oracle stack ----------------------------------------------------------

TEST(OracleTest, GeneratedScenariosPassOnCorrectBuild) {
  const ScenarioFuzzer fuzzer(SmokeOptions());
  for (int i = 0; i < 5; ++i) {
    const auto scenario = fuzzer.MakeScenario(i);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    const OracleVerdict verdict = RunOracles(*scenario, OracleOptions{});
    EXPECT_TRUE(verdict.ok()) << verdict.DebugString();
  }
}

TEST(OracleTest, PaperExampleScenarioPasses) {
  const char* text = R"(
scenario oracle_smoke
horizon 40
txn T1 period=10
  read a
  compute 1
end
txn T2 period=20
  write a
  compute 2
end
)";
  const auto scenario = ParseScenario(text);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const OracleVerdict verdict = RunOracles(*scenario, OracleOptions{});
  EXPECT_TRUE(verdict.ok()) << verdict.DebugString();
}

TEST(OracleTest, RejectsScenarioWithoutUsableHorizon) {
  // One-shot transactions only and no horizon: nothing to bound the run.
  const char* text = R"(
scenario no_horizon
txn T1 offset=0
  read a
end
)";
  const auto scenario = ParseScenario(text);
  ASSERT_TRUE(scenario.ok());
  const OracleVerdict verdict = RunOracles(*scenario, OracleOptions{});
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.failures.front().oracle, "config");
}

TEST(OracleTest, ReproducesIsFalseForPassingScenario) {
  const ScenarioFuzzer fuzzer(SmokeOptions());
  const auto scenario = fuzzer.MakeScenario(0);
  ASSERT_TRUE(scenario.ok());
  const OracleFailure failure{"serializability", "PCP-DA", ""};
  EXPECT_FALSE(Reproduces(*scenario, OracleOptions{}, failure));
}

// --- Campaign determinism --------------------------------------------------

TEST(FuzzerTest, SameSeedSameScenarios) {
  const ScenarioFuzzer a(SmokeOptions());
  const ScenarioFuzzer b(SmokeOptions());
  for (int i = 0; i < 10; ++i) {
    const auto sa = a.MakeScenario(i);
    const auto sb = b.MakeScenario(i);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    EXPECT_EQ(FormatScenario(*sa), FormatScenario(*sb));
  }
}

TEST(FuzzerTest, DifferentSeedsDifferentScenarios) {
  FuzzOptions other = SmokeOptions();
  other.seed = 2;
  const ScenarioFuzzer a(SmokeOptions());
  const ScenarioFuzzer b(other);
  ASSERT_TRUE(a.MakeScenario(0).ok());
  ASSERT_TRUE(b.MakeScenario(0).ok());
  EXPECT_NE(FormatScenario(*a.MakeScenario(0)),
            FormatScenario(*b.MakeScenario(0)));
}

TEST(FuzzerTest, SameSeedSameReport) {
  FuzzOptions options = SmokeOptions();
  options.iterations = 30;
  ScenarioFuzzer a(options);
  ScenarioFuzzer b(options);
  EXPECT_EQ(a.Run().Summary(), b.Run().Summary());
}

// The batch runner's contract end to end: a campaign whose per-iteration
// protocol fan-out runs on 4 executors must produce byte-identical
// findings to the serial campaign — same iterations flagged, same
// derived scenario seeds, same failure text, and the exact same shrunken
// repro bytes. Runs against the broken T*-guard build so the campaign
// actually finds (and shrinks) failures on both sides.
TEST(FuzzerTest, CampaignParallelJobsMatchSerial) {
  FuzzOptions serial = SmokeOptions();
  serial.oracles.pcp_da.enable_tstar_guard = false;
  serial.max_findings = 3;
  serial.shrink.max_evals = 80;
  FuzzOptions parallel = serial;
  parallel.jobs = 4;

  ScenarioFuzzer a(serial);
  ScenarioFuzzer b(parallel);
  const FuzzReport ra = a.Run();
  const FuzzReport rb = b.Run();

  ASSERT_FALSE(ra.findings.empty())
      << "serial campaign missed the broken build";
  EXPECT_EQ(ra.iterations, rb.iterations);
  EXPECT_EQ(ra.scenarios_with_faults, rb.scenarios_with_faults);
  ASSERT_EQ(ra.findings.size(), rb.findings.size());
  for (std::size_t i = 0; i < ra.findings.size(); ++i) {
    const FuzzFinding& fa = ra.findings[i];
    const FuzzFinding& fb = rb.findings[i];
    EXPECT_EQ(fa.iteration, fb.iteration);
    EXPECT_EQ(fa.scenario_seed, fb.scenario_seed);
    EXPECT_EQ(fa.failure.DebugString(), fb.failure.DebugString());
    EXPECT_EQ(fa.original_text, fb.original_text);
    EXPECT_EQ(fa.minimal_text, fb.minimal_text);
    EXPECT_EQ(fa.shrunk, fb.shrunk);
    EXPECT_EQ(fa.shrink_evals, fb.shrink_evals);
  }
  EXPECT_EQ(ra.Summary(), rb.Summary());
}

// --- Broken-build acceptance ----------------------------------------------
// Disabling the T* guard yields the paper's Example-5 "condition (2)"
// protocol, which can deadlock. The oracles must catch it within the
// smoke budget and the shrinker must produce a parseable minimal .scn
// that still reproduces — and that passes on the correct build.

TEST(FuzzerTest, BrokenTstarGuardCaughtAndShrunk) {
  FuzzOptions options = SmokeOptions();
  options.oracles.pcp_da.enable_tstar_guard = false;
  ScenarioFuzzer fuzzer(options);
  const FuzzReport report = fuzzer.Run();
  ASSERT_FALSE(report.findings.empty())
      << "oracles missed the intentionally broken PCP-DA build";

  const FuzzFinding& finding = report.findings.front();
  EXPECT_EQ(finding.failure.protocol, "PCP-DA");
  EXPECT_TRUE(finding.shrunk) << "finding did not survive shrinking";

  // The minimal repro must parse and still fail under the broken build.
  const auto minimal = ParseScenario(finding.minimal_text);
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_TRUE(Reproduces(*minimal, options.oracles, finding.failure))
      << finding.minimal_text;

  // Shrinking only removed things: the minimal scenario is no larger.
  const auto original = ParseScenario(finding.original_text);
  ASSERT_TRUE(original.ok());
  EXPECT_LE(minimal->set.size(), original->set.size());
  EXPECT_LE(minimal->horizon, original->horizon);

  // The same scenario passes every oracle on the correct build.
  const OracleVerdict correct = RunOracles(*minimal, OracleOptions{});
  EXPECT_TRUE(correct.ok()) << correct.DebugString();
}

// Zeroing the analytical B_i (the --break=bound defect) must trip the
// blocking-bound oracle: any ceiling/push-through wait in the sim now
// exceeds the (fake) bound of 0.
TEST(FuzzerTest, ZeroedBlockingBoundCaughtAndShrunk) {
  FuzzOptions options = SmokeOptions();
  options.oracles.analysis_defect = AnalysisDefect::kZeroBlockingBound;
  options.max_findings = 1;
  ScenarioFuzzer fuzzer(options);
  const FuzzReport report = fuzzer.Run();
  ASSERT_FALSE(report.findings.empty())
      << "blocking-bound oracle missed the zeroed analytical bound";

  const FuzzFinding& finding = report.findings.front();
  EXPECT_EQ(finding.failure.oracle, "blocking-bound");
  EXPECT_TRUE(finding.shrunk) << "finding did not survive shrinking";

  const auto minimal = ParseScenario(finding.minimal_text);
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_TRUE(Reproduces(*minimal, options.oracles, finding.failure))
      << finding.minimal_text;

  // With the real bounds restored the same scenario is clean.
  const OracleVerdict correct = RunOracles(*minimal, OracleOptions{});
  EXPECT_TRUE(correct.ok()) << correct.DebugString();
}

// Forcing the RTA to ignore blocking and restarts (the --break=rta
// defect) makes it claim "schedulable" for overloaded sets; the
// sched-sound oracle must catch the sim's deadline miss contradicting
// that claim.
TEST(FuzzerTest, OptimisticRtaCaughtAndShrunk) {
  FuzzOptions options = SmokeOptions();
  options.oracles.analysis_defect = AnalysisDefect::kOptimisticRta;
  options.max_findings = 1;
  ScenarioFuzzer fuzzer(options);
  const FuzzReport report = fuzzer.Run();
  ASSERT_FALSE(report.findings.empty())
      << "sched-sound oracle missed the optimistic response-time analysis";

  const FuzzFinding& finding = report.findings.front();
  EXPECT_EQ(finding.failure.oracle, "sched-sound");
  EXPECT_TRUE(finding.shrunk) << "finding did not survive shrinking";

  const auto minimal = ParseScenario(finding.minimal_text);
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_TRUE(Reproduces(*minimal, options.oracles, finding.failure))
      << finding.minimal_text;

  const OracleVerdict correct = RunOracles(*minimal, OracleOptions{});
  EXPECT_TRUE(correct.ok()) << correct.DebugString();
}

// --- Shrinker --------------------------------------------------------------

TEST(ShrinkerTest, UnreproducibleFailureReportedUnshrunk) {
  const ScenarioFuzzer fuzzer(SmokeOptions());
  const auto scenario = fuzzer.MakeScenario(0);
  ASSERT_TRUE(scenario.ok());
  const OracleFailure phantom{"serializability", "PCP-DA", "phantom"};
  const ShrinkResult result =
      Shrink(*scenario, OracleOptions{}, phantom);
  EXPECT_FALSE(result.reproduced);
  // The unshrunk text still round-trips.
  EXPECT_TRUE(ParseScenario(result.scn_text).ok());
}

TEST(ShrinkerTest, BudgetIsRespected) {
  FuzzOptions options = SmokeOptions();
  options.oracles.pcp_da.enable_tstar_guard = false;
  ScenarioFuzzer fuzzer(options);
  // Find a failing iteration first.
  for (int i = 0; i < options.iterations; ++i) {
    const auto scenario = fuzzer.MakeScenario(i);
    ASSERT_TRUE(scenario.ok());
    const OracleVerdict verdict = RunOracles(*scenario, options.oracles);
    if (verdict.ok()) continue;
    ShrinkOptions budget;
    budget.max_evals = 3;
    const ShrinkResult result = Shrink(
        *scenario, options.oracles, verdict.failures.front(), budget);
    EXPECT_LE(result.evals, budget.max_evals);
    return;
  }
  FAIL() << "no failing scenario found for the broken build";
}

// Regression for a use-after-free in SimplifyFaultAttrs: shrinking a
// finding whose fault plan is load-bearing accepts the extra->1 shrink
// (a burst fault's extra is not serialized, so the candidate reproduces
// trivially), which replaces the current scenario while the old code
// still held a reference into its faults vector. Campaign seed 4,
// iteration 53 deterministically produces such a finding under the
// fully-broken PCP-DA build; run under ASan this pins the fix.
TEST(ShrinkerTest, FaultAttrShrinkOnLoadBearingFault) {
  FuzzOptions options;
  options.seed = 4;
  options.oracles.pcp_da.enable_tstar_guard = false;
  options.oracles.pcp_da.enable_wr_guard = false;
  const ScenarioFuzzer fuzzer(options);
  const auto scenario = fuzzer.MakeScenario(53);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const FaultSpec* burst = nullptr;
  for (const FaultSpec& fault : scenario->faults.faults) {
    if (fault.kind == FaultKind::kBurstArrival) burst = &fault;
  }
  ASSERT_NE(burst, nullptr);
  // Both attr-shrink branches must have something to do: extra->1 is
  // accepted (not serialized for bursts), count->1 is attempted.
  ASSERT_GT(burst->extra, 1);
  ASSERT_GT(burst->count, 1);

  const OracleVerdict verdict = RunOracles(*scenario, options.oracles);
  ASSERT_FALSE(verdict.ok()) << "broken build no longer fails seed 4/53";
  const ShrinkResult result =
      Shrink(*scenario, options.oracles, verdict.failures.front());
  ASSERT_TRUE(result.reproduced);
  // The fault plan is load-bearing: it must survive minimization.
  EXPECT_NE(result.scn_text.find("faults"), std::string::npos)
      << result.scn_text;
  const auto minimal = ParseScenario(result.scn_text);
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_TRUE(
      Reproduces(*minimal, options.oracles, verdict.failures.front()));
}

// --- Corpus regression -----------------------------------------------------
// Every committed crash repro must parse and pass the full oracle stack
// on the correct build: past findings stay fixed, and the .scn writer's
// round-trip stays stable.

TEST(CorpusTest, CommittedCrashReprosPassOnCorrectBuild) {
  const std::filesystem::path corpus(PCPDA_SOURCE_DIR "/fuzz/corpus");
  ASSERT_TRUE(std::filesystem::exists(corpus)) << corpus;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".scn") continue;
    const auto scenario = LoadScenarioFile(entry.path().string());
    ASSERT_TRUE(scenario.ok())
        << entry.path() << ": " << scenario.status().ToString();
    const OracleVerdict verdict = RunOracles(*scenario, OracleOptions{});
    EXPECT_TRUE(verdict.ok())
        << entry.path() << ":\n"
        << verdict.DebugString();
    ++replayed;
  }
  EXPECT_GT(replayed, 0) << "corpus directory holds no .scn repros";
}

// --- Static/dynamic cross-check --------------------------------------------
// The generator, the static analyzer and the simulator define "valid
// scenario" independently; 1k generated scenarios must produce zero
// disagreements: nothing the analyzer rejects (the simulator would have
// run it) and nothing the simulator rejects (the analyzer passed it).

TEST(LintCrossCheckTest, ThousandGeneratedScenariosNoDisagreement) {
  FuzzOptions options;
  options.seed = 11;
  const ScenarioFuzzer fuzzer(options);
  int disagreements = 0;
  for (int iteration = 0; iteration < 1000; ++iteration) {
    const auto scenario = fuzzer.MakeScenario(iteration);
    ASSERT_TRUE(scenario.ok()) << iteration;
    const LintReport report =
        LintScenario(*scenario, LintFilterOptions());
    if (!report.clean()) {
      ++disagreements;
      ADD_FAILURE() << "iteration " << iteration
                    << " statically rejected:\n"
                    << report.Render(scenario->name)
                    << FormatScenario(*scenario);
    }
  }
  EXPECT_EQ(disagreements, 0);
}

// A second, deeper slice: the first 50 scenarios also run one audited
// PCP-DA simulation each, proving the analyzer's "clean" scenarios are
// dynamically usable (the fuzz-smoke ctest covers the full oracle stack
// at campaign scale).

TEST(LintCrossCheckTest, CleanScenariosSimulateAndAuditClean) {
  FuzzOptions options;
  options.seed = 11;
  const ScenarioFuzzer fuzzer(options);
  for (int iteration = 0; iteration < 50; ++iteration) {
    const auto scenario = fuzzer.MakeScenario(iteration);
    ASSERT_TRUE(scenario.ok()) << iteration;
    ASSERT_TRUE(LintScenario(*scenario, LintFilterOptions()).clean());
    OracleOptions oracle_options;
    oracle_options.protocols = {ProtocolKind::kPcpDa};
    oracle_options.check_determinism = false;
    const OracleVerdict verdict = RunOracles(*scenario, oracle_options);
    EXPECT_TRUE(verdict.ok())
        << "iteration " << iteration << ":\n"
        << verdict.DebugString();
  }
}

}  // namespace
}  // namespace pcpda
