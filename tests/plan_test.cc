// Tests for the scenario compilation layer (src/plan/): CompiledPlan
// lowering (ceilings, calendar cursor, read/write bitsets, horizon
// resolution), the lint gate, and value semantics of the shared
// immutable artifact. The byte-identity of compiled-path runs is pinned
// separately by tests/determinism_test.cc.

#include "plan/compiled_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "plan/job_arena.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

constexpr char kScenarioText[] = R"(scenario plan
horizon 40
item x
item y
item z

txn T1 period=10
  read x
  write y
end
txn T2 period=20
  write x
  read z
end
)";

Scenario Parse(const char* text = kScenarioText) {
  auto scenario = ParseScenario(text);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  return std::move(scenario).value();
}

TEST(CompiledPlanTest, EmptyPlanIsNotOk) {
  CompiledPlan plan;
  EXPECT_FALSE(plan.ok());
}

TEST(CompiledPlanTest, LowersEntitiesCeilingsAndBitsets) {
  auto plan = CompiledPlan::Compile(Parse());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->ok());
  EXPECT_EQ(plan->spec_count(), 2);
  EXPECT_EQ(plan->item_count(), 3);
  EXPECT_EQ(plan->horizon(), 40);

  // Bitsets must agree with the specs' declared read/write sets.
  const TransactionSet& set = plan->set();
  for (SpecId s = 0; s < plan->spec_count(); ++s) {
    for (ItemId i = 0; i < plan->item_count(); ++i) {
      EXPECT_EQ(plan->SpecReads(s, i), set.spec(s).ReadSet().contains(i))
          << "spec " << s << " item " << i;
      EXPECT_EQ(plan->SpecWrites(s, i), set.spec(s).WriteSet().contains(i))
          << "spec " << s << " item " << i;
    }
  }

  // Ceilings are precomputed from the same set a fresh build would use.
  const StaticCeilings fresh(set);
  for (ItemId i = 0; i < plan->item_count(); ++i) {
    EXPECT_EQ(plan->ceilings().Wceil(i), fresh.Wceil(i));
    EXPECT_EQ(plan->ceilings().Aceil(i), fresh.Aceil(i));
  }
}

TEST(CompiledPlanTest, ResolvesMissingHorizonToTwiceHyperperiod) {
  Scenario scenario = Parse();
  scenario.horizon = 0;
  auto plan = CompiledPlan::Compile(scenario);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->horizon(), 2 * scenario.set.Hyperperiod());
}

TEST(CompiledPlanTest, CursorMatchesFreshCalendar) {
  auto plan = CompiledPlan::Compile(Parse());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ArrivalCalendar fresh(&plan->set());
  ArrivalCalendar::Cursor want = fresh.MakeCursor();
  ArrivalCalendar::Cursor got = plan->MakeCursor();
  for (Tick t = 0; t < plan->horizon(); ++t) {
    const auto a = want.PopAt(t);
    const auto b = got.PopAt(t);
    ASSERT_EQ(a.size(), b.size()) << "tick " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].spec, b[i].spec) << "tick " << t;
      EXPECT_EQ(a[i].instance, b[i].instance) << "tick " << t;
    }
  }
}

TEST(CompiledPlanTest, LintGateRejectsDirtyScenario) {
  // Parseable but statically wrong: the expected write ceiling holder of
  // x is TL, the actual is TH — a lint error.
  Scenario dirty = Parse(
      "scenario s\n"
      "item x\n"
      "txn TH\n"
      "  write x\n"
      "end\n"
      "txn TL\n"
      "  read x\n"
      "end\n"
      "expect\n"
      "  wceil x TL\n"
      "end\n");
  auto gated = CompiledPlan::Compile(dirty);
  EXPECT_FALSE(gated.ok());
  EXPECT_EQ(gated.status().code(), StatusCode::kInvalidArgument);

  CompileOptions no_lint;
  no_lint.lint = false;
  auto forced = CompiledPlan::Compile(dirty, no_lint);
  EXPECT_TRUE(forced.ok()) << forced.status().ToString();
}

TEST(CompiledPlanTest, CopiesShareTheImmutableArtifact) {
  auto plan = CompiledPlan::Compile(Parse());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  CompiledPlan copy = plan.value();
  EXPECT_TRUE(copy.ok());
  // Shared pimpl: the copies expose the very same lowered tables.
  EXPECT_EQ(&copy.set(), &plan->set());
  EXPECT_EQ(&copy.ceilings(), &plan->ceilings());
}

TEST(CompiledPlanTest, ConvenienceOverloadBuildsScenario) {
  Scenario scenario = Parse();
  auto plan =
      CompiledPlan::Compile("by_parts", scenario.set, /*horizon=*/17);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->scenario().name, "by_parts");
  EXPECT_EQ(plan->horizon(), 17);
}

// --- JobSlotMap: the dense hot-state arena the simulator runs on --------

TEST(JobSlotMapTest, InsertFindEraseIterateInIdOrder) {
  JobSlotMap<int> map;
  EXPECT_TRUE(map.empty());
  map[5] = 50;
  map[2] = 20;
  map[9] = 90;
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.ids(), (std::vector<JobId>{2, 5, 9}));
  EXPECT_TRUE(map.contains(5));
  EXPECT_FALSE(map.contains(4));
  ASSERT_NE(map.find(2), nullptr);
  EXPECT_EQ(*map.find(2), 20);
  EXPECT_EQ(map.find(7), nullptr);
  map.erase(5);
  EXPECT_EQ(map.ids(), (std::vector<JobId>{2, 9}));
  EXPECT_FALSE(map.contains(5));
}

TEST(JobSlotMapTest, ReusedSlotResetsToDefault) {
  JobSlotMap<std::string> map;
  map[3] = "stale";
  map.erase(3);
  // operator[] on a reused slot must behave like std::map: fresh T{}.
  EXPECT_EQ(map[3], "");
}

TEST(JobSlotMapTest, ClearAndSwapKeepContentsConsistent) {
  JobSlotMap<int> a;
  JobSlotMap<int> b;
  a[1] = 10;
  a[4] = 40;
  b[2] = 20;
  a.swap(b);
  EXPECT_EQ(a.ids(), (std::vector<JobId>{2}));
  EXPECT_EQ(b.ids(), (std::vector<JobId>{1, 4}));
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.contains(1));
}

}  // namespace
}  // namespace pcpda
