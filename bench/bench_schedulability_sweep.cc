// Experiment E9 (extension implied by Section 9): fraction of random
// transaction sets whose Liu–Layland test (and exact response-time test)
// passes under each protocol's blocking term, as utilization rises.
// Expected shape: PCP-DA admits the largest fraction at every level, CCP
// next, then RW-PCP, then original PCP.

#include <benchmark/benchmark.h>

#include "analysis/blocking.h"
#include "analysis/response_time.h"
#include "analysis/rm_bound.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

constexpr int kSetsPerPoint = 200;

struct Point {
  int ll_pass = 0;
  int rta_pass = 0;
};

/// One trial's pass/fail verdicts, one slot per analyzable protocol.
struct TrialVerdicts {
  std::vector<bool> ll;
  std::vector<bool> rta;
};

void PrintSweep() {
  ExecutorPool pool(BenchJobs());
  PrintHeader(StrFormat(
      "Schedulable fraction vs utilization (200 random sets per point, "
      "8 txns, 12 items, write fraction 0.3; jobs=%d)",
      pool.threads()));
  const auto kinds = AnalyzableProtocolKinds();
  std::printf("%-6s", "U");
  for (ProtocolKind kind : kinds) {
    std::printf(" %-9s", (std::string("LL:") + ToString(kind)).c_str());
  }
  for (ProtocolKind kind : kinds) {
    std::printf(" %-10s", (std::string("RTA:") + ToString(kind)).c_str());
  }
  std::printf("\n");

  for (double u : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    // The design-point grid: every trial is an independent task (its Rng
    // is seeded from the trial index alone), fanned out over the pool;
    // the reduction below walks trials in index order, so counts are
    // identical to the serial loop.
    std::vector<TrialVerdicts> verdicts(kSetsPerPoint);
    pool.ParallelFor(kSetsPerPoint, [&](std::size_t trial) {
      Rng rng(static_cast<std::uint64_t>(trial) * 7919 + 13);
      WorkloadParams params;
      params.total_utilization = u;
      auto set = GenerateWorkload(params, rng);
      if (!set.ok()) return;
      TrialVerdicts& out = verdicts[trial];
      out.ll.resize(kinds.size());
      out.rta.resize(kinds.size());
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        const BlockingAnalysis analysis = ComputeBlocking(*set, kinds[k]);
        const auto ll = LiuLaylandTest(*set, analysis.AllB());
        out.ll[k] = ll.ok() && ll->schedulable;
        const auto rta = ResponseTimeAnalysis(*set, analysis.AllB());
        out.rta[k] = rta.ok() && rta->schedulable;
      }
    });
    std::vector<Point> points(kinds.size());
    for (const TrialVerdicts& trial : verdicts) {
      for (std::size_t k = 0; k < trial.ll.size(); ++k) {
        if (trial.ll[k]) ++points[k].ll_pass;
        if (trial.rta[k]) ++points[k].rta_pass;
      }
    }
    std::printf("%-6.2f", u);
    for (const Point& p : points) {
      std::printf(" %-9.3f",
                  static_cast<double>(p.ll_pass) / kSetsPerPoint);
    }
    for (const Point& p : points) {
      std::printf(" %-10.3f",
                  static_cast<double>(p.rta_pass) / kSetsPerPoint);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape: fraction(PCP-DA) >= fraction(RW-PCP) >= "
      "fraction(PCP) at every utilization, and fraction(CCP) >= "
      "fraction(RW-PCP); the exact RTA admits more sets than the "
      "sufficient LL bound. (CCP's analytical B uses its early-release "
      "holding window, so it can edge out PCP-DA's conservative max-C_L "
      "bound in this STATIC test; the SIMULATED comparison in "
      "bench_sim_sweep shows PCP-DA's actual blocking is the lowest.)\n");
}

void BM_SchedulabilityPoint(benchmark::State& state) {
  Rng rng(11);
  WorkloadParams params;
  params.total_utilization = 0.6;
  auto set = GenerateWorkload(params, rng);
  for (auto _ : state) {
    const BlockingAnalysis analysis =
        ComputeBlocking(*set, ProtocolKind::kPcpDa);
    auto ll = LiuLaylandTest(*set, analysis.AllB());
    benchmark::DoNotOptimize(ll.ok() && ll->schedulable);
  }
}
BENCHMARK(BM_SchedulabilityPoint);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
