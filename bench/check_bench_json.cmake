# Validates BENCH_engine.json (written by bench_engine_perf): the file
# must parse as JSON, contain at least one row, and every row's
# compiled_speedup must be >= 1.0 — the compiled path does strictly less
# work per run than the interpreted path, so a regression below 1.0 means
# the CompiledPlan fast path stopped being a fast path.
#
# Usage: cmake -DJSON=<path to BENCH_engine.json> -P check_bench_json.cmake
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED JSON)
  message(FATAL_ERROR "pass -DJSON=<path to BENCH_engine.json>")
endif()
if(NOT EXISTS "${JSON}")
  message(FATAL_ERROR "missing ${JSON} (run bench_engine_perf first)")
endif()

file(READ "${JSON}" doc)
string(JSON nrows ERROR_VARIABLE err LENGTH "${doc}" rows)
if(err)
  message(FATAL_ERROR "cannot parse ${JSON}: ${err}")
endif()
if(nrows LESS 1)
  message(FATAL_ERROR "${JSON} has no rows")
endif()

math(EXPR last "${nrows} - 1")
foreach(i RANGE ${last})
  string(JSON proto GET "${doc}" rows ${i} protocol)
  string(JSON horizon GET "${doc}" rows ${i} ticks_per_sec)
  string(JSON speedup GET "${doc}" rows ${i} compiled_speedup)
  # VERSION_LESS gives a robust decimal comparison ("0.9876" < "1.0").
  if(speedup VERSION_LESS 1.0)
    message(FATAL_ERROR
        "row ${i} (${proto}): compiled_speedup=${speedup} < 1.0 — the "
        "compiled path regressed below the interpreted path")
  endif()
  message(STATUS "row ${i}: ${proto} compiled_speedup=${speedup} ok")
endforeach()
message(STATUS "${JSON}: ${nrows} row(s), all compiled_speedup >= 1.0")
