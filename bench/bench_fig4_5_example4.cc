// Experiments E4/E5 — Figures 4 and 5 of the paper: Example 4 under
// PCP-DA (LC4 grant at t=1, LC2 grant at t=4, Max_Sysceil pushed down to
// P2) and under RW-PCP (T3 ceiling-blocked 4 ticks, T1 conflict-blocked
// 1 tick, Max_Sysceil at P1).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace pcpda {
namespace {

void PrintFigures() {
  const PaperExample example = Example4();
  const SimResult da = BenchRun(example.set, ProtocolKind::kPcpDa,
                                example.horizon);
  PrintRun("Figure 4: Example 4 under PCP-DA", example.set, da);
  std::printf(
      "\npaper: T3 read-locks z at t=1 via LC4 (T*=T4, z not in "
      "WriteSet(T4)); T1 read-locks x at t=4 via LC2; commits T3@3 T1@6 "
      "T4@9 T2@11; the dotted Max_Sysceil line peaks at P2.\n");
  std::printf("measured Max_Sysceil level: %s (P2 level = %d)\n",
              da.metrics.max_ceiling.DebugString().c_str(),
              example.set.priority(1).level());

  const SimResult rw = BenchRun(example.set, ProtocolKind::kRwPcp,
                                example.horizon);
  PrintRun("Figure 5: Example 4 under RW-PCP", example.set, rw);
  std::printf(
      "\npaper: T3 ceiling-blocked (effective blocking 4) and T1 "
      "conflict-blocked (effective blocking 1), both by T4; Max_Sysceil "
      "reaches P1.\n");
  std::printf("measured Max_Sysceil level: %s (P1 level = %d)\n",
              rw.metrics.max_ceiling.DebugString().c_str(),
              example.set.priority(0).level());
}

void BM_Example4(benchmark::State& state) {
  const PaperExample example = Example4();
  const auto kind = state.range(0) == 0 ? ProtocolKind::kPcpDa
                                        : ProtocolKind::kRwPcp;
  for (auto _ : state) {
    SimResult result = BenchRun(example.set, kind, example.horizon,
                                DeadlockPolicy::kHalt, /*record=*/false);
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
}
BENCHMARK(BM_Example4)->Arg(0)->Arg(1);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
