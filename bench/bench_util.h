#ifndef PCPDA_BENCH_BENCH_UTIL_H_
#define PCPDA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "protocols/factory.h"
#include "sched/simulator.h"
#include "trace/gantt.h"
#include "txn/spec.h"
#include "workload/paper_examples.h"

namespace pcpda {

/// Runs `set` under a fresh protocol of `kind`.
inline SimResult BenchRun(const TransactionSet& set, ProtocolKind kind,
                          Tick horizon,
                          DeadlockPolicy deadlock_policy =
                              DeadlockPolicy::kHalt,
                          bool record = true) {
  auto protocol = MakeProtocol(kind);
  SimulatorOptions options;
  options.horizon = horizon;
  options.deadlock_policy = deadlock_policy;
  options.record_trace = record;
  options.record_history = record;
  Simulator sim(&set, protocol.get(), options);
  return sim.Run();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRun(const std::string& title, const TransactionSet& set,
                     const SimResult& result) {
  PrintHeader(title);
  std::printf("%s\n\n%s\n", RenderGantt(set, result.trace).c_str(),
              result.metrics.DebugString(set).c_str());
}

}  // namespace pcpda

#endif  // PCPDA_BENCH_BENCH_UTIL_H_
