#ifndef PCPDA_BENCH_BENCH_UTIL_H_
#define PCPDA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parse.h"
#include "plan/compiled_plan.h"
#include "protocols/factory.h"
#include "runner/batch_runner.h"
#include "sched/simulator.h"
#include "trace/gantt.h"
#include "txn/spec.h"
#include "workload/paper_examples.h"
#include "workload/scenario.h"

namespace pcpda {

/// Runs `set` under a fresh protocol of `kind`.
inline SimResult BenchRun(const TransactionSet& set, ProtocolKind kind,
                          Tick horizon,
                          DeadlockPolicy deadlock_policy =
                              DeadlockPolicy::kHalt,
                          bool record = true) {
  auto protocol = MakeProtocol(kind);
  SimulatorOptions options;
  options.horizon = horizon;
  options.deadlock_policy = deadlock_policy;
  options.record_trace = record;
  options.record_history = record;
  Simulator sim(&set, protocol.get(), options);
  return sim.Run();
}

/// Executor count for the sweep benches: PCPDA_JOBS overrides, else
/// hardware concurrency. Sweep outputs are independent of this value (the
/// batch runner returns results in submission order). A malformed value
/// warns on stderr and degrades to serial (1) instead of being silently
/// misread by atoi.
inline int BenchJobs() {
  if (const char* env = std::getenv("PCPDA_JOBS")) {
    if (env[0] != '\0') return JobsFromEnv("PCPDA_JOBS", 1);
  }
  return ExecutorPool::DefaultThreads();
}

/// Shared batch helper for design-point grids: one RunSpec per
/// (protocol, scenario) pair, protocol-major, executed on `runner`.
/// Result index = kind_index * scenarios.size() + scenario_index.
/// Each scenario is compiled once up front; all protocol runs over it
/// share the plan (the interpreted path is the fallback for a scenario
/// the compiler rejects, preserving the old behavior for bench inputs
/// that carry lint warnings).
inline std::vector<SimResult> RunGrid(BatchRunner& runner,
                                      const std::vector<Scenario>& scenarios,
                                      const std::vector<ProtocolKind>& kinds,
                                      const SimulatorOptions& base_options,
                                      const PcpDaOptions& pcp_da = {}) {
  std::vector<CompiledPlan> plans;
  plans.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) {
    CompileOptions compile;
    compile.lint = false;  // bench scenarios are pre-validated generators
    auto plan = CompiledPlan::Compile(scenario, compile);
    plans.push_back(plan.ok() ? std::move(plan).value() : CompiledPlan{});
  }
  std::vector<RunSpec> specs;
  specs.reserve(kinds.size() * scenarios.size());
  for (const ProtocolKind kind : kinds) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      RunSpec spec;
      spec.scenario = &scenarios[i];
      spec.protocol = kind;
      spec.options = base_options;
      spec.pcp_da = pcp_da;
      if (plans[i].ok()) spec.plan = &plans[i];
      specs.push_back(std::move(spec));
    }
  }
  return runner.Run(specs);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRun(const std::string& title, const TransactionSet& set,
                     const SimResult& result) {
  PrintHeader(title);
  std::printf("%s\n\n%s\n", RenderGantt(set, result.trace).c_str(),
              result.metrics.DebugString(set).c_str());
}

}  // namespace pcpda

#endif  // PCPDA_BENCH_BENCH_UTIL_H_
