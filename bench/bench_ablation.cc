// Experiment E13 (ablation): what each of PCP-DA's two guards buys.
//   * T*-WriteSet guard off (the naive "condition (2)" of Example 5):
//     deadlocks appear.
//   * Table-1 starred condition (wr-guard) off: non-serializable
//     histories and broken commit-order guarantees appear.
// Random workloads, counts aggregated per configuration.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/pcp_da.h"
#include "core/serialization_order.h"
#include "history/serialization_graph.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

constexpr int kRuns = 60;
constexpr Tick kHorizon = 2500;

struct AblationStats {
  int deadlock_runs = 0;
  int non_serializable_runs = 0;
  int commit_order_violation_runs = 0;
  long long restarts = 0;
};

/// The ablation's high-contention trial workloads (shared by every guard
/// configuration; seeds depend only on the trial index).
std::vector<Scenario> AblationScenarios() {
  std::vector<Scenario> scenarios;
  for (int trial = 0; trial < kRuns; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) * 2654435761ULL + 99);
    WorkloadParams params;
    params.num_transactions = 8;
    params.num_items = 8;  // high contention to stress the guards
    params.total_utilization = 0.7;
    params.write_fraction = 0.45;
    auto set = GenerateWorkload(params, rng);
    if (!set.ok()) continue;
    scenarios.push_back(Scenario{StrFormat("ablation_t%d", trial),
                                 std::move(set).value(), kHorizon,
                                 {},
                                 {},
                                 {},
                                 {}});
  }
  return scenarios;
}

AblationStats Measure(BatchRunner& runner, const PcpDaOptions& options) {
  const std::vector<Scenario> scenarios = AblationScenarios();
  SimulatorOptions sim_options;
  sim_options.horizon = kHorizon;
  sim_options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
  // One batch per guard configuration: 60 PCP-DA runs fan out; the
  // serializability and commit-order checks walk results in trial order.
  const std::vector<SimResult> results = RunGrid(
      runner, scenarios, {ProtocolKind::kPcpDa}, sim_options, options);
  AblationStats stats;
  for (const SimResult& result : results) {
    if (result.deadlock_detected) ++stats.deadlock_runs;
    if (!IsSerializable(result.history)) ++stats.non_serializable_runs;
    if (!FindCommitOrderViolations(result.history).empty()) {
      ++stats.commit_order_violation_runs;
    }
    stats.restarts += result.metrics.TotalRestarts();
  }
  return stats;
}

void PrintAblation() {
  BatchRunner runner(BatchOptions{BenchJobs()});
  PrintHeader(StrFormat(
      "PCP-DA guard ablation (60 high-contention random sets per row; "
      "deadlocks resolved by aborting; jobs=%d)",
      runner.jobs()));
  std::printf("%-26s %-10s %-10s %-12s %-9s\n", "configuration",
              "deadlocks", "nonserial", "commitviol", "restarts");
  struct Row {
    const char* name;
    PcpDaOptions options;
  };
  const Row rows[] = {
      {"full PCP-DA", {}},
      {"no T*-guard (cond. (2))", {.enable_tstar_guard = false}},
      {"no wr-guard (Table 1*)", {.enable_wr_guard = false}},
      {"neither guard",
       {.enable_tstar_guard = false, .enable_wr_guard = false}},
  };
  for (const Row& row : rows) {
    const AblationStats stats = Measure(runner, row.options);
    std::printf("%-26s %-10d %-10d %-12d %-9lld\n", row.name,
                stats.deadlock_runs, stats.non_serializable_runs,
                stats.commit_order_violation_runs, stats.restarts);
  }
  std::printf(
      "\nexpected shape: full PCP-DA shows zeros everywhere; dropping the "
      "T*-guard admits the Example-5 deadlock on real workloads. Dropping "
      "ONLY the Table-1 starred condition stays clean here — exactly the "
      "paper's Section-5 remark that LC2/LC3 make the check redundant "
      "(the ceilings deny those reads first); once the T*-guard is ALSO "
      "gone, the unprotected reads slip through and non-serializable "
      "histories plus Lemma-9 violations appear.\n");
}

void BM_AblationPoint(benchmark::State& state) {
  PcpDaOptions options;
  options.enable_tstar_guard = state.range(0) != 0;
  BatchRunner runner(BatchOptions{BenchJobs()});
  for (auto _ : state) {
    const AblationStats stats = Measure(runner, options);
    benchmark::DoNotOptimize(stats.deadlock_runs);
  }
}
BENCHMARK(BM_AblationPoint)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
