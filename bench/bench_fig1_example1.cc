// Experiment E1 — Figure 1 of the paper: Example 1 under RW-PCP, showing
// the ceiling blocking of T2 and the conflict blocking of T1 (both by
// T3), plus the PCP-DA run that avoids both. Also times the simulation.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace pcpda {
namespace {

void PrintFigure1() {
  const PaperExample example = Example1();
  const SimResult rw = BenchRun(example.set, ProtocolKind::kRwPcp,
                                example.horizon);
  PrintRun("Figure 1: Example 1 under RW-PCP (paper artifact)",
           example.set, rw);
  std::printf(
      "\npaper: T2 ceiling-blocked at t=1 and T1 conflict-blocked at t=2 "
      "by T3; T3 commits at 3, T1 at 5.\n");

  const SimResult da = BenchRun(example.set, ProtocolKind::kPcpDa,
                                example.horizon);
  PrintRun("Example 1 under PCP-DA (contrast: zero blocking)", example.set,
           da);
}

void BM_Example1RwPcp(benchmark::State& state) {
  const PaperExample example = Example1();
  for (auto _ : state) {
    SimResult result = BenchRun(example.set, ProtocolKind::kRwPcp,
                                example.horizon, DeadlockPolicy::kHalt,
                                /*record=*/false);
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
}
BENCHMARK(BM_Example1RwPcp);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
