// Experiment E7 — Section 9 of the paper: worst-case blocking terms B_i
// and blocking transaction sets BTS_i under PCP-DA vs RW-PCP (and CCP,
// PCP), plus the Liu–Layland schedulability condition with blocking and
// the exact response-time analysis, on the paper's Example 4 set (made
// periodic) and on random workloads.

#include <benchmark/benchmark.h>

#include "analysis/blocking.h"
#include "analysis/report.h"
#include "analysis/response_time.h"
#include "analysis/rm_bound.h"
#include "bench_util.h"
#include "common/rng.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

TransactionSet PeriodicExample4() {
  // Example 4's access sets with rate-monotonic periods so the Section-9
  // tests apply (C_i preserved: 2, 2, 2, 5).
  TransactionSpec t1{.name = "T1",
                     .period = 20,
                     .body = {Read(kItemX), Compute(1)}};
  TransactionSpec t2{.name = "T2",
                     .period = 30,
                     .body = {Write(kItemY), Compute(1)}};
  TransactionSpec t3{.name = "T3",
                     .period = 40,
                     .body = {Read(kItemZ), Write(kItemZ)}};
  TransactionSpec t4{.name = "T4",
                     .period = 60,
                     .body = {Read(kItemY), Write(kItemX), Compute(3)}};
  auto set = TransactionSet::Create({t1, t2, t3, t4},
                                    PriorityAssignment::kRateMonotonic);
  return std::move(set).value();
}

void PrintSection9() {
  const TransactionSet example = PeriodicExample4();
  PrintHeader("Section 9: worst-case blocking on Example 4 (periodic)");
  std::printf("%s\n", BlockingComparisonTable(example).c_str());
  std::printf(
      "\npaper: BTS_i under PCP-DA is a subset of RW-PCP's; here T1's "
      "B drops from 5 (T4 writes x with Aceil=P1) to 0 because writes "
      "are preemptable.\n");

  for (ProtocolKind kind :
       {ProtocolKind::kPcpDa, ProtocolKind::kRwPcp}) {
    const BlockingAnalysis analysis = ComputeBlocking(example, kind);
    std::printf("\n%s\n", analysis.DebugString(example).c_str());
    const auto ll = LiuLaylandTest(example, analysis.AllB());
    std::printf("%s\n", ll.ok() ? ll->DebugString(example).c_str()
                                : ll.status().ToString().c_str());
  }

  PrintHeader("Full schedulability report (Example 4 periodic)");
  std::printf("%s\n", SchedulabilityReport(example).c_str());

  PrintHeader("Random workloads: mean B_i by protocol");
  std::printf("%-6s %-10s %-10s %-10s %-10s\n", "U", "PCP-DA", "RW-PCP",
              "CCP", "PCP");
  for (double u : {0.3, 0.5, 0.7}) {
    double sums[4] = {0, 0, 0, 0};
    int count = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      Rng rng(seed);
      WorkloadParams params;
      params.total_utilization = u;
      auto set = GenerateWorkload(params, rng);
      if (!set.ok()) continue;
      const ProtocolKind kinds[4] = {
          ProtocolKind::kPcpDa, ProtocolKind::kRwPcp, ProtocolKind::kCcp,
          ProtocolKind::kOpcp};
      for (int k = 0; k < 4; ++k) {
        const BlockingAnalysis analysis = ComputeBlocking(*set, kinds[k]);
        for (Tick b : analysis.AllB()) {
          sums[k] += static_cast<double>(b);
        }
      }
      count += set->size();
    }
    std::printf("%-6.2f %-10.2f %-10.2f %-10.2f %-10.2f\n", u,
                sums[0] / count, sums[1] / count, sums[2] / count,
                sums[3] / count);
  }
  std::printf(
      "\nexpected shape: B(PCP-DA) <= B(CCP) ~ B(RW-PCP) <= B(PCP).\n");
}

void BM_BlockingAnalysis(benchmark::State& state) {
  Rng rng(7);
  WorkloadParams params;
  params.num_transactions = static_cast<int>(state.range(0));
  auto set = GenerateWorkload(params, rng);
  for (auto _ : state) {
    const BlockingAnalysis analysis =
        ComputeBlocking(*set, ProtocolKind::kPcpDa);
    benchmark::DoNotOptimize(analysis.per_spec.size());
  }
}
BENCHMARK(BM_BlockingAnalysis)->Arg(8)->Arg(32);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintSection9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
