// Experiment E11 (extension): the Max_Sysceil push-down argument of
// Section 6 (the dotted lines of Figures 4-5), measured over random
// workloads — how high the system ceiling rises under PCP-DA vs RW-PCP,
// and what fraction of ticks any ceiling is raised at all.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

constexpr int kSets = 30;
constexpr Tick kHorizon = 2000;

struct CeilingStats {
  /// Mean over runs of the peak ceiling, normalized: 1.0 = the highest
  /// transaction priority, 0.0 = dummy (never raised).
  double mean_peak = 0;
  /// Mean fraction of ticks with a raised (non-dummy) ceiling.
  double raised_fraction = 0;
};

CeilingStats Measure(ProtocolKind kind, double utilization) {
  CeilingStats stats;
  int runs = 0;
  for (int trial = 0; trial < kSets; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) * 6151 + 3);
    WorkloadParams params;
    params.total_utilization = utilization;
    auto set = GenerateWorkload(params, rng);
    if (!set.ok()) continue;
    const SimResult result = BenchRun(*set, kind, kHorizon);
    // Normalize the peak: priority level of spec 0 is the top.
    const int top = set->priority(0).level();
    const int bottom = set->priority(set->size() - 1).level();
    const Priority peak = result.metrics.max_ceiling;
    if (!peak.is_dummy() && top > bottom) {
      stats.mean_peak += static_cast<double>(peak.level() - bottom + 1) /
                         static_cast<double>(top - bottom + 1);
    }
    Tick raised = 0;
    for (const TickRecord& record : result.trace.ticks()) {
      if (!record.ceiling.is_dummy()) ++raised;
    }
    stats.raised_fraction += static_cast<double>(raised) /
                             static_cast<double>(result.trace.ticks().size());
    ++runs;
  }
  if (runs > 0) {
    stats.mean_peak /= runs;
    stats.raised_fraction /= runs;
  }
  return stats;
}

void PrintPushdown() {
  PrintHeader(
      "Max_Sysceil push-down (30 random sets per point; peak normalized "
      "to [0,1], 1 = highest transaction priority)");
  std::printf("%-8s %-8s %-12s %-14s\n", "proto", "U", "mean peak",
              "raised ticks");
  for (double u : {0.4, 0.6, 0.8}) {
    for (ProtocolKind kind :
         {ProtocolKind::kPcpDa, ProtocolKind::kRwPcp,
          ProtocolKind::kCcp, ProtocolKind::kOpcp}) {
      const CeilingStats stats = Measure(kind, u);
      std::printf("%-8s %-8.2f %-12.3f %-14.3f\n", ToString(kind), u,
                  stats.mean_peak, stats.raised_fraction);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: PCP-DA raises ceilings on fewer ticks and to lower "
      "peaks than RW-PCP/PCP (write locks raise nothing), matching the "
      "dotted-line comparison of Figures 4-5.\n");
}

void BM_CeilingSample(benchmark::State& state) {
  Rng rng(5);
  WorkloadParams params;
  auto set = GenerateWorkload(params, rng);
  for (auto _ : state) {
    SimResult result = BenchRun(*set, ProtocolKind::kPcpDa, 500,
                                DeadlockPolicy::kHalt, /*record=*/true);
    benchmark::DoNotOptimize(result.metrics.max_ceiling.level());
  }
}
BENCHMARK(BM_CeilingSample);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintPushdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
