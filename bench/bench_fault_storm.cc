// Experiment E14 (robustness): a fault storm over every protocol with the
// per-tick invariant auditor enabled. Random workloads are run at several
// fault rates (probabilistic aborts, spurious in-CS restarts, WCET
// overruns, release jitter); for each protocol we report the injected
// fault mix, audit verdict and serializability of the surviving history.
//
// Expected shape: zero invariant violations everywhere — in particular for
// the ceiling protocols, whose Theorems 1-3 the auditor recomputes each
// tick — and serializable histories for every run that the abort/restart
// machinery touched.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "history/serialization_graph.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

constexpr int kRunsPerCell = 8;
constexpr Tick kHorizon = 3000;
constexpr double kRates[] = {0.0, 0.02, 0.1};

struct StormStats {
  long long injected = 0;
  long long skipped = 0;
  long long restarts = 0;
  long long committed = 0;
  long long violations = 0;
  int non_serializable_runs = 0;
  Tick ticks_audited = 0;
};

FaultConfig StormConfig(double rate, std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  if (rate <= 0.0) return config;
  FaultSpec abort;
  abort.kind = FaultKind::kAbort;
  abort.probability = rate;
  config.faults.push_back(abort);
  FaultSpec restart;
  restart.kind = FaultKind::kRestartInCs;
  restart.probability = rate;
  config.faults.push_back(restart);
  FaultSpec overrun;
  overrun.kind = FaultKind::kOverrun;
  overrun.probability = rate;
  overrun.extra = 3;
  config.faults.push_back(overrun);
  FaultSpec delay;
  delay.kind = FaultKind::kDelayArrival;
  delay.probability = rate;
  delay.extra = 5;
  config.faults.push_back(delay);
  return config;
}

StormStats Measure(ProtocolKind kind, double rate) {
  StormStats stats;
  for (int trial = 0; trial < kRunsPerCell; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) * 6364136223846793005ULL + 7);
    WorkloadParams params;
    params.num_transactions = 8;
    params.num_items = 12;
    params.total_utilization = 0.65;
    params.write_fraction = 0.4;
    auto set = GenerateWorkload(params, rng);
    if (!set.ok()) continue;
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = kHorizon;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    options.audit = true;
    options.faults =
        StormConfig(rate, static_cast<std::uint64_t>(trial) + 1);
    Simulator sim(&*set, protocol.get(), options);
    const SimResult result = sim.Run();
    stats.injected += result.metrics.faults.TotalInjected();
    stats.skipped += result.metrics.faults.skipped_aborts;
    stats.restarts += result.metrics.TotalRestarts();
    stats.committed += result.metrics.TotalCommitted();
    stats.violations +=
        static_cast<long long>(result.audit.violations.size()) +
        result.audit.suppressed;
    stats.ticks_audited += result.audit.ticks_audited;
    if (!IsSerializable(result.history)) ++stats.non_serializable_runs;
  }
  return stats;
}

void PrintStorm() {
  PrintHeader(
      "Fault storm x invariant audit (8 random sets per cell, horizon "
      "3000, deadlocks resolved by aborting; every tick audited)");
  std::printf("%-9s %6s | %9s %8s %9s %10s %11s %7s\n", "protocol",
              "rate", "injected", "skipped", "restarts", "committed",
              "violations", "nonSR");
  bool clean = true;
  for (ProtocolKind kind : AllProtocolKinds()) {
    for (double rate : kRates) {
      const StormStats stats = Measure(kind, rate);
      std::printf("%-9s %6.2f | %9lld %8lld %9lld %10lld %11lld %7d\n",
                  ToString(kind), rate, stats.injected, stats.skipped,
                  stats.restarts, stats.committed, stats.violations,
                  stats.non_serializable_runs);
      if (stats.violations > 0 || stats.non_serializable_runs > 0) {
        clean = false;
      }
    }
    std::printf("\n");
  }
  std::printf("verdict: %s\n",
              clean ? "clean — no invariant violations, all histories "
                      "serializable"
                    : "VIOLATIONS FOUND — see the counts above");
}

void BM_FaultStormPoint(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    const StormStats stats = Measure(ProtocolKind::kPcpDa, rate);
    benchmark::DoNotOptimize(stats.violations);
  }
}
BENCHMARK(BM_FaultStormPoint)->Arg(0)->Arg(10)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintStorm();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
