// Engine performance benchmarks (not a paper artifact): simulator
// throughput in ticks/second across protocols and workload sizes, lock
// table and analysis micro-benchmarks. Useful for keeping the simulator
// fast enough for large sweeps.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/blocking.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "db/lock_table.h"
#include "history/serialization_graph.h"
#include "plan/compiled_plan.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

/// PCPDA_BENCH_SMOKE=1 shrinks every horizon so the whole binary finishes
/// in seconds; the bench-smoke CTest target uses it to run these paths
/// (including under asan) as part of tier-1.
bool SmokeMode() { return std::getenv("PCPDA_BENCH_SMOKE") != nullptr; }

Tick Horizon(Tick full) { return SmokeMode() ? std::min<Tick>(full, 300) : full; }

TransactionSet SizedWorkload(int txns, int items, double utilization) {
  Rng rng(99);
  WorkloadParams params;
  params.num_transactions = txns;
  params.num_items = items;
  params.total_utilization = utilization;
  auto set = GenerateWorkload(params, rng);
  return std::move(set).value();
}

void BM_SimulatorThroughput(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(
      static_cast<int>(state.range(1)), 3 * static_cast<int>(state.range(1)),
      0.7);
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  const Tick horizon = Horizon(5000);
  for (auto _ : state) {
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = horizon;
    options.record_trace = false;
    options.record_history = false;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_SimulatorThroughput)
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 8})
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 24})
    ->Args({static_cast<int>(ProtocolKind::kRwPcp), 8})
    ->Args({static_cast<int>(ProtocolKind::kRwPcp), 24})
    ->Args({static_cast<int>(ProtocolKind::kTwoPlHp), 8});

// The schedulability-sweep shape: one long-horizon run per (protocol,
// utilization) grid point. Horizons this long are where the per-tick
// full-scan engine drowned — every tick rescanned every job released since
// tick 0 — and where the event-driven core's active-set scan and idle-gap
// skip pay off. Tracked before/after in EXPERIMENTS.md.
void BM_LongHorizonSweep(benchmark::State& state) {
  const TransactionSet set =
      SizedWorkload(8, 24, static_cast<double>(state.range(1)) / 100.0);
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  const Tick horizon = Horizon(150000);
  for (auto _ : state) {
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = horizon;
    options.record_trace = false;
    options.record_history = false;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_LongHorizonSweep)
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 45})
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 70})
    ->Args({static_cast<int>(ProtocolKind::kRwPcp), 45})
    ->Args({static_cast<int>(ProtocolKind::kTwoPlHp), 45})
    ->Unit(benchmark::kMillisecond);

// Long horizon with tracing on: exercises the bounded trace ring
// (SimulatorOptions::max_trace_events) that keeps week-long horizons from
// holding every event ever traced in memory.
void BM_LongHorizonBoundedTrace(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(8, 24, 0.45);
  const Tick horizon = Horizon(50000);
  for (auto _ : state) {
    auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
    SimulatorOptions options;
    options.horizon = horizon;
    options.record_history = false;
    options.max_trace_events = static_cast<std::size_t>(state.range(0));
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.trace.events().size());
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_LongHorizonBoundedTrace)->Arg(0)->Arg(4096)->Unit(
    benchmark::kMillisecond);

void BM_TraceRecordingOverhead(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(8, 24, 0.7);
  const bool record = state.range(0) != 0;
  for (auto _ : state) {
    auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
    SimulatorOptions options;
    options.horizon = 2000;
    options.record_trace = record;
    options.record_history = record;
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
}
BENCHMARK(BM_TraceRecordingOverhead)->Arg(0)->Arg(1);

void BM_LockTableOps(benchmark::State& state) {
  LockTable locks(64);
  std::int64_t i = 0;
  for (auto _ : state) {
    const JobId job = i % 16;
    const ItemId item = static_cast<ItemId>(i % 64);
    locks.AcquireRead(job, item);
    benchmark::DoNotOptimize(locks.readers(item).size());
    locks.ReleaseAll(job);
    ++i;
  }
}
BENCHMARK(BM_LockTableOps);

void BM_SerializabilityCheck(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(8, 24, 0.7);
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 2000;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSerializable(result.history));
  }
}
BENCHMARK(BM_SerializabilityCheck);

// --- BENCH_engine.json: interpreted vs compiled, measured honestly -------
//
// The google-benchmark suite above tracks absolute engine throughput; this
// harness additionally compares the interpreted per-run setup path
// (Simulator builds StaticCeilings + ArrivalCalendar from scratch every
// run) against the compiled path (one CompiledPlan shared across runs) and
// emits a machine-readable report. Per (protocol, horizon) row: best-of-3
// trials per arm, wall clock around construction + Run(). The rows land in
// BENCH_engine.json ($PCPDA_BENCH_JSON overrides the path) with schema
//   {"smoke": bool, "rows": [{"protocol", "horizon", "ticks_per_sec",
//     "ns_per_lock_decision", "compiled_speedup"}]}
// and the bench-json ctest target asserts the JSON parses and every
// compiled_speedup is >= 1.0 (the compiled arm does strictly less work).

struct EngineArm {
  double sec_per_run = 0.0;
  std::int64_t lock_decisions_per_run = 0;
};

/// One timed simulation; the construction cost is part of the measurement
/// (that is the difference between the arms).
double TimedRun(const TransactionSet& set, const CompiledPlan* plan,
                ProtocolKind kind, Tick horizon,
                std::int64_t* lock_decisions) {
  auto protocol = MakeProtocol(kind);
  SimulatorOptions options;
  options.horizon = horizon;
  options.record_trace = false;
  options.record_history = false;
  options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
  const auto start = std::chrono::steady_clock::now();
  SimResult result = [&] {
    if (plan != nullptr) {
      Simulator sim(*plan, protocol.get(), options);
      return sim.Run();
    }
    Simulator sim(&set, protocol.get(), options);
    return sim.Run();
  }();
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  *lock_decisions = result.metrics.lock_decisions;
  return std::chrono::duration<double>(stop - start).count();
}

EngineArm MeasureArm(const TransactionSet& set, const CompiledPlan* plan,
                     ProtocolKind kind, Tick horizon) {
  EngineArm arm;
  // Calibrate: enough repetitions per trial to cover ~20ms, so short
  // horizons are not timer-noise-bound; slow protocols run once.
  std::int64_t decisions = 0;
  const double probe = TimedRun(set, plan, kind, horizon, &decisions);
  arm.lock_decisions_per_run = decisions;
  int reps = 1;
  if (probe < 0.02) {
    reps = std::min<int>(256, static_cast<int>(0.02 / std::max(probe, 1e-7)) + 1);
  }
  double best = probe;
  for (int trial = 0; trial < 3; ++trial) {
    double total = 0.0;
    for (int r = 0; r < reps; ++r) {
      total += TimedRun(set, plan, kind, horizon, &decisions);
    }
    best = std::min(best, total / reps);
  }
  arm.sec_per_run = best;
  return arm;
}

void WriteEngineBenchJson() {
  struct Point {
    ProtocolKind kind;
    Tick horizon;
  };
  // Long-horizon sweep shape for the ceiling protocols; a campaign-shaped
  // short horizon where the per-run setup actually matters; 2PL-HP kept
  // short because restart thrashing makes it ~2000x slower per tick.
  const std::vector<Point> points = {
      {ProtocolKind::kPcpDa, Horizon(150000)},
      {ProtocolKind::kPcpDa, Horizon(3000)},
      {ProtocolKind::kRwPcp, Horizon(150000)},
      {ProtocolKind::kTwoPlHp, Horizon(1500)},
  };
  const TransactionSet set = SizedWorkload(8, 24, 0.45);
  CompileOptions compile_options;
  compile_options.lint = false;
  auto compiled = CompiledPlan::Compile(
      Scenario{"bench_engine", set, 0, {}, {}, {}, {}}, compile_options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "BENCH_engine: compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return;
  }

  std::string json = "{\n";
  json += StrFormat("  \"smoke\": %s,\n  \"rows\": [\n",
                    SmokeMode() ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const EngineArm interpreted =
        MeasureArm(set, nullptr, p.kind, p.horizon);
    const EngineArm fast =
        MeasureArm(set, &compiled.value(), p.kind, p.horizon);
    const double ticks_per_sec =
        static_cast<double>(p.horizon) / fast.sec_per_run;
    const double ns_per_decision =
        fast.lock_decisions_per_run > 0
            ? fast.sec_per_run * 1e9 /
                  static_cast<double>(fast.lock_decisions_per_run)
            : 0.0;
    const double speedup = interpreted.sec_per_run / fast.sec_per_run;
    json += StrFormat(
        "    {\"protocol\": \"%s\", \"horizon\": %lld, "
        "\"ticks_per_sec\": %.1f, \"ns_per_lock_decision\": %.2f, "
        "\"compiled_speedup\": %.4f}%s\n",
        ToString(p.kind), static_cast<long long>(p.horizon),
        ticks_per_sec, ns_per_decision, speedup,
        i + 1 < points.size() ? "," : "");
  }
  json += "  ]\n}\n";

  const char* path_env = std::getenv("PCPDA_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_engine.json";
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    std::fprintf(stderr, "BENCH_engine: cannot write %s\n", path.c_str());
    return;
  }
  out << json;
  std::printf("BENCH_engine.json -> %s\n%s", path.c_str(), json.c_str());
}

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pcpda::WriteEngineBenchJson();
  return 0;
}
