// Engine performance benchmarks (not a paper artifact): simulator
// throughput in ticks/second across protocols and workload sizes, lock
// table and analysis micro-benchmarks. Useful for keeping the simulator
// fast enough for large sweeps.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>

#include "analysis/blocking.h"
#include "bench_util.h"
#include "common/rng.h"
#include "db/lock_table.h"
#include "history/serialization_graph.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

/// PCPDA_BENCH_SMOKE=1 shrinks every horizon so the whole binary finishes
/// in seconds; the bench-smoke CTest target uses it to run these paths
/// (including under asan) as part of tier-1.
bool SmokeMode() { return std::getenv("PCPDA_BENCH_SMOKE") != nullptr; }

Tick Horizon(Tick full) { return SmokeMode() ? std::min<Tick>(full, 300) : full; }

TransactionSet SizedWorkload(int txns, int items, double utilization) {
  Rng rng(99);
  WorkloadParams params;
  params.num_transactions = txns;
  params.num_items = items;
  params.total_utilization = utilization;
  auto set = GenerateWorkload(params, rng);
  return std::move(set).value();
}

void BM_SimulatorThroughput(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(
      static_cast<int>(state.range(1)), 3 * static_cast<int>(state.range(1)),
      0.7);
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  const Tick horizon = Horizon(5000);
  for (auto _ : state) {
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = horizon;
    options.record_trace = false;
    options.record_history = false;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_SimulatorThroughput)
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 8})
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 24})
    ->Args({static_cast<int>(ProtocolKind::kRwPcp), 8})
    ->Args({static_cast<int>(ProtocolKind::kRwPcp), 24})
    ->Args({static_cast<int>(ProtocolKind::kTwoPlHp), 8});

// The schedulability-sweep shape: one long-horizon run per (protocol,
// utilization) grid point. Horizons this long are where the per-tick
// full-scan engine drowned — every tick rescanned every job released since
// tick 0 — and where the event-driven core's active-set scan and idle-gap
// skip pay off. Tracked before/after in EXPERIMENTS.md.
void BM_LongHorizonSweep(benchmark::State& state) {
  const TransactionSet set =
      SizedWorkload(8, 24, static_cast<double>(state.range(1)) / 100.0);
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  const Tick horizon = Horizon(150000);
  for (auto _ : state) {
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = horizon;
    options.record_trace = false;
    options.record_history = false;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_LongHorizonSweep)
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 45})
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 70})
    ->Args({static_cast<int>(ProtocolKind::kRwPcp), 45})
    ->Args({static_cast<int>(ProtocolKind::kTwoPlHp), 45})
    ->Unit(benchmark::kMillisecond);

// Long horizon with tracing on: exercises the bounded trace ring
// (SimulatorOptions::max_trace_events) that keeps week-long horizons from
// holding every event ever traced in memory.
void BM_LongHorizonBoundedTrace(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(8, 24, 0.45);
  const Tick horizon = Horizon(50000);
  for (auto _ : state) {
    auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
    SimulatorOptions options;
    options.horizon = horizon;
    options.record_history = false;
    options.max_trace_events = static_cast<std::size_t>(state.range(0));
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.trace.events().size());
  }
  state.SetItemsProcessed(state.iterations() * horizon);
}
BENCHMARK(BM_LongHorizonBoundedTrace)->Arg(0)->Arg(4096)->Unit(
    benchmark::kMillisecond);

void BM_TraceRecordingOverhead(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(8, 24, 0.7);
  const bool record = state.range(0) != 0;
  for (auto _ : state) {
    auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
    SimulatorOptions options;
    options.horizon = 2000;
    options.record_trace = record;
    options.record_history = record;
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
}
BENCHMARK(BM_TraceRecordingOverhead)->Arg(0)->Arg(1);

void BM_LockTableOps(benchmark::State& state) {
  LockTable locks(64);
  std::int64_t i = 0;
  for (auto _ : state) {
    const JobId job = i % 16;
    const ItemId item = static_cast<ItemId>(i % 64);
    locks.AcquireRead(job, item);
    benchmark::DoNotOptimize(locks.readers(item).size());
    locks.ReleaseAll(job);
    ++i;
  }
}
BENCHMARK(BM_LockTableOps);

void BM_SerializabilityCheck(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(8, 24, 0.7);
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 2000;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSerializable(result.history));
  }
}
BENCHMARK(BM_SerializabilityCheck);

}  // namespace
}  // namespace pcpda

BENCHMARK_MAIN();
