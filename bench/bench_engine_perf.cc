// Engine performance benchmarks (not a paper artifact): simulator
// throughput in ticks/second across protocols and workload sizes, lock
// table and analysis micro-benchmarks. Useful for keeping the simulator
// fast enough for large sweeps.

#include <benchmark/benchmark.h>

#include "analysis/blocking.h"
#include "bench_util.h"
#include "common/rng.h"
#include "db/lock_table.h"
#include "history/serialization_graph.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

TransactionSet SizedWorkload(int txns, int items, double utilization) {
  Rng rng(99);
  WorkloadParams params;
  params.num_transactions = txns;
  params.num_items = items;
  params.total_utilization = utilization;
  auto set = GenerateWorkload(params, rng);
  return std::move(set).value();
}

void BM_SimulatorThroughput(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(
      static_cast<int>(state.range(1)), 3 * static_cast<int>(state.range(1)),
      0.7);
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  constexpr Tick kHorizon = 5000;
  for (auto _ : state) {
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = kHorizon;
    options.record_trace = false;
    options.record_history = false;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
  state.SetItemsProcessed(state.iterations() * kHorizon);
}
BENCHMARK(BM_SimulatorThroughput)
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 8})
    ->Args({static_cast<int>(ProtocolKind::kPcpDa), 24})
    ->Args({static_cast<int>(ProtocolKind::kRwPcp), 8})
    ->Args({static_cast<int>(ProtocolKind::kRwPcp), 24})
    ->Args({static_cast<int>(ProtocolKind::kTwoPlHp), 8});

void BM_TraceRecordingOverhead(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(8, 24, 0.7);
  const bool record = state.range(0) != 0;
  for (auto _ : state) {
    auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
    SimulatorOptions options;
    options.horizon = 2000;
    options.record_trace = record;
    options.record_history = record;
    Simulator sim(&set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
}
BENCHMARK(BM_TraceRecordingOverhead)->Arg(0)->Arg(1);

void BM_LockTableOps(benchmark::State& state) {
  LockTable locks(64);
  std::int64_t i = 0;
  for (auto _ : state) {
    const JobId job = i % 16;
    const ItemId item = static_cast<ItemId>(i % 64);
    locks.AcquireRead(job, item);
    benchmark::DoNotOptimize(locks.readers(item).size());
    locks.ReleaseAll(job);
    ++i;
  }
}
BENCHMARK(BM_LockTableOps);

void BM_SerializabilityCheck(benchmark::State& state) {
  const TransactionSet set = SizedWorkload(8, 24, 0.7);
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = 2000;
  Simulator sim(&set, protocol.get(), options);
  const SimResult result = sim.Run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSerializable(result.history));
  }
}
BENCHMARK(BM_SerializabilityCheck);

}  // namespace
}  // namespace pcpda

BENCHMARK_MAIN();
