// Experiment E8 — Example 5 of the paper: the naive "condition (2)"
// protocol (LC3/LC4 without the T*-WriteSet guard) deadlocks on crossed
// read/write access; full PCP-DA blocks T_H once instead. 2PL-PI shown
// for contrast (it deadlocks too).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/pcp_da.h"

namespace pcpda {
namespace {

SimResult RunProtocol(const TransactionSet& set, Protocol* protocol,
                      Tick horizon, DeadlockPolicy policy) {
  SimulatorOptions options;
  options.horizon = horizon;
  options.deadlock_policy = policy;
  Simulator sim(&set, protocol, options);
  return sim.Run();
}

void PrintExample5() {
  const PaperExample example = Example5();

  {
    PcpDa full;
    const SimResult result = RunProtocol(example.set, &full,
                                         example.horizon,
                                         DeadlockPolicy::kHalt);
    PrintRun("Example 5 under full PCP-DA (guard on): no deadlock",
             example.set, result);
    std::printf("deadlocks detected: %lld (paper: 0 — TH is "
                "ceiling-blocked once instead)\n",
                static_cast<long long>(result.metrics.deadlocks));
  }
  {
    PcpDaOptions options;
    options.enable_tstar_guard = false;
    PcpDa naive(options);
    const SimResult result = RunProtocol(example.set, &naive,
                                         example.horizon,
                                         DeadlockPolicy::kHalt);
    PrintRun("Example 5 under naive condition (2) (guard off): deadlock",
             example.set, result);
    std::printf("deadlocks detected: %lld (paper: 1 — TH and TL wait on "
                "each other)\n",
                static_cast<long long>(result.metrics.deadlocks));
  }
  {
    auto pi = MakeProtocol(ProtocolKind::kTwoPlPi);
    const SimResult result = RunProtocol(example.set, pi.get(),
                                         example.horizon,
                                         DeadlockPolicy::kHalt);
    PrintRun("Example 5 under 2PL-PI (contrast): deadlock", example.set,
             result);
    std::printf("deadlocks detected: %lld\n",
                static_cast<long long>(result.metrics.deadlocks));
  }
}

void BM_DeadlockDetection(benchmark::State& state) {
  const PaperExample example = Example5();
  PcpDaOptions options;
  options.enable_tstar_guard = false;
  for (auto _ : state) {
    PcpDa naive(options);
    SimulatorOptions sim_options;
    sim_options.horizon = example.horizon;
    sim_options.record_trace = false;
    sim_options.record_history = false;
    Simulator sim(&example.set, &naive, sim_options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.deadlocks);
  }
}
BENCHMARK(BM_DeadlockDetection);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintExample5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
