// Experiments E2/E3 — Figures 2 and 3 of the paper: Example 3 under
// PCP-DA (no blocking, every deadline met) and under RW-PCP (T1 blocked 4
// ticks, deadline miss at t=6).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace pcpda {
namespace {

void PrintFigures() {
  const PaperExample example = Example3();
  const SimResult da = BenchRun(example.set, ProtocolKind::kPcpDa,
                                example.horizon);
  PrintRun("Figure 2: Example 3 under PCP-DA", example.set, da);
  std::printf(
      "\npaper: T1 commits at 3 and 8, T2 at 9; T1 never blocks although "
      "x and y are write-locked by T2 when it reads them.\n");

  const SimResult rw = BenchRun(example.set, ProtocolKind::kRwPcp,
                                example.horizon);
  PrintRun("Figure 3: Example 3 under RW-PCP", example.set, rw);
  std::printf(
      "\npaper: T1#0 is conflict-blocked t=1..5 (worst-case effective "
      "blocking 4) and misses its deadline at t=6; T2 commits at 5.\n");
}

void BM_Example3(benchmark::State& state) {
  const PaperExample example = Example3();
  const auto kind = state.range(0) == 0 ? ProtocolKind::kPcpDa
                                        : ProtocolKind::kRwPcp;
  for (auto _ : state) {
    SimResult result = BenchRun(example.set, kind, example.horizon,
                                DeadlockPolicy::kHalt, /*record=*/false);
    benchmark::DoNotOptimize(result.metrics.TotalMisses());
  }
}
BENCHMARK(BM_Example3)->Arg(0)->Arg(1);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
