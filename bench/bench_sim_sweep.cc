// Experiment E10 (extension): simulated behaviour of all six protocols on
// the same random workloads as utilization and write contention rise —
// deadline-miss ratio, effective blocking, blocking-episode breakdown
// (ceiling vs conflict), restarts and deadlocks. This is the
// dynamic counterpart of the paper's static Section-9 comparison.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

constexpr int kSetsPerPoint = 30;
constexpr Tick kHorizon = 3000;

struct Aggregate {
  double miss_ratio = 0;
  double blocking_ticks = 0;
  double ceiling_blocks = 0;
  double conflict_blocks = 0;
  double restarts = 0;
  double deadlocks = 0;
};

/// The trial workloads of one (utilization, write-fraction) design point.
/// Seeds depend only on the trial index, so the grid is reproducible and
/// every protocol sees identical sets.
std::vector<Scenario> PointScenarios(double utilization,
                                     double write_fraction) {
  std::vector<Scenario> scenarios;
  for (int trial = 0; trial < kSetsPerPoint; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) * 104729 + 7);
    WorkloadParams params;
    params.total_utilization = utilization;
    params.write_fraction = write_fraction;
    auto set = GenerateWorkload(params, rng);
    if (!set.ok()) continue;
    scenarios.push_back(Scenario{StrFormat("sweep_t%d", trial),
                                 std::move(set).value(), kHorizon,
                                 {},
                                 {},
                                 {},
                                 {}});
  }
  return scenarios;
}

/// All protocols of one design point as a single batch; aggregates are
/// reduced in trial order, so they match the old serial loop exactly.
std::vector<Aggregate> RunPointGrid(BatchRunner& runner, double utilization,
                                    double write_fraction) {
  const std::vector<Scenario> scenarios =
      PointScenarios(utilization, write_fraction);
  const std::vector<ProtocolKind> kinds = AllProtocolKinds();
  SimulatorOptions options;
  options.horizon = kHorizon;
  options.record_trace = false;
  options.record_history = false;
  options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
  const std::vector<SimResult> results =
      RunGrid(runner, scenarios, kinds, options);

  std::vector<Aggregate> aggregates(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    Aggregate& aggregate = aggregates[k];
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const SimResult& result = results[k * scenarios.size() + s];
      aggregate.miss_ratio += result.metrics.MissRatio();
      for (const auto& m : result.metrics.per_spec) {
        aggregate.blocking_ticks +=
            static_cast<double>(m.effective_blocking_ticks);
        aggregate.ceiling_blocks += static_cast<double>(m.ceiling_blocks);
        aggregate.conflict_blocks +=
            static_cast<double>(m.conflict_blocks);
        aggregate.restarts += static_cast<double>(m.restarts);
      }
      aggregate.deadlocks +=
          static_cast<double>(result.metrics.deadlocks);
    }
    const int runs = static_cast<int>(scenarios.size());
    if (runs > 0) {
      aggregate.miss_ratio /= runs;
      aggregate.blocking_ticks /= runs;
      aggregate.ceiling_blocks /= runs;
      aggregate.conflict_blocks /= runs;
      aggregate.restarts /= runs;
      aggregate.deadlocks /= runs;
    }
  }
  return aggregates;
}

void PrintSweep() {
  BatchRunner runner(BatchOptions{BenchJobs()});
  PrintHeader(StrFormat(
      "Simulated sweep: 30 random sets per point, horizon 3000 ticks, "
      "write fraction 0.3 (deadlocks resolved by aborting; jobs=%d)",
      runner.jobs()));
  std::printf("%-8s %-8s %-8s %-10s %-9s %-9s %-9s %-9s\n", "proto", "U",
              "miss", "blockticks", "ceilblk", "confblk", "restarts",
              "deadlock");
  for (double u : {0.4, 0.6, 0.8}) {
    const std::vector<Aggregate> aggregates = RunPointGrid(runner, u, 0.3);
    const std::vector<ProtocolKind> kinds = AllProtocolKinds();
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const Aggregate& a = aggregates[k];
      std::printf("%-8s %-8.2f %-8.4f %-10.1f %-9.1f %-9.1f %-9.1f %-9.2f\n",
                  ToString(kinds[k]), u, a.miss_ratio, a.blocking_ticks,
                  a.ceiling_blocks, a.conflict_blocks, a.restarts,
                  a.deadlocks);
    }
    std::printf("\n");
  }
  PrintHeader("Write-contention sweep at U=0.7");
  std::printf("%-8s %-8s %-8s %-10s %-9s %-9s %-9s %-9s\n", "proto", "wf",
              "miss", "blockticks", "ceilblk", "confblk", "restarts",
              "deadlock");
  for (double wf : {0.1, 0.3, 0.6}) {
    const std::vector<Aggregate> aggregates =
        RunPointGrid(runner, 0.7, wf);
    const std::vector<ProtocolKind> kinds = AllProtocolKinds();
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const Aggregate& a = aggregates[k];
      std::printf("%-8s %-8.2f %-8.4f %-10.1f %-9.1f %-9.1f %-9.1f %-9.2f\n",
                  ToString(kinds[k]), wf, a.miss_ratio, a.blocking_ticks,
                  a.ceiling_blocks, a.conflict_blocks, a.restarts,
                  a.deadlocks);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: PCP-DA shows the least blocking and fewest misses "
      "among the ceiling protocols; 2PL-HP trades blocking for restarts; "
      "2PL-PI is the only protocol that deadlocks.\n");
}

void BM_SimulatedRun(benchmark::State& state) {
  Rng rng(3);
  WorkloadParams params;
  params.total_utilization = 0.6;
  auto set = GenerateWorkload(params, rng);
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  for (auto _ : state) {
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = kHorizon;
    options.record_trace = false;
    options.record_history = false;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    Simulator sim(&*set, protocol.get(), options);
    SimResult result = sim.Run();
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
  state.SetItemsProcessed(state.iterations() * kHorizon);
}
BENCHMARK(BM_SimulatedRun)
    ->Arg(static_cast<int>(ProtocolKind::kPcpDa))
    ->Arg(static_cast<int>(ProtocolKind::kRwPcp))
    ->Arg(static_cast<int>(ProtocolKind::kTwoPlHp));

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
