// Experiment E6 — Table 1 of the paper: the PCP-DA lock compatibility
// table, printed from the static rule and verified empirically by driving
// one micro-scenario per cell through the simulator.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/lock_compat.h"

namespace pcpda {
namespace {

TransactionSet MakeSet(std::vector<TransactionSpec> specs) {
  auto set = TransactionSet::Create(std::move(specs),
                                    PriorityAssignment::kAsListed);
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    std::abort();
  }
  return std::move(set).value();
}

const char* CompatName(Table1Compat compat) {
  switch (compat) {
    case Table1Compat::kOk:
      return "OK";
    case Table1Compat::kConditional:
      return "OK*";
    case Table1Compat::kNotOk:
      return "NOT OK";
  }
  return "?";
}

/// Whether the higher-priority requester blocked in the scenario.
bool RequesterBlocked(const TransactionSet& set) {
  const SimResult result = BenchRun(set, ProtocolKind::kPcpDa, 16);
  return result.metrics.per_spec[0].blocked_ticks > 0;
}

void PrintTable1() {
  PrintHeader("Table 1: PCP-DA lock compatibility (static rule)");
  std::printf("%-18s %-18s %-18s\n", "T_L holds \\ T_H asks", "read-lock",
              "write-lock");
  std::printf("%-18s %-18s %-18s\n", "read lock",
              CompatName(LockCompatibility(LockMode::kRead, LockMode::kRead)),
              CompatName(LockCompatibility(LockMode::kRead,
                                           LockMode::kWrite)));
  std::printf("%-18s %-18s %-18s\n", "write lock",
              CompatName(LockCompatibility(LockMode::kWrite,
                                           LockMode::kRead)),
              CompatName(LockCompatibility(LockMode::kWrite,
                                           LockMode::kWrite)));
  std::printf("(*) only when DataRead(T_L) and WriteSet(T_H) are "
              "disjoint\n");

  PrintHeader("Empirical verification (one simulator scenario per cell)");

  // R/R: L read-locks x, H reads x -> no block.
  const bool rr = RequesterBlocked(MakeSet({
      {.name = "H", .offset = 1, .body = {Read(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(3)}},
  }));
  std::printf("held R, request R : %-8s (expected granted)\n",
              rr ? "BLOCKED" : "granted");

  // R/W: L read-locks x, H writes x -> blocked.
  const bool rw = RequesterBlocked(MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Read(0), Compute(3)}},
  }));
  std::printf("held R, request W : %-8s (expected blocked)\n",
              rw ? "blocked" : "GRANTED");

  // W/R disjoint: L write-locks x (has read nothing H writes) -> granted.
  const bool wr_ok = RequesterBlocked(MakeSet({
      {.name = "H", .offset = 1, .body = {Read(0)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(3)}},
  }));
  std::printf("held W, request R : %-8s (expected granted: condition "
              "holds)\n",
              wr_ok ? "BLOCKED" : "granted");

  // W/R intersecting: L has read y which H writes -> blocked.
  const bool wr_bad = RequesterBlocked(MakeSet({
      {.name = "H", .offset = 2, .body = {Read(0), Write(1)}},
      {.name = "L", .offset = 0, .body = {Read(1), Write(0), Compute(2)}},
  }));
  std::printf("held W, request R : %-8s (expected blocked: DataRead(T_L) "
              "meets WriteSet(T_H))\n",
              wr_bad ? "blocked" : "GRANTED");

  // W/W: blind writes -> granted.
  const bool ww = RequesterBlocked(MakeSet({
      {.name = "H", .offset = 1, .body = {Write(0)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(3)}},
  }));
  std::printf("held W, request W : %-8s (expected granted)\n",
              ww ? "BLOCKED" : "granted");
}

void BM_Table1Decision(benchmark::State& state) {
  const TransactionSet set = MakeSet({
      {.name = "H", .offset = 1, .body = {Read(0)}},
      {.name = "L", .offset = 0, .body = {Write(0), Compute(3)}},
  });
  for (auto _ : state) {
    SimResult result = BenchRun(set, ProtocolKind::kPcpDa, 16,
                                DeadlockPolicy::kHalt, /*record=*/false);
    benchmark::DoNotOptimize(result.metrics.TotalCommitted());
  }
}
BENCHMARK(BM_Table1Decision);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
