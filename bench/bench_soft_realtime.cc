// Experiment E12 (extension): soft real-time behaviour under Poisson
// (aperiodic) arrivals with the drop-on-miss policy — the classic RTDB
// evaluation (Abbott & Garcia-Molina style) the paper's Section 2 refers
// to when discussing abortion strategies. Miss/drop ratio vs offered load
// for every protocol.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "sim/arrival_schedule.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

constexpr int kSetsPerPoint = 15;
constexpr Tick kHorizon = 4000;

struct Point {
  double miss_ratio = 0;
  double restarts = 0;
  double mean_response = 0;
};

Point RunPoint(ProtocolKind kind, double load) {
  Point point;
  int runs = 0;
  for (int trial = 0; trial < kSetsPerPoint; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) * 48271 + 11);
    WorkloadParams params;
    params.num_transactions = 8;
    params.num_items = 15;
    params.total_utilization = 0.5;  // base rate; Poisson load scales it
    params.write_fraction = 0.3;
    auto set = GenerateWorkload(params, rng);
    if (!set.ok()) continue;
    Rng arrival_rng(static_cast<std::uint64_t>(trial) * 69621 + 3);
    const ArrivalSchedule schedule =
        ArrivalSchedule::Poisson(*set, kHorizon, load, arrival_rng);
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = kHorizon;
    options.miss_policy = DeadlineMissPolicy::kDrop;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    options.record_trace = false;
    options.record_history = false;
    options.arrival_schedule = &schedule;
    Simulator sim(&*set, protocol.get(), options);
    const SimResult result = sim.Run();
    point.miss_ratio += result.metrics.MissRatio();
    double responses = 0;
    double committed = 0;
    for (const auto& m : result.metrics.per_spec) {
      point.restarts += static_cast<double>(m.restarts);
      responses += m.total_response;
      committed += static_cast<double>(m.committed);
    }
    if (committed > 0) point.mean_response += responses / committed;
    ++runs;
  }
  if (runs > 0) {
    point.miss_ratio /= runs;
    point.restarts /= runs;
    point.mean_response /= runs;
  }
  return point;
}

void PrintSweep() {
  PrintHeader(
      "Soft real-time: Poisson arrivals, drop-on-miss, base U=0.5 "
      "(15 random sets per point, horizon 4000)");
  std::printf("%-8s %-6s %-10s %-10s %-10s\n", "proto", "load",
              "missratio", "restarts", "mean_resp");
  for (double load : {0.6, 1.0, 1.4, 1.8}) {
    for (ProtocolKind kind : AllProtocolKinds()) {
      const Point point = RunPoint(kind, load);
      std::printf("%-8s %-6.2f %-10.4f %-10.1f %-10.1f\n", ToString(kind),
                  load, point.miss_ratio, point.restarts,
                  point.mean_response);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: miss ratios rise with load for every protocol; "
      "PCP-DA stays lowest among the blocking protocols; the OCC and "
      "2PL-HP baselines trade blocking for restart overhead, which "
      "dominates as load grows.\n");
}

void BM_SoftRealtimePoint(benchmark::State& state) {
  for (auto _ : state) {
    const Point point = RunPoint(ProtocolKind::kPcpDa, 1.0);
    benchmark::DoNotOptimize(point.miss_ratio);
  }
}
BENCHMARK(BM_SoftRealtimePoint)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcpda

int main(int argc, char** argv) {
  pcpda::PrintSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
