// Figure exporter: regenerate the paper's figures as SVG files plus the
// per-tick schedules and metrics as CSV — ready to drop into a paper or a
// web page.
//
//   ./build/examples/export_figures [output_dir]    (default: ./figures)

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "protocols/factory.h"
#include "sched/simulator.h"
#include "trace/csv.h"
#include "trace/svg.h"
#include "workload/paper_examples.h"

using namespace pcpda;

namespace {

bool WriteFile(const std::filesystem::path& path,
               const std::string& content) {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << content;
  return true;
}

bool Export(const std::filesystem::path& dir, const std::string& stem,
            const PaperExample& example, ProtocolKind kind) {
  auto protocol = MakeProtocol(kind);
  SimulatorOptions options;
  options.horizon = example.horizon;
  options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
  Simulator simulator(&example.set, protocol.get(), options);
  const SimResult result = simulator.Run();

  SvgOptions svg;
  svg.title = example.name + " — " + ToString(kind);
  bool ok = WriteFile(dir / (stem + ".svg"),
                      RenderSvg(example.set, result.trace, svg));
  ok = WriteFile(dir / (stem + "_schedule.csv"),
                 ScheduleCsv(example.set, result.trace)) &&
       ok;
  ok = WriteFile(dir / (stem + "_events.csv"),
                 TraceEventsCsv(result.trace)) &&
       ok;
  ok = WriteFile(dir / (stem + "_metrics.csv"),
                 MetricsCsv(example.set, result.metrics)) &&
       ok;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "figures";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  struct Job {
    const char* stem;
    PaperExample example;
    ProtocolKind kind;
  };
  const Job jobs[] = {
      {"fig1_example1_rwpcp", Example1(), ProtocolKind::kRwPcp},
      {"fig2_example3_pcpda", Example3(), ProtocolKind::kPcpDa},
      {"fig3_example3_rwpcp", Example3(), ProtocolKind::kRwPcp},
      {"fig4_example4_pcpda", Example4(), ProtocolKind::kPcpDa},
      {"fig5_example4_rwpcp", Example4(), ProtocolKind::kRwPcp},
      {"example5_pcpda", Example5(), ProtocolKind::kPcpDa},
  };
  bool ok = true;
  for (const Job& job : jobs) {
    ok = Export(dir, job.stem, job.example, job.kind) && ok;
    std::printf("wrote %s/%s.svg (+ 3 CSVs)\n", dir.c_str(), job.stem);
  }
  return ok ? 0 : 1;
}
