// Crash-safe experiment-campaign CLI: sweep utilization x protocol over
// seeded random workloads with per-shard checkpoints, per-job watchdogs,
// retry/quarantine, and graceful SIGINT/SIGTERM shutdown. Re-invoking
// with the same flags resumes from the last durable record and produces
// a BENCH_campaign.json byte-identical to an uninterrupted run.
//
//   ./build/examples/pcpda_campaign --out=campaign --scenarios=100
//   ./build/examples/pcpda_campaign --out=campaign --shards=4 --shard=1
//   ./build/examples/pcpda_campaign --out=campaign --dist=bimodal
//
// Exit codes (shared by every CLI in examples/): 0 campaign complete and
// every job ok, 1 completed with failed/quarantined jobs or interrupted
// with work pending, 2 usage, spec or IO error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "common/parse.h"
#include "runner/executor_pool.h"

using namespace pcpda;

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --out=DIR [flags]\n"
      "  --out=DIR           checkpoint/result directory (required)\n"
      "  --seed=N            campaign base seed (default 1)\n"
      "  --scenarios=K       scenarios per utilization point (default "
      "100)\n"
      "  --utils=A,B,...     utilization sweep (default 0.1..0.9)\n"
      "  --protocols=P,Q,... protocols to compare (default all 8)\n"
      "  --dist=NAME         uunifast|randfixedsum|exponential|bimodal\n"
      "  --txns=N            transactions per scenario (default 8)\n"
      "  --items=N           data items per scenario (default 20)\n"
      "  --horizon=H         simulation horizon per job (default 3000)\n"
      "  --shards=S          checkpoint shards (default 1)\n"
      "  --shard=I           run only shard I of S (default: all)\n"
      "  --jobs=N            concurrent executors (default: hardware "
      "concurrency)\n"
      "  --max-sim-ticks=T   deterministic per-attempt tick budget\n"
      "                      (default 4x horizon)\n"
      "  --wall-budget-ms=W  wall-clock per-attempt budget (default off)\n"
      "  --retries=R         extra attempts after a captured exception "
      "(default 1)\n"
      "  --no-fsync          skip per-record fsync (crash safety off)\n"
      "  --inject-crash=J    fault injection: job J throws every attempt\n"
      "  --inject-hang=J     fault injection: job J hangs until "
      "cancelled\n"
      "  --stop-after=N      deterministic stand-in for SIGINT after N\n"
      "                      completions\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(list.substr(start));
      break;
    }
    parts.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignSpec spec;
  spec.protocols = AllProtocolKinds();
  CampaignOptions options;
  options.jobs = ExecutorPool::DefaultThreads();
  options.stop = &g_stop;

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--out", &value)) {
      options.out_dir = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      if (!ParseFlagUInt64("--seed", value,
                           std::numeric_limits<std::uint64_t>::max(),
                           &spec.base_seed)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--scenarios", &value)) {
      if (!ParseFlagInt("--scenarios", value, 1, 1 << 30,
                        &spec.scenarios)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--utils", &value)) {
      spec.utilizations.clear();
      for (const std::string& part : SplitCommas(value)) {
        double util = 0.0;
        if (!ParseFlagDouble("--utils", part, 0.0,
                             std::numeric_limits<double>::max(), &util)) {
          Usage(argv[0]);
          return 2;
        }
        spec.utilizations.push_back(util);
      }
    } else if (ParseFlag(argv[i], "--protocols", &value)) {
      spec.protocols.clear();
      for (const std::string& part : SplitCommas(value)) {
        const auto kind = ProtocolKindByName(part);
        if (!kind.has_value()) {
          std::fprintf(stderr, "unknown protocol %s\n", part.c_str());
          return 2;
        }
        spec.protocols.push_back(*kind);
      }
    } else if (ParseFlag(argv[i], "--dist", &value)) {
      const auto dist = UtilDistributionByName(value);
      if (!dist.has_value()) {
        std::fprintf(stderr, "unknown distribution %s\n", value);
        return 2;
      }
      spec.workload.distribution = *dist;
    } else if (ParseFlag(argv[i], "--txns", &value)) {
      if (!ParseFlagInt("--txns", value, 1, 1 << 20,
                        &spec.workload.num_transactions)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--items", &value)) {
      if (!ParseFlagInt("--items", value, 1, 1 << 20,
                        &spec.workload.num_items)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--horizon", &value)) {
      if (!ParseFlagTick("--horizon", value, 1,
                         std::numeric_limits<Tick>::max(),
                         &spec.horizon)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      if (!ParseFlagInt("--shards", value, 1, 1 << 20, &spec.shards)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--shard", &value)) {
      if (!ParseFlagInt("--shard", value, 0, 1 << 20,
                        &options.only_shard)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--jobs", &value)) {
      if (!ParseFlagInt("--jobs", value, 1, 1 << 20, &options.jobs)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--max-sim-ticks", &value)) {
      if (!ParseFlagTick("--max-sim-ticks", value, 0,
                         std::numeric_limits<Tick>::max(),
                         &spec.max_sim_ticks)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--wall-budget-ms", &value)) {
      if (!ParseFlagInt("--wall-budget-ms", value, 0, 1 << 30,
                        &spec.wall_budget_ms)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--retries", &value)) {
      if (!ParseFlagInt("--retries", value, 0, 1 << 20,
                        &spec.max_retries)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-fsync") == 0) {
      options.fsync = false;
    } else if (ParseFlag(argv[i], "--inject-crash", &value)) {
      if (!ParseFlagInt64("--inject-crash", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.inject_crash_job)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--inject-hang", &value)) {
      if (!ParseFlagInt64("--inject-hang", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.inject_hang_job)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--stop-after", &value)) {
      if (!ParseFlagInt64("--stop-after", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.stop_after)) {
        Usage(argv[0]);
        return 2;
      }
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (options.out_dir.empty() || options.jobs < 1) {
    Usage(argv[0]);
    return 2;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  Campaign campaign(spec, options);
  const auto report = campaign.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }

  for (const ShardSummary& shard : report->shards) {
    std::printf(
        "shard %d: %lld jobs, %lld resumed, %lld ran%s\n", shard.shard,
        static_cast<long long>(shard.jobs),
        static_cast<long long>(shard.resumed),
        static_cast<long long>(shard.ran),
        shard.torn_bytes > 0
            ? " (torn checkpoint tail discarded)"
            : "");
  }
  std::printf(
      "campaign: %lld jobs, %lld ok, %lld failed, %lld quarantined, "
      "%lld pending%s\n",
      static_cast<long long>(report->total_jobs),
      static_cast<long long>(report->ok),
      static_cast<long long>(report->failed),
      static_cast<long long>(report->quarantined),
      static_cast<long long>(report->pending),
      report->stopped ? " (stopped)" : "");
  std::printf("manifest: %s\n", report->manifest_path.c_str());
  if (report->merged) {
    std::printf("merged: %s\n", report->bench_path.c_str());
  } else {
    std::printf("not merged: %lld job(s) pending; re-invoke to resume\n",
                static_cast<long long>(report->pending));
  }

  const bool clean = report->merged && report->failed == 0 &&
                     report->quarantined == 0;
  return clean ? 0 : 1;
}
