// Crash-safe experiment-campaign CLI: sweep utilization x protocol over
// seeded random workloads with per-shard checkpoints, per-job watchdogs,
// retry/quarantine, and graceful SIGINT/SIGTERM shutdown. Re-invoking
// with the same flags resumes from the last durable record and produces
// a BENCH_campaign.json byte-identical to an uninterrupted run.
//
// Three modes share one binary:
//   (default)    run the grid in-process, then merge
//   --supervise  fork one worker process per shard (src/supervisor/):
//                heartbeat monitoring, SIGTERM->SIGKILL escalation,
//                crash classification, backoff retry, poison-job
//                bisection, optional chaos self-test
//   --worker     be such a worker: run one shard (or a bisected job
//                range of it), heartbeat per durable record, skip the
//                merge (the supervisor owns MANIFEST/BENCH)
//
//   ./build/examples/pcpda_campaign --out=campaign --scenarios=100
//   ./build/examples/pcpda_campaign --out=campaign --shards=4 --shard=1
//   ./build/examples/pcpda_campaign --out=campaign --shards=4 --supervise
//
// Exit codes (shared by every CLI in examples/): 0 campaign complete and
// every job ok, 1 completed with failed/quarantined jobs or interrupted
// with work pending, 2 usage, spec or IO error.

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "common/parse.h"
#include "runner/executor_pool.h"
#include "supervisor/supervisor.h"

using namespace pcpda;

namespace {

// Signal state, async-signal-safe throughout (DESIGN.md §14):
//  - g_signal_flag is the one type the standard guarantees a handler may
//    write (volatile sig_atomic_t); the supervisor polls it.
//  - g_stop is read by the campaign engine's worker threads; a lock-free
//    atomic store is async-signal-safe, and the static_assert makes the
//    "lock-free" half a compile-time fact rather than a hope.
//  - the self-pipe byte wakes the supervisor's poll() immediately
//    instead of at the next tick.
volatile std::sig_atomic_t g_signal_flag = 0;
std::atomic<bool> g_stop{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler stores to g_stop; it must be lock-free to "
              "be async-signal-safe");
int g_signal_pipe_wfd = -1;

void OnSignal(int) {
  const int saved_errno = errno;
  g_signal_flag = 1;
  g_stop.store(true, std::memory_order_relaxed);
  if (g_signal_pipe_wfd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe_wfd, &byte, 1);
  }
  errno = saved_errno;
}

void InstallSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: slow syscalls in the campaign engine resume; the
  // supervisor does not depend on EINTR because the self-pipe byte makes
  // its poll() readable.
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // A worker whose supervisor died must not be killed by SIGPIPE on its
  // next heartbeat; the write just fails and the campaign runs on.
  struct sigaction ignore;
  std::memset(&ignore, 0, sizeof(ignore));
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  ::sigaction(SIGPIPE, &ignore, nullptr);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --out=DIR [flags]\n"
      "  --out=DIR           checkpoint/result directory (required)\n"
      "  --seed=N            campaign base seed (default 1)\n"
      "  --scenarios=K       scenarios per utilization point (default "
      "100)\n"
      "  --utils=A,B,...     utilization sweep (default 0.1..0.9)\n"
      "  --protocols=P,Q,... protocols to compare (default all 8)\n"
      "  --dist=NAME         uunifast|randfixedsum|exponential|bimodal\n"
      "  --txns=N            transactions per scenario (default 8)\n"
      "  --items=N           data items per scenario (default 20)\n"
      "  --min-period=T --max-period=T\n"
      "                      period range, log-uniform (default 50/1000)\n"
      "  --min-ops=N --max-ops=N\n"
      "                      data ops per transaction (default 2/5)\n"
      "  --write-fraction=F  probability an op writes (default 0.3)\n"
      "  --task-util-min=F --task-util-max=F --exp-mean=F\n"
      "  --bimodal-split=F --bimodal-light=F\n"
      "                      distribution shape parameters\n"
      "  --horizon=H         simulation horizon per job (default 3000)\n"
      "  --shards=S          checkpoint shards (default 1)\n"
      "  --shard=I           run only shard I of S (default: all)\n"
      "  --jobs=N            concurrent executors (default: hardware "
      "concurrency)\n"
      "  --max-sim-ticks=T   deterministic per-attempt tick budget\n"
      "                      (default 4x horizon)\n"
      "  --wall-budget-ms=W  wall-clock per-attempt budget (default off)\n"
      "  --retries=R         extra attempts after a captured exception "
      "(default 1)\n"
      "  --no-fsync          skip per-record fsync (crash safety off)\n"
      "  --no-lint-preflight skip the per-scenario lint gate\n"
      "supervision (process isolation, DESIGN.md §14):\n"
      "  --supervise         fork one worker process per shard\n"
      "  --workers=N         concurrent worker processes (default 2)\n"
      "  --stall-ms=T        no heartbeat for T ms -> SIGTERM (default "
      "10000)\n"
      "  --term-grace-ms=T   SIGTERM unanswered for T ms -> SIGKILL "
      "(default 2000)\n"
      "  --shard-deadline-ms=T\n"
      "                      per-task wall deadline (default off)\n"
      "  --task-attempts=N   attempts per task before abandoning "
      "(default 8)\n"
      "  --bisect-after=N    no-progress deaths before bisection "
      "(default 2)\n"
      "  --backoff-ms=T --backoff-cap-ms=T\n"
      "                      retry backoff base/cap (default 100/5000)\n"
      "  --chaos-seed=N --chaos-kills=K --chaos-stops=S\n"
      "                      chaos self-test: seeded SIGKILL/SIGSTOP\n"
      "                      injections against live workers\n"
      "  --worker            internal: run as a supervised worker\n"
      "  --heartbeat-fd=N    internal: worker heartbeat pipe fd\n"
      "  --job-first=J --job-last=J\n"
      "                      internal: bisected job-id range [first, "
      "last)\n"
      "fault injection (robustness tests):\n"
      "  --inject-crash=J    job J throws every attempt (in-process)\n"
      "  --inject-hang=J     job J hangs until cancelled (in-process)\n"
      "  --inject-crash-job=J\n"
      "                      job J SIGSEGVs the whole process (poison "
      "job)\n"
      "  --inject-spin-job=J job J spins, immune to cooperative cancel\n"
      "  --inject-lint-defect-cell=C\n"
      "                      cell C's scenario gets a lint defect\n"
      "  --stop-after=N      deterministic stand-in for SIGINT after N\n"
      "                      completions\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(list.substr(start));
      break;
    }
    parts.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

/// The worker binary to re-exec for --supervise: this very image.
/// /proc/self/exe survives $PATH games and relative-cwd invocations;
/// argv[0] is the fallback off Linux.
std::string SelfExecutable(const char* argv0) {
  char buffer[4096];
  const ssize_t n =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) {
    buffer[n] = '\0';
    return std::string(buffer);
  }
  return std::string(argv0);
}

void PrintReport(const CampaignReport& report) {
  for (const ShardSummary& shard : report.shards) {
    std::printf(
        "shard %d: %lld jobs, %lld resumed, %lld ran%s\n", shard.shard,
        static_cast<long long>(shard.jobs),
        static_cast<long long>(shard.resumed),
        static_cast<long long>(shard.ran),
        shard.torn_bytes > 0
            ? " (torn checkpoint tail discarded)"
            : "");
  }
  std::printf(
      "campaign: %lld jobs, %lld ok, %lld failed, %lld quarantined, "
      "%lld pending%s\n",
      static_cast<long long>(report.total_jobs),
      static_cast<long long>(report.ok),
      static_cast<long long>(report.failed),
      static_cast<long long>(report.quarantined),
      static_cast<long long>(report.pending),
      report.stopped ? " (stopped)" : "");
  std::printf("manifest: %s\n", report.manifest_path.c_str());
  if (report.merged) {
    std::printf("merged: %s\n", report.bench_path.c_str());
  } else {
    std::printf("not merged: %lld job(s) pending; re-invoke to resume\n",
                static_cast<long long>(report.pending));
  }
}

int ReportExitCode(const CampaignReport& report) {
  const bool clean = report.merged && report.failed == 0 &&
                     report.quarantined == 0;
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignSpec spec;
  spec.protocols = AllProtocolKinds();
  CampaignOptions options;
  options.jobs = ExecutorPool::DefaultThreads();
  options.stop = &g_stop;
  SupervisorOptions supervise_options;
  bool supervise = false;
  bool worker = false;
  int heartbeat_fd = -1;

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--out", &value)) {
      options.out_dir = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      if (!ParseFlagUInt64("--seed", value,
                           std::numeric_limits<std::uint64_t>::max(),
                           &spec.base_seed)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--scenarios", &value)) {
      if (!ParseFlagInt("--scenarios", value, 1, 1 << 30,
                        &spec.scenarios)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--utils", &value)) {
      spec.utilizations.clear();
      for (const std::string& part : SplitCommas(value)) {
        double util = 0.0;
        if (!ParseFlagDouble("--utils", part, 0.0,
                             std::numeric_limits<double>::max(), &util)) {
          Usage(argv[0]);
          return 2;
        }
        spec.utilizations.push_back(util);
      }
    } else if (ParseFlag(argv[i], "--protocols", &value)) {
      spec.protocols.clear();
      for (const std::string& part : SplitCommas(value)) {
        const auto kind = ProtocolKindByName(part);
        if (!kind.has_value()) {
          std::fprintf(stderr, "unknown protocol %s\n", part.c_str());
          return 2;
        }
        spec.protocols.push_back(*kind);
      }
    } else if (ParseFlag(argv[i], "--dist", &value)) {
      const auto dist = UtilDistributionByName(value);
      if (!dist.has_value()) {
        std::fprintf(stderr, "unknown distribution %s\n", value);
        return 2;
      }
      spec.workload.distribution = *dist;
    } else if (ParseFlag(argv[i], "--txns", &value)) {
      if (!ParseFlagInt("--txns", value, 1, 1 << 20,
                        &spec.workload.num_transactions)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--items", &value)) {
      if (!ParseFlagInt("--items", value, 1, 1 << 20,
                        &spec.workload.num_items)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--min-period", &value)) {
      if (!ParseFlagTick("--min-period", value, 1,
                         std::numeric_limits<Tick>::max(),
                         &spec.workload.min_period)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--max-period", &value)) {
      if (!ParseFlagTick("--max-period", value, 1,
                         std::numeric_limits<Tick>::max(),
                         &spec.workload.max_period)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--min-ops", &value)) {
      if (!ParseFlagInt("--min-ops", value, 0, 1 << 20,
                        &spec.workload.min_ops)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--max-ops", &value)) {
      if (!ParseFlagInt("--max-ops", value, 0, 1 << 20,
                        &spec.workload.max_ops)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--write-fraction", &value)) {
      if (!ParseFlagDouble("--write-fraction", value, 0.0, 1.0,
                           &spec.workload.write_fraction)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--task-util-min", &value)) {
      if (!ParseFlagDouble("--task-util-min", value, 0.0, 1.0,
                           &spec.workload.min_task_utilization)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--task-util-max", &value)) {
      if (!ParseFlagDouble("--task-util-max", value, 0.0, 1.0,
                           &spec.workload.max_task_utilization)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--exp-mean", &value)) {
      if (!ParseFlagDouble("--exp-mean", value, 0.0, 1.0,
                           &spec.workload.exp_mean_utilization)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--bimodal-split", &value)) {
      if (!ParseFlagDouble("--bimodal-split", value, 0.0, 1.0,
                           &spec.workload.bimodal_split)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--bimodal-light", &value)) {
      if (!ParseFlagDouble("--bimodal-light", value, 0.0, 1.0,
                           &spec.workload.bimodal_light_fraction)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--horizon", &value)) {
      if (!ParseFlagTick("--horizon", value, 1,
                         std::numeric_limits<Tick>::max(),
                         &spec.horizon)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      if (!ParseFlagInt("--shards", value, 1, 1 << 20, &spec.shards)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--shard", &value)) {
      if (!ParseFlagInt("--shard", value, 0, 1 << 20,
                        &options.only_shard)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--jobs", &value)) {
      if (!ParseFlagInt("--jobs", value, 1, 1 << 20, &options.jobs)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--max-sim-ticks", &value)) {
      if (!ParseFlagTick("--max-sim-ticks", value, 0,
                         std::numeric_limits<Tick>::max(),
                         &spec.max_sim_ticks)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--wall-budget-ms", &value)) {
      if (!ParseFlagInt("--wall-budget-ms", value, 0, 1 << 30,
                        &spec.wall_budget_ms)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--retries", &value)) {
      if (!ParseFlagInt("--retries", value, 0, 1 << 20,
                        &spec.max_retries)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-fsync") == 0) {
      options.fsync = false;
    } else if (std::strcmp(argv[i], "--no-lint-preflight") == 0) {
      options.lint_preflight = false;
    } else if (std::strcmp(argv[i], "--supervise") == 0) {
      supervise = true;
    } else if (std::strcmp(argv[i], "--worker") == 0) {
      worker = true;
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      if (!ParseFlagInt("--workers", value, 1, 1 << 10,
                        &supervise_options.max_workers)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--heartbeat-fd", &value)) {
      if (!ParseFlagInt("--heartbeat-fd", value, 3, 1 << 20,
                        &heartbeat_fd)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--job-first", &value)) {
      if (!ParseFlagInt64("--job-first", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.job_first)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--job-last", &value)) {
      if (!ParseFlagInt64("--job-last", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.job_last)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--stall-ms", &value)) {
      if (!ParseFlagInt("--stall-ms", value, 0, 1 << 30,
                        &supervise_options.stall_timeout_ms)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--term-grace-ms", &value)) {
      if (!ParseFlagInt("--term-grace-ms", value, 0, 1 << 30,
                        &supervise_options.term_grace_ms)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--shard-deadline-ms", &value)) {
      if (!ParseFlagInt("--shard-deadline-ms", value, 0, 1 << 30,
                        &supervise_options.shard_deadline_ms)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--task-attempts", &value)) {
      if (!ParseFlagInt("--task-attempts", value, 1, 1 << 20,
                        &supervise_options.max_task_attempts)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--bisect-after", &value)) {
      if (!ParseFlagInt("--bisect-after", value, 1, 1 << 20,
                        &supervise_options.bisect_after)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--backoff-ms", &value)) {
      if (!ParseFlagInt("--backoff-ms", value, 1, 1 << 30,
                        &supervise_options.backoff_base_ms)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--backoff-cap-ms", &value)) {
      if (!ParseFlagInt("--backoff-cap-ms", value, 1, 1 << 30,
                        &supervise_options.backoff_cap_ms)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--chaos-seed", &value)) {
      if (!ParseFlagUInt64("--chaos-seed", value,
                           std::numeric_limits<std::uint64_t>::max(),
                           &supervise_options.chaos_seed)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--chaos-kills", &value)) {
      if (!ParseFlagInt("--chaos-kills", value, 0, 1 << 20,
                        &supervise_options.chaos_kills)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--chaos-stops", &value)) {
      if (!ParseFlagInt("--chaos-stops", value, 0, 1 << 20,
                        &supervise_options.chaos_stops)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--inject-crash", &value)) {
      if (!ParseFlagInt64("--inject-crash", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.inject_crash_job)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--inject-hang", &value)) {
      if (!ParseFlagInt64("--inject-hang", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.inject_hang_job)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--inject-crash-job", &value)) {
      if (!ParseFlagInt64("--inject-crash-job", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.inject_segv_job)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--inject-spin-job", &value)) {
      if (!ParseFlagInt64("--inject-spin-job", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.inject_spin_job)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--inject-lint-defect-cell", &value)) {
      if (!ParseFlagInt64("--inject-lint-defect-cell", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.inject_lint_defect_cell)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--stop-after", &value)) {
      if (!ParseFlagInt64("--stop-after", value, -1,
                          std::numeric_limits<std::int64_t>::max(),
                          &options.stop_after)) {
        Usage(argv[0]);
        return 2;
      }
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (options.out_dir.empty() || options.jobs < 1) {
    Usage(argv[0]);
    return 2;
  }
  if (supervise && worker) {
    std::fprintf(stderr,
                 "--supervise and --worker are mutually exclusive\n");
    return 2;
  }
  if (supervise && options.only_shard >= 0) {
    std::fprintf(stderr,
                 "--supervise always runs every shard; --shard is for "
                 "manual distribution\n");
    return 2;
  }
  if (worker && options.only_shard < 0) {
    std::fprintf(stderr, "--worker requires --shard\n");
    return 2;
  }

  InstallSignalHandlers();

  if (worker) {
    options.worker = true;
    if (heartbeat_fd >= 0) {
      // Nonblocking: a stalled supervisor (full pipe) must never block a
      // worker mid-record. A dropped heartbeat only risks a spurious
      // stall escalation, which graceful stop + resume absorbs.
      ::fcntl(heartbeat_fd, F_SETFL, O_NONBLOCK);
      const char byte = 'h';
      // Proof of life before the first (possibly slow) compile+simulate.
      [[maybe_unused]] ssize_t n = ::write(heartbeat_fd, &byte, 1);
      options.on_record = [heartbeat_fd] {
        const char beat = 'r';
        [[maybe_unused]] ssize_t m = ::write(heartbeat_fd, &beat, 1);
      };
    }
    Campaign campaign(spec, options);
    const auto report = campaign.Run();
    if (!report.ok()) {
      std::fprintf(stderr, "worker: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    std::int64_t pending = 0;
    for (const ShardSummary& shard : report->shards) {
      pending += shard.jobs - shard.resumed - shard.ran;
    }
    return pending == 0 ? 0 : 1;
  }

  if (supervise) {
    // Self-pipe: lets the supervisor's poll() wake on SIGINT/SIGTERM
    // without trusting EINTR (SA_RESTART is set).
    int signal_pipe[2] = {-1, -1};
    if (::pipe(signal_pipe) == 0) {
      for (int fd : {signal_pipe[0], signal_pipe[1]}) {
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
      }
      g_signal_pipe_wfd = signal_pipe[1];
    }
    supervise_options.out_dir = options.out_dir;
    supervise_options.worker_binary = SelfExecutable(argv[0]);
    supervise_options.worker_jobs = options.jobs;
    supervise_options.fsync = options.fsync;
    supervise_options.lint_preflight = options.lint_preflight;
    supervise_options.inject_crash_job = options.inject_crash_job;
    supervise_options.inject_hang_job = options.inject_hang_job;
    supervise_options.inject_segv_job = options.inject_segv_job;
    supervise_options.inject_spin_job = options.inject_spin_job;
    supervise_options.signal_flag = &g_signal_flag;
    supervise_options.signal_rfd = signal_pipe[0];

    Supervisor supervisor(spec, supervise_options);
    const auto report = supervisor.Run();
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 2;
    }
    const SupervisorStats& stats = supervisor.stats();
    std::printf(
        "supervisor: %lld workers (%lld clean, %lld error, %lld crash, "
        "%lld killed), %lld escalations, %lld retries, %lld bisections, "
        "%lld poison, %lld abandoned, %lld chaos injections\n",
        static_cast<long long>(stats.workers_spawned),
        static_cast<long long>(stats.clean_exits),
        static_cast<long long>(stats.error_exits),
        static_cast<long long>(stats.crash_deaths),
        static_cast<long long>(stats.kill_deaths +
                               stats.other_signal_deaths),
        static_cast<long long>(stats.hang_escalations),
        static_cast<long long>(stats.retries),
        static_cast<long long>(stats.bisections),
        static_cast<long long>(stats.poison_jobs),
        static_cast<long long>(stats.abandoned_tasks),
        static_cast<long long>(stats.chaos_kills_injected +
                               stats.chaos_stops_injected));
    PrintReport(*report);
    return ReportExitCode(*report);
  }

  Campaign campaign(spec, options);
  const auto report = campaign.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  PrintReport(*report);
  return ReportExitCode(*report);
}
