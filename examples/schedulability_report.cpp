// Offline schedulability analysis tool (the Section-9 workflow): build or
// generate a periodic transaction set, compute per-protocol worst-case
// blocking, and print the Liu–Layland and response-time verdicts — the
// admission test a hard real-time database designer would run before
// deployment.
//
//   ./build/examples/schedulability_report [seed [utilization]]

#include <cstdio>
#include <cstdlib>

#include "analysis/blocking.h"
#include "analysis/report.h"
#include "analysis/response_time.h"
#include "analysis/rm_bound.h"
#include "common/rng.h"
#include "workload/generator.h"

using namespace pcpda;

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  double utilization = 0.55;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) utilization = std::strtod(argv[2], nullptr);

  Rng rng(seed);
  WorkloadParams params;
  params.num_transactions = 6;
  params.num_items = 10;
  params.total_utilization = utilization;
  params.write_fraction = 0.35;
  auto set = GenerateWorkload(params, rng);
  if (!set.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }

  std::printf("random workload (seed %llu, target U=%.2f, actual U=%.3f):\n",
              static_cast<unsigned long long>(seed), utilization,
              set->Utilization());
  std::printf("%s\n\n", set->DebugString().c_str());
  std::printf("%s\n", SchedulabilityReport(*set).c_str());

  // Summarize: which protocols admit this set?
  std::printf("\nadmission summary:\n");
  for (ProtocolKind kind : AnalyzableProtocolKinds()) {
    const BlockingAnalysis blocking = ComputeBlocking(*set, kind);
    const auto ll = LiuLaylandTest(*set, blocking.AllB());
    const auto rta = ResponseTimeAnalysis(*set, blocking.AllB());
    std::printf("  %-8s LL: %-4s RTA: %-4s\n", ToString(kind),
                ll.ok() && ll->schedulable ? "pass" : "FAIL",
                rta.ok() && rta->schedulable ? "pass" : "FAIL");
  }
  return 0;
}
