// Side-by-side protocol comparison on the paper's worked examples: render
// the Gantt chart of every example under every protocol, the way Section 6
// contrasts Figures 2/3 and 4/5.
//
//   ./build/examples/protocol_comparison [example]   (1, 3, 4 or 5)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "protocols/factory.h"
#include "sched/simulator.h"
#include "trace/gantt.h"
#include "workload/paper_examples.h"

using namespace pcpda;

namespace {

void ShowExample(const PaperExample& example) {
  std::printf("================ %s ================\n",
              example.name.c_str());
  std::printf("%s\n", example.set.DebugString().c_str());
  std::printf("paper expectation: %s\n", example.notes.c_str());
  for (ProtocolKind kind : AllProtocolKinds()) {
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = example.horizon;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    Simulator simulator(&example.set, protocol.get(), options);
    const SimResult result = simulator.Run();
    GanttOptions gantt;
    gantt.show_legend = false;
    std::printf("\n--- %s ---\n%s\n", ToString(kind),
                RenderGantt(example.set, result.trace, gantt).c_str());
    std::printf("misses=%lld restarts=%lld deadlocks=%lld\n",
                static_cast<long long>(result.metrics.TotalMisses()),
                static_cast<long long>(result.metrics.TotalRestarts()),
                static_cast<long long>(result.metrics.deadlocks));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<PaperExample> examples;
  if (argc > 1) {
    switch (std::atoi(argv[1])) {
      case 1:
        examples.push_back(Example1());
        break;
      case 3:
        examples.push_back(Example3());
        break;
      case 4:
        examples.push_back(Example4());
        break;
      case 5:
        examples.push_back(Example5());
        break;
      default:
        std::fprintf(stderr, "unknown example %s (use 1, 3, 4 or 5)\n",
                     argv[1]);
        return 1;
    }
  } else {
    examples = {Example1(), Example3(), Example4(), Example5()};
  }
  for (const PaperExample& example : examples) ShowExample(example);
  std::printf(
      "legend: r/w/# run (read/write/compute), B blocked, . preempted, "
      "^ arrival, C commit, ! deadline miss\n");
  return 0;
}
