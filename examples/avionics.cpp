// Avionics scenario: the kind of hard real-time database workload the
// paper's introduction motivates (mission-critical periodic transactions
// over shared state). A flight-control loop, navigation, a radar tracker
// and a telemetry downlink share an attitude/track store; the example
// runs the set under every protocol and reports which ones keep all
// deadlines, how much blocking each causes, and the restart overhead of
// the abort-based baseline.
//
//   ./build/examples/avionics

#include <cstdio>

#include "analysis/report.h"
#include "history/serialization_graph.h"
#include "protocols/factory.h"
#include "sched/simulator.h"
#include "trace/gantt.h"
#include "txn/spec.h"

using namespace pcpda;

namespace {

// Shared memory-resident items.
constexpr ItemId kAttitude = 0;   // current attitude estimate
constexpr ItemId kActuators = 1;  // control surface commands
constexpr ItemId kNavState = 2;   // fused navigation state
constexpr ItemId kTrackA = 3;     // radar track table (two shards)
constexpr ItemId kTrackB = 4;
constexpr ItemId kTelemetry = 5;  // downlink staging buffer

TransactionSet BuildWorkload() {
  // Inner control loop: read the attitude, compute, drive actuators.
  TransactionSpec control;
  control.name = "control";
  control.period = 20;
  control.body = {Read(kAttitude), Compute(2), Write(kActuators)};

  // Attitude estimator: fuse sensors into the attitude estimate.
  TransactionSpec estimator;
  estimator.name = "estimator";
  estimator.period = 25;
  estimator.body = {Read(kNavState), Compute(3), Write(kAttitude)};

  // Navigation: propagate the nav state.
  TransactionSpec navigation;
  navigation.name = "nav";
  navigation.period = 50;
  navigation.body = {Read(kAttitude), Compute(4), Write(kNavState)};

  // Radar tracker: update both track shards.
  TransactionSpec tracker;
  tracker.name = "tracker";
  tracker.period = 100;
  tracker.body = {Read(kNavState), Compute(5), Write(kTrackA),
                  Write(kTrackB)};

  // Telemetry downlink: long, low-priority reader of everything.
  TransactionSpec telemetry;
  telemetry.name = "telemetry";
  telemetry.period = 200;
  telemetry.body = {Read(kAttitude), Read(kNavState), Read(kTrackA),
                    Read(kTrackB), Compute(12), Write(kTelemetry)};

  auto set = TransactionSet::Create(
      {control, estimator, navigation, tracker, telemetry});
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    std::abort();
  }
  return std::move(set).value();
}

}  // namespace

int main() {
  const TransactionSet set = BuildWorkload();
  std::printf("workload (rate-monotonic priorities):\n%s\n\n",
              set.DebugString().c_str());
  std::printf("offline analysis:\n%s\n\n",
              SchedulabilityReport(set).c_str());

  const Tick horizon = 2 * set.Hyperperiod();
  std::printf("%-8s %-6s %-8s %-10s %-9s %-9s %-8s\n", "proto", "miss",
              "commits", "blockticks", "restarts", "deadlock", "serial");
  for (ProtocolKind kind : AllProtocolKinds()) {
    auto protocol = MakeProtocol(kind);
    SimulatorOptions options;
    options.horizon = horizon;
    options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
    Simulator simulator(&set, protocol.get(), options);
    const SimResult result = simulator.Run();
    Tick blocking = 0;
    for (const auto& m : result.metrics.per_spec) {
      blocking += m.effective_blocking_ticks;
    }
    std::printf("%-8s %-6lld %-8lld %-10lld %-9lld %-9lld %-8s\n",
                ToString(kind),
                static_cast<long long>(result.metrics.TotalMisses()),
                static_cast<long long>(result.metrics.TotalCommitted()),
                static_cast<long long>(blocking),
                static_cast<long long>(result.metrics.TotalRestarts()),
                static_cast<long long>(result.metrics.deadlocks),
                IsSerializable(result.history) ? "yes" : "NO");
  }

  // Show the PCP-DA schedule for the first hyperperiod.
  auto protocol = MakeProtocol(ProtocolKind::kPcpDa);
  SimulatorOptions options;
  options.horizon = set.Hyperperiod();
  Simulator simulator(&set, protocol.get(), options);
  const SimResult result = simulator.Run();
  std::printf("\nPCP-DA schedule, first hyperperiod:\n%s\n",
              RenderGantt(set, result.trace).c_str());
  return 0;
}
