// Differential scenario fuzzer CLI: generate seeded random workloads +
// fault plans, run them through all 8 protocols, and check the oracle
// stack (invariant audit, serializability + replay, metamorphic bounds,
// determinism). Failures are delta-debugged to minimal .scn repros.
//
//   ./build/examples/pcpda_fuzz --seed=1 --iters=200
//   ./build/examples/pcpda_fuzz --seed=7 --iters=50 --corpus=fuzz/corpus
//   ./build/examples/pcpda_fuzz --seed=1 --iters=200 --break=all  # must fail
//   ./build/examples/pcpda_fuzz --replay=out/quarantine --iters=0
//
// Exit codes (shared by every CLI in examples/): 0 no findings,
// 1 findings, 2 usage or IO error.
// Deterministic: the same flags always produce the same findings.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/parse.h"
#include "fuzz/fuzzer.h"

using namespace pcpda;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --seed=N          campaign seed (default 1)\n"
      "  --iters=K         scenarios to generate (default 100)\n"
      "  --jobs=N          concurrent executors for each iteration's\n"
      "                    protocol fan-out (default 1; findings are\n"
      "                    identical for every N)\n"
      "  --horizon-cap=H   max per-scenario horizon (default 240)\n"
      "  --fault-prob=P    fraction of scenarios with fault plans "
      "(default 0.5)\n"
      "  --max-findings=M  stop after M findings (default 8)\n"
      "  --shrink-evals=E  delta-debug budget per finding (default 400)\n"
      "  --corpus=DIR      write minimal .scn repros into DIR\n"
      "  --replay=DIR      replay every .scn in DIR through the oracle\n"
      "                    stack before the generated campaign (e.g. a\n"
      "                    campaign quarantine or an earlier corpus)\n"
      "  --break=MODE      oracle-stack self-test, must produce findings:\n"
      "                    tstar, wr, all   disable PCP-DA locking guards\n"
      "                                     (wr alone is empirically\n"
      "                                     benign, see EXPERIMENTS.md E13)\n"
      "                    bound            zero out the analytical B_i so\n"
      "                                     blocking-bound must fire\n"
      "                    rta              optimistic response-time\n"
      "                                     analysis (B_i = 0, no restart\n"
      "                                     costs) so sched-sound must fire\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--seed", &value)) {
      if (!ParseFlagUInt64("--seed", value,
                           std::numeric_limits<std::uint64_t>::max(),
                           &options.seed)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--iters", &value)) {
      if (!ParseFlagInt("--iters", value, 0, 1 << 30,
                        &options.iterations)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--jobs", &value)) {
      if (!ParseFlagInt("--jobs", value, 1, 1 << 20, &options.jobs)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--horizon-cap", &value)) {
      if (!ParseFlagTick("--horizon-cap", value, 1,
                         std::numeric_limits<Tick>::max(),
                         &options.horizon_cap)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--fault-prob", &value)) {
      if (!ParseFlagDouble("--fault-prob", value, 0.0, 1.0,
                           &options.fault_probability)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--max-findings", &value)) {
      if (!ParseFlagInt("--max-findings", value, 1, 1 << 30,
                        &options.max_findings)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--shrink-evals", &value)) {
      if (!ParseFlagInt("--shrink-evals", value, 0, 1 << 30,
                        &options.shrink.max_evals)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--corpus", &value)) {
      options.corpus_dir = value;
    } else if (ParseFlag(argv[i], "--replay", &value)) {
      options.replay_dir = value;
    } else if (ParseFlag(argv[i], "--break", &value)) {
      if (std::strcmp(value, "tstar") == 0) {
        options.oracles.pcp_da.enable_tstar_guard = false;
      } else if (std::strcmp(value, "wr") == 0) {
        options.oracles.pcp_da.enable_wr_guard = false;
      } else if (std::strcmp(value, "all") == 0) {
        options.oracles.pcp_da.enable_tstar_guard = false;
        options.oracles.pcp_da.enable_wr_guard = false;
      } else if (std::strcmp(value, "bound") == 0) {
        options.oracles.analysis_defect = AnalysisDefect::kZeroBlockingBound;
      } else if (std::strcmp(value, "rta") == 0) {
        options.oracles.analysis_defect = AnalysisDefect::kOptimisticRta;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  // --iters=0 is allowed when replaying: "just re-check the corpus".
  const int min_iters = options.replay_dir.empty() ? 1 : 0;
  if (options.iterations < min_iters || options.jobs < 1 ||
      options.horizon_cap < 1 || options.max_findings < 1) {
    Usage(argv[0]);
    return 2;
  }

  ScenarioFuzzer fuzzer(options);
  const FuzzReport report = fuzzer.Run();
  std::printf("%s\n", report.Summary().c_str());
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    std::printf("\n--- finding #%zu minimal repro ---\n%s", i,
                report.findings[i].minimal_text.c_str());
  }
  if (!report.io_status.ok()) return 2;
  return report.findings.empty() ? 0 : 1;
}
