// Quickstart: define a periodic transaction set, run it under PCP-DA, and
// inspect the schedule, blocking metrics and serializability of the
// resulting history.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/pcp_da.h"
#include "history/serialization_graph.h"
#include "sched/simulator.h"
#include "trace/gantt.h"
#include "txn/spec.h"

using namespace pcpda;

int main() {
  // Three periodic transactions over two shared data items. The sensor
  // writes `reading`; the controller reads it and writes `command`; the
  // logger reads both. Rate-monotonic priorities: sensor > controller >
  // logger.
  constexpr ItemId kReading = 0;
  constexpr ItemId kCommand = 1;

  TransactionSpec sensor;
  sensor.name = "sensor";
  sensor.period = 10;
  sensor.body = {Write(kReading), Compute(1)};

  TransactionSpec controller;
  controller.name = "controller";
  controller.period = 20;
  controller.body = {Read(kReading), Compute(2), Write(kCommand)};

  TransactionSpec logger;
  logger.name = "logger";
  logger.period = 40;
  logger.body = {Read(kReading), Read(kCommand), Compute(4)};

  auto set = TransactionSet::Create({sensor, controller, logger});
  if (!set.ok()) {
    std::fprintf(stderr, "bad transaction set: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }

  // Run two hyperperiods under the paper's protocol.
  PcpDa protocol;
  SimulatorOptions options;
  options.horizon = 2 * set->Hyperperiod();
  Simulator simulator(&*set, &protocol, options);
  const SimResult result = simulator.Run();
  if (!result.status.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result.status.ToString().c_str());
    return 1;
  }

  std::printf("PCP-DA schedule (two hyperperiods):\n%s\n\n",
              RenderGantt(*set, result.trace).c_str());
  std::printf("%s\n\n", result.metrics.DebugString(*set).c_str());
  std::printf("all deadlines met: %s\n",
              result.metrics.AllDeadlinesMet() ? "yes" : "no");
  std::printf("history conflict-serializable: %s\n",
              IsSerializable(result.history) ? "yes" : "no");
  return 0;
}
