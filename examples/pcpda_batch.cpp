// Batch scenario runner: execute every .scn file in a directory across
// all 8 protocols on the work-stealing executor pool and emit an
// aggregate CSV report (one row per scenario x protocol).
//
//   ./build/examples/pcpda_batch --dir=scenarios
//   ./build/examples/pcpda_batch --dir=scenarios --jobs=8 --csv=report.csv
//
// Rows come out in (scenario, protocol) submission order whatever --jobs
// is: the batch runner collects results in submission order, so the
// report is byte-identical for every worker count.
//
// Exit codes (shared by every CLI in examples/): 0 all runs ok, 1 any
// load/run failure, 2 usage or IO error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/parse.h"
#include "common/strings.h"
#include "lint/lint.h"
#include "plan/compiled_plan.h"
#include "runner/batch_runner.h"
#include "workload/scenario.h"

using namespace pcpda;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dir=DIR [flags]\n"
      "  --dir=DIR      directory of .scn scenario files (required)\n"
      "  --jobs=N       concurrent executors (default: hardware "
      "concurrency)\n"
      "  --horizon=H    horizon override for scenarios that declare none\n"
      "                 (default: twice the hyperperiod)\n"
      "  --csv=FILE     write the report to FILE instead of stdout\n"
      "  --no-lint      skip the static pre-flight (lint errors "
      "normally\n"
      "                 drop the scenario from the batch)\n",
      argv0);
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

Tick FallbackHorizon(const Scenario& scenario, Tick override_horizon) {
  if (scenario.horizon > 0) return scenario.horizon;
  if (override_horizon > 0) return override_horizon;
  const Tick hyper = scenario.set.Hyperperiod();
  return hyper > 0 && hyper < kNoTick / 2 ? 2 * hyper : 0;
}

std::string CsvRow(const std::string& name, ProtocolKind kind,
                   const SimResult& result) {
  const RunMetrics& m = result.metrics;
  Tick blocking = 0;
  std::int64_t dropped = 0;
  for (const SpecMetrics& spec : m.per_spec) {
    blocking += spec.effective_blocking_ticks;
    dropped += spec.dropped;
  }
  return StrFormat(
      "%s,%s,%s,%lld,%lld,%lld,%lld,%lld,%.6f,%lld,%lld,%lld,%d\n",
      name.c_str(), ToString(kind),
      result.status.ok() ? "ok" : "error",
      static_cast<long long>(m.horizon),
      static_cast<long long>(m.TotalReleased()),
      static_cast<long long>(m.TotalCommitted()),
      static_cast<long long>(dropped),
      static_cast<long long>(m.TotalMisses()), m.MissRatio(),
      static_cast<long long>(blocking),
      static_cast<long long>(m.TotalRestarts()),
      static_cast<long long>(m.deadlocks), result.audit.ok() ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string csv_path;
  int jobs = ExecutorPool::DefaultThreads();
  Tick horizon_override = 0;
  bool lint = true;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--dir", &value)) {
      dir = value;
    } else if (ParseFlag(argv[i], "--jobs", &value)) {
      if (!ParseFlagInt("--jobs", value, 1, 1 << 20, &jobs)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--horizon", &value)) {
      if (!ParseFlagTick("--horizon", value, 0,
                         std::numeric_limits<Tick>::max(),
                         &horizon_override)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--csv", &value)) {
      csv_path = value;
    } else if (std::strcmp(argv[i], "--no-lint") == 0) {
      lint = false;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (dir.empty()) {
    Usage(argv[0]);
    return 2;
  }

  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".scn") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  if (paths.empty()) {
    std::fprintf(stderr, "no .scn files in %s\n", dir.c_str());
    return 2;
  }
  std::sort(paths.begin(), paths.end());

  bool failed = false;
  std::vector<Scenario> scenarios;
  scenarios.reserve(paths.size());
  for (const std::string& path : paths) {
    auto scenario = LoadScenarioFile(path);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   scenario.status().ToString().c_str());
      failed = true;
      continue;
    }
    if (lint) {
      const LintReport report =
          LintScenario(*scenario, LintFilterOptions());
      if (!report.clean()) {
        // A statically invalid scenario would poison the aggregate
        // report; skip it and let the exit code flag the batch.
        std::fprintf(stderr, "%s", report.Render(path).c_str());
        std::fprintf(stderr,
                     "%s: skipped (lint errors; --no-lint overrides)\n",
                     path.c_str());
        failed = true;
        continue;
      }
    }
    scenarios.push_back(std::move(scenario).value());
  }

  // Compile each scenario once (lint has already run above when it was
  // requested); the 8 protocol runs share the lowered plan. A scenario
  // the compiler rejects simply runs interpreted.
  std::vector<CompiledPlan> plans;
  plans.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) {
    CompileOptions compile_options;
    compile_options.lint = false;
    auto compiled = CompiledPlan::Compile(scenario, compile_options);
    plans.push_back(compiled.ok() ? std::move(compiled).value()
                                  : CompiledPlan{});
  }

  const std::vector<ProtocolKind> kinds = AllProtocolKinds();
  std::vector<RunSpec> specs;
  specs.reserve(scenarios.size() * kinds.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    for (ProtocolKind kind : kinds) {
      RunSpec spec;
      spec.scenario = &scenario;
      if (plans[s].ok()) spec.plan = &plans[s];
      spec.protocol = kind;
      spec.options.horizon = FallbackHorizon(scenario, horizon_override);
      spec.options.audit = true;
      spec.options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
      specs.push_back(std::move(spec));
    }
  }

  BatchRunner runner(BatchOptions{jobs});
  const std::vector<SimResult> results = runner.Run(specs);

  std::string report =
      "scenario,protocol,status,horizon,released,committed,dropped,"
      "misses,miss_ratio,blocking_ticks,restarts,deadlocks,audit_ok\n";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Scenario& scenario = *specs[i].scenario;
    report += CsvRow(scenario.name, specs[i].protocol, results[i]);
    if (!results[i].status.ok()) {
      std::fprintf(stderr, "%s under %s: %s\n", scenario.name.c_str(),
                   ToString(specs[i].protocol),
                   results[i].status.ToString().c_str());
      failed = true;
    }
  }

  if (csv_path.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::ofstream out(csv_path, std::ios::binary);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 2;
    }
    out << report;
    std::printf("%zu runs (%zu scenarios x %zu protocols, jobs=%d) -> %s\n",
                specs.size(), scenarios.size(), kinds.size(),
                runner.jobs(), csv_path.c_str());
  }
  return failed ? 1 : 0;
}
