// Scenario runner: load a transaction set from a .scn file and simulate
// it under a chosen protocol (or all of them). The static analyzer runs
// as a pre-flight: lint errors refuse the run (--no-lint skips it).
//
// Exit codes (shared by every CLI in examples/): 0 run clean, 1 findings
// or failed runs, 2 usage or IO error.
//
//   ./build/examples/run_scenario scenarios/example4.scn            # all
//   ./build/examples/run_scenario scenarios/example4.scn PCP-DA
//   ./build/examples/run_scenario scenarios/avionics.scn RW-PCP 800
//   ./build/examples/run_scenario --no-lint broken.scn PCP-DA

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

#include "common/parse.h"
#include "history/serialization_graph.h"
#include "lint/lint.h"
#include "plan/compiled_plan.h"
#include "protocols/factory.h"
#include "sched/simulator.h"
#include "trace/gantt.h"
#include "workload/scenario.h"

using namespace pcpda;

namespace {

SimResult Simulate(const Scenario& scenario, const CompiledPlan* plan,
                   Protocol* protocol, const SimulatorOptions& options) {
  if (plan != nullptr && plan->ok()) {
    Simulator simulator(*plan, protocol, options);
    return simulator.Run();
  }
  Simulator simulator(&scenario.set, protocol, options);
  return simulator.Run();
}

bool RunOne(const Scenario& scenario, const CompiledPlan* plan,
            ProtocolKind kind, Tick horizon) {
  auto protocol = MakeProtocol(kind);
  SimulatorOptions options;
  options.horizon = horizon;
  options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
  options.faults = scenario.faults;
  options.audit = true;
  const SimResult result =
      Simulate(scenario, plan, protocol.get(), options);
  if (!result.status.ok() && result.audit.ok()) {
    std::printf("--- %s ---\n%s\n\n", ToString(kind),
                result.status.ToString().c_str());
    return false;
  }
  const bool serializable = IsSerializable(result.history);
  std::printf("--- %s ---\n%s\n%s\nserializable: %s\naudit: %s\n\n",
              ToString(kind),
              RenderGantt(scenario.set, result.trace).c_str(),
              result.metrics.DebugString(scenario.set).c_str(),
              serializable ? "yes" : "NO",
              result.audit.DebugString().c_str());
  return result.status.ok() && serializable;
}

}  // namespace

int main(int argc, char** argv) {
  bool lint = true;
  if (argc > 1 && std::strcmp(argv[1], "--no-lint") == 0) {
    lint = false;
    --argc;
    ++argv;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s [--no-lint] <scenario.scn> [protocol] "
                 "[horizon]\nprotocols:",
                 argv[0]);
    for (ProtocolKind kind : AllProtocolKinds()) {
      std::fprintf(stderr, " %s", ToString(kind));
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const auto scenario = LoadScenarioFile(argv[1]);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 2;
  }
  if (lint) {
    const LintReport report = LintScenario(*scenario);
    if (!report.diagnostics.empty()) {
      std::fprintf(stderr, "%s", report.Render(argv[1]).c_str());
    }
    if (!report.clean()) {
      std::fprintf(stderr,
                   "refusing to simulate a scenario with lint errors "
                   "(--no-lint overrides)\n");
      return 1;
    }
  }
  Tick horizon = scenario->horizon;
  if (argc > 3) {
    // 0 is legal and means "fall back to twice the hyperperiod" below.
    if (!ParseFlagTick("horizon", argv[3], 0,
                       std::numeric_limits<Tick>::max(), &horizon)) {
      return 2;
    }
  }
  if (horizon <= 0) horizon = 2 * scenario->set.Hyperperiod();
  if (horizon <= 0) {
    std::fprintf(stderr,
                 "scenario has no horizon and no periodic transactions; "
                 "pass one explicitly\n");
    return 2;
  }

  std::printf("scenario %s (%d transactions, %d items, horizon %lld)\n\n",
              scenario->name.c_str(), scenario->set.size(),
              scenario->set.item_count(),
              static_cast<long long>(horizon));

  // Lower the scenario once; every protocol run below shares the plan.
  // (Lint already ran above when requested, so compile without it; a
  // scenario the compiler rejects runs interpreted as before.)
  CompileOptions compile_options;
  compile_options.lint = false;
  auto compiled = CompiledPlan::Compile(*scenario, compile_options);
  const CompiledPlan* plan = compiled.ok() ? &compiled.value() : nullptr;

  bool all_ok = true;
  if (argc > 2) {
    const auto kind = ProtocolKindByName(argv[2]);
    if (!kind.has_value()) {
      std::fprintf(stderr, "unknown protocol %s\n", argv[2]);
      return 2;
    }
    all_ok = RunOne(*scenario, plan, *kind, horizon);
  } else {
    for (ProtocolKind kind : AllProtocolKinds()) {
      all_ok = RunOne(*scenario, plan, kind, horizon) && all_ok;
    }
  }
  return all_ok ? 0 : 1;
}
