// Static blocking/schedulability analyzer CLI: compute per-protocol
// worst-case blocking bounds and response-time verdicts for .scn files
// without simulating them.
//
//   ./build/examples/pcpda_analyze scenarios/example3.scn
//   ./build/examples/pcpda_analyze --dir=scenarios --format=json
//   ./build/examples/pcpda_analyze --protocols=PCP-DA,RW-PCP file.scn
//
// Flags:
//   --dir=DIR        analyze every *.scn directly under DIR (sorted)
//   --format=text|json
//   --protocols=LIST comma-separated protocol names (see --help output),
//                    "analyzable" (every kind with a finite bound, the
//                    default), or "all" (includes 2PL-PI, reported as
//                    unbounded/unknown)
//   --deny=unschedulable|unknown|none
//                    exit 1 when any file carries a per-protocol verdict
//                    at or above this level (unknown also denies
//                    unschedulable; default unschedulable)
//
// Exit codes (shared by every CLI in examples/): 0 all files pass the
// --deny gate, 1 at least one file is denied, 2 usage or IO error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "workload/scenario.h"

using namespace pcpda;

namespace {

struct CliOptions {
  std::vector<std::string> files;
  std::string format = "text";
  std::vector<ProtocolKind> protocols = AnalyzableProtocolKinds();
  bool deny_unschedulable = true;
  bool deny_unknown = false;
};

int Usage(const char* argv0) {
  std::string names;
  for (ProtocolKind kind : AllProtocolKinds()) {
    if (!names.empty()) names += ",";
    names += ToString(kind);
  }
  std::fprintf(
      stderr,
      "usage: %s [--dir=DIR] [--format=text|json]\n"
      "          [--protocols=analyzable|all|NAME[,NAME...]]\n"
      "          [--deny=unschedulable|unknown|none] [file.scn ...]\n"
      "protocol names: %s\n",
      argv0, names.c_str());
  return 2;
}

bool ParseProtocols(const std::string& list, CliOptions& cli) {
  if (list == "analyzable") {
    cli.protocols = AnalyzableProtocolKinds();
    return true;
  }
  if (list == "all") {
    cli.protocols = AllProtocolKinds();
    return true;
  }
  cli.protocols.clear();
  std::size_t at = 0;
  while (at <= list.size()) {
    const std::size_t comma = list.find(',', at);
    const std::string name =
        list.substr(at, comma == std::string::npos ? comma : comma - at);
    const auto kind = ProtocolKindByName(name);
    if (!kind.has_value()) {
      std::fprintf(stderr, "unknown protocol %s\n", name.c_str());
      return false;
    }
    cli.protocols.push_back(*kind);
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return !cli.protocols.empty();
}

bool ParseArgs(int argc, char** argv, CliOptions& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--dir=", 0) == 0) {
      const std::string dir = arg.substr(6);
      std::error_code ec;
      std::vector<std::string> found;
      for (const auto& entry :
           std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".scn") {
          found.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "cannot list %s: %s\n", dir.c_str(),
                     ec.message().c_str());
        return false;
      }
      std::sort(found.begin(), found.end());
      cli.files.insert(cli.files.end(), found.begin(), found.end());
    } else if (arg.rfind("--format=", 0) == 0) {
      cli.format = arg.substr(9);
      if (cli.format != "text" && cli.format != "json") return false;
    } else if (arg.rfind("--protocols=", 0) == 0) {
      if (!ParseProtocols(arg.substr(12), cli)) return false;
    } else if (arg.rfind("--deny=", 0) == 0) {
      const std::string level = arg.substr(7);
      if (level == "unschedulable") {
        cli.deny_unschedulable = true;
        cli.deny_unknown = false;
      } else if (level == "unknown") {
        cli.deny_unschedulable = true;
        cli.deny_unknown = true;
      } else if (level == "none") {
        cli.deny_unschedulable = false;
        cli.deny_unknown = false;
      } else {
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    } else {
      cli.files.push_back(arg);
    }
  }
  return !cli.files.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, cli)) return Usage(argv[0]);

  bool denied = false;
  bool io_error = false;
  std::vector<std::string> json_reports;
  for (const std::string& file : cli.files) {
    const auto scenario = LoadScenarioFile(file);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      io_error = true;
      continue;
    }
    const AnalysisReport report =
        AnalyzeSet(scenario->set, cli.protocols);
    if ((cli.deny_unschedulable &&
         report.AnyVerdict(SchedVerdict::kUnschedulable)) ||
        (cli.deny_unknown && report.AnyVerdict(SchedVerdict::kUnknown))) {
      denied = true;
    }
    if (cli.format == "json") {
      json_reports.push_back(
          RenderAnalysisJson(file, scenario->set, report));
    } else {
      std::printf("%s",
                  RenderAnalysisText(file, scenario->set, report).c_str());
    }
  }
  if (cli.format == "json") {
    std::printf("[\n");
    for (std::size_t i = 0; i < json_reports.size(); ++i) {
      std::printf("%s%s\n", json_reports[i].c_str(),
                  i + 1 < json_reports.size() ? "," : "");
    }
    std::printf("]\n");
  }
  if (io_error) return 2;
  return denied ? 1 : 0;
}
