// Static scenario analyzer CLI: lint .scn files without simulating them.
//
//   ./build/examples/pcpda_lint scenarios/example4.scn
//   ./build/examples/pcpda_lint --dir=scenarios            # every *.scn
//   ./build/examples/pcpda_lint --format=json --deny=warning file.scn
//
// Flags:
//   --dir=DIR        lint every *.scn directly under DIR (sorted)
//   --format=text|json
//   --deny=error|warning|note|none
//                    exit 1 when any file has a diagnostic at or above
//                    this severity (default error)
//   --analysis=pcp-da|all|none
//                    protocols feeding the schedulability pre-checks
//   --no-notes       drop note-severity diagnostics
//   --quiet          print only files with diagnostics
//
// Exit codes (shared by every CLI in examples/): 0 all files pass the
// --deny gate, 1 at least one file is denied, 2 usage or IO error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint.h"

using namespace pcpda;

namespace {

struct CliOptions {
  std::vector<std::string> files;
  std::string format = "text";
  LintSeverity deny = LintSeverity::kError;
  bool deny_any = true;
  LintOptions lint;
  bool quiet = false;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--dir=DIR] [--format=text|json] "
      "[--deny=error|warning|note|none]\n"
      "          [--analysis=pcp-da|all|none] [--no-notes] [--quiet] "
      "[file.scn ...]\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--dir=", 0) == 0) {
      const std::string dir = arg.substr(6);
      std::error_code ec;
      std::vector<std::string> found;
      for (const auto& entry :
           std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".scn") {
          found.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "cannot list %s: %s\n", dir.c_str(),
                     ec.message().c_str());
        return false;
      }
      std::sort(found.begin(), found.end());
      cli.files.insert(cli.files.end(), found.begin(), found.end());
    } else if (arg.rfind("--format=", 0) == 0) {
      cli.format = arg.substr(9);
      if (cli.format != "text" && cli.format != "json") return false;
    } else if (arg.rfind("--deny=", 0) == 0) {
      const std::string level = arg.substr(7);
      cli.deny_any = true;
      if (level == "error") {
        cli.deny = LintSeverity::kError;
      } else if (level == "warning") {
        cli.deny = LintSeverity::kWarning;
      } else if (level == "note") {
        cli.deny = LintSeverity::kNote;
      } else if (level == "none") {
        cli.deny_any = false;
      } else {
        return false;
      }
    } else if (arg.rfind("--analysis=", 0) == 0) {
      const std::string which = arg.substr(11);
      if (which == "pcp-da") {
        cli.lint.analysis_protocols = {ProtocolKind::kPcpDa};
      } else if (which == "all") {
        cli.lint.analysis_protocols = AnalyzableProtocolKinds();
      } else if (which == "none") {
        cli.lint.analysis_protocols.clear();
        cli.lint.schedulability = false;
      } else {
        return false;
      }
    } else if (arg == "--no-notes") {
      cli.lint.include_notes = false;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    } else {
      cli.files.push_back(arg);
    }
  }
  return !cli.files.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, cli)) return Usage(argv[0]);

  bool denied = false;
  bool io_error = false;
  std::vector<std::string> json_reports;
  for (const std::string& file : cli.files) {
    const auto report = LintScenarioFile(file, cli.lint);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      io_error = true;
      continue;
    }
    if (cli.deny_any && report->CountAtLeast(cli.deny) > 0) denied = true;
    if (cli.format == "json") {
      json_reports.push_back(report->RenderJson(file));
    } else if (!cli.quiet || !report->diagnostics.empty()) {
      std::printf("%s", report->Render(file).c_str());
    }
  }
  if (cli.format == "json") {
    std::printf("[\n");
    for (std::size_t i = 0; i < json_reports.size(); ++i) {
      std::printf("%s%s\n", json_reports[i].c_str(),
                  i + 1 < json_reports.size() ? "," : "");
    }
    std::printf("]\n");
  }
  if (io_error) return 2;
  return denied ? 1 : 0;
}
