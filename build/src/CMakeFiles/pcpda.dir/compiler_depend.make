# Empty compiler generated dependencies file for pcpda.
# This may be replaced when dependencies are built.
