
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blocking.cc" "src/CMakeFiles/pcpda.dir/analysis/blocking.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/analysis/blocking.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/CMakeFiles/pcpda.dir/analysis/report.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/analysis/report.cc.o.d"
  "/root/repo/src/analysis/response_time.cc" "src/CMakeFiles/pcpda.dir/analysis/response_time.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/analysis/response_time.cc.o.d"
  "/root/repo/src/analysis/rm_bound.cc" "src/CMakeFiles/pcpda.dir/analysis/rm_bound.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/analysis/rm_bound.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/pcpda.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pcpda.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/pcpda.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/common/strings.cc.o.d"
  "/root/repo/src/core/lock_compat.cc" "src/CMakeFiles/pcpda.dir/core/lock_compat.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/core/lock_compat.cc.o.d"
  "/root/repo/src/core/pcp_da.cc" "src/CMakeFiles/pcpda.dir/core/pcp_da.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/core/pcp_da.cc.o.d"
  "/root/repo/src/core/serialization_order.cc" "src/CMakeFiles/pcpda.dir/core/serialization_order.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/core/serialization_order.cc.o.d"
  "/root/repo/src/db/ceilings.cc" "src/CMakeFiles/pcpda.dir/db/ceilings.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/db/ceilings.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/pcpda.dir/db/database.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/db/database.cc.o.d"
  "/root/repo/src/db/lock_table.cc" "src/CMakeFiles/pcpda.dir/db/lock_table.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/db/lock_table.cc.o.d"
  "/root/repo/src/history/history.cc" "src/CMakeFiles/pcpda.dir/history/history.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/history/history.cc.o.d"
  "/root/repo/src/history/replay_checker.cc" "src/CMakeFiles/pcpda.dir/history/replay_checker.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/history/replay_checker.cc.o.d"
  "/root/repo/src/history/serialization_graph.cc" "src/CMakeFiles/pcpda.dir/history/serialization_graph.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/history/serialization_graph.cc.o.d"
  "/root/repo/src/protocols/ccp.cc" "src/CMakeFiles/pcpda.dir/protocols/ccp.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/protocols/ccp.cc.o.d"
  "/root/repo/src/protocols/factory.cc" "src/CMakeFiles/pcpda.dir/protocols/factory.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/protocols/factory.cc.o.d"
  "/root/repo/src/protocols/occ.cc" "src/CMakeFiles/pcpda.dir/protocols/occ.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/protocols/occ.cc.o.d"
  "/root/repo/src/protocols/opcp.cc" "src/CMakeFiles/pcpda.dir/protocols/opcp.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/protocols/opcp.cc.o.d"
  "/root/repo/src/protocols/protocol.cc" "src/CMakeFiles/pcpda.dir/protocols/protocol.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/protocols/protocol.cc.o.d"
  "/root/repo/src/protocols/rw_pcp.cc" "src/CMakeFiles/pcpda.dir/protocols/rw_pcp.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/protocols/rw_pcp.cc.o.d"
  "/root/repo/src/protocols/two_pl_hp.cc" "src/CMakeFiles/pcpda.dir/protocols/two_pl_hp.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/protocols/two_pl_hp.cc.o.d"
  "/root/repo/src/protocols/two_pl_pi.cc" "src/CMakeFiles/pcpda.dir/protocols/two_pl_pi.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/protocols/two_pl_pi.cc.o.d"
  "/root/repo/src/sched/inheritance.cc" "src/CMakeFiles/pcpda.dir/sched/inheritance.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/sched/inheritance.cc.o.d"
  "/root/repo/src/sched/metrics.cc" "src/CMakeFiles/pcpda.dir/sched/metrics.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/sched/metrics.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/pcpda.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sched/simulator.cc" "src/CMakeFiles/pcpda.dir/sched/simulator.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/sched/simulator.cc.o.d"
  "/root/repo/src/sched/wait_graph.cc" "src/CMakeFiles/pcpda.dir/sched/wait_graph.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/sched/wait_graph.cc.o.d"
  "/root/repo/src/sim/arrival_schedule.cc" "src/CMakeFiles/pcpda.dir/sim/arrival_schedule.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/sim/arrival_schedule.cc.o.d"
  "/root/repo/src/sim/calendar.cc" "src/CMakeFiles/pcpda.dir/sim/calendar.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/sim/calendar.cc.o.d"
  "/root/repo/src/trace/csv.cc" "src/CMakeFiles/pcpda.dir/trace/csv.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/trace/csv.cc.o.d"
  "/root/repo/src/trace/gantt.cc" "src/CMakeFiles/pcpda.dir/trace/gantt.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/trace/gantt.cc.o.d"
  "/root/repo/src/trace/svg.cc" "src/CMakeFiles/pcpda.dir/trace/svg.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/trace/svg.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/pcpda.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/trace/trace.cc.o.d"
  "/root/repo/src/txn/job.cc" "src/CMakeFiles/pcpda.dir/txn/job.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/txn/job.cc.o.d"
  "/root/repo/src/txn/spec.cc" "src/CMakeFiles/pcpda.dir/txn/spec.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/txn/spec.cc.o.d"
  "/root/repo/src/txn/workspace.cc" "src/CMakeFiles/pcpda.dir/txn/workspace.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/txn/workspace.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/pcpda.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/paper_examples.cc" "src/CMakeFiles/pcpda.dir/workload/paper_examples.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/workload/paper_examples.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/CMakeFiles/pcpda.dir/workload/scenario.cc.o" "gcc" "src/CMakeFiles/pcpda.dir/workload/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
