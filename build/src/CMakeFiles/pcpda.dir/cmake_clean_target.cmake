file(REMOVE_RECURSE
  "libpcpda.a"
)
