# Empty compiler generated dependencies file for bench_sim_sweep.
# This may be replaced when dependencies are built.
