file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_sweep.dir/bench_sim_sweep.cc.o"
  "CMakeFiles/bench_sim_sweep.dir/bench_sim_sweep.cc.o.d"
  "bench_sim_sweep"
  "bench_sim_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
