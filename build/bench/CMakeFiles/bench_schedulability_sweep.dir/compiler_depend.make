# Empty compiler generated dependencies file for bench_schedulability_sweep.
# This may be replaced when dependencies are built.
