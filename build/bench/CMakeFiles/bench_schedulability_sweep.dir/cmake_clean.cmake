file(REMOVE_RECURSE
  "CMakeFiles/bench_schedulability_sweep.dir/bench_schedulability_sweep.cc.o"
  "CMakeFiles/bench_schedulability_sweep.dir/bench_schedulability_sweep.cc.o.d"
  "bench_schedulability_sweep"
  "bench_schedulability_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedulability_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
