# Empty dependencies file for bench_table1_compat.
# This may be replaced when dependencies are built.
