file(REMOVE_RECURSE
  "CMakeFiles/bench_soft_realtime.dir/bench_soft_realtime.cc.o"
  "CMakeFiles/bench_soft_realtime.dir/bench_soft_realtime.cc.o.d"
  "bench_soft_realtime"
  "bench_soft_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soft_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
