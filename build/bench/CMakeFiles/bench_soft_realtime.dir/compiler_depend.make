# Empty compiler generated dependencies file for bench_soft_realtime.
# This may be replaced when dependencies are built.
