# Empty compiler generated dependencies file for bench_sec9_blocking.
# This may be replaced when dependencies are built.
