file(REMOVE_RECURSE
  "CMakeFiles/bench_sec9_blocking.dir/bench_sec9_blocking.cc.o"
  "CMakeFiles/bench_sec9_blocking.dir/bench_sec9_blocking.cc.o.d"
  "bench_sec9_blocking"
  "bench_sec9_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec9_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
