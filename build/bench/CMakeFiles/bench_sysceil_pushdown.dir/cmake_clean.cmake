file(REMOVE_RECURSE
  "CMakeFiles/bench_sysceil_pushdown.dir/bench_sysceil_pushdown.cc.o"
  "CMakeFiles/bench_sysceil_pushdown.dir/bench_sysceil_pushdown.cc.o.d"
  "bench_sysceil_pushdown"
  "bench_sysceil_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sysceil_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
