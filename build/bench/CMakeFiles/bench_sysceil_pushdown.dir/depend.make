# Empty dependencies file for bench_sysceil_pushdown.
# This may be replaced when dependencies are built.
