file(REMOVE_RECURSE
  "CMakeFiles/bench_example5_deadlock.dir/bench_example5_deadlock.cc.o"
  "CMakeFiles/bench_example5_deadlock.dir/bench_example5_deadlock.cc.o.d"
  "bench_example5_deadlock"
  "bench_example5_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example5_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
