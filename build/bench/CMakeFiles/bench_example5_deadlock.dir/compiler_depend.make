# Empty compiler generated dependencies file for bench_example5_deadlock.
# This may be replaced when dependencies are built.
