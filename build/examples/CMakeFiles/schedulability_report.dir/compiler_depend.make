# Empty compiler generated dependencies file for schedulability_report.
# This may be replaced when dependencies are built.
