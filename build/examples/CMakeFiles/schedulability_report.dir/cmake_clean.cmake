file(REMOVE_RECURSE
  "CMakeFiles/schedulability_report.dir/schedulability_report.cpp.o"
  "CMakeFiles/schedulability_report.dir/schedulability_report.cpp.o.d"
  "schedulability_report"
  "schedulability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedulability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
