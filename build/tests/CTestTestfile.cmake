# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/pcp_da_test[1]_include.cmake")
include("/root/repo/build/tests/rw_pcp_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/occ_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/arrival_schedule_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/svg_test[1]_include.cmake")
include("/root/repo/build/tests/pcp_da_depth_test[1]_include.cmake")
