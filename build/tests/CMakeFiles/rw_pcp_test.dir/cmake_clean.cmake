file(REMOVE_RECURSE
  "CMakeFiles/rw_pcp_test.dir/rw_pcp_test.cc.o"
  "CMakeFiles/rw_pcp_test.dir/rw_pcp_test.cc.o.d"
  "rw_pcp_test"
  "rw_pcp_test.pdb"
  "rw_pcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_pcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
