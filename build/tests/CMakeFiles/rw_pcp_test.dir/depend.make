# Empty dependencies file for rw_pcp_test.
# This may be replaced when dependencies are built.
