# Empty dependencies file for pcp_da_depth_test.
# This may be replaced when dependencies are built.
