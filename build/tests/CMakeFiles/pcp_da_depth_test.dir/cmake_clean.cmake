file(REMOVE_RECURSE
  "CMakeFiles/pcp_da_depth_test.dir/pcp_da_depth_test.cc.o"
  "CMakeFiles/pcp_da_depth_test.dir/pcp_da_depth_test.cc.o.d"
  "pcp_da_depth_test"
  "pcp_da_depth_test.pdb"
  "pcp_da_depth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcp_da_depth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
