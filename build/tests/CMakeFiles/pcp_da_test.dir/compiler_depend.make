# Empty compiler generated dependencies file for pcp_da_test.
# This may be replaced when dependencies are built.
