file(REMOVE_RECURSE
  "CMakeFiles/pcp_da_test.dir/pcp_da_test.cc.o"
  "CMakeFiles/pcp_da_test.dir/pcp_da_test.cc.o.d"
  "pcp_da_test"
  "pcp_da_test.pdb"
  "pcp_da_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcp_da_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
