file(REMOVE_RECURSE
  "CMakeFiles/arrival_schedule_test.dir/arrival_schedule_test.cc.o"
  "CMakeFiles/arrival_schedule_test.dir/arrival_schedule_test.cc.o.d"
  "arrival_schedule_test"
  "arrival_schedule_test.pdb"
  "arrival_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
