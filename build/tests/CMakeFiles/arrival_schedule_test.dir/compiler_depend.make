# Empty compiler generated dependencies file for arrival_schedule_test.
# This may be replaced when dependencies are built.
