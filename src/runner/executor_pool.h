#ifndef PCPDA_RUNNER_EXECUTOR_POOL_H_
#define PCPDA_RUNNER_EXECUTOR_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcpda {

/// A fixed-size work-stealing thread pool for embarrassingly parallel
/// batches: each executor owns a deque of task indices, pops its own back
/// (LIFO, cache-friendly within the statically assigned chunk) and steals
/// from other executors' fronts (FIFO) once it runs dry. The pool never
/// decides *what* a task computes — callers pre-assign every task its
/// inputs (including its seed) before the batch starts, which is why
/// results cannot depend on the stealing order; see DESIGN.md §10.
///
/// Worker threads are spawned once at construction and sleep between
/// batches, so submitting many small batches (the fuzzer's per-iteration
/// fan-out) stays cheap.
class ExecutorPool {
 public:
  /// `threads` is the number of concurrent executors, *including* the
  /// calling thread; values < 1 clamp to 1. With one executor no worker
  /// threads are spawned and ParallelFor degenerates to the plain serial
  /// loop.
  explicit ExecutorPool(int threads);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  int threads() const { return num_threads_; }

  /// Hardware concurrency, at least 1.
  static int DefaultThreads();

  /// Runs body(0) .. body(n-1) exactly once each, distributed over the
  /// executors; the calling thread participates. Returns only when every
  /// index has finished. Bodies must not call back into the pool. If
  /// bodies throw, the whole batch still drains and the exception from
  /// the lowest-index failing task is rethrown here (deterministic
  /// regardless of scheduling).
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body);

 private:
  struct Batch;

  /// Drains `batch` from executor slot `self` until no queue holds work.
  void WorkOn(Batch& batch, std::size_t self);
  void WorkerLoop(std::size_t self);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a batch
  std::condition_variable done_cv_;  // ParallelFor waits here for drain
  Batch* current_ = nullptr;         // guarded by mu_
  std::uint64_t epoch_ = 0;          // bumps once per batch; guarded by mu_
  bool stop_ = false;                // guarded by mu_
};

}  // namespace pcpda

#endif  // PCPDA_RUNNER_EXECUTOR_POOL_H_
