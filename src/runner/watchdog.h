#ifndef PCPDA_RUNNER_WATCHDOG_H_
#define PCPDA_RUNNER_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

namespace pcpda {

/// A wall-clock watchdog for cooperative cancellation: callers arm a
/// cancel flag with a budget, and a monitor thread sets the flag once the
/// budget elapses (or immediately for every armed flag when the optional
/// stop source fires, e.g. a SIGINT handler). The watched code observes
/// the flag at its own safe points — SimulatorOptions::cancel checks once
/// per tick — so nothing is ever killed mid-mutation; a job is
/// "abandoned" by asking it to stop and letting it unwind.
///
/// Wall-clock timeouts are inherently nondeterministic; the campaign
/// layer treats them as quarantine-grade outcomes and leans on the
/// deterministic SimulatorOptions::max_sim_ticks budget wherever
/// byte-identical resume matters.
class Watchdog {
 public:
  /// `resolution` bounds how late a timeout can fire and how often the
  /// stop source is polled.
  explicit Watchdog(
      std::chrono::milliseconds resolution = std::chrono::milliseconds(5));
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Fires every armed flag (current and future) as soon as `stop`
  /// becomes true. Null clears the source. `stop` must outlive the
  /// watchdog or the next SetStopSource call.
  void SetStopSource(const std::atomic<bool>* stop);

  /// Arms `flag` to be set after `budget` elapses; a zero/negative budget
  /// means no deadline (the flag then only fires via the stop source).
  /// `flag` must stay valid until Disarm. Returns a ticket for Disarm.
  std::uint64_t Arm(std::atomic<bool>* flag,
                    std::chrono::milliseconds budget);

  /// Disarms a ticket; safe to call after the flag already fired.
  void Disarm(std::uint64_t ticket);

 private:
  struct Entry {
    std::atomic<bool>* flag = nullptr;
    /// time_point::max() means "no deadline, stop source only".
    std::chrono::steady_clock::time_point deadline;
  };

  void Loop();

  const std::chrono::milliseconds resolution_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> armed_;  // guarded by mu_
  const std::atomic<bool>* stop_source_ = nullptr;  // guarded by mu_
  std::uint64_t next_ticket_ = 1;                   // guarded by mu_
  bool shutdown_ = false;                           // guarded by mu_
  std::thread monitor_;
};

}  // namespace pcpda

#endif  // PCPDA_RUNNER_WATCHDOG_H_
