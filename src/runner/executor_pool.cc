#include "runner/executor_pool.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <memory>

namespace pcpda {

struct ExecutorPool::Batch {
  const std::function<void(std::size_t)>* body = nullptr;
  /// One deque per executor; the owner pops its back, thieves pop other
  /// fronts. Each deque is guarded by the mutex of the same index. Tasks
  /// never enqueue new work, so once every deque is empty the batch holds
  /// only in-flight tasks.
  std::vector<std::deque<std::size_t>> queues;
  std::vector<std::unique_ptr<std::mutex>> queue_mu;
  /// Guarded by the pool mutex.
  std::size_t remaining = 0;  // tasks not yet finished
  int active_workers = 0;     // background workers inside WorkOn
  std::exception_ptr error;
  std::size_t error_index = 0;
};

ExecutorPool::ExecutorPool(int threads)
    : num_threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ExecutorPool::DefaultThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

void ExecutorPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Batch batch;
  batch.body = &body;
  const auto executors = static_cast<std::size_t>(num_threads_);
  batch.queues.resize(executors);
  batch.queue_mu.reserve(executors);
  for (std::size_t i = 0; i < executors; ++i) {
    batch.queue_mu.push_back(std::make_unique<std::mutex>());
  }
  batch.remaining = n;
  // Contiguous chunks keep owner pops cache-friendly; the stealing path
  // rebalances whatever the static split got wrong. With n < executors
  // some queues simply start empty.
  for (std::size_t p = 0; p < executors; ++p) {
    const std::size_t lo = p * n / executors;
    const std::size_t hi = (p + 1) * n / executors;
    for (std::size_t i = lo; i < hi; ++i) batch.queues[p].push_back(i);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &batch;
    ++epoch_;
  }
  work_cv_.notify_all();

  WorkOn(batch, 0);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch.remaining == 0 && batch.active_workers == 0;
    });
    // The batch lives on this stack frame: workers must be provably out
    // before it is destroyed, and clearing current_ under the lock stops
    // late wakers from entering it at all.
    current_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void ExecutorPool::WorkOn(Batch& batch, std::size_t self) {
  const std::size_t executors = batch.queues.size();
  for (;;) {
    std::size_t index = 0;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(*batch.queue_mu[self]);
      if (!batch.queues[self].empty()) {
        index = batch.queues[self].back();
        batch.queues[self].pop_back();
        found = true;
      }
    }
    for (std::size_t k = 1; k < executors && !found; ++k) {
      const std::size_t victim = (self + k) % executors;
      std::lock_guard<std::mutex> lock(*batch.queue_mu[victim]);
      if (!batch.queues[victim].empty()) {
        index = batch.queues[victim].front();
        batch.queues[victim].pop_front();
        found = true;
      }
    }
    if (!found) return;  // all queues drained; in-flight tasks finish in
                         // the executors that claimed them

    try {
      (*batch.body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!batch.error || index < batch.error_index) {
        batch.error = std::current_exception();
        batch.error_index = index;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--batch.remaining == 0) done_cv_.notify_all();
    }
  }
}

void ExecutorPool::WorkerLoop(std::size_t self) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      batch = current_;
      ++batch->active_workers;
    }
    WorkOn(*batch, self);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--batch->active_workers == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace pcpda
