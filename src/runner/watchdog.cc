#include "runner/watchdog.h"

#include <vector>

namespace pcpda {

Watchdog::Watchdog(std::chrono::milliseconds resolution)
    : resolution_(resolution.count() > 0 ? resolution
                                         : std::chrono::milliseconds(1)),
      monitor_([this] { Loop(); }) {}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

void Watchdog::SetStopSource(const std::atomic<bool>* stop) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_source_ = stop;
  }
  cv_.notify_all();
}

std::uint64_t Watchdog::Arm(std::atomic<bool>* flag,
                            std::chrono::milliseconds budget) {
  std::uint64_t ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket = next_ticket_++;
    Entry entry;
    entry.flag = flag;
    entry.deadline = budget.count() > 0
                         ? std::chrono::steady_clock::now() + budget
                         : std::chrono::steady_clock::time_point::max();
    armed_.emplace(ticket, entry);
  }
  cv_.notify_all();
  return ticket;
}

void Watchdog::Disarm(std::uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(ticket);
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_) return;
    if (armed_.empty()) {
      // Nothing armed: sleep until there is, costing nothing per batch
      // that never arms a deadline.
      cv_.wait(lock,
               [this] { return shutdown_ || !armed_.empty(); });
      continue;
    }
    // The stop source has no edge to wait on (plain atomic, typically
    // set from a signal handler), so poll at the resolution while
    // anything is armed.
    cv_.wait_for(lock, resolution_);
    if (shutdown_) return;
    const bool stop =
        stop_source_ != nullptr &&
        stop_source_->load(std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    for (auto it = armed_.begin(); it != armed_.end();) {
      if (stop || now >= it->second.deadline) {
        it->second.flag->store(true, std::memory_order_relaxed);
        it = armed_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace pcpda
