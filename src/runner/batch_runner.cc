#include "runner/batch_runner.h"

#include <chrono>
#include <exception>
#include <memory>
#include <string>

namespace pcpda {
namespace {

/// Invokes `body`, converting any escaping exception into a failed
/// SimResult so one poisoned job cannot take down its batch.
SimResult GuardedCall(const std::function<SimResult()>& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    SimResult result;
    result.status =
        Status::Internal(std::string("job body threw: ") + e.what());
    return result;
  } catch (...) {
    SimResult result;
    result.status = Status::Internal("job body threw a non-std exception");
    return result;
  }
}

bool StopRequested(const JobPolicy& policy) {
  return policy.stop != nullptr &&
         policy.stop->load(std::memory_order_relaxed);
}

}  // namespace

const char* ToString(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kOk:
      return "ok";
    case JobOutcome::kFailed:
      return "failed";
    case JobOutcome::kTimeout:
      return "timeout";
    case JobOutcome::kCancelled:
      return "cancelled";
    case JobOutcome::kSkipped:
      return "skipped";
  }
  return "unknown";
}

BatchRunner::BatchRunner(BatchOptions options) : pool_(options.jobs) {}

SimResult BatchRunner::RunOne(const RunSpec& spec) {
  SimResult result;
  if (spec.scenario == nullptr) {
    result.status = Status::InvalidArgument("RunSpec.scenario is null");
    return result;
  }
  SimulatorOptions options = spec.options;
  if (options.horizon <= 0) options.horizon = spec.scenario->horizon;
  if (!options.faults.enabled()) options.faults = spec.scenario->faults;
  if (spec.seed != 0) options.faults.seed = spec.seed;
  std::unique_ptr<Protocol> protocol =
      spec.protocol == ProtocolKind::kPcpDa
          ? std::make_unique<PcpDa>(spec.pcp_da)
          : MakeProtocol(spec.protocol);
  if (spec.plan != nullptr) {
    Simulator simulator(*spec.plan, protocol.get(), options);
    return simulator.Run();
  }
  Simulator simulator(&spec.scenario->set, protocol.get(), options);
  return simulator.Run();
}

std::vector<SimResult> BatchRunner::Run(const std::vector<RunSpec>& specs) {
  std::vector<SimResult> results(specs.size());
  pool_.ParallelFor(specs.size(), [&](std::size_t i) {
    results[i] = GuardedCall([&] { return RunOne(specs[i]); });
  });
  return results;
}

std::vector<SimResult> BatchRunner::RunTasks(
    const std::vector<std::function<SimResult()>>& tasks) {
  std::vector<SimResult> results(tasks.size());
  pool_.ParallelFor(tasks.size(), [&](std::size_t i) {
    results[i] = GuardedCall(tasks[i]);
  });
  return results;
}

Watchdog& BatchRunner::watchdog() {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  if (watchdog_ == nullptr) watchdog_ = std::make_unique<Watchdog>();
  return *watchdog_;
}

JobResult BatchRunner::RunOnePolicy(const PolicyTask& task,
                                    const JobPolicy& policy) {
  JobResult job;
  const bool needs_watchdog =
      policy.wall_budget_ms > 0 || policy.stop != nullptr;
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (StopRequested(policy)) {
      // Not started (or not re-tried): resume re-runs it from scratch.
      if (job.attempts == 0) job.outcome = JobOutcome::kSkipped;
      return job;
    }
    std::atomic<bool> cancel{false};
    std::uint64_t ticket = 0;
    if (needs_watchdog) {
      ticket = watchdog().Arm(
          &cancel, std::chrono::milliseconds(policy.wall_budget_ms));
    }
    JobContext context;
    context.attempt = attempt;
    context.cancel = &cancel;
    job.result = GuardedCall([&] { return task(context); });
    ++job.attempts;
    if (needs_watchdog) watchdog().Disarm(ticket);

    if (cancel.load(std::memory_order_relaxed)) {
      // The flag fired either because the stop source tripped (abandon,
      // re-run on resume) or because the wall budget ran out (timeout).
      job.outcome = StopRequested(policy) ? JobOutcome::kCancelled
                                          : JobOutcome::kTimeout;
      if (job.result.status.ok()) {
        job.result.status = Status::DeadlineExceeded(
            job.outcome == JobOutcome::kTimeout
                ? "wall-clock watchdog budget exhausted"
                : "cancelled by stop request");
      }
      return job;
    }
    if (job.result.status.ok()) {
      job.outcome = JobOutcome::kOk;
      return job;
    }
    if (job.result.status.code() == StatusCode::kDeadlineExceeded) {
      // The deterministic tick budget tripped inside the simulator;
      // retrying would burn the same budget again.
      job.outcome = JobOutcome::kTimeout;
      return job;
    }
    job.outcome = JobOutcome::kFailed;
    // Only captured exceptions are plausibly transient (allocation
    // failure, resource exhaustion); config rejections and audit
    // verdicts are deterministic and not worth re-running.
    if (job.result.status.code() != StatusCode::kInternal) return job;
  }
  return job;
}

std::vector<JobResult> BatchRunner::RunWithPolicy(
    const std::vector<RunSpec>& specs, const JobPolicy& policy,
    const CompletionHook& on_complete) {
  std::vector<PolicyTask> tasks;
  tasks.reserve(specs.size());
  for (const RunSpec& spec : specs) {
    tasks.push_back([&spec, &policy](const JobContext& context) {
      RunSpec attempt = spec;
      attempt.options.cancel = context.cancel;
      if (policy.max_sim_ticks > 0) {
        attempt.options.max_sim_ticks = policy.max_sim_ticks;
      }
      return RunOne(attempt);
    });
  }
  return RunTasksWithPolicy(tasks, policy, on_complete);
}

std::vector<JobResult> BatchRunner::RunTasksWithPolicy(
    const std::vector<PolicyTask>& tasks, const JobPolicy& policy,
    const CompletionHook& on_complete) {
  std::vector<JobResult> results(tasks.size());
  // One stop source per batch; concurrent batches with different stop
  // flags on the same runner are not supported.
  if (policy.wall_budget_ms > 0 || policy.stop != nullptr) {
    watchdog().SetStopSource(policy.stop);
  }
  pool_.ParallelFor(tasks.size(), [&](std::size_t i) {
    results[i] = RunOnePolicy(tasks[i], policy);
    if (on_complete && results[i].outcome != JobOutcome::kSkipped &&
        results[i].outcome != JobOutcome::kCancelled) {
      on_complete(i, results[i]);
    }
  });
  return results;
}

}  // namespace pcpda
