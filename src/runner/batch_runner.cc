#include "runner/batch_runner.h"

#include <exception>
#include <memory>
#include <string>

namespace pcpda {

BatchRunner::BatchRunner(BatchOptions options) : pool_(options.jobs) {}

SimResult BatchRunner::RunOne(const RunSpec& spec) {
  SimResult result;
  if (spec.scenario == nullptr) {
    result.status = Status::InvalidArgument("RunSpec.scenario is null");
    return result;
  }
  SimulatorOptions options = spec.options;
  if (options.horizon <= 0) options.horizon = spec.scenario->horizon;
  if (!options.faults.enabled()) options.faults = spec.scenario->faults;
  if (spec.seed != 0) options.faults.seed = spec.seed;
  std::unique_ptr<Protocol> protocol =
      spec.protocol == ProtocolKind::kPcpDa
          ? std::make_unique<PcpDa>(spec.pcp_da)
          : MakeProtocol(spec.protocol);
  Simulator simulator(&spec.scenario->set, protocol.get(), options);
  return simulator.Run();
}

std::vector<SimResult> BatchRunner::Run(const std::vector<RunSpec>& specs) {
  std::vector<SimResult> results(specs.size());
  pool_.ParallelFor(specs.size(), [&](std::size_t i) {
    results[i] = RunOne(specs[i]);
  });
  return results;
}

std::vector<SimResult> BatchRunner::RunTasks(
    const std::vector<std::function<SimResult()>>& tasks) {
  std::vector<SimResult> results(tasks.size());
  pool_.ParallelFor(tasks.size(), [&](std::size_t i) {
    try {
      results[i] = tasks[i]();
    } catch (const std::exception& e) {
      results[i] = SimResult{};
      results[i].status =
          Status::Internal(std::string("batch task threw: ") + e.what());
    } catch (...) {
      results[i] = SimResult{};
      results[i].status =
          Status::Internal("batch task threw a non-std exception");
    }
  });
  return results;
}

}  // namespace pcpda
