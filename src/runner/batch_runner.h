#ifndef PCPDA_RUNNER_BATCH_RUNNER_H_
#define PCPDA_RUNNER_BATCH_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/pcp_da.h"
#include "protocols/factory.h"
#include "runner/executor_pool.h"
#include "runner/watchdog.h"
#include "sched/simulator.h"
#include "workload/scenario.h"

namespace pcpda {

/// One simulation job of a batch: scenario x protocol x seed x options.
struct RunSpec {
  /// The scenario to simulate. Must outlive the batch. A null scenario
  /// makes that job fail with InvalidArgument without touching the rest
  /// of the batch.
  const Scenario* scenario = nullptr;
  ProtocolKind protocol = ProtocolKind::kPcpDa;
  /// Fault-plan seed override: nonzero replaces the scenario's own fault
  /// seed, so job grids can draw independent streams via
  /// SplitMixSeed(base_seed, job_index). 0 keeps the scenario's seed.
  std::uint64_t seed = 0;
  /// options.horizon == 0 falls back to scenario->horizon, and an empty
  /// options.faults falls back to scenario->faults.
  SimulatorOptions options;
  /// Options for PCP-DA instances (the guard-ablation hook); ignored for
  /// every other protocol kind.
  PcpDaOptions pcp_da;
  /// Compiled artifact for `scenario`, shared across every spec of the
  /// same scenario: the run reuses its precomputed ceilings and arrival
  /// cursor instead of rebuilding them. Null runs the interpreted path;
  /// when set, it must have been compiled from the same scenario (the
  /// fallbacks still read `scenario` for horizon and faults). Must
  /// outlive the batch. Results are byte-identical either way.
  const CompiledPlan* plan = nullptr;
};

struct BatchOptions {
  /// Concurrent executors, calling thread included; < 1 clamps to 1.
  /// Results never depend on this value.
  int jobs = 1;
};

/// How one job of a policy batch ended.
enum class JobOutcome : std::uint8_t {
  /// The job ran to completion with an OK status.
  kOk,
  /// The job ran (possibly more than once) and ended with a non-OK
  /// status: a config rejection, an audit failure, or a captured
  /// exception.
  kFailed,
  /// A watchdog budget (wall-clock or tick) expired and the job was
  /// abandoned.
  kTimeout,
  /// The stop flag fired while the job was in flight; it was abandoned
  /// and should be re-run on resume.
  kCancelled,
  /// The stop flag fired before the job started; it never ran.
  kSkipped,
};

const char* ToString(JobOutcome outcome);

/// Result of one job under a JobPolicy.
struct JobResult {
  SimResult result;
  JobOutcome outcome = JobOutcome::kSkipped;
  /// Attempts actually made (0 for skipped jobs, > 1 after retries).
  int attempts = 0;
};

/// Per-job robustness policy for RunWithPolicy/RunTasksWithPolicy.
struct JobPolicy {
  /// Deterministic watchdog: per-attempt budget of scheduled simulator
  /// ticks (SimulatorOptions::max_sim_ticks); 0 = unlimited. Outcomes
  /// depend only on the job's inputs, so this is the budget of choice
  /// when resumed campaigns must merge byte-identically.
  Tick max_sim_ticks = 0;
  /// Wall-clock watchdog: per-attempt budget in milliseconds enforced by
  /// a monitor thread through cooperative cancellation; 0 = unlimited.
  /// Nondeterministic by nature — the backstop for genuine hangs.
  int wall_budget_ms = 0;
  /// Bounded retry for transient failures: a job whose attempt ends in a
  /// captured exception (kInternal) is re-run up to this many extra
  /// times before being reported as kFailed. Deterministic failures fail
  /// every attempt and come out identical; a flake that passes on retry
  /// is reclassified as OK with attempts > 1.
  int max_retries = 0;
  /// Graceful stop (SIGINT/SIGTERM): when the pointed-at flag becomes
  /// true, jobs not yet started are skipped and in-flight jobs are
  /// cancelled through the watchdog. Null never stops.
  const std::atomic<bool>* stop = nullptr;
};

/// What a policy task sees about its own attempt.
struct JobContext {
  /// 0-based attempt number.
  int attempt = 0;
  /// The attempt's cancel flag; long-running bodies should poll it (the
  /// simulator does, once per tick, via SimulatorOptions::cancel).
  const std::atomic<bool>* cancel = nullptr;

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
};

/// Executes batches of independent simulations on an ExecutorPool and
/// collects results in submission order — bit-identical to the serial
/// loop by construction: every job's inputs (scenario, protocol, fault
/// seed, options) are fixed before the batch starts, a job touches no
/// state shared with any other job, and slot i of the result vector
/// belongs to job i alone. See DESIGN.md §10 for why determinism
/// survives work stealing.
///
/// Exception safety: a job body that throws never escapes the batch — the
/// exception is captured on the worker that ran it and surfaced as that
/// job's failed status (kInternal with the message), leaving every other
/// job's result intact.
class BatchRunner {
 public:
  using PolicyTask = std::function<SimResult(const JobContext&)>;
  /// Invoked on the executing worker immediately after a job's policy
  /// resolves (all retries done), before the batch returns — the hook
  /// campaigns use to checkpoint completed jobs crash-safely.
  using CompletionHook =
      std::function<void(std::size_t index, const JobResult& job)>;

  explicit BatchRunner(BatchOptions options = {});

  int jobs() const { return pool_.threads(); }

  /// Runs one spec serially — the unit the batch fans out.
  static SimResult RunOne(const RunSpec& spec);

  /// Runs all specs, returning results in spec order. A spec whose run
  /// throws yields a kInternal status for that slot only.
  std::vector<SimResult> Run(const std::vector<RunSpec>& specs);

  /// Generic escape hatch for jobs that are not plain spec runs: executes
  /// the tasks on the pool; a task that throws yields a SimResult whose
  /// status is Internal, and the rest of the batch is unaffected.
  std::vector<SimResult> RunTasks(
      const std::vector<std::function<SimResult()>>& tasks);

  /// Runs all specs under a robustness policy: per-attempt watchdogs
  /// (tick and wall-clock), bounded retry of transiently failing jobs,
  /// and graceful stop. Results come back in spec order regardless of
  /// stealing; `on_complete` (optional) fires once per non-skipped job.
  std::vector<JobResult> RunWithPolicy(
      const std::vector<RunSpec>& specs, const JobPolicy& policy,
      const CompletionHook& on_complete = nullptr);

  /// Same policy treatment for caller-supplied bodies (the campaign
  /// engine generates its workload inside the task). The task must poll
  /// JobContext::cancelled() at safe points if it can run long.
  std::vector<JobResult> RunTasksWithPolicy(
      const std::vector<PolicyTask>& tasks, const JobPolicy& policy,
      const CompletionHook& on_complete = nullptr);

  /// The underlying pool, for analysis-only fan-outs.
  ExecutorPool& pool() { return pool_; }

 private:
  /// Runs one task under the policy (watchdog + retries) and classifies
  /// the outcome.
  JobResult RunOnePolicy(const PolicyTask& task, const JobPolicy& policy);
  /// The watchdog monitor, started on first use.
  Watchdog& watchdog();

  ExecutorPool pool_;
  std::unique_ptr<Watchdog> watchdog_;  // lazy; guarded by watchdog_mu_
  std::mutex watchdog_mu_;
};

}  // namespace pcpda

#endif  // PCPDA_RUNNER_BATCH_RUNNER_H_
