#ifndef PCPDA_RUNNER_BATCH_RUNNER_H_
#define PCPDA_RUNNER_BATCH_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pcp_da.h"
#include "protocols/factory.h"
#include "runner/executor_pool.h"
#include "sched/simulator.h"
#include "workload/scenario.h"

namespace pcpda {

/// One simulation job of a batch: scenario x protocol x seed x options.
struct RunSpec {
  /// The scenario to simulate. Must outlive the batch. A null scenario
  /// makes that job fail with InvalidArgument without touching the rest
  /// of the batch.
  const Scenario* scenario = nullptr;
  ProtocolKind protocol = ProtocolKind::kPcpDa;
  /// Fault-plan seed override: nonzero replaces the scenario's own fault
  /// seed, so job grids can draw independent streams via
  /// SplitMixSeed(base_seed, job_index). 0 keeps the scenario's seed.
  std::uint64_t seed = 0;
  /// options.horizon == 0 falls back to scenario->horizon, and an empty
  /// options.faults falls back to scenario->faults.
  SimulatorOptions options;
  /// Options for PCP-DA instances (the guard-ablation hook); ignored for
  /// every other protocol kind.
  PcpDaOptions pcp_da;
};

struct BatchOptions {
  /// Concurrent executors, calling thread included; < 1 clamps to 1.
  /// Results never depend on this value.
  int jobs = 1;
};

/// Executes batches of independent simulations on an ExecutorPool and
/// collects results in submission order — bit-identical to the serial
/// loop by construction: every job's inputs (scenario, protocol, fault
/// seed, options) are fixed before the batch starts, a job touches no
/// state shared with any other job, and slot i of the result vector
/// belongs to job i alone. See DESIGN.md §10 for why determinism
/// survives work stealing.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  int jobs() const { return pool_.threads(); }

  /// Runs one spec serially — the unit the batch fans out.
  static SimResult RunOne(const RunSpec& spec);

  /// Runs all specs, returning results in spec order.
  std::vector<SimResult> Run(const std::vector<RunSpec>& specs);

  /// Generic escape hatch for jobs that are not plain spec runs: executes
  /// the tasks on the pool; a task that throws yields a SimResult whose
  /// status is Internal, and the rest of the batch is unaffected.
  std::vector<SimResult> RunTasks(
      const std::vector<std::function<SimResult()>>& tasks);

  /// The underlying pool, for analysis-only fan-outs.
  ExecutorPool& pool() { return pool_; }

 private:
  ExecutorPool pool_;
};

}  // namespace pcpda

#endif  // PCPDA_RUNNER_BATCH_RUNNER_H_
