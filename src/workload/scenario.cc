#include "workload/scenario.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace pcpda {
namespace {

/// Splits a line into whitespace-separated tokens, dropping comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token.front() == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

Status ParseError(int line_number, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("line %d: %s", line_number, message.c_str()));
}

bool ParseTick(const std::string& token, Tick* out) {
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || token.empty()) return false;
  *out = static_cast<Tick>(value);
  return true;
}

}  // namespace

StatusOr<Scenario> ParseScenario(const std::string& text) {
  std::string name = "scenario";
  Tick horizon = 0;
  PriorityAssignment assignment = PriorityAssignment::kRateMonotonic;
  std::map<std::string, ItemId> items;
  std::vector<TransactionSpec> specs;

  auto item_id = [&items](const std::string& item_name) {
    auto [it, inserted] = items.try_emplace(
        item_name, static_cast<ItemId>(items.size()));
    return it->second;
  };

  bool in_txn = false;
  TransactionSpec current;

  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (in_txn) {
      if (keyword == "end") {
        if (tokens.size() != 1) {
          return ParseError(line_number, "end takes no arguments");
        }
        specs.push_back(std::move(current));
        current = TransactionSpec{};
        in_txn = false;
        continue;
      }
      if (keyword == "read" || keyword == "write") {
        if (tokens.size() < 2 || tokens.size() > 3) {
          return ParseError(line_number,
                            keyword + " needs an item and an optional "
                                      "duration");
        }
        Tick duration = 1;
        if (tokens.size() == 3 &&
            (!ParseTick(tokens[2], &duration) || duration <= 0)) {
          return ParseError(line_number, "bad duration");
        }
        const ItemId item = item_id(tokens[1]);
        current.body.push_back(keyword == "read" ? Read(item, duration)
                                                 : Write(item, duration));
        continue;
      }
      if (keyword == "compute") {
        Tick duration = 0;
        if (tokens.size() != 2 || !ParseTick(tokens[1], &duration) ||
            duration <= 0) {
          return ParseError(line_number,
                            "compute needs a positive duration");
        }
        current.body.push_back(Compute(duration));
        continue;
      }
      return ParseError(line_number,
                        "unknown step '" + keyword +
                            "' (expected read/write/compute/end)");
    }

    if (keyword == "scenario") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "scenario needs a name");
      }
      name = tokens[1];
      continue;
    }
    if (keyword == "horizon") {
      if (tokens.size() != 2 || !ParseTick(tokens[1], &horizon) ||
          horizon <= 0) {
        return ParseError(line_number, "horizon needs a positive tick");
      }
      continue;
    }
    if (keyword == "priority") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "priority needs a mode");
      }
      if (tokens[1] == "as-listed") {
        assignment = PriorityAssignment::kAsListed;
      } else if (tokens[1] == "rate-monotonic") {
        assignment = PriorityAssignment::kRateMonotonic;
      } else {
        return ParseError(line_number,
                          "priority mode must be as-listed or "
                          "rate-monotonic");
      }
      continue;
    }
    if (keyword == "item") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "item needs a name");
      }
      item_id(tokens[1]);
      continue;
    }
    if (keyword == "txn") {
      if (tokens.size() < 2) {
        return ParseError(line_number, "txn needs a name");
      }
      current = TransactionSpec{};
      current.name = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string& attr = tokens[i];
        const auto eq = attr.find('=');
        if (eq == std::string::npos) {
          return ParseError(line_number,
                            "txn attribute must be key=value: " + attr);
        }
        const std::string key = attr.substr(0, eq);
        Tick value = 0;
        if (!ParseTick(attr.substr(eq + 1), &value)) {
          return ParseError(line_number, "bad value in " + attr);
        }
        if (key == "period") {
          current.period = value;
        } else if (key == "offset") {
          current.offset = value;
        } else if (key == "deadline") {
          current.relative_deadline = value;
        } else {
          return ParseError(line_number, "unknown txn attribute " + key);
        }
      }
      in_txn = true;
      continue;
    }
    return ParseError(line_number, "unknown directive '" + keyword + "'");
  }
  if (in_txn) {
    return Status::InvalidArgument("unterminated txn (missing 'end')");
  }
  if (specs.empty()) {
    return Status::InvalidArgument("scenario declares no transactions");
  }

  auto set = TransactionSet::Create(std::move(specs), assignment);
  PCPDA_RETURN_IF_ERROR(set.status());
  Scenario scenario{name, std::move(set).value(), horizon,
                    std::move(items)};
  return scenario;
}

StatusOr<Scenario> LoadScenarioFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseScenario(buffer.str());
}

std::string FormatScenario(const std::string& name,
                           const TransactionSet& set, Tick horizon) {
  std::vector<std::string> lines;
  lines.push_back("scenario " + name);
  if (horizon > 0) {
    lines.push_back(
        StrFormat("horizon %lld", static_cast<long long>(horizon)));
  }
  // The set is emitted in priority order, which as-listed reproduces
  // regardless of how it was originally assigned.
  lines.push_back("priority as-listed");
  // Pre-declare items in id order so the parse assigns identical ids.
  for (ItemId item = 0; item < set.item_count(); ++item) {
    lines.push_back(StrFormat("item d%d", item));
  }
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    std::string header = "txn " + spec.name;
    if (spec.period > 0) {
      header += StrFormat(" period=%lld",
                          static_cast<long long>(spec.period));
    }
    if (spec.offset > 0) {
      header += StrFormat(" offset=%lld",
                          static_cast<long long>(spec.offset));
    }
    if (spec.relative_deadline > 0) {
      header += StrFormat(" deadline=%lld",
                          static_cast<long long>(spec.relative_deadline));
    }
    lines.push_back(std::move(header));
    for (const Step& step : spec.body) {
      switch (step.kind) {
        case StepKind::kCompute:
          lines.push_back(StrFormat(
              "  compute %lld", static_cast<long long>(step.duration)));
          break;
        case StepKind::kRead:
          lines.push_back(StrFormat(
              "  read d%d %lld", step.item,
              static_cast<long long>(step.duration)));
          break;
        case StepKind::kWrite:
          lines.push_back(StrFormat(
              "  write d%d %lld", step.item,
              static_cast<long long>(step.duration)));
          break;
      }
    }
    lines.push_back("end");
  }
  return Join(lines, "\n") + "\n";
}

}  // namespace pcpda
