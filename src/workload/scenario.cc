#include "workload/scenario.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace pcpda {
namespace {

/// Splits a line into whitespace-separated tokens, dropping comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token.front() == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

Status ParseError(int line_number, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("line %d: %s", line_number, message.c_str()));
}

bool ParseTick(const std::string& token, Tick* out) {
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || token.empty()) return false;
  *out = static_cast<Tick>(value);
  return true;
}

bool ParseUint64(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

bool ParseDouble(const std::string& token, double* out) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || token.empty()) return false;
  *out = value;
  return true;
}

/// A fault line whose target txn name awaits resolution: spec ids are
/// only final after TransactionSet::Create assigns priorities.
struct PendingFault {
  FaultSpec fault;
  std::string target;
  int line = 0;
};

}  // namespace

StatusOr<Scenario> ParseScenario(const std::string& text) {
  std::string name = "scenario";
  Tick horizon = 0;
  PriorityAssignment assignment = PriorityAssignment::kRateMonotonic;
  std::map<std::string, ItemId> items;
  std::vector<TransactionSpec> specs;

  auto item_id = [&items](const std::string& item_name) {
    auto [it, inserted] = items.try_emplace(
        item_name, static_cast<ItemId>(items.size()));
    return it->second;
  };

  bool in_txn = false;
  std::set<std::string> txn_names;
  TransactionSpec current;
  bool in_faults = false;
  bool saw_faults = false;
  std::uint64_t fault_seed = 1;
  std::vector<PendingFault> pending_faults;

  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (in_txn) {
      if (keyword == "end") {
        if (tokens.size() != 1) {
          return ParseError(line_number, "end takes no arguments");
        }
        specs.push_back(std::move(current));
        current = TransactionSpec{};
        in_txn = false;
        continue;
      }
      if (keyword == "read" || keyword == "write") {
        if (tokens.size() < 2 || tokens.size() > 3) {
          return ParseError(line_number,
                            keyword + " needs an item and an optional "
                                      "duration");
        }
        Tick duration = 1;
        if (tokens.size() == 3 &&
            (!ParseTick(tokens[2], &duration) || duration <= 0)) {
          return ParseError(line_number, "bad duration");
        }
        const ItemId item = item_id(tokens[1]);
        current.body.push_back(keyword == "read" ? Read(item, duration)
                                                 : Write(item, duration));
        continue;
      }
      if (keyword == "compute") {
        Tick duration = 0;
        if (tokens.size() != 2 || !ParseTick(tokens[1], &duration) ||
            duration <= 0) {
          return ParseError(line_number,
                            "compute needs a positive duration");
        }
        current.body.push_back(Compute(duration));
        continue;
      }
      return ParseError(line_number,
                        "unknown step '" + keyword +
                            "' (expected read/write/compute/end)");
    }

    if (in_faults) {
      if (keyword == "end") {
        if (tokens.size() != 1) {
          return ParseError(line_number, "end takes no arguments");
        }
        in_faults = false;
        continue;
      }
      FaultKind kind;
      if (keyword == "abort") {
        kind = FaultKind::kAbort;
      } else if (keyword == "restart") {
        kind = FaultKind::kRestartInCs;
      } else if (keyword == "overrun") {
        kind = FaultKind::kOverrun;
      } else if (keyword == "delay") {
        kind = FaultKind::kDelayArrival;
      } else if (keyword == "burst") {
        kind = FaultKind::kBurstArrival;
      } else {
        return ParseError(line_number,
                          "unknown fault '" + keyword +
                              "' (expected abort/restart/overrun/delay/"
                              "burst/end)");
      }
      if (tokens.size() < 2) {
        return ParseError(line_number,
                          keyword + " needs a target txn name or *");
      }
      PendingFault pending;
      pending.fault.kind = kind;
      pending.target = tokens[1];
      pending.line = line_number;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string& attr = tokens[i];
        const auto eq = attr.find('=');
        if (eq == std::string::npos) {
          return ParseError(line_number,
                            "fault attribute must be key=value: " + attr);
        }
        const std::string key = attr.substr(0, eq);
        const std::string value = attr.substr(eq + 1);
        if (key == "at") {
          if (!ParseTick(value, &pending.fault.at) ||
              pending.fault.at < 0) {
            return ParseError(line_number,
                              "at must be a tick >= 0 in " + attr);
          }
        } else if (key == "prob") {
          if (!ParseDouble(value, &pending.fault.probability) ||
              pending.fault.probability < 0.0 ||
              pending.fault.probability > 1.0) {
            return ParseError(line_number,
                              "prob must be in [0, 1] in " + attr);
          }
        } else if (key == "by" || key == "upto") {
          if (!ParseTick(value, &pending.fault.extra) ||
              pending.fault.extra <= 0) {
            return ParseError(line_number,
                              key + " must be a positive tick count in " +
                                  attr);
          }
        } else if (key == "count") {
          Tick count = 0;
          if (!ParseTick(value, &count) || count <= 0 ||
              count > (1 << 20)) {
            return ParseError(line_number,
                              "count must be in [1, 2^20] in " + attr);
          }
          pending.fault.count = static_cast<int>(count);
        } else {
          return ParseError(line_number, "unknown fault attribute " + key);
        }
      }
      pending_faults.push_back(std::move(pending));
      continue;
    }

    if (keyword == "scenario") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "scenario needs a name");
      }
      name = tokens[1];
      continue;
    }
    if (keyword == "horizon") {
      if (tokens.size() != 2 || !ParseTick(tokens[1], &horizon) ||
          horizon <= 0) {
        return ParseError(line_number, "horizon needs a positive tick");
      }
      continue;
    }
    if (keyword == "priority") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "priority needs a mode");
      }
      if (tokens[1] == "as-listed") {
        assignment = PriorityAssignment::kAsListed;
      } else if (tokens[1] == "rate-monotonic") {
        assignment = PriorityAssignment::kRateMonotonic;
      } else {
        return ParseError(line_number,
                          "priority mode must be as-listed or "
                          "rate-monotonic");
      }
      continue;
    }
    if (keyword == "item") {
      if (tokens.size() != 2) {
        return ParseError(line_number, "item needs a name");
      }
      item_id(tokens[1]);
      continue;
    }
    if (keyword == "txn") {
      if (tokens.size() < 2) {
        return ParseError(line_number, "txn needs a name");
      }
      current = TransactionSpec{};
      current.name = tokens[1];
      if (!txn_names.insert(current.name).second) {
        return ParseError(line_number,
                          "duplicate txn name '" + current.name + "'");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string& attr = tokens[i];
        const auto eq = attr.find('=');
        if (eq == std::string::npos) {
          return ParseError(line_number,
                            "txn attribute must be key=value: " + attr);
        }
        const std::string key = attr.substr(0, eq);
        Tick value = 0;
        if (!ParseTick(attr.substr(eq + 1), &value)) {
          return ParseError(line_number, "bad value in " + attr);
        }
        if (value < 0) {
          return ParseError(line_number,
                            key + " must be >= 0 in " + attr);
        }
        if (key == "period") {
          current.period = value;
        } else if (key == "offset") {
          current.offset = value;
        } else if (key == "deadline") {
          current.relative_deadline = value;
        } else {
          return ParseError(line_number, "unknown txn attribute " + key);
        }
      }
      in_txn = true;
      continue;
    }
    if (keyword == "faults") {
      if (saw_faults) {
        return ParseError(line_number, "duplicate faults block");
      }
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& attr = tokens[i];
        const auto eq = attr.find('=');
        if (eq == std::string::npos || attr.substr(0, eq) != "seed") {
          return ParseError(line_number,
                            "faults takes only seed=<n>: " + attr);
        }
        // Seeds use the full uint64 domain (FormatScenario writes %llu),
        // so Tick (int64) parsing would clamp the upper half.
        if (!ParseUint64(attr.substr(eq + 1), &fault_seed)) {
          return ParseError(line_number, "bad value in " + attr);
        }
      }
      in_faults = true;
      saw_faults = true;
      continue;
    }
    return ParseError(line_number, "unknown directive '" + keyword + "'");
  }
  if (in_txn) {
    return Status::InvalidArgument("unterminated txn (missing 'end')");
  }
  if (in_faults) {
    return Status::InvalidArgument("unterminated faults (missing 'end')");
  }
  if (specs.empty()) {
    return Status::InvalidArgument("scenario declares no transactions");
  }

  auto set = TransactionSet::Create(std::move(specs), assignment);
  PCPDA_RETURN_IF_ERROR(set.status());
  TransactionSet txns = std::move(set).value();

  // Resolve fault targets by name now that priority assignment has fixed
  // the spec ids.
  FaultConfig faults;
  faults.seed = fault_seed;
  for (const PendingFault& pending : pending_faults) {
    FaultSpec fault = pending.fault;
    if (pending.target == "*") {
      fault.spec = kInvalidSpec;
    } else {
      fault.spec = kInvalidSpec;
      for (SpecId i = 0; i < txns.size(); ++i) {
        if (txns.spec(i).name == pending.target) {
          fault.spec = i;
          break;
        }
      }
      if (fault.spec == kInvalidSpec) {
        return ParseError(pending.line,
                          "fault targets unknown txn '" + pending.target +
                              "'");
      }
    }
    faults.faults.push_back(fault);
  }
  PCPDA_RETURN_IF_ERROR(ValidateFaultConfig(faults, txns));

  Scenario scenario{name, std::move(txns), horizon, std::move(items),
                    std::move(faults)};
  return scenario;
}

StatusOr<Scenario> LoadScenarioFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseScenario(buffer.str());
}

std::string FormatScenario(const std::string& name,
                           const TransactionSet& set, Tick horizon) {
  std::vector<std::string> lines;
  lines.push_back("scenario " + name);
  if (horizon > 0) {
    lines.push_back(
        StrFormat("horizon %lld", static_cast<long long>(horizon)));
  }
  // The set is emitted in priority order, which as-listed reproduces
  // regardless of how it was originally assigned.
  lines.push_back("priority as-listed");
  // Pre-declare items in id order so the parse assigns identical ids.
  for (ItemId item = 0; item < set.item_count(); ++item) {
    lines.push_back(StrFormat("item d%d", item));
  }
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    std::string header = "txn " + spec.name;
    if (spec.period > 0) {
      header += StrFormat(" period=%lld",
                          static_cast<long long>(spec.period));
    }
    if (spec.offset > 0) {
      header += StrFormat(" offset=%lld",
                          static_cast<long long>(spec.offset));
    }
    if (spec.relative_deadline > 0) {
      header += StrFormat(" deadline=%lld",
                          static_cast<long long>(spec.relative_deadline));
    }
    lines.push_back(std::move(header));
    for (const Step& step : spec.body) {
      switch (step.kind) {
        case StepKind::kCompute:
          lines.push_back(StrFormat(
              "  compute %lld", static_cast<long long>(step.duration)));
          break;
        case StepKind::kRead:
          lines.push_back(StrFormat(
              "  read d%d %lld", step.item,
              static_cast<long long>(step.duration)));
          break;
        case StepKind::kWrite:
          lines.push_back(StrFormat(
              "  write d%d %lld", step.item,
              static_cast<long long>(step.duration)));
          break;
      }
    }
    lines.push_back("end");
  }
  return Join(lines, "\n") + "\n";
}

std::string FormatScenario(const Scenario& scenario) {
  std::string out =
      FormatScenario(scenario.name, scenario.set, scenario.horizon);
  if (!scenario.faults.enabled()) return out;
  std::vector<std::string> lines;
  lines.push_back(StrFormat(
      "faults seed=%llu",
      static_cast<unsigned long long>(scenario.faults.seed)));
  for (const FaultSpec& fault : scenario.faults.faults) {
    std::string line = StrFormat("  %s ", ToString(fault.kind));
    line += fault.spec == kInvalidSpec
                ? "*"
                : scenario.set.spec(fault.spec).name;
    if (fault.at != kNoTick) {
      line += StrFormat(" at=%lld", static_cast<long long>(fault.at));
    }
    if (fault.probability > 0.0) {
      // %.17g round-trips any double exactly: a truncated probability
      // would shift every later per-tick Bernoulli draw, making the
      // serialized scenario behave differently from the original.
      line += StrFormat(" prob=%.17g", fault.probability);
    }
    if (fault.kind == FaultKind::kOverrun) {
      line += StrFormat(" by=%lld", static_cast<long long>(fault.extra));
    }
    if (fault.kind == FaultKind::kDelayArrival) {
      line += StrFormat(" upto=%lld", static_cast<long long>(fault.extra));
    }
    if (fault.kind == FaultKind::kBurstArrival) {
      line += StrFormat(" count=%d", fault.count);
    }
    lines.push_back(std::move(line));
  }
  lines.push_back("end");
  return out + Join(lines, "\n") + "\n";
}

}  // namespace pcpda
