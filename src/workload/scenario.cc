#include "workload/scenario.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace pcpda {
namespace {

/// A token with the 1-based column of its first character, so parse
/// errors and recorded entity spans can point into the line.
struct Token {
  std::string text;
  int column = 0;
};

/// Splits a line into whitespace-separated tokens, dropping comments.
std::vector<Token> Tokenize(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back(
        Token{line.substr(start, i - start), static_cast<int>(start) + 1});
  }
  return tokens;
}

Status ParseError(int line_number, int column, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("line %d:%d: %s", line_number, column, message.c_str()));
}

bool ParseTick(const std::string& token, Tick* out) {
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || token.empty()) return false;
  *out = static_cast<Tick>(value);
  return true;
}

bool ParseUint64(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

bool ParseDouble(const std::string& token, double* out) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || token.empty()) return false;
  *out = value;
  return true;
}

/// A fault line whose target txn name awaits resolution: spec ids are
/// only final after TransactionSet::Create assigns priorities.
struct PendingFault {
  FaultSpec fault;
  std::string target;
  SourceSpan span;
};

}  // namespace

std::string SourceSpan::DebugString() const {
  if (!valid()) return "?";
  return StrFormat("%d:%d", line, column);
}

StatusOr<Scenario> ParseScenario(const std::string& text) {
  std::string name = "scenario";
  Tick horizon = 0;
  PriorityAssignment assignment = PriorityAssignment::kRateMonotonic;
  std::map<std::string, ItemId> items;
  std::vector<TransactionSpec> specs;
  std::vector<CeilingExpectation> expects;
  ScenarioSpans spans;

  auto item_id = [&items, &spans](const std::string& item_name,
                                  SourceSpan span) {
    auto [it, inserted] =
        items.try_emplace(item_name, static_cast<ItemId>(items.size()));
    if (inserted) spans.items.emplace(item_name, span);
    return it->second;
  };

  bool in_txn = false;
  std::set<std::string> txn_names;
  TransactionSpec current;
  std::vector<SourceSpan> current_steps;
  SourceSpan txn_open;
  bool in_faults = false;
  bool saw_faults = false;
  SourceSpan faults_open;
  bool in_expect = false;
  SourceSpan expect_open;
  std::uint64_t fault_seed = 1;
  std::vector<PendingFault> pending_faults;

  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::vector<Token> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0].text;
    const SourceSpan keyword_span{line_number, tokens[0].column};

    if (in_txn) {
      if (keyword == "end") {
        if (tokens.size() != 1) {
          return ParseError(line_number, tokens[1].column,
                            "end takes no arguments");
        }
        spans.steps[current.name] = std::move(current_steps);
        current_steps.clear();
        specs.push_back(std::move(current));
        current = TransactionSpec{};
        in_txn = false;
        continue;
      }
      if (keyword == "read" || keyword == "write") {
        if (tokens.size() < 2 || tokens.size() > 3) {
          return ParseError(line_number, tokens[0].column,
                            keyword + " needs an item and an optional "
                                      "duration");
        }
        Tick duration = 1;
        if (tokens.size() == 3 &&
            (!ParseTick(tokens[2].text, &duration) || duration <= 0)) {
          return ParseError(line_number, tokens[2].column, "bad duration");
        }
        const ItemId item =
            item_id(tokens[1].text,
                    SourceSpan{line_number, tokens[1].column});
        current.body.push_back(keyword == "read" ? Read(item, duration)
                                                 : Write(item, duration));
        current_steps.push_back(keyword_span);
        continue;
      }
      if (keyword == "compute") {
        Tick duration = 0;
        if (tokens.size() != 2 || !ParseTick(tokens[1].text, &duration) ||
            duration <= 0) {
          return ParseError(line_number, tokens[0].column,
                            "compute needs a positive duration");
        }
        current.body.push_back(Compute(duration));
        current_steps.push_back(keyword_span);
        continue;
      }
      return ParseError(line_number, tokens[0].column,
                        "unknown step '" + keyword +
                            "' (expected read/write/compute/end)");
    }

    if (in_faults) {
      if (keyword == "end") {
        if (tokens.size() != 1) {
          return ParseError(line_number, tokens[1].column,
                            "end takes no arguments");
        }
        in_faults = false;
        continue;
      }
      FaultKind kind;
      if (keyword == "abort") {
        kind = FaultKind::kAbort;
      } else if (keyword == "restart") {
        kind = FaultKind::kRestartInCs;
      } else if (keyword == "overrun") {
        kind = FaultKind::kOverrun;
      } else if (keyword == "delay") {
        kind = FaultKind::kDelayArrival;
      } else if (keyword == "burst") {
        kind = FaultKind::kBurstArrival;
      } else {
        return ParseError(line_number, tokens[0].column,
                          "unknown fault '" + keyword +
                              "' (expected abort/restart/overrun/delay/"
                              "burst/end)");
      }
      if (tokens.size() < 2) {
        return ParseError(line_number, tokens[0].column,
                          keyword + " needs a target txn name or *");
      }
      PendingFault pending;
      pending.fault.kind = kind;
      pending.target = tokens[1].text;
      pending.span = keyword_span;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string& attr = tokens[i].text;
        const int attr_column = tokens[i].column;
        const auto eq = attr.find('=');
        if (eq == std::string::npos) {
          return ParseError(line_number, attr_column,
                            "fault attribute must be key=value: " + attr);
        }
        const std::string key = attr.substr(0, eq);
        const std::string value = attr.substr(eq + 1);
        if (key == "at") {
          if (!ParseTick(value, &pending.fault.at) ||
              pending.fault.at < 0) {
            return ParseError(line_number, attr_column,
                              "at must be a tick >= 0 in " + attr);
          }
        } else if (key == "prob") {
          if (!ParseDouble(value, &pending.fault.probability) ||
              pending.fault.probability < 0.0 ||
              pending.fault.probability > 1.0) {
            return ParseError(line_number, attr_column,
                              "prob must be in [0, 1] in " + attr);
          }
        } else if (key == "by" || key == "upto") {
          if (!ParseTick(value, &pending.fault.extra) ||
              pending.fault.extra <= 0) {
            return ParseError(line_number, attr_column,
                              key + " must be a positive tick count in " +
                                  attr);
          }
        } else if (key == "count") {
          Tick count = 0;
          if (!ParseTick(value, &count) || count <= 0 ||
              count > (1 << 20)) {
            return ParseError(line_number, attr_column,
                              "count must be in [1, 2^20] in " + attr);
          }
          pending.fault.count = static_cast<int>(count);
        } else {
          return ParseError(line_number, attr_column,
                            "unknown fault attribute " + key);
        }
      }
      pending_faults.push_back(std::move(pending));
      continue;
    }

    if (in_expect) {
      if (keyword == "end") {
        if (tokens.size() != 1) {
          return ParseError(line_number, tokens[1].column,
                            "end takes no arguments");
        }
        in_expect = false;
        continue;
      }
      if (keyword == "wceil" || keyword == "aceil") {
        if (tokens.size() != 3) {
          return ParseError(line_number, tokens[0].column,
                            keyword +
                                " needs an item and a txn name (or dummy)");
        }
        CeilingExpectation expectation;
        expectation.write_ceiling = keyword == "wceil";
        expectation.item = tokens[1].text;
        expectation.txn = tokens[2].text;
        expectation.span = keyword_span;
        expects.push_back(std::move(expectation));
        continue;
      }
      return ParseError(line_number, tokens[0].column,
                        "unknown expectation '" + keyword +
                            "' (expected wceil/aceil/end)");
    }

    if (keyword == "scenario") {
      if (tokens.size() != 2) {
        return ParseError(line_number, tokens[0].column,
                          "scenario needs a name");
      }
      name = tokens[1].text;
      continue;
    }
    if (keyword == "horizon") {
      if (tokens.size() != 2 || !ParseTick(tokens[1].text, &horizon) ||
          horizon <= 0) {
        return ParseError(line_number, tokens[0].column,
                          "horizon needs a positive tick");
      }
      spans.horizon = keyword_span;
      continue;
    }
    if (keyword == "priority") {
      if (tokens.size() != 2) {
        return ParseError(line_number, tokens[0].column,
                          "priority needs a mode");
      }
      if (tokens[1].text == "as-listed") {
        assignment = PriorityAssignment::kAsListed;
      } else if (tokens[1].text == "rate-monotonic") {
        assignment = PriorityAssignment::kRateMonotonic;
      } else {
        return ParseError(line_number, tokens[1].column,
                          "priority mode must be as-listed or "
                          "rate-monotonic");
      }
      continue;
    }
    if (keyword == "item") {
      if (tokens.size() != 2) {
        return ParseError(line_number, tokens[0].column,
                          "item needs a name");
      }
      item_id(tokens[1].text, SourceSpan{line_number, tokens[1].column});
      continue;
    }
    if (keyword == "txn") {
      if (tokens.size() < 2) {
        return ParseError(line_number, tokens[0].column,
                          "txn needs a name");
      }
      current = TransactionSpec{};
      current.name = tokens[1].text;
      if (!txn_names.insert(current.name).second) {
        return ParseError(line_number, tokens[1].column,
                          "duplicate txn name '" + current.name + "'");
      }
      txn_open = SourceSpan{line_number, tokens[1].column};
      spans.txns.emplace(current.name, txn_open);
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string& attr = tokens[i].text;
        const int attr_column = tokens[i].column;
        const auto eq = attr.find('=');
        if (eq == std::string::npos) {
          return ParseError(line_number, attr_column,
                            "txn attribute must be key=value: " + attr);
        }
        const std::string key = attr.substr(0, eq);
        Tick value = 0;
        if (!ParseTick(attr.substr(eq + 1), &value)) {
          return ParseError(line_number, attr_column,
                            "bad value in " + attr);
        }
        if (value < 0) {
          return ParseError(line_number, attr_column,
                            key + " must be >= 0 in " + attr);
        }
        if (key == "period") {
          current.period = value;
        } else if (key == "offset") {
          current.offset = value;
        } else if (key == "deadline") {
          current.relative_deadline = value;
        } else {
          return ParseError(line_number, attr_column,
                            "unknown txn attribute " + key);
        }
      }
      in_txn = true;
      continue;
    }
    if (keyword == "faults") {
      if (saw_faults) {
        return ParseError(line_number, tokens[0].column,
                          "duplicate faults block");
      }
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& attr = tokens[i].text;
        const int attr_column = tokens[i].column;
        const auto eq = attr.find('=');
        if (eq == std::string::npos || attr.substr(0, eq) != "seed") {
          return ParseError(line_number, attr_column,
                            "faults takes only seed=<n>: " + attr);
        }
        // Seeds use the full uint64 domain (FormatScenario writes %llu),
        // so Tick (int64) parsing would clamp the upper half.
        if (!ParseUint64(attr.substr(eq + 1), &fault_seed)) {
          return ParseError(line_number, attr_column,
                            "bad value in " + attr);
        }
      }
      in_faults = true;
      saw_faults = true;
      faults_open = keyword_span;
      continue;
    }
    if (keyword == "expect") {
      if (tokens.size() != 1) {
        return ParseError(line_number, tokens[1].column,
                          "expect takes no arguments");
      }
      in_expect = true;
      expect_open = keyword_span;
      continue;
    }
    return ParseError(line_number, tokens[0].column,
                      "unknown directive '" + keyword + "'");
  }
  if (in_txn) {
    return ParseError(txn_open.line, txn_open.column,
                      "unterminated txn '" + current.name +
                          "' (missing 'end')");
  }
  if (in_faults) {
    return ParseError(faults_open.line, faults_open.column,
                      "unterminated faults (missing 'end')");
  }
  if (in_expect) {
    return ParseError(expect_open.line, expect_open.column,
                      "unterminated expect (missing 'end')");
  }
  if (specs.empty()) {
    return Status::InvalidArgument("scenario declares no transactions");
  }

  auto set = TransactionSet::Create(std::move(specs), assignment);
  PCPDA_RETURN_IF_ERROR(set.status());
  TransactionSet txns = std::move(set).value();

  // Resolve fault targets by name now that priority assignment has fixed
  // the spec ids.
  FaultConfig faults;
  faults.seed = fault_seed;
  for (const PendingFault& pending : pending_faults) {
    FaultSpec fault = pending.fault;
    if (pending.target == "*") {
      fault.spec = kInvalidSpec;
    } else {
      fault.spec = kInvalidSpec;
      for (SpecId i = 0; i < txns.size(); ++i) {
        if (txns.spec(i).name == pending.target) {
          fault.spec = i;
          break;
        }
      }
      if (fault.spec == kInvalidSpec) {
        return ParseError(pending.span.line, pending.span.column,
                          "fault targets unknown txn '" + pending.target +
                              "'");
      }
    }
    faults.faults.push_back(fault);
    spans.faults.push_back(pending.span);
  }
  PCPDA_RETURN_IF_ERROR(ValidateFaultConfig(faults, txns));

  Scenario scenario{name,
                    std::move(txns),
                    horizon,
                    std::move(items),
                    std::move(faults),
                    std::move(expects),
                    std::move(spans)};
  return scenario;
}

StatusOr<Scenario> LoadScenarioFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseScenario(buffer.str());
}

std::string FormatScenario(const std::string& name,
                           const TransactionSet& set, Tick horizon) {
  std::vector<std::string> lines;
  lines.push_back("scenario " + name);
  if (horizon > 0) {
    lines.push_back(
        StrFormat("horizon %lld", static_cast<long long>(horizon)));
  }
  // The set is emitted in priority order, which as-listed reproduces
  // regardless of how it was originally assigned.
  lines.push_back("priority as-listed");
  // Pre-declare items in id order so the parse assigns identical ids.
  for (ItemId item = 0; item < set.item_count(); ++item) {
    lines.push_back(StrFormat("item d%d", item));
  }
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    std::string header = "txn " + spec.name;
    if (spec.period > 0) {
      header += StrFormat(" period=%lld",
                          static_cast<long long>(spec.period));
    }
    if (spec.offset > 0) {
      header += StrFormat(" offset=%lld",
                          static_cast<long long>(spec.offset));
    }
    if (spec.relative_deadline > 0) {
      header += StrFormat(" deadline=%lld",
                          static_cast<long long>(spec.relative_deadline));
    }
    lines.push_back(std::move(header));
    for (const Step& step : spec.body) {
      switch (step.kind) {
        case StepKind::kCompute:
          lines.push_back(StrFormat(
              "  compute %lld", static_cast<long long>(step.duration)));
          break;
        case StepKind::kRead:
          lines.push_back(StrFormat(
              "  read d%d %lld", step.item,
              static_cast<long long>(step.duration)));
          break;
        case StepKind::kWrite:
          lines.push_back(StrFormat(
              "  write d%d %lld", step.item,
              static_cast<long long>(step.duration)));
          break;
      }
    }
    lines.push_back("end");
  }
  return Join(lines, "\n") + "\n";
}

namespace {
/// Renders the `faults ... end` block of `scenario`.
std::string FormatFaults(const Scenario& scenario);
}  // namespace

std::string FormatScenario(const Scenario& scenario) {
  std::string out =
      FormatScenario(scenario.name, scenario.set, scenario.horizon);
  if (scenario.faults.enabled()) {
    out += FormatFaults(scenario);
  }
  if (!scenario.expects.empty()) {
    std::vector<std::string> lines;
    lines.push_back("expect");
    for (const CeilingExpectation& expect : scenario.expects) {
      // The set half of the file renames items to d<id>, so expectation
      // item names must follow; a name the scenario never resolved (a
      // dangling reference the linter flags) is kept verbatim so the
      // diagnostic survives the round trip. Txn names are emitted
      // unchanged ("dummy" included — it means "no ceiling").
      const auto it = scenario.items.find(expect.item);
      const std::string item =
          it != scenario.items.end()
              ? StrFormat("d%d", it->second)
              : expect.item;
      lines.push_back(StrFormat(
          "  %s %s %s", expect.write_ceiling ? "wceil" : "aceil",
          item.c_str(), expect.txn.c_str()));
    }
    lines.push_back("end");
    out += Join(lines, "\n") + "\n";
  }
  return out;
}

namespace {

std::string FormatFaults(const Scenario& scenario) {
  std::vector<std::string> lines;
  lines.push_back(StrFormat(
      "faults seed=%llu",
      static_cast<unsigned long long>(scenario.faults.seed)));
  for (const FaultSpec& fault : scenario.faults.faults) {
    std::string line = StrFormat("  %s ", ToString(fault.kind));
    line += fault.spec == kInvalidSpec
                ? "*"
                : scenario.set.spec(fault.spec).name;
    if (fault.at != kNoTick) {
      line += StrFormat(" at=%lld", static_cast<long long>(fault.at));
    }
    if (fault.probability > 0.0) {
      // %.17g round-trips any double exactly: a truncated probability
      // would shift every later per-tick Bernoulli draw, making the
      // serialized scenario behave differently from the original.
      line += StrFormat(" prob=%.17g", fault.probability);
    }
    if (fault.kind == FaultKind::kOverrun) {
      line += StrFormat(" by=%lld", static_cast<long long>(fault.extra));
    }
    if (fault.kind == FaultKind::kDelayArrival) {
      line += StrFormat(" upto=%lld", static_cast<long long>(fault.extra));
    }
    if (fault.kind == FaultKind::kBurstArrival) {
      line += StrFormat(" count=%d", fault.count);
    }
    lines.push_back(std::move(line));
  }
  lines.push_back("end");
  return Join(lines, "\n") + "\n";
}

}  // namespace

}  // namespace pcpda
