#ifndef PCPDA_WORKLOAD_PAPER_EXAMPLES_H_
#define PCPDA_WORKLOAD_PAPER_EXAMPLES_H_

#include <string>

#include "common/types.h"
#include "txn/spec.h"

namespace pcpda {

/// One of the paper's worked examples, ready to simulate.
struct PaperExample {
  std::string name;
  TransactionSet set;
  /// Simulation horizon covering the paper's figure.
  Tick horizon = 0;
  /// What the paper expects, for EXPERIMENTS.md.
  std::string notes;
};

/// Data items of the examples (indices into the database).
inline constexpr ItemId kItemX = 0;
inline constexpr ItemId kItemY = 1;
inline constexpr ItemId kItemZ = 2;

/// Example 1 / Figure 1: T1:Read(x), T2:Read(y), T3:Write(x); arrivals
/// 2/1/0. Under RW-PCP T2 suffers ceiling blocking and T1 conflict
/// blocking, both by T3; PCP-DA avoids both.
PaperExample Example1();

/// Example 3 / Figures 2-3: T1:Read(x),Read(y) with period 5 (arrives at
/// 1); T2:Write(x),...,Write(y),... one-shot at 0 (C=5). Under RW-PCP T1's
/// first instance is blocked 4 ticks and misses its deadline at t=6; under
/// PCP-DA T1 never blocks and every deadline is met.
PaperExample Example3();

/// Example 4 / Figures 4-5: T1:R(x); T2:W(y); T3:R(z),W(z); T4:R(y),W(x);
/// arrivals 4/9/1/0. PCP-DA grants T3 via LC4 at t=1 and T1 via LC2 at
/// t=4; under RW-PCP T3 is ceiling-blocked 4 ticks and T1
/// conflict-blocked 1 tick. Access sets reconstructed from the narrative
/// (see DESIGN.md §5).
PaperExample Example4();

/// Example 5: TH:R(y),W(x) and TL:R(x),W(y); TL arrives first. Under the
/// naive "condition (2)" variant (PcpDaOptions::enable_tstar_guard =
/// false) the pair deadlocks; full PCP-DA blocks TH once instead.
PaperExample Example5();

}  // namespace pcpda

#endif  // PCPDA_WORKLOAD_PAPER_EXAMPLES_H_
