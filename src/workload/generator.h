#ifndef PCPDA_WORKLOAD_GENERATOR_H_
#define PCPDA_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "txn/spec.h"

namespace pcpda {

/// Parameters for random periodic transaction sets. Defaults give a
/// moderately contended, laptop-scale workload.
struct WorkloadParams {
  int num_transactions = 8;
  /// Size of the (memory-resident) database.
  int num_items = 20;
  /// Target processor utilization sum(C_i/Pd_i), split by UUniFast.
  double total_utilization = 0.6;
  /// Periods are drawn log-uniformly from [min_period, max_period].
  Tick min_period = 50;
  Tick max_period = 1000;
  /// Data operations per transaction, uniform in [min_ops, max_ops]
  /// (distinct items).
  int min_ops = 2;
  int max_ops = 5;
  /// Probability a data operation is a write.
  double write_fraction = 0.3;
};

/// UUniFast (Bini & Buttazzo): splits `total` into `n` unbiased uniform
/// utilizations. Exposed for tests.
std::vector<double> UUniFast(int n, double total, Rng& rng);

/// Generates a random periodic transaction set. Each transaction draws a
/// period, a target execution time C_i ≈ u_i * Pd_i (at least one tick per
/// operation), distinct data items and op kinds, then pads with compute
/// ticks; the set is ordered rate-monotonically.
StatusOr<TransactionSet> GenerateWorkload(const WorkloadParams& params,
                                          Rng& rng);

}  // namespace pcpda

#endif  // PCPDA_WORKLOAD_GENERATOR_H_
