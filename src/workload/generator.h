#ifndef PCPDA_WORKLOAD_GENERATOR_H_
#define PCPDA_WORKLOAD_GENERATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "txn/spec.h"

namespace pcpda {

/// How a taskset's total utilization is split across transactions. The
/// non-default shapes follow the experiment-campaign generators of the
/// multiprocessor-locking literature (schedcat / rtsk-experiment):
/// acceptance-ratio curves are sensitive to whether utilization arrives
/// as many light tasks, a few heavy ones, or a controlled mix.
enum class UtilDistribution : std::uint8_t {
  /// Bini & Buttazzo's unbiased uniform split (the historical default).
  kUUniFast,
  /// Fixed-sum draw with per-task bounds: every task's share lands in
  /// [min_task_utilization, max_task_utilization] and the shares sum to
  /// the target exactly (randfixedsum-style).
  kRandFixedSum,
  /// Exponentially distributed shares with mean exp_mean_utilization,
  /// clamped to the per-task bounds and rescaled to the target sum —
  /// many light tasks, occasional heavy ones.
  kExponential,
  /// Classic bimodal mix: light tasks drawn uniformly below
  /// bimodal_split, heavy tasks above it, heavy with probability
  /// 1 - bimodal_light_fraction; rescaled to the target sum.
  kBimodal,
};

const char* ToString(UtilDistribution distribution);
/// Parses "uunifast", "randfixedsum", "exponential" or "bimodal".
std::optional<UtilDistribution> UtilDistributionByName(
    const std::string& name);

/// Parameters for random periodic transaction sets. Defaults give a
/// moderately contended, laptop-scale workload.
struct WorkloadParams {
  int num_transactions = 8;
  /// Size of the (memory-resident) database.
  int num_items = 20;
  /// Target processor utilization sum(C_i/Pd_i).
  double total_utilization = 0.6;
  /// How the total is split across transactions.
  UtilDistribution distribution = UtilDistribution::kUUniFast;
  /// Per-task share bounds for the non-UUniFast distributions. The total
  /// must satisfy n*min <= total <= n*max for those shapes.
  double min_task_utilization = 0.001;
  double max_task_utilization = 1.0;
  /// Mean of the kExponential per-task draw (before rescaling).
  double exp_mean_utilization = 0.1;
  /// kBimodal: light tasks are uniform in [min, split), heavy in
  /// [split, max]; a task is light with probability
  /// bimodal_light_fraction.
  double bimodal_split = 0.5;
  double bimodal_light_fraction = 8.0 / 9.0;
  /// Periods are drawn log-uniformly from [min_period, max_period].
  Tick min_period = 50;
  Tick max_period = 1000;
  /// Data operations per transaction, uniform in [min_ops, max_ops]
  /// (distinct items).
  int min_ops = 2;
  int max_ops = 5;
  /// Probability a data operation is a write.
  double write_fraction = 0.3;
};

/// UUniFast (Bini & Buttazzo): splits `total` into `n` unbiased uniform
/// utilizations. Exposed for tests.
std::vector<double> UUniFast(int n, double total, Rng& rng);

/// Splits `total` into `n` per-task utilizations using
/// `params.distribution`. For the bounded shapes the result respects
/// [min_task_utilization, max_task_utilization] per task and sums to
/// `total` (up to float round-off); preconditions are validated by
/// GenerateWorkload. Exposed for tests and the campaign layer.
std::vector<double> SampleUtilizations(int n, double total,
                                       const WorkloadParams& params,
                                       Rng& rng);

/// Generates a random periodic transaction set. Each transaction draws a
/// period, a target execution time C_i ≈ u_i * Pd_i (at least one tick per
/// operation), distinct data items and op kinds, then pads with compute
/// ticks; the set is ordered rate-monotonically.
StatusOr<TransactionSet> GenerateWorkload(const WorkloadParams& params,
                                          Rng& rng);

}  // namespace pcpda

#endif  // PCPDA_WORKLOAD_GENERATOR_H_
