#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {
namespace {

/// Nudges `u` so it sums to `total` while keeping every entry inside
/// [lo, hi]: the deficit (or surplus) is spread proportionally to each
/// entry's remaining headroom, which is exact in one pass when the target
/// is feasible; the loop only mops up float round-off.
void ProjectToSum(std::vector<double>& u, double total, double lo,
                  double hi) {
  for (int round = 0; round < 8; ++round) {
    double sum = 0.0;
    for (double v : u) sum += v;
    const double delta = total - sum;
    if (std::abs(delta) < 1e-12) return;
    double headroom = 0.0;
    for (double v : u) headroom += delta > 0.0 ? hi - v : v - lo;
    if (headroom <= 0.0) return;
    for (double& v : u) {
      const double share = delta > 0.0 ? hi - v : v - lo;
      v += delta * share / headroom;
      v = std::clamp(v, lo, hi);
    }
  }
}

}  // namespace

const char* ToString(UtilDistribution distribution) {
  switch (distribution) {
    case UtilDistribution::kUUniFast:
      return "uunifast";
    case UtilDistribution::kRandFixedSum:
      return "randfixedsum";
    case UtilDistribution::kExponential:
      return "exponential";
    case UtilDistribution::kBimodal:
      return "bimodal";
  }
  return "unknown";
}

std::optional<UtilDistribution> UtilDistributionByName(
    const std::string& name) {
  if (name == "uunifast") return UtilDistribution::kUUniFast;
  if (name == "randfixedsum") return UtilDistribution::kRandFixedSum;
  if (name == "exponential") return UtilDistribution::kExponential;
  if (name == "bimodal") return UtilDistribution::kBimodal;
  return std::nullopt;
}

std::vector<double> UUniFast(int n, double total, Rng& rng) {
  PCPDA_CHECK(n >= 1);
  std::vector<double> utilizations;
  utilizations.reserve(static_cast<std::size_t>(n));
  double remaining = total;
  for (int i = 1; i < n; ++i) {
    const double next =
        remaining *
        std::pow(rng.UniformDouble(), 1.0 / static_cast<double>(n - i));
    utilizations.push_back(remaining - next);
    remaining = next;
  }
  utilizations.push_back(remaining);
  return utilizations;
}

std::vector<double> SampleUtilizations(int n, double total,
                                       const WorkloadParams& params,
                                       Rng& rng) {
  PCPDA_CHECK(n >= 1);
  if (params.distribution == UtilDistribution::kUUniFast) {
    return UUniFast(n, total, rng);
  }
  const double lo = params.min_task_utilization;
  const double hi = params.max_task_utilization;
  std::vector<double> u;
  u.reserve(static_cast<std::size_t>(n));
  switch (params.distribution) {
    case UtilDistribution::kUUniFast:
      break;  // handled above
    case UtilDistribution::kRandFixedSum:
      for (int i = 0; i < n; ++i) u.push_back(rng.UniformRange(lo, hi));
      break;
    case UtilDistribution::kExponential:
      for (int i = 0; i < n; ++i) {
        const double draw = -params.exp_mean_utilization *
                            std::log(1.0 - rng.UniformDouble());
        u.push_back(std::clamp(draw, lo, hi));
      }
      break;
    case UtilDistribution::kBimodal: {
      const double split = std::clamp(params.bimodal_split, lo, hi);
      for (int i = 0; i < n; ++i) {
        const bool light = rng.Bernoulli(params.bimodal_light_fraction);
        if (light && split > lo) {
          u.push_back(rng.UniformRange(lo, split));
        } else if (split < hi) {
          u.push_back(rng.UniformRange(split, hi));
        } else {
          u.push_back(hi);
        }
      }
      break;
    }
  }
  ProjectToSum(u, total, lo, hi);
  return u;
}

StatusOr<TransactionSet> GenerateWorkload(const WorkloadParams& params,
                                          Rng& rng) {
  if (params.num_transactions < 1) {
    return Status::InvalidArgument("num_transactions must be >= 1");
  }
  if (params.num_items < 1) {
    return Status::InvalidArgument("num_items must be >= 1");
  }
  if (params.min_period < 2) {
    return Status::InvalidArgument(
        StrFormat("min_period must be >= 2, got %lld",
                  static_cast<long long>(params.min_period)));
  }
  if (params.max_period < params.min_period) {
    return Status::InvalidArgument(
        StrFormat("min_period %lld exceeds max_period %lld",
                  static_cast<long long>(params.min_period),
                  static_cast<long long>(params.max_period)));
  }
  if (params.min_ops < 1) {
    return Status::InvalidArgument(
        StrFormat("min_ops must be >= 1, got %d", params.min_ops));
  }
  if (params.max_ops < params.min_ops) {
    return Status::InvalidArgument(
        StrFormat("min_ops %d exceeds max_ops %d", params.min_ops,
                  params.max_ops));
  }
  if (params.max_ops > params.num_items) {
    return Status::InvalidArgument(
        StrFormat("max_ops %d exceeds num_items %d: transactions draw "
                  "distinct items",
                  params.max_ops, params.num_items));
  }
  if (params.total_utilization <= 0.0 ||
      params.total_utilization > 1.0) {
    return Status::InvalidArgument(
        StrFormat("total_utilization must be in (0, 1], got %g",
                  params.total_utilization));
  }
  if (params.write_fraction < 0.0 || params.write_fraction > 1.0) {
    return Status::InvalidArgument(
        StrFormat("write_fraction must be in [0, 1], got %g",
                  params.write_fraction));
  }
  if (params.distribution != UtilDistribution::kUUniFast) {
    const double lo = params.min_task_utilization;
    const double hi = params.max_task_utilization;
    if (!(lo >= 0.0 && lo < hi && hi <= 1.0)) {
      return Status::InvalidArgument(StrFormat(
          "task-utilization bounds must satisfy 0 <= min < max <= 1, "
          "got [%g, %g]",
          lo, hi));
    }
    const double n = static_cast<double>(params.num_transactions);
    if (params.total_utilization < n * lo ||
        params.total_utilization > n * hi) {
      return Status::InvalidArgument(StrFormat(
          "total_utilization %g is infeasible for %d tasks bounded to "
          "[%g, %g] under the %s distribution",
          params.total_utilization, params.num_transactions, lo, hi,
          ToString(params.distribution)));
    }
    if (params.distribution == UtilDistribution::kExponential &&
        params.exp_mean_utilization <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("exp_mean_utilization must be > 0, got %g",
                    params.exp_mean_utilization));
    }
  }

  const std::vector<double> utilizations = SampleUtilizations(
      params.num_transactions, params.total_utilization, params, rng);

  std::vector<TransactionSpec> specs;
  specs.reserve(static_cast<std::size_t>(params.num_transactions));
  const double log_min = std::log(static_cast<double>(params.min_period));
  const double log_max = std::log(static_cast<double>(params.max_period));

  for (int i = 0; i < params.num_transactions; ++i) {
    TransactionSpec spec;
    const double log_period = log_min == log_max
                                  ? log_min
                                  : rng.UniformRange(log_min, log_max);
    spec.period = static_cast<Tick>(std::llround(std::exp(log_period)));
    spec.period = std::clamp(spec.period, params.min_period,
                             params.max_period);
    spec.offset = rng.UniformInt(0, spec.period - 1);

    const int ops =
        static_cast<int>(rng.UniformInt(params.min_ops, params.max_ops));
    Tick c = static_cast<Tick>(std::llround(
        utilizations[static_cast<std::size_t>(i)] *
        static_cast<double>(spec.period)));
    c = std::clamp<Tick>(c, ops, spec.period);

    const std::vector<std::int64_t> items =
        rng.SampleWithoutReplacement(params.num_items, ops);
    for (std::int64_t item : items) {
      if (rng.Bernoulli(params.write_fraction)) {
        spec.body.push_back(Write(static_cast<ItemId>(item)));
      } else {
        spec.body.push_back(Read(static_cast<ItemId>(item)));
      }
    }
    // Pad with compute ticks, spread after the data ops, to reach C_i.
    const Tick padding = c - static_cast<Tick>(ops);
    if (padding > 0) spec.body.push_back(Compute(padding));
    rng.Shuffle(spec.body);
    specs.push_back(std::move(spec));
  }
  return TransactionSet::Create(std::move(specs),
                                PriorityAssignment::kRateMonotonic);
}

}  // namespace pcpda
