#include "workload/paper_examples.h"

#include "common/check.h"

namespace pcpda {

namespace {

TransactionSet MustCreate(std::vector<TransactionSpec> specs) {
  auto set = TransactionSet::Create(std::move(specs),
                                    PriorityAssignment::kAsListed);
  PCPDA_CHECK_MSG(set.ok(), set.status().ToString().c_str());
  return std::move(set).value();
}

}  // namespace

PaperExample Example1() {
  TransactionSpec t1;
  t1.name = "T1";
  t1.offset = 2;
  t1.body = {Read(kItemX), Compute(1)};

  TransactionSpec t2;
  t2.name = "T2";
  t2.offset = 1;
  t2.body = {Read(kItemY), Compute(1)};

  TransactionSpec t3;
  t3.name = "T3";
  t3.offset = 0;
  t3.body = {Write(kItemX), Compute(2)};

  return PaperExample{
      "Example 1 (Figure 1)", MustCreate({t1, t2, t3}), 12,
      "RW-PCP: T2 ceiling-blocked at t=1 and T1 conflict-blocked at t=2, "
      "both by T3 until it commits at t=3. PCP-DA: no blocking at all."};
}

PaperExample Example3() {
  TransactionSpec t1;
  t1.name = "T1";
  t1.period = 5;
  t1.offset = 1;
  t1.body = {Read(kItemX), Read(kItemY)};

  TransactionSpec t2;
  t2.name = "T2";
  t2.offset = 0;
  t2.body = {Write(kItemX), Compute(2), Write(kItemY), Compute(1)};

  return PaperExample{
      "Example 3 (Figures 2 and 3)", MustCreate({t1, t2}), 12,
      "PCP-DA (Fig 2): T1 commits at 3 and 8, T2 at 9; zero blocking. "
      "RW-PCP (Fig 3): T1#0 blocked t=1..5 (effective blocking 4) and "
      "misses its deadline at t=6."};
}

PaperExample Example4() {
  TransactionSpec t1;
  t1.name = "T1";
  t1.offset = 4;
  t1.body = {Read(kItemX), Compute(1)};

  TransactionSpec t2;
  t2.name = "T2";
  t2.offset = 9;
  t2.body = {Write(kItemY), Compute(1)};

  TransactionSpec t3;
  t3.name = "T3";
  t3.offset = 1;
  t3.body = {Read(kItemZ), Write(kItemZ)};

  TransactionSpec t4;
  t4.name = "T4";
  t4.offset = 0;
  t4.body = {Read(kItemY), Write(kItemX), Compute(3)};

  return PaperExample{
      "Example 4 (Figures 4 and 5)", MustCreate({t1, t2, t3, t4}), 12,
      "Wceil(y)=P2, Wceil(z)=P3. PCP-DA (Fig 4): T3 read-locks z at t=1 "
      "via LC4 (T*=T4, z not in WriteSet(T4)), T1 read-locks x at t=4 via "
      "LC2; commits T3@3 T1@6 T4@9 T2@11; Max_Sysceil peaks at P2. "
      "RW-PCP (Fig 5): T3 ceiling-blocked 4 ticks, T1 conflict-blocked 1 "
      "tick, Max_Sysceil reaches P1."};
}

PaperExample Example5() {
  TransactionSpec th;
  th.name = "TH";
  th.offset = 1;
  th.body = {Read(kItemY), Write(kItemX)};

  TransactionSpec tl;
  tl.name = "TL";
  tl.offset = 0;
  tl.body = {Read(kItemX), Write(kItemY)};

  return PaperExample{
      "Example 5 (deadlock under naive condition (2))", MustCreate({th, tl}),
      10,
      "With the LC3/LC4 T*-guard disabled, TH read-locks y at t=1 and the "
      "pair deadlocks at t=2. Full PCP-DA ceiling-blocks TH at t=1 "
      "instead; TL commits at 2, TH at 4."};
}

}  // namespace pcpda
