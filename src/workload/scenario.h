#ifndef PCPDA_WORKLOAD_SCENARIO_H_
#define PCPDA_WORKLOAD_SCENARIO_H_

#include <map>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "txn/spec.h"

namespace pcpda {

/// A transaction-set scenario parsed from the line-oriented text format
/// (see ParseScenario). Lets workloads live in files instead of C++ —
/// the paper's worked examples ship as .scn files under scenarios/.
struct Scenario {
  std::string name;
  TransactionSet set;
  /// Simulation horizon; 0 means "caller decides".
  Tick horizon = 0;
  /// Item name -> id, in declaration order.
  std::map<std::string, ItemId> items;
  /// Fault plan from the `faults ... end` block; empty when absent.
  FaultConfig faults;
};

/// Parses the scenario text format:
///
///   # comment (blank lines ignored)
///   scenario <name>
///   horizon <ticks>
///   priority as-listed | rate-monotonic     (default rate-monotonic)
///   item <name>                             (optional pre-declaration)
///   txn <name> [period=<n>] [offset=<n>] [deadline=<n>]
///     read <item> [<duration>]
///     write <item> [<duration>]
///     compute <duration>
///   end
///   faults [seed=<n>]                        (optional, at most one)
///     abort <txn|*> at=<tick>|prob=<p>
///     restart <txn|*> at=<tick>|prob=<p>
///     overrun <txn|*> by=<ticks> at=<tick>|prob=<p>
///     delay <txn|*> upto=<ticks> at=<tick>|prob=<p>
///     burst <txn|*> count=<n> at=<tick>|prob=<p>
///   end
///
/// Items are auto-declared on first use, ids assigned in order of
/// appearance. Fault targets are txn names (resolved after priority
/// assignment) or `*` for any. Errors carry the offending line number.
StatusOr<Scenario> ParseScenario(const std::string& text);

/// Reads and parses a scenario file.
StatusOr<Scenario> LoadScenarioFile(const std::string& path);

/// Renders a transaction set back into the scenario format (round-trips
/// through ParseScenario).
std::string FormatScenario(const std::string& name,
                           const TransactionSet& set, Tick horizon);

/// Same, for a full scenario: appends the `faults` block when present.
std::string FormatScenario(const Scenario& scenario);

}  // namespace pcpda

#endif  // PCPDA_WORKLOAD_SCENARIO_H_
