#ifndef PCPDA_WORKLOAD_SCENARIO_H_
#define PCPDA_WORKLOAD_SCENARIO_H_

#include <map>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "txn/spec.h"

namespace pcpda {

/// A 1-based line:column position in scenario source text. Parser errors
/// and lint diagnostics (src/lint/) anchor on it. Line 0 means
/// "synthetic": the scenario was built in memory, not parsed.
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }
  /// "12:5", or "?" for a synthetic span.
  std::string DebugString() const;

  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
};

/// One assertion from the optional `expect` block: the declared ceiling
/// of `item` equals the priority of `txn` ("dummy" asserts no ceiling).
/// Names are kept unresolved — the linter resolves and checks them, so a
/// dangling reference is a lint error with a span, not a parse error.
struct CeilingExpectation {
  /// Wceil when true (the `wceil` keyword), Aceil otherwise (`aceil`).
  bool write_ceiling = true;
  std::string item;
  std::string txn;
  SourceSpan span;
};

/// Source locations of parsed entities, keyed so they survive the
/// priority reordering TransactionSet::Create applies. All maps are
/// empty for scenarios assembled in memory.
struct ScenarioSpans {
  SourceSpan horizon;
  /// Item name -> span of its declaration (or first use).
  std::map<std::string, SourceSpan> items;
  /// Txn name -> span of its `txn` header line.
  std::map<std::string, SourceSpan> txns;
  /// Txn name -> per-step spans, parallel to the spec body.
  std::map<std::string, std::vector<SourceSpan>> steps;
  /// Parallel to Scenario::faults.faults.
  std::vector<SourceSpan> faults;
};

/// A transaction-set scenario parsed from the line-oriented text format
/// (see ParseScenario). Lets workloads live in files instead of C++ —
/// the paper's worked examples ship as .scn files under scenarios/.
struct Scenario {
  std::string name;
  TransactionSet set;
  /// Simulation horizon; 0 means "caller decides".
  Tick horizon = 0;
  /// Item name -> id, in declaration order.
  std::map<std::string, ItemId> items;
  /// Fault plan from the `faults ... end` block; empty when absent.
  FaultConfig faults;
  /// Ceiling assertions from `expect` blocks, in declaration order.
  /// Checked by the linter, ignored by the simulator; the Scenario
  /// overload of FormatScenario round-trips them (item names mapped to
  /// the d<id> names the formatter emits).
  std::vector<CeilingExpectation> expects;
  /// Source spans for diagnostics; empty when built in memory.
  ScenarioSpans spans;
};

/// Parses the scenario text format:
///
///   # comment (blank lines ignored)
///   scenario <name>
///   horizon <ticks>
///   priority as-listed | rate-monotonic     (default rate-monotonic)
///   item <name>                             (optional pre-declaration)
///   txn <name> [period=<n>] [offset=<n>] [deadline=<n>]
///     read <item> [<duration>]
///     write <item> [<duration>]
///     compute <duration>
///   end
///   faults [seed=<n>]                        (optional, at most one)
///     abort <txn|*> at=<tick>|prob=<p>
///     restart <txn|*> at=<tick>|prob=<p>
///     overrun <txn|*> by=<ticks> at=<tick>|prob=<p>
///     delay <txn|*> upto=<ticks> at=<tick>|prob=<p>
///     burst <txn|*> count=<n> at=<tick>|prob=<p>
///   end
///   expect                                   (optional, lint assertions)
///     wceil <item> <txn|dummy>
///     aceil <item> <txn|dummy>
///   end
///
/// Items are auto-declared on first use, ids assigned in order of
/// appearance. Fault targets are txn names (resolved after priority
/// assignment) or `*` for any. Errors carry the offending line:column
/// position ("line 12:5: ...").
StatusOr<Scenario> ParseScenario(const std::string& text);

/// Reads and parses a scenario file.
StatusOr<Scenario> LoadScenarioFile(const std::string& path);

/// Renders a transaction set back into the scenario format (round-trips
/// through ParseScenario).
std::string FormatScenario(const std::string& name,
                           const TransactionSet& set, Tick horizon);

/// Same, for a full scenario: appends the `faults` and `expect` blocks
/// when present (expectation item names are mapped to the d<id> names
/// the formatter emits; unresolved names are kept verbatim).
std::string FormatScenario(const Scenario& scenario);

}  // namespace pcpda

#endif  // PCPDA_WORKLOAD_SCENARIO_H_
