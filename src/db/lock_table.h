#ifndef PCPDA_DB_LOCK_TABLE_H_
#define PCPDA_DB_LOCK_TABLE_H_

#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "plan/job_arena.h"

namespace pcpda {

/// Lock bookkeeping for the database. The table is pure mechanism: it
/// records who holds which locks and answers queries; whether a lock may be
/// acquired is the protocols' decision. In particular the table permits
/// several concurrent write locks on one item because PCP-DA treats
/// write/write as non-conflicting (each writer updates its own workspace);
/// exclusive-writer protocols simply never grant the second one.
class LockTable {
 public:
  explicit LockTable(ItemId item_count);

  ItemId item_count() const {
    return static_cast<ItemId>(entries_.size());
  }

  // --- Mutation (called by the simulator after a protocol grants) --------

  /// Records a read lock. Idempotent per (job, item).
  void AcquireRead(JobId job, ItemId item);
  /// Records a write lock. Idempotent per (job, item).
  void AcquireWrite(JobId job, ItemId item);
  /// Releases one lock early (used by CCP). Requires the job to hold it.
  void Release(JobId job, ItemId item, LockMode mode);
  /// Releases every lock the job holds (commit or abort).
  void ReleaseAll(JobId job);

  // --- Queries ------------------------------------------------------------

  bool HoldsRead(JobId job, ItemId item) const;
  bool HoldsWrite(JobId job, ItemId item) const;
  /// Holds either mode.
  bool HoldsAny(JobId job, ItemId item) const;

  /// Jobs holding a read lock on `item` (sorted by job id).
  const std::set<JobId>& readers(ItemId item) const;
  /// Jobs holding a write lock on `item` (sorted by job id).
  const std::set<JobId>& writers(ItemId item) const;

  /// No_Rlock_i(x) of the paper: true when no job other than `job` holds a
  /// read lock on `item`.
  bool NoReaderOtherThan(JobId job, ItemId item) const;
  bool NoWriterOtherThan(JobId job, ItemId item) const;

  /// Items the job holds read locks on (sorted).
  const std::set<ItemId>& read_items(JobId job) const;
  /// Items the job holds write locks on (sorted).
  const std::set<ItemId>& write_items(JobId job) const;

  /// All jobs currently holding at least one lock.
  std::vector<JobId> holders() const;

  /// Total read + write locks currently held.
  std::size_t lock_count() const { return lock_count_; }

  std::string DebugString() const;

 private:
  struct ItemEntry {
    std::set<JobId> readers;
    std::set<JobId> writers;
  };
  struct JobEntry {
    std::set<ItemId> read_items;
    std::set<ItemId> write_items;

    bool empty() const { return read_items.empty() && write_items.empty(); }
  };

  const ItemEntry& entry(ItemId item) const;

  std::vector<ItemEntry> entries_;
  /// Per-job held items in a dense JobId-indexed slot map (O(1) lookup,
  /// ascending-id iteration, no node churn); an entry is erased the moment
  /// the job's last lock goes away, exactly like the std::map it replaced.
  JobSlotMap<JobEntry> by_job_;
  std::size_t lock_count_ = 0;

  static const std::set<JobId> kNoJobs;
  static const std::set<ItemId> kNoItems;
};

}  // namespace pcpda

#endif  // PCPDA_DB_LOCK_TABLE_H_
