#ifndef PCPDA_DB_CEILINGS_H_
#define PCPDA_DB_CEILINGS_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "txn/spec.h"

namespace pcpda {

/// The static priority ceilings the protocols consult, computed once from a
/// transaction set (Sections 3 and 5 of the paper):
///
///  * Wceil(x) — write priority ceiling: the priority of the highest
///    priority transaction that may WRITE x. PCP-DA's only ceiling; also
///    HPW(x) in the paper's notation. Dummy if nobody writes x.
///  * Aceil(x) — absolute priority ceiling: the priority of the highest
///    priority transaction that may READ OR WRITE x (RW-PCP/OPCP). Dummy
///    if nobody accesses x.
class StaticCeilings {
 public:
  explicit StaticCeilings(const TransactionSet& set);

  ItemId item_count() const {
    return static_cast<ItemId>(wceil_.size());
  }

  /// Wceil(x) == HPW(x).
  Priority Wceil(ItemId item) const;
  /// Aceil(x).
  Priority Aceil(ItemId item) const;

  /// Specs that may write `item`, highest priority first.
  const std::vector<SpecId>& WritersOf(ItemId item) const;
  /// Specs that may read `item`, highest priority first.
  const std::vector<SpecId>& ReadersOf(ItemId item) const;

  std::string DebugString(const TransactionSet& set) const;

 private:
  std::vector<Priority> wceil_;
  std::vector<Priority> aceil_;
  std::vector<std::vector<SpecId>> writers_;
  std::vector<std::vector<SpecId>> readers_;
};

}  // namespace pcpda

#endif  // PCPDA_DB_CEILINGS_H_
