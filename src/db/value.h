#ifndef PCPDA_DB_VALUE_H_
#define PCPDA_DB_VALUE_H_

#include <string>

#include "common/types.h"

namespace pcpda {

/// The value stored in a data item. The simulator does not model
/// application payloads; a value is identified by the job that produced it
/// and a globally increasing version, which is exactly what the
/// serializability checker needs to track reads-from relationships.
struct Value {
  /// The committed job that wrote this value, or kInvalidJob for the
  /// initial database state.
  JobId writer = kInvalidJob;
  /// Globally monotone version stamp (0 for the initial state).
  std::int64_t version = 0;

  std::string DebugString() const;

  friend bool operator==(const Value&, const Value&) = default;
};

}  // namespace pcpda

#endif  // PCPDA_DB_VALUE_H_
