#include "db/database.h"

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

std::string Value::DebugString() const {
  if (writer == kInvalidJob) return "v0(initial)";
  return StrFormat("v%lld(job %lld)", static_cast<long long>(version),
                   static_cast<long long>(writer));
}

Database::Database(ItemId item_count) {
  PCPDA_CHECK(item_count >= 0);
  items_.resize(static_cast<std::size_t>(item_count));
}

const Value& Database::Read(ItemId item) const {
  PCPDA_CHECK(item >= 0 && item < item_count());
  return items_[static_cast<std::size_t>(item)];
}

Value Database::Write(ItemId item, JobId writer) {
  PCPDA_CHECK(item >= 0 && item < item_count());
  Value value{writer, next_version_++};
  items_[static_cast<std::size_t>(item)] = value;
  return value;
}

void Database::Restore(ItemId item, const Value& value) {
  PCPDA_CHECK(item >= 0 && item < item_count());
  items_[static_cast<std::size_t>(item)] = value;
}

std::string Database::DebugString() const {
  std::vector<std::string> parts;
  parts.reserve(items_.size());
  for (ItemId i = 0; i < item_count(); ++i) {
    parts.push_back(StrFormat(
        "d%d=%s", i, items_[static_cast<std::size_t>(i)].DebugString().c_str()));
  }
  return Join(parts, " ");
}

}  // namespace pcpda
