#ifndef PCPDA_DB_DATABASE_H_
#define PCPDA_DB_DATABASE_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "db/value.h"

namespace pcpda {

/// The memory-resident database: a flat array of versioned data items.
/// Values carry only provenance (writer job + global version), which is
/// what the serializability checker consumes. All access control lives in
/// the protocols; the database itself is mechanism only.
class Database {
 public:
  explicit Database(ItemId item_count);

  ItemId item_count() const { return static_cast<ItemId>(items_.size()); }

  /// The current committed (or, under update-in-place, latest written)
  /// value of `item`.
  const Value& Read(ItemId item) const;

  /// Installs a new value for `item` written by `writer`, stamping it with
  /// the next global version. Returns the installed value.
  Value Write(ItemId item, JobId writer);

  /// Reinstates a previous value verbatim (abort undo). Does not consume a
  /// version number.
  void Restore(ItemId item, const Value& value);

  /// Number of writes ever applied.
  std::int64_t write_count() const { return next_version_ - 1; }

  std::string DebugString() const;

 private:
  std::vector<Value> items_;
  std::int64_t next_version_ = 1;
};

}  // namespace pcpda

#endif  // PCPDA_DB_DATABASE_H_
