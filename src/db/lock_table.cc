#include "db/lock_table.h"

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

const std::set<JobId> LockTable::kNoJobs;
const std::set<ItemId> LockTable::kNoItems;

LockTable::LockTable(ItemId item_count) {
  PCPDA_CHECK(item_count >= 0);
  entries_.resize(static_cast<std::size_t>(item_count));
}

const LockTable::ItemEntry& LockTable::entry(ItemId item) const {
  PCPDA_CHECK(item >= 0 && item < item_count());
  return entries_[static_cast<std::size_t>(item)];
}

void LockTable::AcquireRead(JobId job, ItemId item) {
  PCPDA_CHECK(item >= 0 && item < item_count());
  auto& e = entries_[static_cast<std::size_t>(item)];
  if (e.readers.insert(job).second) {
    by_job_[job].read_items.insert(item);
    ++lock_count_;
  }
}

void LockTable::AcquireWrite(JobId job, ItemId item) {
  PCPDA_CHECK(item >= 0 && item < item_count());
  auto& e = entries_[static_cast<std::size_t>(item)];
  if (e.writers.insert(job).second) {
    by_job_[job].write_items.insert(item);
    ++lock_count_;
  }
}

void LockTable::Release(JobId job, ItemId item, LockMode mode) {
  PCPDA_CHECK(item >= 0 && item < item_count());
  auto& e = entries_[static_cast<std::size_t>(item)];
  JobEntry* held = by_job_.find(job);
  PCPDA_CHECK_MSG(held != nullptr, "job holds no locks");
  if (mode == LockMode::kRead) {
    PCPDA_CHECK_MSG(e.readers.erase(job) == 1, "read lock not held");
    held->read_items.erase(item);
  } else {
    PCPDA_CHECK_MSG(e.writers.erase(job) == 1, "write lock not held");
    held->write_items.erase(item);
  }
  --lock_count_;
  if (held->empty()) by_job_.erase(job);
}

void LockTable::ReleaseAll(JobId job) {
  JobEntry* held = by_job_.find(job);
  if (held == nullptr) return;
  for (ItemId item : held->read_items) {
    entries_[static_cast<std::size_t>(item)].readers.erase(job);
    --lock_count_;
  }
  for (ItemId item : held->write_items) {
    entries_[static_cast<std::size_t>(item)].writers.erase(job);
    --lock_count_;
  }
  by_job_.erase(job);
}

bool LockTable::HoldsRead(JobId job, ItemId item) const {
  return entry(item).readers.contains(job);
}

bool LockTable::HoldsWrite(JobId job, ItemId item) const {
  return entry(item).writers.contains(job);
}

bool LockTable::HoldsAny(JobId job, ItemId item) const {
  return HoldsRead(job, item) || HoldsWrite(job, item);
}

const std::set<JobId>& LockTable::readers(ItemId item) const {
  return entry(item).readers;
}

const std::set<JobId>& LockTable::writers(ItemId item) const {
  return entry(item).writers;
}

bool LockTable::NoReaderOtherThan(JobId job, ItemId item) const {
  const auto& r = entry(item).readers;
  if (r.empty()) return true;
  return r.size() == 1 && r.contains(job);
}

bool LockTable::NoWriterOtherThan(JobId job, ItemId item) const {
  const auto& w = entry(item).writers;
  if (w.empty()) return true;
  return w.size() == 1 && w.contains(job);
}

const std::set<ItemId>& LockTable::read_items(JobId job) const {
  const JobEntry* held = by_job_.find(job);
  return held == nullptr ? kNoItems : held->read_items;
}

const std::set<ItemId>& LockTable::write_items(JobId job) const {
  const JobEntry* held = by_job_.find(job);
  return held == nullptr ? kNoItems : held->write_items;
}

std::vector<JobId> LockTable::holders() const { return by_job_.ids(); }

std::string LockTable::DebugString() const {
  std::vector<std::string> parts;
  for (ItemId i = 0; i < item_count(); ++i) {
    const auto& e = entries_[static_cast<std::size_t>(i)];
    if (e.readers.empty() && e.writers.empty()) continue;
    std::vector<std::string> holders;
    for (JobId j : e.readers) {
      holders.push_back(StrFormat("r:%lld", static_cast<long long>(j)));
    }
    for (JobId j : e.writers) {
      holders.push_back(StrFormat("w:%lld", static_cast<long long>(j)));
    }
    parts.push_back(
        StrFormat("d%d{%s}", i, Join(holders, ",").c_str()));
  }
  return parts.empty() ? "(no locks)" : Join(parts, " ");
}

}  // namespace pcpda
