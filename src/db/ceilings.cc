#include "db/ceilings.h"

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

StaticCeilings::StaticCeilings(const TransactionSet& set) {
  const std::size_t n = static_cast<std::size_t>(set.item_count());
  wceil_.assign(n, Priority::Dummy());
  aceil_.assign(n, Priority::Dummy());
  writers_.resize(n);
  readers_.resize(n);
  // Specs are iterated highest priority first, so the per-item lists come
  // out sorted and the first writer of x defines Wceil(x).
  for (SpecId i = 0; i < set.size(); ++i) {
    const Priority p = set.priority(i);
    for (ItemId x : set.spec(i).WriteSet()) {
      auto xi = static_cast<std::size_t>(x);
      wceil_[xi] = Max(wceil_[xi], p);
      aceil_[xi] = Max(aceil_[xi], p);
      writers_[xi].push_back(i);
    }
    for (ItemId x : set.spec(i).ReadSet()) {
      auto xi = static_cast<std::size_t>(x);
      aceil_[xi] = Max(aceil_[xi], p);
      readers_[xi].push_back(i);
    }
  }
}

Priority StaticCeilings::Wceil(ItemId item) const {
  PCPDA_CHECK(item >= 0 && item < item_count());
  return wceil_[static_cast<std::size_t>(item)];
}

Priority StaticCeilings::Aceil(ItemId item) const {
  PCPDA_CHECK(item >= 0 && item < item_count());
  return aceil_[static_cast<std::size_t>(item)];
}

const std::vector<SpecId>& StaticCeilings::WritersOf(ItemId item) const {
  PCPDA_CHECK(item >= 0 && item < item_count());
  return writers_[static_cast<std::size_t>(item)];
}

const std::vector<SpecId>& StaticCeilings::ReadersOf(ItemId item) const {
  PCPDA_CHECK(item >= 0 && item < item_count());
  return readers_[static_cast<std::size_t>(item)];
}

std::string StaticCeilings::DebugString(const TransactionSet& set) const {
  std::vector<std::string> lines;
  for (ItemId x = 0; x < item_count(); ++x) {
    auto name = [&](Priority p) -> std::string {
      if (p.is_dummy()) return "dummy";
      for (SpecId i = 0; i < set.size(); ++i) {
        if (set.priority(i) == p) {
          return StrFormat("P(%s)", set.spec(i).name.c_str());
        }
      }
      return p.DebugString();
    };
    lines.push_back(StrFormat("d%d: Wceil=%s Aceil=%s", x,
                              name(Wceil(x)).c_str(),
                              name(Aceil(x)).c_str()));
  }
  return Join(lines, "\n");
}

}  // namespace pcpda
