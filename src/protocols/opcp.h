#ifndef PCPDA_PROTOCOLS_OPCP_H_
#define PCPDA_PROTOCOLS_OPCP_H_

#include <vector>

#include "protocols/protocol.h"

namespace pcpda {

/// The original priority ceiling protocol of Sha, Rajkumar & Lehoczky,
/// applied to data items as exclusive resources: every lock is treated as
/// exclusive and every item carries the single ceiling Aceil(x) (the
/// priority of the highest-priority transaction that may access x). T_i
/// may lock x iff P_i exceeds the highest ceiling among items locked by
/// other transactions. Deadlock-free and single-blocking, but ignores
/// read/write semantics entirely — the most conservative baseline.
class Opcp : public Protocol {
 public:
  Opcp() = default;

  const char* name() const override { return "PCP"; }
  UpdateModel update_model() const override { return UpdateModel::kInPlace; }
  CeilingRule ceiling_rule() const override { return CeilingRule::kAbsolute; }

  LockDecision Decide(const LockRequest& request) const override;
  Priority CurrentCeiling() const override;
};

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_OPCP_H_
