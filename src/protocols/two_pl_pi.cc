#include "protocols/two_pl_pi.h"

#include "common/check.h"

namespace pcpda {

LockDecision TwoPlPi::Decide(const LockRequest& request) const {
  PCPDA_CHECK(request.job != nullptr);
  const JobId self = request.job->id();
  const ItemId x = request.item;
  const LockTable& locks = view().locks();

  std::vector<JobId> conflicting;
  for (JobId writer : locks.writers(x)) {
    if (writer != self) conflicting.push_back(writer);
  }
  if (request.mode == LockMode::kWrite) {
    for (JobId reader : locks.readers(x)) {
      if (reader != self) conflicting.push_back(reader);
    }
  }
  if (conflicting.empty()) return LockDecision::Grant();
  return LockDecision::Block(BlockReason::kConflict, std::move(conflicting));
}

}  // namespace pcpda
