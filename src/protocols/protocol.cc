#include "protocols/protocol.h"

#include "common/check.h"

namespace pcpda {

void Protocol::Attach(const SimView* view) {
  PCPDA_CHECK(view != nullptr);
  view_ = view;
}

const SimView& Protocol::view() const {
  PCPDA_CHECK_MSG(view_ != nullptr, "protocol not attached to a run");
  return *view_;
}

std::vector<std::pair<ItemId, LockMode>> Protocol::EarlyReleases(
    const Job& job) const {
  (void)job;
  return {};
}

std::vector<JobId> Protocol::CommitVictims(const Job& committing) const {
  (void)committing;
  return {};
}

}  // namespace pcpda
