#include "protocols/two_pl_hp.h"

#include "common/check.h"

namespace pcpda {

LockDecision TwoPlHp::Decide(const LockRequest& request) const {
  PCPDA_CHECK(request.job != nullptr);
  const Job& job = *request.job;
  const JobId self = job.id();
  const ItemId x = request.item;
  const LockTable& locks = view().locks();

  std::vector<JobId> conflicting;
  for (JobId writer : locks.writers(x)) {
    if (writer != self) conflicting.push_back(writer);
  }
  if (request.mode == LockMode::kWrite) {
    for (JobId reader : locks.readers(x)) {
      if (reader != self) conflicting.push_back(reader);
    }
  }
  if (conflicting.empty()) return LockDecision::Grant();

  bool requester_wins = true;
  for (JobId holder_id : conflicting) {
    const Job* holder = view().job(holder_id);
    PCPDA_CHECK(holder != nullptr);
    if (holder->base_priority() >= job.base_priority()) {
      requester_wins = false;
      break;
    }
  }
  if (requester_wins) {
    return LockDecision::AbortAndGrant(std::move(conflicting), "2PL-HP");
  }
  return LockDecision::Block(BlockReason::kConflict, std::move(conflicting));
}

}  // namespace pcpda
