#ifndef PCPDA_PROTOCOLS_OCC_H_
#define PCPDA_PROTOCOLS_OCC_H_

#include <map>
#include <set>

#include "protocols/protocol.h"

namespace pcpda {

/// Optimistic concurrency control with broadcast commit (OCC-BC), the
/// classic forward-validation scheme the paper's Section 2 groups with the
/// abortion-strategy protocols [18,19,21]: transactions run without
/// blocking (all data access granted immediately; updates deferred to a
/// private workspace) and a committing transaction aborts every active
/// transaction that has read an item it is about to overwrite. No
/// blocking, no deadlock — but lower-priority (and even higher-priority)
/// transactions pay unbounded restart overhead, which is exactly why the
/// paper's schedulability analysis prefers blocking-based ceilings.
class OccBc : public Protocol {
 public:
  OccBc() = default;

  const char* name() const override { return "OCC-BC"; }
  UpdateModel update_model() const override {
    return UpdateModel::kWorkspace;
  }
  bool uses_priority_inheritance() const override { return false; }

  LockDecision Decide(const LockRequest& request) const override;
  std::vector<JobId> CommitVictims(const Job& committing) const override;
};

/// OCC with dynamic adjustment of serialization order (OCC-DA), after Lin
/// & Son [11,20] — the direct ancestor of this paper's idea: instead of
/// aborting every reader it overwrites, a committing transaction T_c can
/// record the constraint "reader serializes BEFORE T_c" and let it run.
/// This implementation tolerates READ-ONLY readers (their serialization
/// slot is the snapshot version recorded with the constraint; reads past
/// that snapshot self-abort at access time), which is provably
/// conflict-serializable without full timestamp-interval machinery;
/// writing readers restart as under broadcast commit, because their
/// outgoing write edges can contradict the constraint transitively.
/// Same non-blocking execution as OCC-BC with strictly fewer restarts.
class OccDa : public OccBc {
 public:
  OccDa() = default;

  const char* name() const override { return "OCC-DA"; }

  LockDecision Decide(const LockRequest& request) const override;
  std::vector<JobId> CommitVictims(const Job& committing) const override;
  void OnCommitApplied(const Job& committed) override;
  void OnAbortApplied(const Job& aborted) override;

  /// Committed jobs the given active job must precede in the
  /// serialization order (exposed for tests).
  std::set<JobId> MustPrecede(JobId job) const;

 private:
  /// before_[j] = committed jobs j must serialize before. Bookkeeping
  /// only; decisions stay deterministic functions of (view, this state).
  std::map<JobId, std::set<JobId>> before_;
  /// snapshot_[j] = newest database version j may still observe (set when
  /// the first before-constraint lands, tightened by later ones).
  std::map<JobId, std::int64_t> snapshot_;
};

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_OCC_H_
