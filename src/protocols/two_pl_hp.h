#ifndef PCPDA_PROTOCOLS_TWO_PL_HP_H_
#define PCPDA_PROTOCOLS_TWO_PL_HP_H_

#include "protocols/protocol.h"

namespace pcpda {

/// Two-phase locking with the High Priority conflict resolution of Abbott
/// & Garcia-Molina (the abortion strategy the paper's Section 2 contrasts
/// with, refs [18,19,21]): on a conflict, if the requester's priority
/// exceeds every conflicting holder's, the holders are aborted and
/// restarted; otherwise the requester waits. Deadlock-free (the wait-for
/// graph only points towards higher priorities) but pays abort/re-execute
/// overhead, and the number of restarts a low-priority transaction suffers
/// is unbounded — which is why its schedulability analysis is problematic.
class TwoPlHp : public Protocol {
 public:
  TwoPlHp() = default;

  const char* name() const override { return "2PL-HP"; }
  UpdateModel update_model() const override { return UpdateModel::kInPlace; }
  bool uses_priority_inheritance() const override { return false; }

  LockDecision Decide(const LockRequest& request) const override;
};

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_TWO_PL_HP_H_
