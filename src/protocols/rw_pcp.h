#ifndef PCPDA_PROTOCOLS_RW_PCP_H_
#define PCPDA_PROTOCOLS_RW_PCP_H_

#include <vector>

#include "protocols/protocol.h"

namespace pcpda {

/// The read/write priority ceiling protocol of Sha, Rajkumar & Lehoczky
/// (the paper's main baseline, Section 2): two-phase locking under the
/// update-in-place model, with a runtime r/w ceiling per item:
///
///   rwceil(x) = Aceil(x) while x is write-locked,
///               Wceil(x) while x is read-locked.
///
/// T_i may lock x (either mode) iff P_i exceeds Sysceil_i, the highest
/// rwceil among items locked by transactions OTHER than T_i; the ceiling
/// comparison subsumes the read/write conflict test. On denial T_i blocks
/// on the holder(s) of the ceiling item(s), which inherit P_i.
///
/// Deadlock-free and single-blocking, but prone to the unnecessary ceiling
/// and conflict blockings PCP-DA removes (Section 3).
class RwPcp : public Protocol {
 public:
  RwPcp() = default;

  const char* name() const override { return "RW-PCP"; }
  UpdateModel update_model() const override { return UpdateModel::kInPlace; }
  CeilingRule ceiling_rule() const override {
    return CeilingRule::kReadWrite;
  }

  LockDecision Decide(const LockRequest& request) const override;

  /// Max rwceil over all currently locked items.
  Priority CurrentCeiling() const override;

 protected:
  struct SysceilInfo {
    Priority sysceil;
    std::vector<JobId> holders;  // holders of the ceiling item(s)
  };

  /// Sysceil_i with respect to `self`.
  SysceilInfo ComputeSysceil(JobId self) const;

  /// The runtime rwceil contribution of `item` as locked by `holder`.
  Priority RuntimeCeiling(JobId holder, ItemId item) const;
};

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_RW_PCP_H_
