#ifndef PCPDA_PROTOCOLS_TWO_PL_PI_H_
#define PCPDA_PROTOCOLS_TWO_PL_PI_H_

#include "protocols/protocol.h"

namespace pcpda {

/// Two-phase locking with the basic priority inheritance protocol (Sha et
/// al.'s PIP, Section 1 of the paper): plain shared/exclusive locks, the
/// blocker inherits the waiter's priority. Bounds neither chained blocking
/// nor deadlock — the paper's motivation for ceiling protocols. The
/// simulator's wait-for-graph detector catches the deadlocks this protocol
/// can produce.
class TwoPlPi : public Protocol {
 public:
  TwoPlPi() = default;

  const char* name() const override { return "2PL-PI"; }
  UpdateModel update_model() const override { return UpdateModel::kInPlace; }

  LockDecision Decide(const LockRequest& request) const override;
};

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_TWO_PL_PI_H_
