#include "protocols/opcp.h"

#include <algorithm>

#include "common/check.h"

namespace pcpda {

LockDecision Opcp::Decide(const LockRequest& request) const {
  PCPDA_CHECK(request.job != nullptr);
  const Job& job = *request.job;
  const JobId self = job.id();
  const ItemId x = request.item;
  const LockTable& locks = view().locks();

  Priority sysceil = Priority::Dummy();
  std::vector<JobId> holders;
  auto consider = [&](JobId holder, ItemId item) {
    const Priority ceiling = view().ceilings().Aceil(item);
    if (ceiling.is_dummy()) return;
    if (ceiling > sysceil) {
      sysceil = ceiling;
      holders.assign(1, holder);
    } else if (ceiling == sysceil &&
               std::find(holders.begin(), holders.end(), holder) ==
                   holders.end()) {
      holders.push_back(holder);
    }
  };
  for (JobId holder : locks.holders()) {
    if (holder == self) continue;
    for (ItemId item : locks.read_items(holder)) consider(holder, item);
    for (ItemId item : locks.write_items(holder)) consider(holder, item);
  }

  if (job.running_priority() > sysceil) return LockDecision::Grant();
  const bool direct_conflict = !locks.NoWriterOtherThan(self, x) ||
                               !locks.NoReaderOtherThan(self, x);
  return LockDecision::Block(direct_conflict ? BlockReason::kConflict
                                             : BlockReason::kCeiling,
                             std::move(holders));
}

Priority Opcp::CurrentCeiling() const {
  Priority ceiling = Priority::Dummy();
  const LockTable& locks = view().locks();
  for (JobId holder : locks.holders()) {
    for (ItemId item : locks.read_items(holder)) {
      ceiling = Max(ceiling, view().ceilings().Aceil(item));
    }
    for (ItemId item : locks.write_items(holder)) {
      ceiling = Max(ceiling, view().ceilings().Aceil(item));
    }
  }
  return ceiling;
}

}  // namespace pcpda
