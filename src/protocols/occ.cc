#include "protocols/occ.h"

#include "common/check.h"
#include "core/lock_compat.h"

namespace pcpda {

namespace {

/// Items the job will still read in its remaining steps.
std::set<ItemId> FutureReads(const Job& job) {
  std::set<ItemId> items;
  const auto& body = job.spec().body;
  for (std::size_t i = job.step_index(); i < body.size(); ++i) {
    if (body[i].kind == StepKind::kRead) items.insert(body[i].item);
  }
  return items;
}

/// Items the committing job is about to install.
std::set<ItemId> CommitWrites(const Job& committing) {
  std::set<ItemId> items;
  for (const auto& [item, value] : committing.workspace().writes()) {
    items.insert(item);
  }
  return items;
}

}  // namespace

// --- OCC-BC -----------------------------------------------------------------

LockDecision OccBc::Decide(const LockRequest& request) const {
  PCPDA_CHECK(request.job != nullptr);
  // Optimistic execution: data access never blocks.
  return LockDecision::Grant("occ");
}

std::vector<JobId> OccBc::CommitVictims(const Job& committing) const {
  // Broadcast commit: every active transaction that has read an item the
  // committing transaction overwrites is restarted.
  const std::set<ItemId> writes = CommitWrites(committing);
  std::vector<JobId> victims;
  if (writes.empty()) return victims;
  for (const Job* other : view().LiveJobs(committing.id())) {
    if (SetsIntersect(other->data_read(), writes)) {
      victims.push_back(other->id());
    }
  }
  return victims;
}

// --- OCC-DA -----------------------------------------------------------------

LockDecision OccDa::Decide(const LockRequest& request) const {
  PCPDA_CHECK(request.job != nullptr);
  if (request.mode == LockMode::kRead) {
    // A transaction constrained to serialize before some committed T_c
    // must not observe state from T_c's commit or anything later; the
    // snapshot version records the newest state it may still read.
    auto it = snapshot_.find(request.job->id());
    if (it != snapshot_.end() &&
        view().database().Read(request.item).version > it->second) {
      return LockDecision::AbortRequester("occ-da-constraint");
    }
  }
  return LockDecision::Grant("occ");
}

std::vector<JobId> OccDa::CommitVictims(const Job& committing) const {
  const std::set<ItemId> writes = CommitWrites(committing);
  std::vector<JobId> victims;
  if (writes.empty()) return victims;
  for (const Job* other : view().LiveJobs(committing.id())) {
    if (!SetsIntersect(other->data_read(), writes)) continue;
    // `other` must serialize before the committing transaction. Only a
    // READ-ONLY transaction can be tolerated with a snapshot constraint:
    // its slot is its snapshot version, its reads-from writers sit at or
    // below that slot, and every overwriter of its reads commits above
    // it — provably acyclic. A transaction that writes anything can pick
    // up outgoing write edges that contradict the constraint
    // transitively (we hit exactly that on random workloads), so it
    // restarts like under broadcast commit. Re-reads of an overwritten
    // item also restart: the single-version store cannot serve the old
    // value.
    const bool read_only = other->write_set().empty();
    bool rereads_overwritten = false;
    for (ItemId item : FutureReads(*other)) {
      if (writes.contains(item) && other->data_read().contains(item)) {
        rereads_overwritten = true;
        break;
      }
    }
    if (!read_only || rereads_overwritten) {
      victims.push_back(other->id());
    }
    // Otherwise: tolerated — OnCommitApplied records the constraint.
  }
  return victims;
}

void OccDa::OnCommitApplied(const Job& committed) {
  before_.erase(committed.id());
  snapshot_.erase(committed.id());
  const std::set<ItemId> writes = CommitWrites(committed);
  if (writes.empty()) return;
  // The snapshot below excludes the committed writes: versions after the
  // pre-commit counter belong to T_c (or later) and are off-limits for
  // transactions serialized before it.
  const std::int64_t pre_commit_version =
      view().database().write_count() -
      static_cast<std::int64_t>(writes.size());
  for (const Job* other : view().LiveJobs(committed.id())) {
    if (!SetsIntersect(other->data_read(), writes)) continue;
    before_[other->id()].insert(committed.id());
    auto [it, inserted] =
        snapshot_.try_emplace(other->id(), pre_commit_version);
    if (!inserted && it->second > pre_commit_version) {
      it->second = pre_commit_version;
    }
  }
}

void OccDa::OnAbortApplied(const Job& aborted) {
  before_.erase(aborted.id());
  snapshot_.erase(aborted.id());
}

std::set<JobId> OccDa::MustPrecede(JobId job) const {
  auto it = before_.find(job);
  return it == before_.end() ? std::set<JobId>{} : it->second;
}

}  // namespace pcpda
