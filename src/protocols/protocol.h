#ifndef PCPDA_PROTOCOLS_PROTOCOL_H_
#define PCPDA_PROTOCOLS_PROTOCOL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "db/ceilings.h"
#include "db/database.h"
#include "db/lock_table.h"
#include "txn/job.h"
#include "txn/spec.h"

namespace pcpda {

/// A pending lock request.
struct LockRequest {
  const Job* job = nullptr;
  ItemId item = kInvalidItem;
  LockMode mode = LockMode::kRead;
};

/// A protocol's verdict on a lock request. Decisions are pure — the
/// simulator applies all side effects (lock table updates, aborts,
/// priority inheritance, tracing).
struct LockDecision {
  enum class Kind : std::uint8_t {
    kGrant,
    kBlock,
    /// Abort `victims` (restart them), then grant (2PL-HP).
    kAbortAndGrant,
    /// Abort the REQUESTER itself (optimistic protocols detecting a
    /// serialization-order violation at access time).
    kAbortRequester,
  };

  Kind kind = Kind::kGrant;
  BlockReason reason = BlockReason::kNone;
  /// kBlock: the jobs blocking the requester (priority-inheritance
  /// targets). kAbortAndGrant: the victims to restart.
  std::vector<JobId> jobs;
  /// Annotation, e.g. the locking condition that granted ("LC2").
  std::string note;

  static LockDecision Grant(std::string note = "") {
    LockDecision d;
    d.note = std::move(note);
    return d;
  }
  static LockDecision Block(BlockReason reason, std::vector<JobId> blockers,
                            std::string note = "") {
    LockDecision d;
    d.kind = Kind::kBlock;
    d.reason = reason;
    d.jobs = std::move(blockers);
    d.note = std::move(note);
    return d;
  }
  static LockDecision AbortAndGrant(std::vector<JobId> victims,
                                    std::string note = "") {
    LockDecision d;
    d.kind = Kind::kAbortAndGrant;
    d.jobs = std::move(victims);
    d.note = std::move(note);
    return d;
  }
  static LockDecision AbortRequester(std::string note = "") {
    LockDecision d;
    d.kind = Kind::kAbortRequester;
    d.note = std::move(note);
    return d;
  }

  bool granted() const { return kind == Kind::kGrant; }
};

/// Which runtime priority-ceiling rule a protocol implements. The
/// invariant auditor uses this to recompute the expected system ceiling
/// from the lock table, independently of the protocol's own accounting.
enum class CeilingRule : std::uint8_t {
  /// No ceilings (2PL-PI, 2PL-HP, OCC-*).
  kNone,
  /// OPCP: Aceil(x) for any held lock on x.
  kAbsolute,
  /// RW-PCP/CCP: Aceil(x) while write-locked, Wceil(x) while read-locked.
  kReadWrite,
  /// PCP-DA: Wceil(x) while read-locked; write locks raise nothing.
  kWriteOnRead,
};

/// When transaction updates reach the database (Section 4 of the paper).
enum class UpdateModel : std::uint8_t {
  /// Writes apply immediately when the write step completes (RW-PCP, CCP,
  /// OPCP, 2PL). Aborts undo through the job's undo log.
  kInPlace,
  /// Writes are buffered in the job's private workspace and apply at
  /// commit (PCP-DA).
  kWorkspace,
};

/// Read-only view of the simulation the protocols decide against.
class SimView {
 public:
  virtual ~SimView() = default;

  virtual const TransactionSet& set() const = 0;
  virtual const StaticCeilings& ceilings() const = 0;
  virtual const LockTable& locks() const = 0;
  /// The committed database state (optimistic protocols validate reads
  /// against it).
  virtual const Database& database() const = 0;
  /// The job with `id`, or nullptr if it no longer exists.
  virtual const Job* job(JobId id) const = 0;
  virtual Tick now() const = 0;
  /// Live (active) jobs other than `except`.
  virtual std::vector<const Job*> LiveJobs(JobId except) const = 0;
};

/// A concurrency-control protocol. Implementations are stateless with
/// respect to the run: everything they need is derived from the SimView
/// (lock table + static ceilings), which makes decisions trivially
/// re-evaluable every tick.
class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual const char* name() const = 0;
  virtual UpdateModel update_model() const = 0;
  /// Whether blocked requesters donate their priority to the blockers.
  virtual bool uses_priority_inheritance() const { return true; }
  /// The ceiling rule the protocol follows; kNone for non-ceiling
  /// protocols. Gates the auditor's Theorem 1/2 and Sysceil checks.
  virtual CeilingRule ceiling_rule() const { return CeilingRule::kNone; }
  /// Whether the protocol may release locks before commit (CCP). Such
  /// protocols assume jobs never abort; the fault injector skips abort
  /// faults for them and the auditor waives the strictness check.
  virtual bool releases_early() const { return false; }

  /// Binds the protocol to a run. Must be called before Decide.
  void Attach(const SimView* view);

  /// Decides a lock request. Pure: must not mutate protocol state.
  virtual LockDecision Decide(const LockRequest& request) const = 0;

  /// Locks (item, mode) the job may release before commit, evaluated after
  /// the job completes a step (CCP's convex early release). Default: none.
  virtual std::vector<std::pair<ItemId, LockMode>> EarlyReleases(
      const Job& job) const;

  /// The highest priority ceiling currently raised by any held lock (the
  /// paper's Max_Sysceil sample); dummy for protocols without ceilings.
  virtual Priority CurrentCeiling() const { return Priority::Dummy(); }

  // --- Commit-time validation (optimistic protocols) ----------------------

  /// Active jobs the protocol requires aborted for `committing` to commit
  /// (OCC broadcast-commit style forward validation). Applied by the
  /// simulator immediately before the commit. Default: none.
  virtual std::vector<JobId> CommitVictims(const Job& committing) const;

  /// Notification hooks for protocols that keep per-job bookkeeping
  /// (e.g. OCC-DA's serialization-order constraints). Called after the
  /// simulator applies the corresponding transition.
  virtual void OnCommitApplied(const Job& committed) { (void)committed; }
  virtual void OnAbortApplied(const Job& aborted) { (void)aborted; }

 protected:
  Protocol() = default;

  const SimView& view() const;

  /// True when `other` is a different job than `self`.
  static bool IsOther(JobId self, JobId other) { return self != other; }

 private:
  const SimView* view_ = nullptr;
};

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_PROTOCOL_H_
