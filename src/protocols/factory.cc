#include "protocols/factory.h"

#include "common/check.h"
#include "core/pcp_da.h"
#include "protocols/ccp.h"
#include "protocols/occ.h"
#include "protocols/opcp.h"
#include "protocols/rw_pcp.h"
#include "protocols/two_pl_hp.h"
#include "protocols/two_pl_pi.h"

namespace pcpda {

const char* ToString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPcpDa:
      return "PCP-DA";
    case ProtocolKind::kRwPcp:
      return "RW-PCP";
    case ProtocolKind::kCcp:
      return "CCP";
    case ProtocolKind::kOpcp:
      return "PCP";
    case ProtocolKind::kTwoPlPi:
      return "2PL-PI";
    case ProtocolKind::kTwoPlHp:
      return "2PL-HP";
    case ProtocolKind::kOccBc:
      return "OCC-BC";
    case ProtocolKind::kOccDa:
      return "OCC-DA";
  }
  return "unknown";
}

std::vector<ProtocolKind> AllProtocolKinds() {
  return {ProtocolKind::kPcpDa,   ProtocolKind::kRwPcp,
          ProtocolKind::kCcp,     ProtocolKind::kOpcp,
          ProtocolKind::kTwoPlPi, ProtocolKind::kTwoPlHp,
          ProtocolKind::kOccBc,   ProtocolKind::kOccDa};
}

std::vector<ProtocolKind> AnalyzableProtocolKinds() {
  return {ProtocolKind::kPcpDa, ProtocolKind::kRwPcp, ProtocolKind::kCcp,
          ProtocolKind::kOpcp};
}

std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPcpDa:
      return std::make_unique<PcpDa>();
    case ProtocolKind::kRwPcp:
      return std::make_unique<RwPcp>();
    case ProtocolKind::kCcp:
      return std::make_unique<Ccp>();
    case ProtocolKind::kOpcp:
      return std::make_unique<Opcp>();
    case ProtocolKind::kTwoPlPi:
      return std::make_unique<TwoPlPi>();
    case ProtocolKind::kTwoPlHp:
      return std::make_unique<TwoPlHp>();
    case ProtocolKind::kOccBc:
      return std::make_unique<OccBc>();
    case ProtocolKind::kOccDa:
      return std::make_unique<OccDa>();
  }
  PCPDA_UNREACHABLE("bad ProtocolKind");
}

}  // namespace pcpda
