#include "protocols/factory.h"

#include "common/check.h"
#include "core/pcp_da.h"
#include "protocols/ccp.h"
#include "protocols/occ.h"
#include "protocols/opcp.h"
#include "protocols/rw_pcp.h"
#include "protocols/two_pl_hp.h"
#include "protocols/two_pl_pi.h"

namespace pcpda {

const char* ToString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPcpDa:
      return "PCP-DA";
    case ProtocolKind::kRwPcp:
      return "RW-PCP";
    case ProtocolKind::kCcp:
      return "CCP";
    case ProtocolKind::kOpcp:
      return "PCP";
    case ProtocolKind::kTwoPlPi:
      return "2PL-PI";
    case ProtocolKind::kTwoPlHp:
      return "2PL-HP";
    case ProtocolKind::kOccBc:
      return "OCC-BC";
    case ProtocolKind::kOccDa:
      return "OCC-DA";
  }
  return "unknown";
}

std::optional<ProtocolKind> ProtocolKindByName(const std::string& name) {
  for (ProtocolKind kind : AllProtocolKinds()) {
    if (name == ToString(kind)) return kind;
  }
  return std::nullopt;
}

std::vector<ProtocolKind> AllProtocolKinds() {
  return {ProtocolKind::kPcpDa,   ProtocolKind::kRwPcp,
          ProtocolKind::kCcp,     ProtocolKind::kOpcp,
          ProtocolKind::kTwoPlPi, ProtocolKind::kTwoPlHp,
          ProtocolKind::kOccBc,   ProtocolKind::kOccDa};
}

std::vector<ProtocolKind> AnalyzableProtocolKinds() {
  std::vector<ProtocolKind> kinds;
  for (ProtocolKind kind : AllProtocolKinds()) {
    if (TraitsOf(kind).analyzable()) kinds.push_back(kind);
  }
  return kinds;
}

ProtocolTraits TraitsOf(ProtocolKind kind) {
  ProtocolTraits traits;
  switch (kind) {
    case ProtocolKind::kPcpDa:
      traits.update_model = UpdateModel::kWorkspace;
      traits.ceiling_rule = CeilingRule::kWriteOnRead;
      traits.priority_inheritance = true;
      traits.deadlock_free = true;
      traits.blocking_bound = BlockingBoundKind::kCeiling;
      return traits;
    case ProtocolKind::kRwPcp:
      traits.ceiling_rule = CeilingRule::kReadWrite;
      traits.priority_inheritance = true;
      traits.deadlock_free = true;
      traits.blocking_bound = BlockingBoundKind::kCeiling;
      return traits;
    case ProtocolKind::kCcp:
      traits.ceiling_rule = CeilingRule::kReadWrite;
      traits.priority_inheritance = true;
      traits.releases_early = true;
      traits.deadlock_free = true;
      traits.blocking_bound = BlockingBoundKind::kCeiling;
      return traits;
    case ProtocolKind::kOpcp:
      traits.ceiling_rule = CeilingRule::kAbsolute;
      traits.priority_inheritance = true;
      traits.deadlock_free = true;
      traits.blocking_bound = BlockingBoundKind::kCeiling;
      return traits;
    case ProtocolKind::kTwoPlPi:
      traits.priority_inheritance = true;
      traits.blocking_bound = BlockingBoundKind::kUnbounded;
      return traits;
    case ProtocolKind::kTwoPlHp:
      traits.resolves_by_restart = true;
      traits.deadlock_free = true;
      traits.blocking_bound = BlockingBoundKind::kPushThrough;
      return traits;
    case ProtocolKind::kOccBc:
    case ProtocolKind::kOccDa:
      traits.update_model = UpdateModel::kWorkspace;
      traits.resolves_by_restart = true;
      traits.deadlock_free = true;
      traits.blocking_bound = BlockingBoundKind::kNone;
      return traits;
  }
  PCPDA_UNREACHABLE("bad ProtocolKind");
}

std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPcpDa:
      return std::make_unique<PcpDa>();
    case ProtocolKind::kRwPcp:
      return std::make_unique<RwPcp>();
    case ProtocolKind::kCcp:
      return std::make_unique<Ccp>();
    case ProtocolKind::kOpcp:
      return std::make_unique<Opcp>();
    case ProtocolKind::kTwoPlPi:
      return std::make_unique<TwoPlPi>();
    case ProtocolKind::kTwoPlHp:
      return std::make_unique<TwoPlHp>();
    case ProtocolKind::kOccBc:
      return std::make_unique<OccBc>();
    case ProtocolKind::kOccDa:
      return std::make_unique<OccDa>();
  }
  PCPDA_UNREACHABLE("bad ProtocolKind");
}

}  // namespace pcpda
