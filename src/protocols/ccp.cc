#include "protocols/ccp.h"

#include <set>

namespace pcpda {

std::vector<std::pair<ItemId, LockMode>> Ccp::EarlyReleases(
    const Job& job) const {
  const auto& body = job.spec().body;
  const LockTable& locks = view().locks();

  // Growing phase check: if any remaining step needs a lock the job does
  // not already hold (including read->write upgrades), nothing may be
  // released yet — releasing before the last acquisition would leave the
  // two-phase discipline and, with in-place updates, break
  // serializability (see DESIGN.md §5 on the CCP approximation).
  std::set<ItemId> future_items;
  for (std::size_t i = job.step_index(); i < body.size(); ++i) {
    const Step& step = body[i];
    if (step.kind == StepKind::kCompute) continue;
    future_items.insert(step.item);
    const bool held =
        step.kind == StepKind::kRead
            ? (locks.HoldsRead(job.id(), step.item) ||
               locks.HoldsWrite(job.id(), step.item))
            : locks.HoldsWrite(job.id(), step.item);
    if (!held) return {};
  }

  // Shrinking phase: unlock everything no remaining step touches. This is
  // where CCP beats RW-PCP — high-ceiling items stop blocking others
  // before the transaction ends.
  std::vector<std::pair<ItemId, LockMode>> releases;
  for (ItemId item : locks.write_items(job.id())) {
    if (!future_items.contains(item)) {
      releases.emplace_back(item, LockMode::kWrite);
    }
  }
  for (ItemId item : locks.read_items(job.id())) {
    if (!future_items.contains(item)) {
      releases.emplace_back(item, LockMode::kRead);
    }
  }
  return releases;
}

}  // namespace pcpda
