#ifndef PCPDA_PROTOCOLS_FACTORY_H_
#define PCPDA_PROTOCOLS_FACTORY_H_

#include <memory>
#include <vector>

#include "protocols/protocol.h"

namespace pcpda {

/// The protocols this library implements. kPcpDa is the paper's
/// contribution; the rest are baselines (Section 2).
enum class ProtocolKind : std::uint8_t {
  kPcpDa,
  kRwPcp,
  kCcp,
  kOpcp,
  kTwoPlPi,
  kTwoPlHp,
  kOccBc,
  kOccDa,
};

const char* ToString(ProtocolKind kind);

/// All protocol kinds, PCP-DA first.
std::vector<ProtocolKind> AllProtocolKinds();

/// The ceiling-based kinds with a Section-9 style worst-case blocking
/// analysis (PCP-DA, RW-PCP, CCP, OPCP).
std::vector<ProtocolKind> AnalyzableProtocolKinds();

/// Creates a fresh protocol instance.
std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind);

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_FACTORY_H_
