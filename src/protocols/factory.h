#ifndef PCPDA_PROTOCOLS_FACTORY_H_
#define PCPDA_PROTOCOLS_FACTORY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "protocols/protocol.h"

namespace pcpda {

/// The protocols this library implements. kPcpDa is the paper's
/// contribution; the rest are baselines (Section 2).
enum class ProtocolKind : std::uint8_t {
  kPcpDa,
  kRwPcp,
  kCcp,
  kOpcp,
  kTwoPlPi,
  kTwoPlHp,
  kOccBc,
  kOccDa,
};

const char* ToString(ProtocolKind kind);

/// Inverse of ToString (exact match, e.g. "PCP-DA", "2PL-HP");
/// nullopt for unknown names.
std::optional<ProtocolKind> ProtocolKindByName(const std::string& name);

/// All protocol kinds, PCP-DA first.
std::vector<ProtocolKind> AllProtocolKinds();

/// The kinds whose ProtocolTraits report a finite worst-case blocking
/// bound (everything but 2PL-PI). Derived from TraitsOf, so lint, the
/// blocking analysis and the fuzzer's soundness oracles agree on
/// analyzability by construction.
std::vector<ProtocolKind> AnalyzableProtocolKinds();

/// What kind of worst-case *effective-blocking* bound the analysis
/// (src/analysis/blocking.cc) can compute for a protocol. Effective
/// blocking is the paper's metric: ticks a job spends with a denied lock
/// request while a lower-base-priority job occupies the CPU.
enum class BlockingBoundKind : std::uint8_t {
  /// Section-9 ceiling analysis: B_i = max over BTS_i (PCP-DA, RW-PCP,
  /// CCP, OPCP).
  kCeiling,
  /// Push-through bound: a requester can wait behind a mixed holder set
  /// that includes lower-priority riders; B_i sums the conflicting
  /// lower-priority execution times (2PL-HP). Restart costs are modeled
  /// separately in the response-time analysis.
  kPushThrough,
  /// The protocol never blocks a request, so B_i = 0; all contention
  /// cost is restart cost (OCC-BC, OCC-DA).
  kNone,
  /// No finite bound exists: transitively chained blocking can stack an
  /// unbounded number of lower-priority critical sections (2PL-PI).
  kUnbounded,
};

/// Static facts about a protocol, available without instantiating it.
/// The static analyzer (src/lint/) gates its rules on these; they mirror
/// the virtual Protocol accessors, and lint_test pins the two in sync.
struct ProtocolTraits {
  UpdateModel update_model = UpdateModel::kInPlace;
  CeilingRule ceiling_rule = CeilingRule::kNone;
  /// Blocked requesters donate their priority to the blockers.
  bool priority_inheritance = false;
  /// Locks may be released before commit (CCP's convex early release).
  bool releases_early = false;
  /// Lock or validation conflicts are resolved by restarting jobs
  /// (2PL-HP victims, OCC validation aborts) rather than by waiting.
  bool resolves_by_restart = false;
  /// Statically immune to deadlock: ceiling protocols by the paper's
  /// Theorem 2; 2PL-HP because a job only ever waits for a higher
  /// priority holder (wait edges cannot cycle); OCC because it never
  /// blocks. Only 2PL-PI can reach a genuine wait-for cycle.
  bool deadlock_free = false;
  /// Which worst-case blocking analysis applies (see BlockingBoundKind).
  /// kUnbounded kinds are excluded from AnalyzableProtocolKinds().
  BlockingBoundKind blocking_bound = BlockingBoundKind::kUnbounded;

  /// True when ComputeBlocking can produce a finite B_i for every spec.
  bool analyzable() const {
    return blocking_bound != BlockingBoundKind::kUnbounded;
  }
};

/// The static trait table for `kind`.
ProtocolTraits TraitsOf(ProtocolKind kind);

/// Creates a fresh protocol instance.
std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind);

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_FACTORY_H_
