#ifndef PCPDA_PROTOCOLS_CCP_H_
#define PCPDA_PROTOCOLS_CCP_H_

#include <utility>
#include <vector>

#include "protocols/rw_pcp.h"

namespace pcpda {

/// The convex ceiling protocol of Nakazato & Lin (the paper's second
/// baseline). DOCUMENTED APPROXIMATION (see DESIGN.md §5): the original
/// publication was unavailable, so CCP is implemented from this paper's
/// description in Sections 2-3 — RW-PCP's locking rule plus early
/// unlocking of items the transaction no longer needs, so the held-ceiling
/// profile is convex (rises, then falls) and high-ceiling items stop
/// blocking others before the transaction ends. Our release condition is
/// slightly stronger than the cited sentence: an item is unlocked only
/// once every remaining step's lock is already held (the transaction is in
/// its shrinking phase). The weaker "no higher ceiling ahead" condition,
/// taken literally, produces non-serializable histories under in-place
/// updates when an equal-ceiling lock is still to come; the shrinking-
/// phase rule keeps the two-phase argument intact while preserving the
/// property the Section-9 comparison needs (shorter worst-case blocking
/// than RW-PCP). CCP assumes transactions never abort; do not combine it
/// with DeadlineMissPolicy::kDrop.
class Ccp : public RwPcp {
 public:
  Ccp() = default;

  const char* name() const override { return "CCP"; }
  bool releases_early() const override { return true; }

  /// Early unlocking after each completed step: once no remaining step
  /// acquires a new lock, release every held item no remaining step uses.
  std::vector<std::pair<ItemId, LockMode>> EarlyReleases(
      const Job& job) const override;
};

}  // namespace pcpda

#endif  // PCPDA_PROTOCOLS_CCP_H_
