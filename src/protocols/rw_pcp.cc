#include "protocols/rw_pcp.h"

#include <algorithm>

#include "common/check.h"

namespace pcpda {

Priority RwPcp::RuntimeCeiling(JobId holder, ItemId item) const {
  const LockTable& locks = view().locks();
  if (locks.HoldsWrite(holder, item)) return view().ceilings().Aceil(item);
  return view().ceilings().Wceil(item);
}

RwPcp::SysceilInfo RwPcp::ComputeSysceil(JobId self) const {
  SysceilInfo info;
  info.sysceil = Priority::Dummy();
  const LockTable& locks = view().locks();
  auto consider = [&](JobId holder, Priority ceiling) {
    if (ceiling.is_dummy()) return;
    if (ceiling > info.sysceil) {
      info.sysceil = ceiling;
      info.holders.assign(1, holder);
    } else if (ceiling == info.sysceil &&
               std::find(info.holders.begin(), info.holders.end(),
                         holder) == info.holders.end()) {
      info.holders.push_back(holder);
    }
  };
  for (JobId holder : locks.holders()) {
    if (holder == self) continue;
    for (ItemId item : locks.write_items(holder)) {
      consider(holder, view().ceilings().Aceil(item));
    }
    for (ItemId item : locks.read_items(holder)) {
      consider(holder, view().ceilings().Wceil(item));
    }
  }
  return info;
}

LockDecision RwPcp::Decide(const LockRequest& request) const {
  PCPDA_CHECK(request.job != nullptr);
  const Job& job = *request.job;
  const JobId self = job.id();
  const ItemId x = request.item;
  const LockTable& locks = view().locks();

  const SysceilInfo info = ComputeSysceil(self);
  if (job.running_priority() > info.sysceil) {
    // The ceiling test subsumes conflict checking: a conflicting holder of
    // x would have raised rwceil(x) to at least P_i.
    return LockDecision::Grant();
  }
  // Classify the blocking the way Section 3 does: conflict blocking when x
  // itself is held in an incompatible mode, ceiling blocking otherwise.
  bool direct_conflict = !locks.NoWriterOtherThan(self, x);
  if (request.mode == LockMode::kWrite &&
      !locks.NoReaderOtherThan(self, x)) {
    direct_conflict = true;
  }
  return LockDecision::Block(direct_conflict ? BlockReason::kConflict
                                             : BlockReason::kCeiling,
                             info.holders);
}

Priority RwPcp::CurrentCeiling() const {
  Priority ceiling = Priority::Dummy();
  const LockTable& locks = view().locks();
  for (JobId holder : locks.holders()) {
    for (ItemId item : locks.write_items(holder)) {
      ceiling = Max(ceiling, view().ceilings().Aceil(item));
    }
    for (ItemId item : locks.read_items(holder)) {
      ceiling = Max(ceiling, view().ceilings().Wceil(item));
    }
  }
  return ceiling;
}

}  // namespace pcpda
