#include "lint/diagnostic.h"

#include "common/strings.h"

namespace pcpda {
namespace {

/// JSON string escaping for the machine output. Diagnostic messages are
/// plain ASCII by construction; escape the structural characters anyway
/// so arbitrary scenario/txn names cannot corrupt the framing.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* ToString(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "unknown";
}

int LintReport::CountAtLeast(LintSeverity severity) const {
  int count = 0;
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity >= severity) ++count;
  }
  return count;
}

std::string LintReport::Render(const std::string& file) const {
  std::vector<std::string> lines;
  const std::string prefix = file.empty() ? "<scenario>" : file;
  for (const LintDiagnostic& d : diagnostics) {
    std::string where = prefix;
    if (d.span.valid()) {
      where += StrFormat(":%d:%d", d.span.line, d.span.column);
    }
    lines.push_back(StrFormat("%s: %s: %s [%s]", where.c_str(),
                              ToString(d.severity), d.message.c_str(),
                              d.rule.c_str()));
  }
  const int errors = CountAtLeast(LintSeverity::kError);
  const int warnings =
      CountAtLeast(LintSeverity::kWarning) - errors;
  const int notes = static_cast<int>(diagnostics.size()) - errors - warnings;
  lines.push_back(StrFormat("%s: %d error(s), %d warning(s), %d note(s)",
                            prefix.c_str(), errors, warnings, notes));
  return Join(lines, "\n") + "\n";
}

std::string LintReport::RenderJson(const std::string& file) const {
  std::vector<std::string> entries;
  for (const LintDiagnostic& d : diagnostics) {
    entries.push_back(StrFormat(
        "    {\"rule\": \"%s\", \"severity\": \"%s\", \"line\": %d, "
        "\"column\": %d, \"entity\": \"%s\", \"message\": \"%s\"}",
        JsonEscape(d.rule).c_str(), ToString(d.severity), d.span.line,
        d.span.column, JsonEscape(d.entity).c_str(),
        JsonEscape(d.message).c_str()));
  }
  return StrFormat(
      "{\n  \"file\": \"%s\",\n  \"scenario\": \"%s\",\n"
      "  \"errors\": %d,\n  \"diagnostics\": [\n%s\n  ]\n}",
      JsonEscape(file).c_str(), JsonEscape(scenario).c_str(), errors(),
      Join(entries, ",\n").c_str());
}

}  // namespace pcpda
