#ifndef PCPDA_LINT_DIAGNOSTIC_H_
#define PCPDA_LINT_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "workload/scenario.h"

namespace pcpda {

/// How bad a lint finding is. The severity contract is aligned with the
/// dynamic pipeline so the fuzzer can cross-check the two (DESIGN.md
/// §11): kError marks scenarios whose declared facts are provably wrong
/// or unusable (they would also fail or mislead at simulation time);
/// kWarning marks legal scenarios with a property the author almost
/// certainly wants to know about (potential deadlock, unschedulable
/// set, dead entities); kNote is informational.
enum class LintSeverity : std::uint8_t {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

const char* ToString(LintSeverity severity);

/// One structured finding of the static analyzer.
struct LintDiagnostic {
  /// Stable kebab-case rule id, e.g. "cs-overlap" (table in lint.h).
  std::string rule;
  LintSeverity severity = LintSeverity::kWarning;
  /// Anchor into the .scn source; invalid for in-memory scenarios.
  SourceSpan span;
  std::string message;
  /// The txn or item name the finding is about; empty if scenario-wide.
  std::string entity;
};

/// Everything the analyzer concluded about one scenario, ordered by
/// source position (synthetic spans last) for stable rendering.
struct LintReport {
  /// Scenario name; empty when the text failed to parse.
  std::string scenario;
  std::vector<LintDiagnostic> diagnostics;

  int CountAtLeast(LintSeverity severity) const;
  int errors() const { return CountAtLeast(LintSeverity::kError); }
  bool clean() const { return errors() == 0; }

  /// GCC-style text: "<file>:<line>:<col>: <severity>: <message>
  /// [<rule>]" one line per diagnostic, then a one-line summary.
  std::string Render(const std::string& file) const;
  /// Machine-readable JSON: {"file","scenario","diagnostics":[...]}.
  std::string RenderJson(const std::string& file) const;
};

}  // namespace pcpda

#endif  // PCPDA_LINT_DIAGNOSTIC_H_
