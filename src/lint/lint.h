#ifndef PCPDA_LINT_LINT_H_
#define PCPDA_LINT_LINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lint/diagnostic.h"
#include "protocols/factory.h"
#include "workload/scenario.h"

namespace pcpda {

/// The static scenario analyzer: checks PCP-DA's statically decidable
/// preconditions and guarantees over a parsed .scn scenario, without
/// running the simulator. Every rule maps to a paper property (DESIGN.md
/// §11 for the full rationale):
///
///   rule                   sev      what it detects
///   parse-error            error    the text does not parse
///   wceil-mismatch         error    `expect wceil` assertion is wrong
///   aceil-mismatch         error    `expect aceil` assertion is wrong
///   expect-unknown-item    error    expect references a missing item
///   expect-unknown-txn     error    expect references a missing txn
///   ceiling-internal       error    StaticCeilings disagrees with an
///                                   independent recomputation (library
///                                   bug; the fuzz cross-check's target)
///   cs-overlap             warning  two items' critical sections
///                                   interleave without nesting
///   duplicate-access       warning  adjacent same-mode re-access of an
///                                   item (redundant lock request)
///   potential-deadlock     warning  static wait-for cycle reachable
///                                   under 2PL-PI (2PL-HP restarts
///                                   through it; ceiling protocols are
///                                   immune by Theorem 2)
///   unused-item            warning  declared item no txn touches
///   txn-beyond-horizon     warning  txn never releases in the horizon
///   fault-beyond-horizon   warning  `at=` fault fires past the horizon
///   overlong-body          warning  C_i exceeds the effective deadline
///   utilization-overload   warning  sum C_i/Pd_i > 1
///   unschedulable          warning  response-time analysis says a txn
///                                   misses its deadline under worst-
///                                   case Section-9 blocking
///   rm-bound-inconclusive  note     Liu–Layland bound fails but exact
///                                   response-time analysis passes
///   analysis-skipped       note     schedulability pre-check skipped
///                                   (one-shot txns / non-RM order)
struct LintOptions {
  /// Protocols whose Section-9 blocking terms feed the schedulability
  /// pre-checks. Restricted to AnalyzableProtocolKinds(); others are
  /// ignored. Default: the paper's protocol.
  std::vector<ProtocolKind> analysis_protocols = {ProtocolKind::kPcpDa};
  /// Run the RM-bound / response-time pre-checks.
  bool schedulability = true;
  /// Emit informational notes (kNote severity).
  bool include_notes = true;
};

/// Analyzes a parsed scenario.
LintReport LintScenario(const Scenario& scenario,
                        const LintOptions& options = {});

/// Parses and analyzes scenario text. A parse failure yields a report
/// with a single `parse-error` diagnostic carrying the error's span.
LintReport LintScenarioText(const std::string& text,
                            const LintOptions& options = {});

/// Same for a file; NotFound when the file cannot be read.
StatusOr<LintReport> LintScenarioFile(const std::string& path,
                                      const LintOptions& options = {});

/// The configuration of the cheap error-only validity filter: no
/// schedulability pass, no notes. The fuzzer runs it on every generated
/// scenario and the shrinker on every candidate.
LintOptions LintFilterOptions();

/// True when the analyzer finds error-level diagnostics under
/// LintFilterOptions() — the static pre-flight used by the fuzzer's
/// shrinker to reject candidates before any oracle simulation.
bool LintRejects(const Scenario& scenario);

}  // namespace pcpda

#endif  // PCPDA_LINT_LINT_H_
