#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "analysis/blocking.h"
#include "analysis/response_time.h"
#include "analysis/rm_bound.h"
#include "common/strings.h"
#include "db/ceilings.h"

namespace pcpda {
namespace {

/// Shared context for one analysis: the scenario plus lookup helpers the
/// rules use to name entities and anchor spans.
class Linter {
 public:
  Linter(const Scenario& scenario, const LintOptions& options)
      : scenario_(scenario), options_(options) {
    for (const auto& [item_name, id] : scenario.items) {
      item_names_[id] = item_name;
    }
  }

  LintReport Run() {
    CheckCeilings();
    CheckNesting();
    CheckDeadlock();
    CheckDeadEntities();
    if (options_.schedulability) CheckSchedulability();
    Finish();
    report_.scenario = scenario_.name;
    return std::move(report_);
  }

 private:
  // --- helpers ------------------------------------------------------------

  std::string ItemName(ItemId item) const {
    const auto it = item_names_.find(item);
    // FormatScenario's synthetic naming, for in-memory scenarios.
    return it != item_names_.end() ? it->second
                                   : StrFormat("d%d", item);
  }

  SourceSpan TxnSpan(const std::string& txn) const {
    const auto it = scenario_.spans.txns.find(txn);
    return it != scenario_.spans.txns.end() ? it->second : SourceSpan{};
  }

  SourceSpan StepSpan(const std::string& txn, std::size_t index) const {
    const auto it = scenario_.spans.steps.find(txn);
    if (it == scenario_.spans.steps.end() || index >= it->second.size()) {
      return SourceSpan{};
    }
    return it->second[index];
  }

  SourceSpan ItemSpan(ItemId item) const {
    const auto name = item_names_.find(item);
    if (name == item_names_.end()) return SourceSpan{};
    const auto it = scenario_.spans.items.find(name->second);
    return it != scenario_.spans.items.end() ? it->second : SourceSpan{};
  }

  void Add(std::string rule, LintSeverity severity, SourceSpan span,
           std::string entity, std::string message) {
    if (severity == LintSeverity::kNote && !options_.include_notes) return;
    report_.diagnostics.push_back(LintDiagnostic{
        std::move(rule), severity, span, std::move(message),
        std::move(entity)});
  }

  /// "priority of T2" / "dummy".
  std::string PriorityName(Priority p) const {
    if (p.is_dummy()) return "dummy";
    const TransactionSet& set = scenario_.set;
    for (SpecId i = 0; i < set.size(); ++i) {
      if (set.priority(i) == p) {
        return "priority of " + set.spec(i).name;
      }
    }
    return StrFormat("priority level %d", p.level());
  }

  // --- Wceil / Aceil recomputation and `expect` assertions ----------------

  void CheckCeilings() {
    const TransactionSet& set = scenario_.set;
    const ItemId items = set.item_count();
    // Declared-but-unaccessed items carry ids past item_count(); size
    // for them so `expect` lines on such items resolve to dummy.
    ItemId ceiling_slots = items;
    for (const auto& [item_name, id] : scenario_.items) {
      ceiling_slots = std::max(ceiling_slots, id + 1);
    }
    // Recomputed independently of StaticCeilings, straight from the raw
    // read/write sets, so the two implementations check each other.
    std::vector<Priority> wceil(ceiling_slots, Priority::Dummy());
    std::vector<Priority> aceil(ceiling_slots, Priority::Dummy());
    for (SpecId i = 0; i < set.size(); ++i) {
      for (ItemId item : set.spec(i).WriteSet()) {
        wceil[item] = Max(wceil[item], set.priority(i));
        aceil[item] = Max(aceil[item], set.priority(i));
      }
      for (ItemId item : set.spec(i).ReadSet()) {
        aceil[item] = Max(aceil[item], set.priority(i));
      }
    }

    const StaticCeilings ceilings(set);
    for (ItemId item = 0; item < items; ++item) {
      if (ceilings.Wceil(item) != wceil[item]) {
        Add("ceiling-internal", LintSeverity::kError, ItemSpan(item),
            ItemName(item),
            StrFormat("StaticCeilings::Wceil(%s) is %s but the raw write "
                      "sets give %s (library bug)",
                      ItemName(item).c_str(),
                      PriorityName(ceilings.Wceil(item)).c_str(),
                      PriorityName(wceil[item]).c_str()));
      }
      if (ceilings.Aceil(item) != aceil[item]) {
        Add("ceiling-internal", LintSeverity::kError, ItemSpan(item),
            ItemName(item),
            StrFormat("StaticCeilings::Aceil(%s) is %s but the raw "
                      "access sets give %s (library bug)",
                      ItemName(item).c_str(),
                      PriorityName(ceilings.Aceil(item)).c_str(),
                      PriorityName(aceil[item]).c_str()));
      }
    }

    for (const CeilingExpectation& expect : scenario_.expects) {
      const char* kind = expect.write_ceiling ? "wceil" : "aceil";
      const auto item_it = scenario_.items.find(expect.item);
      if (item_it == scenario_.items.end()) {
        Add("expect-unknown-item", LintSeverity::kError, expect.span,
            expect.item,
            StrFormat("expect %s references unknown item '%s'", kind,
                      expect.item.c_str()));
        continue;
      }
      Priority expected = Priority::Dummy();
      if (expect.txn != "dummy") {
        SpecId spec = kInvalidSpec;
        for (SpecId i = 0; i < set.size(); ++i) {
          if (set.spec(i).name == expect.txn) {
            spec = i;
            break;
          }
        }
        if (spec == kInvalidSpec) {
          Add("expect-unknown-txn", LintSeverity::kError, expect.span,
              expect.txn,
              StrFormat("expect %s references unknown txn '%s'", kind,
                        expect.txn.c_str()));
          continue;
        }
        expected = set.priority(spec);
      }
      const ItemId item = item_it->second;
      const Priority actual =
          expect.write_ceiling ? wceil[item] : aceil[item];
      if (actual == expected) continue;
      const char* fn = expect.write_ceiling ? "Wceil" : "Aceil";
      std::string message = StrFormat(
          "expect %s %s = %s, but %s(%s) is %s", kind,
          expect.item.c_str(), PriorityName(expected).c_str(), fn,
          expect.item.c_str(), PriorityName(actual).c_str());
      if (actual.is_dummy()) {
        message += expect.write_ceiling ? " (no txn writes it)"
                                        : " (no txn accesses it)";
      }
      Add(expect.write_ceiling ? "wceil-mismatch" : "aceil-mismatch",
          LintSeverity::kError, expect.span, expect.item,
          std::move(message));
    }
  }

  // --- critical-section nesting -------------------------------------------

  /// First/last body index touching each item, and whether any touch
  /// writes. Under every protocol here locks are held from first access
  /// until commit (or CCP's shrinking phase), so [first, last] is the
  /// item's critical section as the paper's nested-CS reasoning sees it.
  struct ItemUse {
    int first = -1;
    int last = -1;
    bool writes = false;
  };

  static std::map<ItemId, ItemUse> UsesOf(const TransactionSpec& spec) {
    std::map<ItemId, ItemUse> uses;
    for (std::size_t i = 0; i < spec.body.size(); ++i) {
      const Step& step = spec.body[i];
      if (step.kind == StepKind::kCompute) continue;
      ItemUse& use = uses[step.item];
      if (use.first < 0) use.first = static_cast<int>(i);
      use.last = static_cast<int>(i);
      use.writes |= step.kind == StepKind::kWrite;
    }
    return uses;
  }

  void CheckNesting() {
    const TransactionSet& set = scenario_.set;
    for (SpecId i = 0; i < set.size(); ++i) {
      const TransactionSpec& spec = set.spec(i);
      for (std::size_t j = 1; j < spec.body.size(); ++j) {
        const Step& prev = spec.body[j - 1];
        const Step& step = spec.body[j];
        if (step.kind == StepKind::kCompute ||
            prev.kind != step.kind || prev.item != step.item) {
          continue;
        }
        Add("duplicate-access", LintSeverity::kWarning,
            StepSpan(spec.name, j), spec.name,
            StrFormat("%s re-%ss %s in adjacent steps; the lock is "
                      "already held — merge them into one step",
                      spec.name.c_str(),
                      step.kind == StepKind::kRead ? "read" : "write",
                      ItemName(step.item).c_str()));
      }

      const std::map<ItemId, ItemUse> uses = UsesOf(spec);
      for (auto a = uses.begin(); a != uses.end(); ++a) {
        for (auto b = std::next(a); b != uses.end(); ++b) {
          // Order the pair by first access; crossing means the earlier
          // section ends strictly inside the later one.
          const auto& [outer_item, outer] =
              a->second.first <= b->second.first ? *a : *b;
          const auto& [inner_item, inner] =
              a->second.first <= b->second.first ? *b : *a;
          if (inner.first <= outer.last && outer.last < inner.last) {
            Add("cs-overlap", LintSeverity::kWarning,
                StepSpan(spec.name,
                         static_cast<std::size_t>(inner.first)),
                spec.name,
                StrFormat("in %s the critical sections of %s (steps "
                          "%d-%d) and %s (steps %d-%d) interleave "
                          "without nesting",
                          spec.name.c_str(),
                          ItemName(outer_item).c_str(), outer.first + 1,
                          outer.last + 1, ItemName(inner_item).c_str(),
                          inner.first + 1, inner.last + 1));
          }
        }
      }
    }
  }

  // --- static wait-for cycle detection ------------------------------------

  void CheckDeadlock() {
    const TransactionSet& set = scenario_.set;
    const SpecId n = set.size();
    std::vector<std::map<ItemId, ItemUse>> uses;
    uses.reserve(static_cast<std::size_t>(n));
    for (SpecId i = 0; i < n; ++i) uses.push_back(UsesOf(set.spec(i)));

    // holds_before[i][x]: T_i can hold some other item when it first
    // requests x. waits_after[i][x]: T_i can still be requesting other
    // items after it acquired x (so it can hold x while blocked).
    auto holds_before = [&uses](SpecId i, ItemId x) {
      const int first = uses[static_cast<std::size_t>(i)].at(x).first;
      for (const auto& [item, use] :
           uses[static_cast<std::size_t>(i)]) {
        if (item != x && use.first < first) return true;
      }
      return false;
    };
    auto waits_after = [&uses](SpecId i, ItemId x) {
      const int first = uses[static_cast<std::size_t>(i)].at(x).first;
      for (const auto& [item, use] :
           uses[static_cast<std::size_t>(i)]) {
        if (item != x && use.last > first) return true;
      }
      return false;
    };

    // edge[a][b]: T_a can block on an item T_b holds, while T_a itself
    // holds a lock — the static over-approximation of a wait-for edge
    // under held-to-commit locking with exclusive conflicts.
    std::vector<std::vector<bool>> edge(
        static_cast<std::size_t>(n),
        std::vector<bool>(static_cast<std::size_t>(n), false));
    std::map<std::pair<SpecId, SpecId>, std::set<ItemId>> edge_items;
    for (SpecId a = 0; a < n; ++a) {
      for (SpecId b = 0; b < n; ++b) {
        if (a == b) continue;
        for (const auto& [item, use_a] :
             uses[static_cast<std::size_t>(a)]) {
          const auto it_b =
              uses[static_cast<std::size_t>(b)].find(item);
          if (it_b == uses[static_cast<std::size_t>(b)].end()) continue;
          if (!use_a.writes && !it_b->second.writes) continue;
          if (!holds_before(a, item) || !waits_after(b, item)) continue;
          edge[static_cast<std::size_t>(a)]
              [static_cast<std::size_t>(b)] = true;
          edge_items[{a, b}].insert(item);
        }
      }
    }

    // Transitive closure; mutually reachable specs form a potential
    // wait-for cycle. Spec counts are small, so O(n^3) is fine.
    std::vector<std::vector<bool>> reach = edge;
    for (SpecId k = 0; k < n; ++k) {
      for (SpecId a = 0; a < n; ++a) {
        if (!reach[static_cast<std::size_t>(a)]
                  [static_cast<std::size_t>(k)]) {
          continue;
        }
        for (SpecId b = 0; b < n; ++b) {
          if (reach[static_cast<std::size_t>(k)]
                   [static_cast<std::size_t>(b)]) {
            reach[static_cast<std::size_t>(a)]
                 [static_cast<std::size_t>(b)] = true;
          }
        }
      }
    }

    std::vector<bool> reported(static_cast<std::size_t>(n), false);
    for (SpecId a = 0; a < n; ++a) {
      if (reported[static_cast<std::size_t>(a)]) continue;
      std::vector<SpecId> cycle{a};
      for (SpecId b = a + 1; b < n; ++b) {
        if (reach[static_cast<std::size_t>(a)]
                 [static_cast<std::size_t>(b)] &&
            reach[static_cast<std::size_t>(b)]
                 [static_cast<std::size_t>(a)]) {
          cycle.push_back(b);
        }
      }
      if (cycle.size() < 2) continue;
      for (SpecId member : cycle) {
        reported[static_cast<std::size_t>(member)] = true;
      }
      std::set<ItemId> items;
      std::vector<std::string> names;
      for (SpecId member : cycle) {
        names.push_back(set.spec(member).name);
        for (SpecId other : cycle) {
          const auto it = edge_items.find({member, other});
          if (it != edge_items.end()) {
            items.insert(it->second.begin(), it->second.end());
          }
        }
      }
      std::vector<std::string> item_names;
      for (ItemId item : items) item_names.push_back(ItemName(item));
      std::vector<std::string> vulnerable;
      for (ProtocolKind kind : AllProtocolKinds()) {
        if (!TraitsOf(kind).deadlock_free) {
          vulnerable.push_back(ToString(kind));
        }
      }
      Add("potential-deadlock", LintSeverity::kWarning,
          TxnSpan(set.spec(cycle.front()).name),
          set.spec(cycle.front()).name,
          StrFormat("potential wait-for cycle among %s on item(s) %s: "
                    "%s can deadlock here (2PL-HP restarts through it; "
                    "ceiling protocols are immune by Theorem 2)",
                    Join(names, ", ").c_str(),
                    Join(item_names, ", ").c_str(),
                    Join(vulnerable, ", ").c_str()));
    }
  }

  // --- dead entities ------------------------------------------------------

  void CheckDeadEntities() {
    const TransactionSet& set = scenario_.set;
    std::set<ItemId> touched;
    for (SpecId i = 0; i < set.size(); ++i) {
      const std::set<ItemId> access = set.spec(i).AccessSet();
      touched.insert(access.begin(), access.end());
    }
    for (const auto& [item_name, id] : scenario_.items) {
      if (touched.count(id) != 0) continue;
      Add("unused-item", LintSeverity::kWarning,
          ItemSpan(id), item_name,
          StrFormat("item %s is declared but no txn reads or writes it",
                    item_name.c_str()));
    }

    for (SpecId i = 0; i < set.size(); ++i) {
      const TransactionSpec& spec = set.spec(i);
      if (scenario_.horizon > 0 && spec.offset >= scenario_.horizon) {
        Add("txn-beyond-horizon", LintSeverity::kWarning,
            TxnSpan(spec.name), spec.name,
            StrFormat("%s first releases at tick %lld, at or past the "
                      "horizon %lld — it never runs",
                      spec.name.c_str(),
                      static_cast<long long>(spec.offset),
                      static_cast<long long>(scenario_.horizon)));
      }
      const Tick deadline = set.RelativeDeadline(i);
      if (deadline != kNoTick && spec.ExecutionTime() > deadline) {
        Add("overlong-body", LintSeverity::kWarning, TxnSpan(spec.name),
            spec.name,
            StrFormat("%s needs %lld ticks of execution but its "
                      "deadline is %lld — it can never finish in time",
                      spec.name.c_str(),
                      static_cast<long long>(spec.ExecutionTime()),
                      static_cast<long long>(deadline)));
      }
    }

    for (std::size_t f = 0; f < scenario_.faults.faults.size(); ++f) {
      const FaultSpec& fault = scenario_.faults.faults[f];
      if (scenario_.horizon <= 0 || fault.at == kNoTick ||
          fault.at < scenario_.horizon) {
        continue;
      }
      const SourceSpan span = f < scenario_.spans.faults.size()
                                  ? scenario_.spans.faults[f]
                                  : SourceSpan{};
      const std::string target = fault.spec == kInvalidSpec
                                     ? "*"
                                     : set.spec(fault.spec).name;
      Add("fault-beyond-horizon", LintSeverity::kWarning, span, target,
          StrFormat("%s fault on %s fires at tick %lld, at or past the "
                    "horizon %lld — it never triggers",
                    ToString(fault.kind), target.c_str(),
                    static_cast<long long>(fault.at),
                    static_cast<long long>(scenario_.horizon)));
    }
  }

  // --- blocking-term and schedulability pre-checks ------------------------

  void CheckSchedulability() {
    const TransactionSet& set = scenario_.set;
    bool periodic = set.size() > 0;
    bool rm_ordered = true;
    for (SpecId i = 0; i < set.size(); ++i) {
      if (set.spec(i).period <= 0) periodic = false;
      if (i > 0 && set.spec(i).period < set.spec(i - 1).period) {
        rm_ordered = false;
      }
    }
    if (!periodic || !rm_ordered) {
      Add("analysis-skipped", LintSeverity::kNote, SourceSpan{}, "",
          periodic ? "schedulability pre-check skipped: priorities are "
                     "not rate-monotonic"
                   : "schedulability pre-check skipped: the set has "
                     "one-shot txns");
      return;
    }

    const double utilization = set.Utilization();
    if (utilization > 1.0 + 1e-9) {
      Add("utilization-overload", LintSeverity::kWarning,
          TxnSpan(set.spec(0).name), "",
          StrFormat("total utilization %.3f exceeds 1: the set "
                    "overloads the processor regardless of protocol",
                    utilization));
    }

    for (ProtocolKind kind : options_.analysis_protocols) {
      // ProtocolTraits::analyzable() is the single source of truth for
      // "has a finite blocking bound" — lint, pcpda_analyze and the
      // fuzzer oracle all gate on it.
      if (!TraitsOf(kind).analyzable()) continue;
      const BlockingAnalysis blocking = ComputeBlocking(set, kind);
      const SchedAnalysis sched = AnalyzeResponseTimes(set, blocking);
      const auto rm_bound = LiuLaylandTest(set, blocking.AllB());
      for (SpecId i = 0; i < set.size(); ++i) {
        const SpecSchedResult& spec_result =
            sched.per_spec[static_cast<std::size_t>(i)];
        const std::string& name = set.spec(i).name;
        if (spec_result.verdict == SchedVerdict::kUnschedulable) {
          const Tick deadline = set.RelativeDeadline(i);
          std::string response_text =
              spec_result.response == kNoTick
                  ? std::string("diverges")
                  : StrFormat("is %lld ticks",
                              static_cast<long long>(
                                  spec_result.response));
          Add("unschedulable", LintSeverity::kWarning, TxnSpan(name),
              name,
              StrFormat("%s: worst-case response %s under %s "
                        "(B=%lld), past the deadline %lld",
                        name.c_str(), response_text.c_str(),
                        ToString(kind),
                        static_cast<long long>(blocking.B(i)),
                        static_cast<long long>(deadline)));
        } else if (spec_result.verdict == SchedVerdict::kSchedulable &&
                   rm_bound.ok() &&
                   !rm_bound->per_spec[static_cast<std::size_t>(i)]
                        .schedulable) {
          Add("rm-bound-inconclusive", LintSeverity::kNote,
              TxnSpan(name), name,
              StrFormat("%s fails the Liu-Layland bound under %s but "
                        "passes exact response-time analysis (the "
                        "Section-9 bound is sufficient, not necessary)",
                        name.c_str(), ToString(kind)));
        }
      }
    }
  }

  /// Orders diagnostics by source position (synthetic spans last);
  /// stable, so same-line findings keep rule order.
  void Finish() {
    std::stable_sort(
        report_.diagnostics.begin(), report_.diagnostics.end(),
        [](const LintDiagnostic& a, const LintDiagnostic& b) {
          const int la = a.span.valid() ? a.span.line
                                        : std::numeric_limits<int>::max();
          const int lb = b.span.valid() ? b.span.line
                                        : std::numeric_limits<int>::max();
          if (la != lb) return la < lb;
          return a.span.column < b.span.column;
        });
  }

  const Scenario& scenario_;
  const LintOptions& options_;
  std::map<ItemId, std::string> item_names_;
  LintReport report_;
};

}  // namespace

LintReport LintScenario(const Scenario& scenario,
                        const LintOptions& options) {
  return Linter(scenario, options).Run();
}

LintReport LintScenarioText(const std::string& text,
                            const LintOptions& options) {
  auto scenario = ParseScenario(text);
  if (scenario.ok()) return LintScenario(*scenario, options);

  LintReport report;
  LintDiagnostic diagnostic;
  diagnostic.rule = "parse-error";
  diagnostic.severity = LintSeverity::kError;
  diagnostic.message = scenario.status().message();
  // Parser errors are prefixed "line L:C: ..."; lift the position into
  // the span so renderers can anchor it like any other diagnostic.
  int line = 0;
  int column = 0;
  int consumed = 0;
  if (std::sscanf(diagnostic.message.c_str(), "line %d:%d:%n", &line,
                  &column, &consumed) == 2 &&
      consumed > 0) {
    diagnostic.span = SourceSpan{line, column};
    std::string rest = diagnostic.message.substr(
        static_cast<std::size_t>(consumed));
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    diagnostic.message = std::move(rest);
  }
  report.diagnostics.push_back(std::move(diagnostic));
  return report;
}

StatusOr<LintReport> LintScenarioFile(const std::string& path,
                                      const LintOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return LintScenarioText(buffer.str(), options);
}

LintOptions LintFilterOptions() {
  LintOptions options;
  options.schedulability = false;
  options.include_notes = false;
  options.analysis_protocols.clear();
  return options;
}

bool LintRejects(const Scenario& scenario) {
  return !LintScenario(scenario, LintFilterOptions()).clean();
}

}  // namespace pcpda
