#ifndef PCPDA_CAMPAIGN_CAMPAIGN_H_
#define PCPDA_CAMPAIGN_CAMPAIGN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/spec.h"
#include "common/status.h"
#include "plan/compiled_plan.h"
#include "runner/batch_runner.h"

namespace pcpda {

/// How a campaign invocation executes its grid; nothing in here affects
/// job results (that is CampaignSpec's job), so checkpoints written under
/// different options merge byte-identically.
struct CampaignOptions {
  /// Directory for checkpoints, quarantine records, MANIFEST.json and
  /// BENCH_campaign.json. Created if missing.
  std::string out_dir;
  /// Concurrent executors per shard.
  int jobs = 1;
  /// fsync every checkpoint append (the crash-safety contract). Tests
  /// that only exercise logic may turn it off for speed.
  bool fsync = true;
  /// Run only this shard (distributed invocations run one shard each);
  /// -1 runs every shard in sequence. Accounting, the manifest and the
  /// final merge always cover all shards.
  int only_shard = -1;
  /// Graceful-stop flag, typically set by a SIGINT/SIGTERM handler:
  /// in-flight jobs are cancelled, nothing new starts, the checkpoint is
  /// already flushed per job, and a partial MANIFEST.json is written.
  const std::atomic<bool>* stop = nullptr;

  // --- worker mode (the supervisor's forked processes) -----------------
  /// Run as a supervised worker: execute the assigned shard (only_shard
  /// is then required) and skip Finalize entirely — the supervisor owns
  /// MANIFEST/BENCH, and parallel workers must not race on them.
  bool worker = false;
  /// Restrict the shard to global job ids in [job_first, job_last) — the
  /// supervisor's bisection unit when hunting a poison job. -1/-1 runs
  /// the whole shard. Already-recorded jobs inside the range still
  /// resume; jobs outside it are left pending for sibling workers.
  std::int64_t job_first = -1;
  std::int64_t job_last = -1;
  /// Invoked after every durable record append (on the worker thread
  /// that completed the job). Workers write one heartbeat byte per call;
  /// the supervisor's stall detector feeds on them. Must be async-safe
  /// in the ordinary sense (called under no campaign lock) and cheap.
  std::function<void()> on_record;

  /// Lint pre-flight (ROADMAP item 3): run the static analyzer's
  /// error-level filter over every generated scenario before any
  /// protocol simulates it. A scenario with lint errors marks all of its
  /// cell's jobs "generator_defect" — quarantined with the .scn as a
  /// generator bug, never counted as a protocol failure.
  bool lint_preflight = true;

  // --- fault injection for the robustness tests ------------------------
  /// This job id throws on every attempt (exhausts retries, quarantined).
  std::int64_t inject_crash_job = -1;
  /// This job id spins until cancelled (trips the watchdog, quarantined).
  std::int64_t inject_hang_job = -1;
  /// Trip an internal stop flag after this many completions — a
  /// deterministic stand-in for SIGINT mid-shard. When set it replaces
  /// `stop` as the in-flight cancellation source. -1 = off.
  std::int64_t stop_after = -1;
  /// This job id kills the whole *process* with SIGSEGV when it starts —
  /// the supervisor-level poison-job injection (a thrown exception never
  /// leaves the worker; this one cannot be caught). Lethal by design in
  /// unsupervised runs.
  std::int64_t inject_segv_job = -1;
  /// This job id spins forever without polling cancellation — a hang no
  /// in-process watchdog can break; only the supervisor's SIGTERM→SIGKILL
  /// escalation ends it. Lethal by design in unsupervised runs.
  std::int64_t inject_spin_job = -1;
  /// Inject a lint defect into this cell's generated scenario (a
  /// dangling `expect` reference), driving the lint pre-flight's
  /// generator_defect path deterministically in tests. -1 = off.
  std::int64_t inject_lint_defect_cell = -1;
};

/// Per-shard accounting for one invocation.
struct ShardSummary {
  int shard = 0;
  std::int64_t jobs = 0;
  /// Records reused from the checkpoint instead of re-running.
  std::int64_t resumed = 0;
  /// Jobs actually executed (and recorded) by this invocation.
  std::int64_t ran = 0;
  /// Torn-tail bytes discarded when the checkpoint was loaded.
  std::int64_t torn_bytes = 0;
  std::int64_t ok = 0;
  std::int64_t failed = 0;
  std::int64_t quarantined = 0;
  /// Jobs still unrecorded (stop fired, or the shard was not selected).
  std::int64_t pending = 0;
};

/// Result of one campaign invocation. ok/failed/quarantined/pending
/// account for every job of every shard (resumed or not):
/// ok + failed + quarantined + pending == total_jobs, always.
struct CampaignReport {
  std::string fingerprint;
  std::vector<ShardSummary> shards;
  std::int64_t total_jobs = 0;
  std::int64_t ok = 0;
  std::int64_t failed = 0;
  std::int64_t quarantined = 0;
  std::int64_t pending = 0;
  /// True when a stop request interrupted this invocation.
  bool stopped = false;
  /// Every job recorded; BENCH_campaign.json was written.
  bool merged = false;
  std::string manifest_path;
  std::string bench_path;
};

/// The crash-safe campaign engine. One invocation = load checkpoints,
/// run what is missing (under the spec's robustness policy), append each
/// completion durably, then merge if the grid is complete. Killing the
/// process at any point and re-invoking resumes exactly where the last
/// durable record left off and produces a BENCH_campaign.json
/// byte-identical to an uninterrupted run (tests/campaign_test.cc and
/// the campaign-smoke ctest prove both).
class Campaign {
 public:
  Campaign(CampaignSpec spec, CampaignOptions options);

  /// Runs (or resumes) the campaign. Non-OK only for spec/IO errors;
  /// job failures are data, reported in the CampaignReport and the
  /// checkpoint records. In worker mode Finalize is skipped: the report
  /// carries shard summaries only (total/ok/... stay zero).
  StatusOr<CampaignReport> Run();

  /// Merge-only entry for the supervisor: re-reads every shard
  /// checkpoint and writes MANIFEST.json (and BENCH_campaign.json when
  /// complete) without running a single job. `stopped` is recorded in
  /// the manifest. Must not run concurrently with live workers.
  StatusOr<CampaignReport> Merge(bool stopped);

  /// Records a job the supervisor proved poisonous (its worker process
  /// died on it repeatedly; bisection isolated it): appends `record` to
  /// the owning shard's checkpoint — unless the id is already recorded —
  /// and writes the quarantine .json/.scn pair. Must not run while a
  /// worker owns that shard's checkpoint.
  Status RecordPoisonJob(const JobRecord& record);

  /// The checkpoint path of `shard` under `out_dir`.
  static std::string ShardPath(const std::string& out_dir, int shard);

 private:
  /// Executes the missing jobs of one shard, appending each completion
  /// to the shard checkpoint. Fills the summary's resumed/ran/torn
  /// counters; ok/failed/etc. are recomputed globally by Finalize.
  Status RunShard(BatchRunner& runner, int shard, ShardSummary& summary);
  /// Executes one job attempt (or an injected fault).
  SimResult RunJob(const CampaignJob& job, const JobContext& context);
  /// Converts a finished JobResult into its checkpoint record.
  JobRecord MakeRecord(const CampaignJob& job,
                       const JobResult& result) const;
  /// Writes quarantine/job_<id>.scn (the offending workload, replayable
  /// by run_scenario and usable as a fuzzer seed) and .json (the failure
  /// record).
  Status WriteQuarantine(const CampaignJob& job, const JobRecord& record);
  /// Re-reads every shard checkpoint, fills global accounting, writes
  /// MANIFEST.json and — when complete — BENCH_campaign.json.
  Status Finalize(CampaignReport& report);
  /// Renders the merged benchmark report (deterministic byte-for-byte:
  /// records sorted by job id, fixed key order, no timestamps).
  std::string RenderBench(const std::vector<JobRecord>& records) const;
  std::string RenderManifest(
      const CampaignReport& report,
      const std::vector<std::int64_t>& recorded_per_shard) const;
  bool StopRequested() const;

  /// The 8 protocol jobs of a grid cell share one scenario seed, so they
  /// share one generated-and-compiled workload too. The first job of a
  /// cell to arrive compiles (under the cell's once_flag); the rest wait
  /// on the flag and reuse the plan. Bounded FIFO eviction keeps memory
  /// flat on huge grids — an evicted cell is simply recompiled.
  struct CellPlan {
    std::once_flag once;
    StatusOr<CompiledPlan> plan{CompiledPlan{}};
  };
  std::shared_ptr<CellPlan> CellPlanFor(std::int64_t cell);
  /// Generates and compiles the workload of `job`'s cell (no caching).
  StatusOr<CompiledPlan> CompileCell(const CampaignJob& job) const;

  const CampaignSpec spec_;
  const CampaignOptions options_;
  const std::string fingerprint_;
  /// stop_after's deterministic stop flag (see CampaignOptions).
  std::atomic<bool> internal_stop_{false};
  std::atomic<std::int64_t> completions_{0};
  /// Cell-plan cache (see CellPlanFor); guarded by plans_mu_.
  std::mutex plans_mu_;
  std::map<std::int64_t, std::shared_ptr<CellPlan>> plans_;
  std::list<std::int64_t> plan_order_;  // FIFO eviction order
};

}  // namespace pcpda

#endif  // PCPDA_CAMPAIGN_CAMPAIGN_H_
