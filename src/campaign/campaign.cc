#include "campaign/campaign.h"

#include <chrono>
#include <csignal>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "analysis/blocking.h"
#include "analysis/response_time.h"
#include "common/rng.h"
#include "common/strings.h"
#include "lint/lint.h"
#include "sched/simulator.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pcpda {
namespace {

/// Sum of the paper's effective-blocking metric over all specs.
std::int64_t TotalBlocking(const RunMetrics& metrics) {
  Tick blocking = 0;
  for (const SpecMetrics& spec : metrics.per_spec) {
    blocking += spec.effective_blocking_ticks;
  }
  return static_cast<std::int64_t>(blocking);
}

/// Status-message prefix that classifies a cell failure as a defect of
/// the workload generator (lint pre-flight rejection or generation
/// failure) rather than of the protocol under test. MakeRecord keys the
/// "generator_defect" outcome off it.
constexpr const char kGeneratorDefectPrefix[] = "generator defect: ";

bool IsGeneratorDefect(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().rfind(kGeneratorDefectPrefix, 0) == 0;
}

}  // namespace

Campaign::Campaign(CampaignSpec spec, CampaignOptions options)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      fingerprint_(spec_.Fingerprint()) {}

StatusOr<CompiledPlan> Campaign::CompileCell(const CampaignJob& job) const {
  const std::int64_t cell = job.id / spec_.num_protocols();
  WorkloadParams params = spec_.workload;
  params.total_utilization =
      spec_.utilizations[static_cast<std::size_t>(job.util_index)];
  Rng rng(job.scenario_seed);
  auto set = GenerateWorkload(params, rng);
  if (!set.ok()) {
    // Validate() vetted every sweep point, so a generation failure here
    // is a generator bug — classify it as such, not as 8 protocol
    // failures.
    return Status::FailedPrecondition(
        StrFormat("%scell %lld workload generation failed: %s",
                  kGeneratorDefectPrefix, static_cast<long long>(cell),
                  set.status().message().c_str()));
  }
  Scenario scenario{
      StrFormat("campaign_cell_%lld", static_cast<long long>(cell)),
      std::move(set).value(),
      spec_.horizon,
      {},
      {},
      {},
      {}};
  if (options_.inject_lint_defect_cell == cell) {
    // A dangling expect reference: the cheapest error-level defect, and
    // exactly the shape a generator bug would take (declared facts that
    // do not match the emitted workload).
    CeilingExpectation bogus;
    bogus.write_ceiling = true;
    bogus.item = "no_such_item";
    bogus.txn = "no_such_txn";
    scenario.expects.push_back(bogus);
  }
  if (options_.lint_preflight) {
    const LintReport lint = LintScenario(scenario, LintFilterOptions());
    if (!lint.clean()) {
      std::string first;
      for (const LintDiagnostic& diagnostic : lint.diagnostics) {
        if (diagnostic.severity == LintSeverity::kError) {
          first = StrFormat("%s [%s]", diagnostic.message.c_str(),
                            diagnostic.rule.c_str());
          break;
        }
      }
      return Status::FailedPrecondition(StrFormat(
          "%scell %lld scenario rejected by lint pre-flight: %s",
          kGeneratorDefectPrefix, static_cast<long long>(cell),
          first.c_str()));
    }
  }
  CompileOptions compile;
  compile.lint = false;  // pre-flighted above (or deliberately skipped)
  return CompiledPlan::Compile(std::move(scenario), compile);
}

std::shared_ptr<Campaign::CellPlan> Campaign::CellPlanFor(
    std::int64_t cell) {
  // Enough cells for every executor to be in a different cell plus slack;
  // eviction only costs a recompile, never correctness.
  constexpr std::size_t kMaxCachedCells = 128;
  std::lock_guard<std::mutex> lock(plans_mu_);
  auto it = plans_.find(cell);
  if (it != plans_.end()) return it->second;
  auto entry = std::make_shared<CellPlan>();
  plans_.emplace(cell, entry);
  plan_order_.push_back(cell);
  if (plan_order_.size() > kMaxCachedCells) {
    plans_.erase(plan_order_.front());
    plan_order_.pop_front();
  }
  return entry;
}

std::string Campaign::ShardPath(const std::string& out_dir, int shard) {
  return StrFormat("%s/shard_%03d.ckpt", out_dir.c_str(), shard);
}

bool Campaign::StopRequested() const {
  if (options_.stop != nullptr &&
      options_.stop->load(std::memory_order_relaxed)) {
    return true;
  }
  return internal_stop_.load(std::memory_order_relaxed);
}

SimResult Campaign::RunJob(const CampaignJob& job,
                           const JobContext& context) {
  if (job.id == options_.inject_segv_job) {
    // Process-level poison injection: a real SIGSEGV that no in-process
    // retry or watchdog can contain — only the supervisor's bisection
    // isolates it. (Deliberately lethal when run unsupervised.)
    std::raise(SIGSEGV);
  }
  if (job.id == options_.inject_spin_job) {
    // An uncooperative hang: never polls cancellation, so the wall-clock
    // watchdog cannot break it; the supervisor's SIGTERM→SIGKILL
    // escalation is the only way out.
    for (;;) std::this_thread::yield();
  }
  if (job.id == options_.inject_crash_job) {
    throw std::runtime_error(
        StrFormat("injected crash (job %lld attempt %d)",
                  static_cast<long long>(job.id), context.attempt));
  }
  if (job.id == options_.inject_hang_job) {
    // Spin until the watchdog cancels us — a stand-in for a genuine
    // non-terminating job that still honors cooperative cancellation.
    while (!context.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SimResult result;
    result.status = Status::DeadlineExceeded(StrFormat(
        "injected hang (job %lld)", static_cast<long long>(job.id)));
    return result;
  }

  // The grid is cell-major: the num_protocols() jobs of a cell share a
  // scenario seed, so generate + compile the workload once per cell and
  // let the protocol runs share the plan.
  const std::shared_ptr<CellPlan> cell =
      CellPlanFor(job.id / spec_.num_protocols());
  std::call_once(cell->once, [&] { cell->plan = CompileCell(job); });
  if (!cell->plan.ok()) {
    SimResult result;
    result.status = cell->plan.status();
    return result;
  }

  SimulatorOptions sim_options;
  sim_options.horizon = spec_.horizon;
  sim_options.record_trace = false;
  sim_options.record_history = false;
  sim_options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
  sim_options.cancel = context.cancel;
  sim_options.max_sim_ticks = spec_.effective_max_sim_ticks();
  std::unique_ptr<Protocol> protocol = MakeProtocol(
      spec_.protocols[static_cast<std::size_t>(job.protocol_index)]);
  Simulator simulator(cell->plan.value(), protocol.get(), sim_options);
  return simulator.Run();
}

JobRecord Campaign::MakeRecord(const CampaignJob& job,
                               const JobResult& result) const {
  JobRecord record;
  record.job_id = job.id;
  record.outcome = ToString(result.outcome);
  if (result.outcome == JobOutcome::kFailed &&
      IsGeneratorDefect(result.result.status)) {
    record.outcome = "generator_defect";
  }
  record.attempts = result.attempts;
  record.code = ToString(result.result.status.code());
  record.message = result.result.status.message();
  if (result.outcome == JobOutcome::kOk) {
    const RunMetrics& m = result.result.metrics;
    record.released = m.TotalReleased();
    record.committed = m.TotalCommitted();
    record.misses = m.TotalMisses();
    record.blocking_ticks = TotalBlocking(m);
    record.restarts = m.TotalRestarts();
    record.deadlocks = m.deadlocks;
  }
  return record;
}

Status Campaign::WriteQuarantine(const CampaignJob& job,
                                 const JobRecord& record) {
  const std::string dir = options_.out_dir + "/quarantine";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("mkdir %s: %s", dir.c_str(), ec.message().c_str()));
  }
  const std::string stem =
      StrFormat("%s/job_%06lld", dir.c_str(),
                static_cast<long long>(job.id));
  const std::string info = StrFormat(
      "{\n"
      "  \"job\": %lld,\n"
      "  \"scenario_index\": %d,\n"
      "  \"util_index\": %d,\n"
      "  \"utilization\": %g,\n"
      "  \"protocol\": \"%s\",\n"
      "  \"scenario_seed\": %llu,\n"
      "  \"outcome\": \"%s\",\n"
      "  \"attempts\": %d,\n"
      "  \"code\": \"%s\",\n"
      "  \"message\": \"%s\"\n"
      "}\n",
      static_cast<long long>(job.id), job.scenario_index, job.util_index,
      spec_.utilizations[static_cast<std::size_t>(job.util_index)],
      ToString(
          spec_.protocols[static_cast<std::size_t>(job.protocol_index)]),
      static_cast<unsigned long long>(job.scenario_seed),
      record.outcome.c_str(), record.attempts, record.code.c_str(),
      record.message.c_str());
  PCPDA_RETURN_IF_ERROR(WriteFileAtomic(stem + ".json", info));

  // Reproduce the poisoned workload as a replayable .scn (deterministic
  // from the seed). Best effort: if generation itself was the failure,
  // the .json record alone documents it.
  WorkloadParams params = spec_.workload;
  params.total_utilization =
      spec_.utilizations[static_cast<std::size_t>(job.util_index)];
  Rng rng(job.scenario_seed);
  auto set = GenerateWorkload(params, rng);
  if (set.ok()) {
    const std::string name =
        StrFormat("quarantine_job_%lld", static_cast<long long>(job.id));
    PCPDA_RETURN_IF_ERROR(WriteFileAtomic(
        stem + ".scn",
        FormatScenario(name, set.value(), spec_.horizon)));
  }
  return Status::Ok();
}

Status Campaign::RunShard(BatchRunner& runner, int shard,
                          ShardSummary& summary) {
  const std::string path = ShardPath(options_.out_dir, shard);
  auto loaded = LoadCheckpoint(path, fingerprint_);
  if (!loaded.ok()) return loaded.status();
  summary.torn_bytes = loaded->torn_bytes;

  std::set<std::int64_t> done;
  for (const JobRecord& record : loaded->records) {
    done.insert(record.job_id);
  }
  // With a bisection range, summaries account the *assigned* jobs only:
  // ids outside [job_first, job_last) belong to sibling workers.
  const std::vector<CampaignJob> all = spec_.JobsForShard(shard);
  std::vector<CampaignJob> assigned;
  for (const CampaignJob& job : all) {
    if (options_.job_first >= 0 && job.id < options_.job_first) continue;
    if (options_.job_last >= 0 && job.id >= options_.job_last) continue;
    assigned.push_back(job);
  }
  summary.jobs = static_cast<std::int64_t>(assigned.size());
  std::vector<CampaignJob> todo;
  for (const CampaignJob& job : assigned) {
    if (done.count(job.id) == 0) todo.push_back(job);
  }
  summary.resumed = summary.jobs - static_cast<std::int64_t>(todo.size());

  // Open even when nothing is left to run: Open() truncates any torn
  // tail so the file on disk is exactly its valid prefix.
  CheckpointWriter writer;
  PCPDA_RETURN_IF_ERROR(writer.Open(path, fingerprint_,
                                    loaded->valid_bytes, options_.fsync));
  if (todo.empty()) return writer.Close();

  JobPolicy policy;
  policy.max_sim_ticks = spec_.effective_max_sim_ticks();
  policy.wall_budget_ms = spec_.wall_budget_ms;
  policy.max_retries = spec_.max_retries;
  // External stop (the CLI's signal flag) wins; otherwise the engine's
  // own flag serves stop_after and append-failure aborts.
  policy.stop =
      options_.stop != nullptr ? options_.stop : &internal_stop_;

  std::mutex io_mu;
  Status io_status;
  std::vector<BatchRunner::PolicyTask> tasks;
  tasks.reserve(todo.size());
  for (const CampaignJob& job : todo) {
    tasks.push_back([this, job](const JobContext& context) {
      return RunJob(job, context);
    });
  }
  const BatchRunner::CompletionHook on_complete =
      [&](std::size_t i, const JobResult& result) {
    const JobRecord record = MakeRecord(todo[i], result);
    Status status = writer.Append(record);
    if (status.ok() && record.quarantined()) {
      status = WriteQuarantine(todo[i], record);
    }
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(io_mu);
      if (io_status.ok()) io_status = status;
      // Durability is gone; stop starting new jobs.
      internal_stop_.store(true, std::memory_order_relaxed);
      return;
    }
    // The record is durable: let the heartbeat (or any other progress
    // listener) know.
    if (options_.on_record) options_.on_record();
    if (options_.stop_after >= 0 &&
        completions_.fetch_add(1, std::memory_order_relaxed) + 1 >=
            options_.stop_after) {
      internal_stop_.store(true, std::memory_order_relaxed);
    }
  };

  const std::vector<JobResult> results =
      runner.RunTasksWithPolicy(tasks, policy, on_complete);
  for (const JobResult& result : results) {
    if (result.outcome != JobOutcome::kSkipped &&
        result.outcome != JobOutcome::kCancelled) {
      ++summary.ran;
    }
  }
  PCPDA_RETURN_IF_ERROR(writer.Close());
  {
    std::lock_guard<std::mutex> lock(io_mu);
    return io_status;
  }
}

Status Campaign::Finalize(CampaignReport& report) {
  const std::int64_t num_jobs = spec_.num_jobs();
  std::vector<std::unique_ptr<JobRecord>> by_id(
      static_cast<std::size_t>(num_jobs));
  for (int shard = 0; shard < spec_.shards; ++shard) {
    auto loaded =
        LoadCheckpoint(ShardPath(options_.out_dir, shard), fingerprint_);
    if (!loaded.ok()) return loaded.status();
    for (JobRecord& record : loaded->records) {
      if (record.job_id >= num_jobs) continue;  // stale/foreign record
      auto& slot = by_id[static_cast<std::size_t>(record.job_id)];
      // Keep the first occurrence: a crash between append and resume can
      // at worst duplicate a record, and the first one is the one every
      // earlier merge saw.
      if (slot == nullptr) {
        slot = std::make_unique<JobRecord>(std::move(record));
      }
    }
  }

  report.total_jobs = num_jobs;
  std::vector<std::int64_t> recorded_per_shard(
      static_cast<std::size_t>(spec_.shards), 0);
  for (int shard = 0; shard < spec_.shards; ++shard) {
    const std::int64_t first =
        spec_.CellBegin(shard) * spec_.num_protocols();
    const std::int64_t last =
        spec_.CellBegin(shard + 1) * spec_.num_protocols();
    std::int64_t ok = 0, failed = 0, quarantined = 0, pending = 0;
    for (std::int64_t id = first; id < last; ++id) {
      const JobRecord* record = by_id[static_cast<std::size_t>(id)].get();
      if (record == nullptr) {
        ++pending;
      } else if (record->outcome == "ok") {
        ++ok;
      } else if (record->quarantined()) {
        ++quarantined;
      } else {
        ++failed;
      }
    }
    report.ok += ok;
    report.failed += failed;
    report.quarantined += quarantined;
    report.pending += pending;
    recorded_per_shard[static_cast<std::size_t>(shard)] =
        (last - first) - pending;
    for (ShardSummary& summary : report.shards) {
      if (summary.shard == shard) {
        summary.ok = ok;
        summary.failed = failed;
        summary.quarantined = quarantined;
        summary.pending = pending;
      }
    }
  }

  report.manifest_path = options_.out_dir + "/MANIFEST.json";
  PCPDA_RETURN_IF_ERROR(WriteFileAtomic(
      report.manifest_path, RenderManifest(report, recorded_per_shard)));

  if (report.pending == 0) {
    std::vector<JobRecord> records;
    records.reserve(static_cast<std::size_t>(num_jobs));
    for (auto& slot : by_id) records.push_back(*slot);
    report.bench_path = options_.out_dir + "/BENCH_campaign.json";
    PCPDA_RETURN_IF_ERROR(
        WriteFileAtomic(report.bench_path, RenderBench(records)));
    report.merged = true;
  }
  return Status::Ok();
}

std::string Campaign::RenderManifest(
    const CampaignReport& report,
    const std::vector<std::int64_t>& recorded_per_shard) const {
  std::vector<std::string> rows;
  rows.reserve(static_cast<std::size_t>(spec_.shards));
  for (int shard = 0; shard < spec_.shards; ++shard) {
    const std::int64_t jobs =
        (spec_.CellBegin(shard + 1) - spec_.CellBegin(shard)) *
        spec_.num_protocols();
    rows.push_back(StrFormat(
        "    {\"shard\": %d, \"jobs\": %lld, \"recorded\": %lld}", shard,
        static_cast<long long>(jobs),
        static_cast<long long>(
            recorded_per_shard[static_cast<std::size_t>(shard)])));
  }
  return StrFormat(
      "{\n"
      "  \"campaign\": \"%s\",\n"
      "  \"jobs\": %lld,\n"
      "  \"ok\": %lld,\n"
      "  \"failed\": %lld,\n"
      "  \"quarantined\": %lld,\n"
      "  \"pending\": %lld,\n"
      "  \"stopped\": %s,\n"
      "  \"complete\": %s,\n"
      "  \"shards\": [\n%s\n  ]\n"
      "}\n",
      fingerprint_.c_str(), static_cast<long long>(report.total_jobs),
      static_cast<long long>(report.ok),
      static_cast<long long>(report.failed),
      static_cast<long long>(report.quarantined),
      static_cast<long long>(report.pending),
      report.stopped ? "true" : "false",
      report.pending == 0 ? "true" : "false",
      Join(rows, ",\n").c_str());
}

std::string Campaign::RenderBench(
    const std::vector<JobRecord>& records) const {
  std::int64_t ok = 0, failed = 0, quarantined = 0;
  for (const JobRecord& record : records) {
    if (record.outcome == "ok") {
      ++ok;
    } else if (record.quarantined()) {
      ++quarantined;
    } else {
      ++failed;
    }
  }

  // Analysis pass: regenerate each cell's workload from its seed (job
  // inputs depend only on (spec, id), so this reproduces exactly what
  // the workers simulated — the checkpoint codec stays untouched) and
  // compute the static verdict per protocol. Generator-defect cells
  // keep kUnknown for every protocol.
  const std::int64_t num_cells = spec_.num_cells();
  std::vector<std::vector<SchedVerdict>> analytic(
      static_cast<std::size_t>(num_cells),
      std::vector<SchedVerdict>(
          static_cast<std::size_t>(spec_.num_protocols()),
          SchedVerdict::kUnknown));
  for (std::int64_t cell = 0; cell < num_cells; ++cell) {
    const CampaignJob job = spec_.JobById(cell * spec_.num_protocols());
    WorkloadParams params = spec_.workload;
    params.total_utilization =
        spec_.utilizations[static_cast<std::size_t>(job.util_index)];
    Rng rng(job.scenario_seed);
    const auto set = GenerateWorkload(params, rng);
    if (!set.ok()) continue;
    for (int p = 0; p < spec_.num_protocols(); ++p) {
      const ProtocolKind kind =
          spec_.protocols[static_cast<std::size_t>(p)];
      analytic[static_cast<std::size_t>(cell)]
              [static_cast<std::size_t>(p)] =
          AnalyzeResponseTimes(set.value(),
                               ComputeBlocking(set.value(), kind))
              .verdict;
    }
  }

  // Acceptance table: protocol-major, then the utilization sweep. Every
  // row aggregates the `scenarios` runs of its (protocol, utilization)
  // column; failed/quarantined runs count against acceptance but their
  // metrics are excluded (they are not trustworthy). The analytic_*
  // fields put the static acceptance curve next to the simulated one —
  // analytic_ratio can only undershoot ratio on a sound analysis
  // (schedulable claims are conservative, simulation is one witness).
  std::vector<std::string> rows;
  for (int p = 0; p < spec_.num_protocols(); ++p) {
    for (int u = 0; u < spec_.num_utils(); ++u) {
      std::int64_t accepted = 0, row_ok = 0, row_failed = 0;
      std::int64_t committed = 0, misses = 0, blocking = 0, restarts = 0,
                   deadlocks = 0;
      std::int64_t sched = 0, unsched = 0, unknown = 0;
      for (int s = 0; s < spec_.scenarios; ++s) {
        const std::int64_t cell =
            static_cast<std::int64_t>(s) * spec_.num_utils() + u;
        switch (analytic[static_cast<std::size_t>(cell)]
                        [static_cast<std::size_t>(p)]) {
          case SchedVerdict::kSchedulable:
            ++sched;
            break;
          case SchedVerdict::kUnschedulable:
            ++unsched;
            break;
          case SchedVerdict::kUnknown:
            ++unknown;
            break;
        }
        const JobRecord& record = records[static_cast<std::size_t>(
            cell * spec_.num_protocols() + p)];
        if (record.outcome == "ok") {
          ++row_ok;
          if (record.accepted()) ++accepted;
          committed += record.committed;
          misses += record.misses;
          blocking += record.blocking_ticks;
          restarts += record.restarts;
          deadlocks += record.deadlocks;
        } else if (record.outcome != "generator_defect") {
          // Generator defects fail the *cell*, not the protocol: they
          // count against acceptance (not in `accepted`) but are kept
          // out of the per-row protocol failure tally — the failures
          // array below still itemizes them.
          ++row_failed;
        }
      }
      rows.push_back(StrFormat(
          "    {\"protocol\": \"%s\", \"utilization\": %g, "
          "\"scenarios\": %d, \"accepted\": %lld, \"ratio\": %.6f, "
          "\"analytic_schedulable\": %lld, "
          "\"analytic_unschedulable\": %lld, "
          "\"analytic_unknown\": %lld, \"analytic_ratio\": %.6f, "
          "\"failed\": %lld, \"committed\": %lld, \"misses\": %lld, "
          "\"blocking_ticks\": %lld, \"restarts\": %lld, "
          "\"deadlocks\": %lld}",
          ToString(spec_.protocols[static_cast<std::size_t>(p)]),
          spec_.utilizations[static_cast<std::size_t>(u)],
          spec_.scenarios, static_cast<long long>(accepted),
          static_cast<double>(accepted) /
              static_cast<double>(spec_.scenarios),
          static_cast<long long>(sched), static_cast<long long>(unsched),
          static_cast<long long>(unknown),
          static_cast<double>(sched) /
              static_cast<double>(spec_.scenarios),
          static_cast<long long>(row_failed),
          static_cast<long long>(committed),
          static_cast<long long>(misses),
          static_cast<long long>(blocking),
          static_cast<long long>(restarts),
          static_cast<long long>(deadlocks)));
    }
  }

  // Explicit failure accounting, by job id (deterministic order).
  std::vector<std::string> failures;
  for (const JobRecord& record : records) {
    if (record.outcome == "ok") continue;
    failures.push_back(StrFormat(
        "    {\"job\": %lld, \"outcome\": \"%s\", \"quarantined\": %s, "
        "\"attempts\": %d, \"code\": \"%s\"}",
        static_cast<long long>(record.job_id), record.outcome.c_str(),
        record.quarantined() ? "true" : "false", record.attempts,
        record.code.c_str()));
  }

  return StrFormat(
      "{\n"
      "  \"campaign\": \"%s\",\n"
      "  \"jobs\": %lld,\n"
      "  \"ok\": %lld,\n"
      "  \"failed\": %lld,\n"
      "  \"quarantined\": %lld,\n"
      "  \"acceptance\": [\n%s\n  ],\n"
      "  \"failures\": [%s%s]\n"
      "}\n",
      fingerprint_.c_str(),
      static_cast<long long>(records.size()),
      static_cast<long long>(ok), static_cast<long long>(failed),
      static_cast<long long>(quarantined), Join(rows, ",\n").c_str(),
      failures.empty() ? "" : ("\n" + Join(failures, ",\n")).c_str(),
      failures.empty() ? "" : "\n  ");
}

StatusOr<CampaignReport> Campaign::Run() {
  PCPDA_RETURN_IF_ERROR(spec_.Validate());
  if (options_.out_dir.empty()) {
    return Status::InvalidArgument("CampaignOptions.out_dir is required");
  }
  if (options_.only_shard >= spec_.shards) {
    return Status::InvalidArgument(
        StrFormat("only_shard %d out of range for %d shards",
                  options_.only_shard, spec_.shards));
  }
  if (options_.worker && options_.only_shard < 0) {
    return Status::InvalidArgument(
        "worker mode requires an assigned shard (only_shard)");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.out_dir, ec);
  if (ec) {
    return Status::Internal(StrFormat("mkdir %s: %s",
                                      options_.out_dir.c_str(),
                                      ec.message().c_str()));
  }

  CampaignReport report;
  report.fingerprint = fingerprint_;
  BatchRunner runner(BatchOptions{options_.jobs});
  const int first =
      options_.only_shard >= 0 ? options_.only_shard : 0;
  const int last =
      options_.only_shard >= 0 ? options_.only_shard + 1 : spec_.shards;
  for (int shard = first; shard < last; ++shard) {
    if (StopRequested()) break;
    ShardSummary summary;
    summary.shard = shard;
    PCPDA_RETURN_IF_ERROR(RunShard(runner, shard, summary));
    report.shards.push_back(summary);
  }
  report.stopped = StopRequested();
  if (options_.worker) {
    // The supervisor owns MANIFEST/BENCH: parallel workers must never
    // race on them, so a worker reports its shard summaries and stops.
    return report;
  }
  PCPDA_RETURN_IF_ERROR(Finalize(report));
  return report;
}

StatusOr<CampaignReport> Campaign::Merge(bool stopped) {
  PCPDA_RETURN_IF_ERROR(spec_.Validate());
  if (options_.out_dir.empty()) {
    return Status::InvalidArgument("CampaignOptions.out_dir is required");
  }
  CampaignReport report;
  report.fingerprint = fingerprint_;
  report.stopped = stopped;
  PCPDA_RETURN_IF_ERROR(Finalize(report));
  return report;
}

Status Campaign::RecordPoisonJob(const JobRecord& record) {
  const int shard = spec_.ShardOfJob(record.job_id);
  const std::string path = ShardPath(options_.out_dir, shard);
  auto loaded = LoadCheckpoint(path, fingerprint_);
  if (!loaded.ok()) return loaded.status();
  for (const JobRecord& existing : loaded->records) {
    // Already recorded (e.g. the worker appended before dying on the
    // fsync): keep the first occurrence, like every other merge path.
    if (existing.job_id == record.job_id) return Status::Ok();
  }
  CheckpointWriter writer;
  PCPDA_RETURN_IF_ERROR(
      writer.Open(path, fingerprint_, loaded->valid_bytes, options_.fsync));
  PCPDA_RETURN_IF_ERROR(writer.Append(record));
  PCPDA_RETURN_IF_ERROR(writer.Close());
  return WriteQuarantine(spec_.JobById(record.job_id), record);
}

}  // namespace pcpda
