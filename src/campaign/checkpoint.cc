#include "campaign/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace pcpda {
namespace {

/// JSON string escaping for the few characters our own status messages
/// can contain. Control characters become \u00XX so a message can never
/// smuggle a newline into the line-oriented checkpoint.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Strict cursor-based scanner for the fixed record shape. Any deviation
/// fails the whole line; the loader then treats it as torn.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : s_(line) {}

  bool Literal(const char* text) {
    const std::size_t len = std::strlen(text);
    if (s_.compare(pos_, len, text) != 0) return false;
    pos_ += len;
    return true;
  }

  bool Int(std::int64_t* out) {
    std::size_t i = pos_;
    if (i < s_.size() && s_[i] == '-') ++i;
    std::size_t digits = i;
    while (i < s_.size() && s_[i] >= '0' && s_[i] <= '9') ++i;
    if (i == digits) return false;
    errno = 0;
    *out = std::strtoll(s_.c_str() + pos_, nullptr, 10);
    if (errno == ERANGE) return false;
    pos_ = i;
    return true;
  }

  bool QuotedString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      char esc = s_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          int value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              value |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              value |= h - 'A' + 10;
            } else {
              return false;
            }
          }
          if (value > 0xff) return false;  // messages are byte strings
          *out += static_cast<char>(value);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool Done() const { return pos_ == s_.size(); }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string HeaderLine(const std::string& fingerprint) {
  return StrFormat("{\"campaign\":\"%s\",\"v\":1}",
                   JsonEscape(fingerprint).c_str());
}

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(
      StrFormat("%s %s: %s", op, path.c_str(), std::strerror(errno)));
}

Status FsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::Ok();
}

Status WriteAll(int fd, const std::string& data, const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

/// Remaining successful appends before the test shim injects ENOSPC;
/// -1 = shim off. Relaxed atomics: tests set it before the campaign
/// starts and the exact interleaving of the final racing appends does
/// not matter — at least one append fails, which is the property under
/// test.
std::atomic<int> g_append_failure_budget{-1};

}  // namespace

void SetCheckpointAppendFailureForTest(int successes) {
  g_append_failure_budget.store(successes, std::memory_order_relaxed);
}

std::string EncodeJobRecord(const JobRecord& r) {
  return StrFormat(
      "{\"job\":%lld,\"outcome\":\"%s\",\"attempts\":%d,"
      "\"code\":\"%s\",\"msg\":\"%s\",\"released\":%lld,"
      "\"committed\":%lld,\"misses\":%lld,\"blocking\":%lld,"
      "\"restarts\":%lld,\"deadlocks\":%lld}",
      static_cast<long long>(r.job_id), JsonEscape(r.outcome).c_str(),
      r.attempts, JsonEscape(r.code).c_str(),
      JsonEscape(r.message).c_str(), static_cast<long long>(r.released),
      static_cast<long long>(r.committed),
      static_cast<long long>(r.misses),
      static_cast<long long>(r.blocking_ticks),
      static_cast<long long>(r.restarts),
      static_cast<long long>(r.deadlocks));
}

StatusOr<JobRecord> DecodeJobRecord(const std::string& line) {
  JobRecord r;
  LineScanner scan(line);
  std::int64_t attempts = 0;
  const bool ok =
      scan.Literal("{\"job\":") && scan.Int(&r.job_id) &&
      scan.Literal(",\"outcome\":") && scan.QuotedString(&r.outcome) &&
      scan.Literal(",\"attempts\":") && scan.Int(&attempts) &&
      scan.Literal(",\"code\":") && scan.QuotedString(&r.code) &&
      scan.Literal(",\"msg\":") && scan.QuotedString(&r.message) &&
      scan.Literal(",\"released\":") && scan.Int(&r.released) &&
      scan.Literal(",\"committed\":") && scan.Int(&r.committed) &&
      scan.Literal(",\"misses\":") && scan.Int(&r.misses) &&
      scan.Literal(",\"blocking\":") && scan.Int(&r.blocking_ticks) &&
      scan.Literal(",\"restarts\":") && scan.Int(&r.restarts) &&
      scan.Literal(",\"deadlocks\":") && scan.Int(&r.deadlocks) &&
      scan.Literal("}") && scan.Done();
  if (!ok) {
    return Status::InvalidArgument("malformed checkpoint record: " + line);
  }
  if (r.job_id < 0 || attempts < 1 || attempts > 1'000'000) {
    return Status::InvalidArgument("implausible checkpoint record: " +
                                   line);
  }
  if (r.outcome != "ok" && r.outcome != "failed" &&
      r.outcome != "timeout" && r.outcome != "generator_defect" &&
      r.outcome != "crash") {
    return Status::InvalidArgument("unknown checkpoint outcome: " + line);
  }
  r.attempts = static_cast<int>(attempts);
  return r;
}

StatusOr<LoadedCheckpoint> LoadCheckpoint(const std::string& path,
                                          const std::string& fingerprint) {
  LoadedCheckpoint loaded;
  auto contents = ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) {
      return loaded;  // no checkpoint yet: start fresh
    }
    return contents.status();
  }
  const std::string& text = *contents;
  if (text.empty()) return loaded;  // created but never written: fresh

  // Line 1 must be an intact header matching the campaign.
  const std::size_t header_end = text.find('\n');
  if (header_end == std::string::npos) {
    // The header itself was torn; nothing is trustworthy, start fresh.
    loaded.torn_bytes = static_cast<std::int64_t>(text.size());
    return loaded;
  }
  if (text.substr(0, header_end) != HeaderLine(fingerprint)) {
    return Status::FailedPrecondition(
        StrFormat("%s belongs to a different campaign (spec fingerprint "
                  "mismatch); move it aside or use a fresh --out dir",
                  path.c_str()));
  }
  loaded.valid_bytes = static_cast<std::int64_t>(header_end + 1);

  std::size_t pos = header_end + 1;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail: no newline
    const std::string line = text.substr(pos, eol - pos);
    auto record = DecodeJobRecord(line);
    if (!record.ok()) break;  // torn or corrupt: drop this line and after
    loaded.records.push_back(std::move(record).value());
    pos = eol + 1;
    loaded.valid_bytes = static_cast<std::int64_t>(pos);
  }
  loaded.torn_bytes =
      static_cast<std::int64_t>(text.size()) - loaded.valid_bytes;
  return loaded;
}

CheckpointWriter::~CheckpointWriter() { Close(); }

Status CheckpointWriter::Open(const std::string& path,
                              const std::string& fingerprint,
                              std::int64_t valid_bytes, bool fsync) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::FailedPrecondition("writer already open");
  fsync_ = fsync;
  path_ = path;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Errno("open", path);
  // Cut off any torn tail (or stale contents when starting fresh) so the
  // append position is the end of the last *complete* record.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    const Status status = Errno("ftruncate", path);
    ::close(fd);
    return status;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status status = Errno("lseek", path);
    ::close(fd);
    return status;
  }
  fd_ = fd;
  if (valid_bytes == 0) {
    const Status status = AppendLine(HeaderLine(fingerprint));
    if (!status.ok()) {
      ::close(fd_);
      fd_ = -1;
      return status;
    }
  }
  return Status::Ok();
}

Status CheckpointWriter::AppendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("writer not open");
  PCPDA_RETURN_IF_ERROR(WriteAll(fd_, line + "\n", path_));
  if (fsync_ && ::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::Ok();
}

Status CheckpointWriter::Append(const JobRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  int budget = g_append_failure_budget.load(std::memory_order_relaxed);
  if (budget >= 0) {
    if (budget == 0) {
      return Status::Internal(StrFormat(
          "write %s: No space left on device (injected)", path_.c_str()));
    }
    g_append_failure_budget.store(budget - 1, std::memory_order_relaxed);
  }
  return AppendLine(EncodeJobRecord(record));
}

Status CheckpointWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::Ok();
  Status status = Status::Ok();
  if (fsync_ && ::fsync(fd_) != 0) status = Errno("fsync", path_);
  if (::close(fd_) != 0 && status.ok()) status = Errno("close", path_);
  fd_ = -1;
  return status;
}

Status WriteFileAtomic(const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status status = WriteAll(fd, contents, tmp);
  if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync", tmp);
  if (::close(fd) != 0 && status.ok()) status = Errno("close", tmp);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  return FsyncParentDir(path);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace pcpda
