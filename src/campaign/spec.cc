#include "campaign/spec.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace pcpda {

Status CampaignSpec::Validate() const {
  if (scenarios < 1) {
    return Status::InvalidArgument(
        StrFormat("scenarios must be >= 1, got %d", scenarios));
  }
  if (utilizations.empty()) {
    return Status::InvalidArgument("utilization sweep is empty");
  }
  if (protocols.empty()) {
    return Status::InvalidArgument("protocol list is empty");
  }
  if (horizon <= 0) {
    return Status::InvalidArgument(
        StrFormat("horizon must be > 0, got %lld",
                  static_cast<long long>(horizon)));
  }
  if (shards < 1 || shards > num_cells()) {
    return Status::InvalidArgument(
        StrFormat("shards must be in [1, %lld] (one cell per shard "
                  "minimum), got %d",
                  static_cast<long long>(num_cells()), shards));
  }
  if (max_sim_ticks < 0 || wall_budget_ms < 0 || max_retries < 0) {
    return Status::InvalidArgument(
        "watchdog budgets and max_retries must be >= 0");
  }
  for (double u : utilizations) {
    if (u <= 0.0 || u > 1.0) {
      return Status::InvalidArgument(StrFormat(
          "utilization points must be in (0, 1], got %g", u));
    }
  }
  // Vet the workload shape once per sweep point with a throwaway rng:
  // a point the generator rejects would fail every scenario of its
  // column, which is a spec bug, not 'scenarios' failed jobs.
  for (double u : utilizations) {
    WorkloadParams params = workload;
    params.total_utilization = u;
    Rng rng(1);
    auto set = GenerateWorkload(params, rng);
    if (!set.ok()) {
      return Status::InvalidArgument(
          StrFormat("utilization point %g is infeasible for the "
                    "configured workload: %s",
                    u, set.status().message().c_str()));
    }
  }
  return Status::Ok();
}

std::string CampaignSpec::Fingerprint() const {
  std::vector<std::string> protos;
  protos.reserve(protocols.size());
  for (ProtocolKind kind : protocols) protos.push_back(ToString(kind));
  std::vector<std::string> utils;
  utils.reserve(utilizations.size());
  for (double u : utilizations) utils.push_back(StrFormat("%g", u));
  const WorkloadParams& w = workload;
  std::string gen = StrFormat(
      "%s txns=%d items=%d period=[%lld,%lld] ops=[%d,%d] wf=%g",
      ToString(w.distribution), w.num_transactions, w.num_items,
      static_cast<long long>(w.min_period),
      static_cast<long long>(w.max_period), w.min_ops, w.max_ops,
      w.write_fraction);
  if (w.distribution != UtilDistribution::kUUniFast) {
    gen += StrFormat(" tasku=[%g,%g]", w.min_task_utilization,
                     w.max_task_utilization);
    if (w.distribution == UtilDistribution::kExponential) {
      gen += StrFormat(" mean=%g", w.exp_mean_utilization);
    }
    if (w.distribution == UtilDistribution::kBimodal) {
      gen += StrFormat(" split=%g light=%g", w.bimodal_split,
                       w.bimodal_light_fraction);
    }
  }
  return StrFormat(
      "seed=%llu scenarios=%d horizon=%lld ticks=%lld retries=%d "
      "utils=[%s] protocols=[%s] gen={%s}",
      static_cast<unsigned long long>(base_seed), scenarios,
      static_cast<long long>(horizon),
      static_cast<long long>(effective_max_sim_ticks()), max_retries,
      Join(utils, ",").c_str(), Join(protos, ",").c_str(), gen.c_str());
}

std::int64_t CampaignSpec::CellBegin(int shard) const {
  PCPDA_CHECK(shard >= 0 && shard <= shards);
  const std::int64_t cells = num_cells();
  const std::int64_t base = cells / shards;
  const std::int64_t extra = cells % shards;
  // The first `extra` shards take base+1 cells each.
  const std::int64_t s = shard;
  return s * base + std::min<std::int64_t>(s, extra);
}

int CampaignSpec::ShardOfJob(std::int64_t id) const {
  PCPDA_CHECK(id >= 0 && id < num_jobs());
  const std::int64_t cell = id / num_protocols();
  // Shards hold contiguous cell ranges; a linear scan over the (small)
  // shard count keeps the arithmetic in one obviously-correct place.
  for (int shard = 0; shard < shards; ++shard) {
    if (cell < CellBegin(shard + 1)) return shard;
  }
  PCPDA_CHECK_MSG(false, "unreachable: job id inside num_jobs()");
  return shards - 1;
}

std::vector<std::string> CampaignSpec::ToFlags() const {
  std::vector<std::string> flags;
  flags.push_back(StrFormat("--seed=%llu",
                            static_cast<unsigned long long>(base_seed)));
  flags.push_back(StrFormat("--scenarios=%d", scenarios));
  flags.push_back(StrFormat("--shards=%d", shards));
  flags.push_back(StrFormat("--horizon=%lld",
                            static_cast<long long>(horizon)));
  flags.push_back(StrFormat("--max-sim-ticks=%lld",
                            static_cast<long long>(max_sim_ticks)));
  flags.push_back(StrFormat("--wall-budget-ms=%d", wall_budget_ms));
  flags.push_back(StrFormat("--retries=%d", max_retries));
  std::vector<std::string> utils;
  utils.reserve(utilizations.size());
  for (double u : utilizations) utils.push_back(StrFormat("%.17g", u));
  flags.push_back("--utils=" + Join(utils, ","));
  std::vector<std::string> protos;
  protos.reserve(protocols.size());
  for (ProtocolKind kind : protocols) protos.push_back(ToString(kind));
  flags.push_back("--protocols=" + Join(protos, ","));
  const WorkloadParams& w = workload;
  flags.push_back(StrFormat("--dist=%s", ToString(w.distribution)));
  flags.push_back(StrFormat("--txns=%d", w.num_transactions));
  flags.push_back(StrFormat("--items=%d", w.num_items));
  flags.push_back(StrFormat("--min-period=%lld",
                            static_cast<long long>(w.min_period)));
  flags.push_back(StrFormat("--max-period=%lld",
                            static_cast<long long>(w.max_period)));
  flags.push_back(StrFormat("--min-ops=%d", w.min_ops));
  flags.push_back(StrFormat("--max-ops=%d", w.max_ops));
  flags.push_back(StrFormat("--write-fraction=%.17g", w.write_fraction));
  flags.push_back(
      StrFormat("--task-util-min=%.17g", w.min_task_utilization));
  flags.push_back(
      StrFormat("--task-util-max=%.17g", w.max_task_utilization));
  flags.push_back(StrFormat("--exp-mean=%.17g", w.exp_mean_utilization));
  flags.push_back(StrFormat("--bimodal-split=%.17g", w.bimodal_split));
  flags.push_back(
      StrFormat("--bimodal-light=%.17g", w.bimodal_light_fraction));
  return flags;
}

CampaignJob CampaignSpec::JobById(std::int64_t id) const {
  PCPDA_CHECK(id >= 0 && id < num_jobs());
  CampaignJob job;
  job.id = id;
  const std::int64_t cell = id / num_protocols();
  job.protocol_index = static_cast<int>(id % num_protocols());
  job.scenario_index = static_cast<int>(cell / num_utils());
  job.util_index = static_cast<int>(cell % num_utils());
  job.scenario_seed =
      SplitMixSeed(base_seed, static_cast<std::uint64_t>(cell));
  return job;
}

std::vector<CampaignJob> CampaignSpec::JobsForShard(int shard) const {
  PCPDA_CHECK(shard >= 0 && shard < shards);
  const std::int64_t first = CellBegin(shard) * num_protocols();
  const std::int64_t last = CellBegin(shard + 1) * num_protocols();
  std::vector<CampaignJob> jobs;
  jobs.reserve(static_cast<std::size_t>(last - first));
  for (std::int64_t id = first; id < last; ++id) {
    jobs.push_back(JobById(id));
  }
  return jobs;
}

}  // namespace pcpda
