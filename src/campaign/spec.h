#ifndef PCPDA_CAMPAIGN_SPEC_H_
#define PCPDA_CAMPAIGN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "protocols/factory.h"
#include "workload/generator.h"

namespace pcpda {

/// One job of a campaign grid. The grid is the cross product
/// scenario x utilization x protocol; a *cell* is one (scenario,
/// utilization) pair, i.e. one generated workload that every protocol
/// of the grid runs against. Ids are dense:
///
///   cell = scenario_index * |utilizations| + util_index
///   id   = cell * |protocols| + protocol_index
///
/// and scenario_seed = SplitMixSeed(base_seed, cell), so a job's inputs
/// depend only on (spec, id) — never on shard layout, worker count or
/// execution order. That is the entire determinism argument for
/// crash-safe resume (DESIGN.md §12).
struct CampaignJob {
  std::int64_t id = 0;
  int scenario_index = 0;
  int util_index = 0;
  int protocol_index = 0;
  std::uint64_t scenario_seed = 0;
};

/// Declarative description of an experiment campaign: which grid to run
/// and under what robustness policy. Everything that affects a job's
/// result is in here (and folded into Fingerprint()); everything that
/// only affects *how* the grid is executed — worker count, fsync, output
/// directory, fault injection — lives in CampaignOptions.
struct CampaignSpec {
  /// Base of the per-cell SplitMixSeed streams.
  std::uint64_t base_seed = 1;
  /// Random scenarios per utilization point.
  int scenarios = 100;
  /// Shards the grid is partitioned into. Each shard owns a contiguous
  /// range of cells (never a partial cell), checkpoints independently,
  /// and can be run by a separate invocation.
  int shards = 1;
  /// The utilization sweep (paper Section 10 sweeps 0.1 .. 0.9).
  std::vector<double> utilizations = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9};
  /// Protocols to compare at every point.
  std::vector<ProtocolKind> protocols;
  /// Workload shape; total_utilization is overridden per cell by the
  /// sweep value.
  WorkloadParams workload;
  /// Simulation horizon per job.
  Tick horizon = 3000;

  // --- robustness policy (JobPolicy fields, see runner/batch_runner.h) --
  /// Deterministic tick budget per attempt; 0 derives a generous default
  /// from the horizon (4x) so a runaway protocol cannot stall a shard.
  Tick max_sim_ticks = 0;
  /// Wall-clock budget per attempt in ms; 0 = unlimited (the tick budget
  /// is the primary guard; this is the backstop for genuine hangs).
  int wall_budget_ms = 0;
  /// Extra attempts for jobs that end in a captured exception.
  int max_retries = 1;

  int num_utils() const { return static_cast<int>(utilizations.size()); }
  int num_protocols() const { return static_cast<int>(protocols.size()); }
  std::int64_t num_cells() const {
    return static_cast<std::int64_t>(scenarios) * num_utils();
  }
  std::int64_t num_jobs() const { return num_cells() * num_protocols(); }

  /// The tick budget actually applied to jobs.
  Tick effective_max_sim_ticks() const {
    return max_sim_ticks > 0 ? max_sim_ticks : 4 * horizon;
  }

  /// Rejects empty axes, bad shard counts and utilization points that the
  /// generator would refuse for every scenario of a cell.
  Status Validate() const;

  /// Canonical one-line description of everything that affects job
  /// results. Stored in checkpoint headers and BENCH_campaign.json;
  /// resuming against a checkpoint whose fingerprint differs is an
  /// error, not a silent remix of two campaigns. Deliberately excludes
  /// shards/jobs/output knobs: a 3-shard rerun may reuse a 1-shard
  /// checkpoint.
  std::string Fingerprint() const;

  /// Expands the job descriptors of one shard, in id order. Shard s owns
  /// the contiguous cell range [CellBegin(s), CellBegin(s+1)).
  std::vector<CampaignJob> JobsForShard(int shard) const;

  /// First cell owned by `shard` (== num_cells() for shard == shards).
  std::int64_t CellBegin(int shard) const;

  /// The shard owning global job id `id`.
  int ShardOfJob(std::int64_t id) const;

  /// The job descriptor for a global job id.
  CampaignJob JobById(std::int64_t id) const;

  /// Serializes every result-affecting field back into pcpda_campaign
  /// CLI flags, the form the supervisor hands to forked workers. Doubles
  /// are emitted with %.17g so the worker re-parses bit-identical values
  /// and computes the same Fingerprint() — a mismatch would make the
  /// worker refuse the shard checkpoint rather than silently remix.
  std::vector<std::string> ToFlags() const;
};

}  // namespace pcpda

#endif  // PCPDA_CAMPAIGN_SPEC_H_
