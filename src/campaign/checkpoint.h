#ifndef PCPDA_CAMPAIGN_CHECKPOINT_H_
#define PCPDA_CAMPAIGN_CHECKPOINT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace pcpda {

/// One completed job, as persisted in a shard checkpoint. This is the
/// unit of crash safety: a record is either fully on disk (its line ends
/// in '\n' and decodes) or it never happened. Carries everything the
/// merge step needs, so resuming never re-runs a recorded job.
struct JobRecord {
  std::int64_t job_id = 0;
  /// ToString(JobOutcome) for ok/failed/timeout, plus two outcomes that
  /// only the campaign layers emit: "generator_defect" (the generated
  /// scenario failed the lint pre-flight — a generator bug, not a
  /// protocol failure) and "crash" (the worker *process* died on this
  /// job; written by the supervisor after bisection isolates it).
  /// Cancelled and skipped jobs are never recorded — resume re-runs them.
  std::string outcome = "ok";
  int attempts = 1;
  /// ToString of the final StatusCode ("Ok" when the job succeeded).
  std::string code = "Ok";
  /// Final status message; empty when ok.
  std::string message;
  // --- metrics the merge aggregates (zero for failed jobs) -------------
  std::int64_t released = 0;
  std::int64_t committed = 0;
  std::int64_t misses = 0;
  std::int64_t blocking_ticks = 0;
  std::int64_t restarts = 0;
  std::int64_t deadlocks = 0;

  /// Poisoned jobs (captured exception, watchdog timeout, lint-rejected
  /// generated workload, or a worker-process death isolated by the
  /// supervisor's bisection) that were quarantined rather than merely
  /// failed.
  bool quarantined() const {
    return outcome == "timeout" || outcome == "generator_defect" ||
           outcome == "crash" ||
           (outcome == "failed" && code == "Internal");
  }
  /// A run that finished clean with every deadline met — the numerator
  /// of the paper's acceptance ratio.
  bool accepted() const { return outcome == "ok" && misses == 0; }

  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

/// Serializes `record` as one JSON object line (no trailing newline).
std::string EncodeJobRecord(const JobRecord& record);

/// Strict inverse of EncodeJobRecord: every field must be present and
/// well-formed, unknown keys are rejected. A checkpoint line that fails
/// to decode is treated as torn, not skipped.
StatusOr<JobRecord> DecodeJobRecord(const std::string& line);

/// A shard checkpoint read back from disk.
struct LoadedCheckpoint {
  /// Decoded records, in file (= completion) order.
  std::vector<JobRecord> records;
  /// Byte length of the valid prefix: header plus every complete record
  /// line. Anything past it is a torn tail from a crash mid-append.
  std::int64_t valid_bytes = 0;
  /// Bytes of torn tail discarded (0 for a clean file).
  std::int64_t torn_bytes = 0;
};

/// Loads a shard checkpoint. A missing file is an empty checkpoint. The
/// first line must be a header whose campaign fingerprint equals
/// `fingerprint` — resuming a different campaign into this checkpoint is
/// an error. A trailing partial line (crash mid-write) is reported via
/// torn_bytes and excluded from records; duplicate job ids keep the
/// first occurrence (a crash between write and index update can at worst
/// duplicate, never lose).
StatusOr<LoadedCheckpoint> LoadCheckpoint(const std::string& path,
                                          const std::string& fingerprint);

/// Append-only, fsync'd writer for one shard checkpoint. Open() creates
/// the file with a header line, or — when resuming — truncates it to
/// `valid_bytes` first so a torn tail can never corrupt the records
/// appended after it. Append() is thread-safe (the batch completion hook
/// runs on worker threads) and durable before it returns when fsync is
/// on.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Opens `path` for appending. `valid_bytes` == 0 (re)writes the file
  /// from scratch with a fresh header; > 0 keeps the valid prefix of an
  /// existing checkpoint and drops everything after it.
  Status Open(const std::string& path, const std::string& fingerprint,
              std::int64_t valid_bytes, bool fsync);

  /// Appends one record line and (optionally) fsyncs it.
  Status Append(const JobRecord& record);

  /// Flushes and closes; further Appends fail. Idempotent.
  Status Close();

 private:
  /// Appends one line + '\n' and fsyncs. Caller holds mu_.
  Status AppendLine(const std::string& line);

  std::mutex mu_;
  int fd_ = -1;
  bool fsync_ = true;
  std::string path_;
};

/// Failing-writer shim for robustness tests: after `successes` more
/// record appends succeed, every further CheckpointWriter append fails
/// as ENOSPC would (Internal, "No space left on device") without
/// touching the file. -1 disables the shim (the default). Affects every
/// writer in the process; tests must reset it. Header lines written by
/// Open() do not consume the budget.
void SetCheckpointAppendFailureForTest(int successes);

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, fsync, rename over the target, fsync the directory. Readers
/// see either the old file or the new one, never a prefix.
Status WriteFileAtomic(const std::string& path,
                       const std::string& contents);

/// Reads a whole file ("" for empty). NotFound when it does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace pcpda

#endif  // PCPDA_CAMPAIGN_CHECKPOINT_H_
