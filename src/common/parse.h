#ifndef PCPDA_COMMON_PARSE_H_
#define PCPDA_COMMON_PARSE_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace pcpda {

/// Strict numeric parsing for CLI flags and environment variables.
///
/// The bare std::atoi / std::strtoll idiom the example binaries used to
/// share silently maps garbage ("abc"), overflow ("99999999999999999999")
/// and stray suffixes ("10x") to 0 or a clamped value — a sweep invoked
/// with a typo'd --horizon runs with horizon 0 and reports success. These
/// helpers accept exactly one full base-10 number (optional sign,
/// surrounding whitespace rejected) inside the caller's range and return
/// InvalidArgument for everything else, with the offending text quoted.

/// Parses `text` as an integer in [min, max].
StatusOr<std::int64_t> ParseInt64(
    const std::string& text,
    std::int64_t min = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max = std::numeric_limits<std::int64_t>::max());

/// Parses `text` as an unsigned integer in [0, max]. A leading '-' is
/// rejected (strtoull would silently wrap it).
StatusOr<std::uint64_t> ParseUInt64(
    const std::string& text,
    std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

/// Parses `text` as a finite double in [min, max].
StatusOr<double> ParseDouble(const std::string& text, double min,
                             double max);

/// Parses a simulation tick count in [min, max] (ticks are int64).
StatusOr<Tick> ParseTick(
    const std::string& text, Tick min = 0,
    Tick max = std::numeric_limits<Tick>::max());

/// CLI wrappers: on failure print "<flag>: <error>" to stderr and return
/// false — the caller shows usage and exits with code 2. `flag` is the
/// flag name as spelled on the command line (e.g. "--jobs").
bool ParseFlagInt64(const char* flag, const std::string& value,
                    std::int64_t min, std::int64_t max, std::int64_t* out);
bool ParseFlagUInt64(const char* flag, const std::string& value,
                     std::uint64_t max, std::uint64_t* out);
bool ParseFlagDouble(const char* flag, const std::string& value, double min,
                     double max, double* out);
bool ParseFlagTick(const char* flag, const std::string& value, Tick min,
                   Tick max, Tick* out);
bool ParseFlagInt(const char* flag, const std::string& value, int min,
                  int max, int* out);

/// Worker-count environment variable (e.g. PCPDA_JOBS): unset or empty
/// yields `fallback`; an integer in [1, 1024] is used as-is; anything
/// else (garbage or out of range) warns once on stderr and yields
/// `fallback`. Never fails — an env var travels with the shell session,
/// so a typo should degrade a bench run to serial, not kill it.
int JobsFromEnv(const char* name, int fallback);

}  // namespace pcpda

#endif  // PCPDA_COMMON_PARSE_H_
