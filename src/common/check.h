#ifndef PCPDA_COMMON_CHECK_H_
#define PCPDA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros. The project does not use C++ exceptions
// (recoverable errors travel through pcpda::Status); a failed check is a
// programming error and terminates after printing the violated condition.

#define PCPDA_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "PCPDA_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define PCPDA_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PCPDA_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, (msg));                       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Marks code paths that are impossible by construction.
#define PCPDA_UNREACHABLE(msg)                                              \
  do {                                                                      \
    std::fprintf(stderr, "PCPDA_UNREACHABLE at %s:%d: %s\n", __FILE__,      \
                 __LINE__, (msg));                                          \
    std::abort();                                                           \
  } while (0)

#endif  // PCPDA_COMMON_CHECK_H_
