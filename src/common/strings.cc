#include "common/strings.h"

#include <cstdio>

#include "common/check.h"
#include "common/types.h"

namespace pcpda {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  PCPDA_CHECK(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string PadRight(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string PadLeft(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string Priority::DebugString() const {
  if (is_dummy()) return "dummy";
  return StrFormat("prio(%d)", level_);
}

}  // namespace pcpda
