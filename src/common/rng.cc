#include "common/rng.h"

#include <unordered_set>

namespace pcpda {
namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMixSeed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  PCPDA_CHECK(lo <= hi);
  // Width and offset arithmetic stay in uint64: `hi - lo` overflows
  // int64 whenever the interval spans more than half the domain.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t value = Next();
  while (value >= limit) value = Next();
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   value % span);
}

double Rng::UniformDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformRange(double lo, double hi) {
  PCPDA_CHECK(lo < hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<std::int64_t> Rng::SampleWithoutReplacement(std::int64_t n,
                                                        std::int64_t k) {
  PCPDA_CHECK(k >= 0 && k <= n);
  // Floyd's algorithm: O(k) expected draws.
  std::unordered_set<std::int64_t> seen;
  std::vector<std::int64_t> result;
  result.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = n - k; j < n; ++j) {
    std::int64_t v = UniformInt(0, j);
    if (seen.contains(v)) v = j;
    seen.insert(v);
    result.push_back(v);
  }
  Shuffle(result);
  return result;
}

}  // namespace pcpda
