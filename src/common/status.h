#ifndef PCPDA_COMMON_STATUS_H_
#define PCPDA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace pcpda {

/// Error category for recoverable failures (configuration and input
/// validation). Invariant violations use PCPDA_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kAlreadyExists,
  kInternal,
  /// A time or tick budget ran out before the operation finished (the
  /// runner's per-job watchdog; a partial result is not trustworthy).
  kDeadlineExceeded,
};

const char* ToString(StatusCode code);

/// Lightweight Status in the RocksDB/absl style: cheap to pass by value,
/// carries a code and a message. The project does not use exceptions.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Minimal StatusOr: access to the value
/// of a non-ok result is a checked failure. T need not be default
/// constructible.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl
      : status_(std::move(status)) {
    PCPDA_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PCPDA_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    PCPDA_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    PCPDA_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-ok Status to the caller.
#define PCPDA_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::pcpda::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace pcpda

#endif  // PCPDA_COMMON_STATUS_H_
