#include "common/status.h"

namespace pcpda {

const char* ToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = pcpda::ToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pcpda
