#ifndef PCPDA_COMMON_RNG_H_
#define PCPDA_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pcpda {

/// Derives independent stream `index` from `base`: a SplitMix64-style mix
/// of base + GOLDEN * (index + 1), so stream 0 is already distinct from
/// Rng(base)'s own expansion. This is the one seeding scheme shared by
/// the fuzzer (per-iteration scenario streams) and the batch runner
/// (per-job fault streams): a job's seed depends only on (base, index),
/// never on which worker thread executes it or in what order.
std::uint64_t SplitMixSeed(std::uint64_t base, std::uint64_t index);

/// Deterministic pseudo-random generator (xoshiro256**). Workload
/// generation and property tests depend on run-to-run reproducibility, so
/// the project does not use std::random_device or unseeded engines.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double UniformRange(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) in random order.
  /// Requires k <= n.
  std::vector<std::int64_t> SampleWithoutReplacement(std::int64_t n,
                                                     std::int64_t k);

 private:
  std::uint64_t state_[4];
};

}  // namespace pcpda

#endif  // PCPDA_COMMON_RNG_H_
