#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace pcpda {
namespace {

bool LooksNumeric(const std::string& text, bool allow_minus) {
  if (text.empty()) return false;
  std::size_t i = 0;
  if (text[0] == '+' || (allow_minus && text[0] == '-')) i = 1;
  if (i >= text.size()) return false;
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
  }
  return true;
}

Status NotANumber(const std::string& text) {
  return Status::InvalidArgument("'" + text + "' is not a number");
}

Status OutOfRange(const std::string& text, const std::string& range) {
  return Status::InvalidArgument("'" + text + "' is out of range " + range);
}

std::string RangeInt(std::int64_t min, std::int64_t max) {
  return StrFormat("[%lld, %lld]", static_cast<long long>(min),
                   static_cast<long long>(max));
}

}  // namespace

StatusOr<std::int64_t> ParseInt64(const std::string& text, std::int64_t min,
                                  std::int64_t max) {
  if (!LooksNumeric(text, /*allow_minus=*/true)) return NotANumber(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') {
    return errno == ERANGE ? OutOfRange(text, RangeInt(min, max))
                           : NotANumber(text);
  }
  if (value < min || value > max) {
    return OutOfRange(text, RangeInt(min, max));
  }
  return static_cast<std::int64_t>(value);
}

StatusOr<std::uint64_t> ParseUInt64(const std::string& text,
                                    std::uint64_t max) {
  if (!LooksNumeric(text, /*allow_minus=*/false)) return NotANumber(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') {
    return errno == ERANGE
               ? OutOfRange(text, StrFormat("[0, %llu]",
                                            static_cast<unsigned long long>(
                                                max)))
               : NotANumber(text);
  }
  if (value > max) {
    return OutOfRange(
        text,
        StrFormat("[0, %llu]", static_cast<unsigned long long>(max)));
  }
  return static_cast<std::uint64_t>(value);
}

StatusOr<double> ParseDouble(const std::string& text, double min,
                             double max) {
  if (text.empty() ||
      std::isspace(static_cast<unsigned char>(text.front()))) {
    return NotANumber(text);
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(value) ||
      errno == ERANGE) {
    return NotANumber(text);
  }
  if (value < min || value > max) {
    return OutOfRange(text, StrFormat("[%g, %g]", min, max));
  }
  return value;
}

StatusOr<Tick> ParseTick(const std::string& text, Tick min, Tick max) {
  return ParseInt64(text, min, max);
}

namespace {

template <typename T, typename Parse>
bool ParseFlag(const char* flag, const Parse& parse, T* out) {
  auto result = parse();
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", flag,
                 result.status().message().c_str());
    return false;
  }
  *out = static_cast<T>(result.value());
  return true;
}

}  // namespace

bool ParseFlagInt64(const char* flag, const std::string& value,
                    std::int64_t min, std::int64_t max, std::int64_t* out) {
  return ParseFlag(flag, [&] { return ParseInt64(value, min, max); }, out);
}

bool ParseFlagUInt64(const char* flag, const std::string& value,
                     std::uint64_t max, std::uint64_t* out) {
  return ParseFlag(flag, [&] { return ParseUInt64(value, max); }, out);
}

bool ParseFlagDouble(const char* flag, const std::string& value, double min,
                     double max, double* out) {
  return ParseFlag(flag, [&] { return ParseDouble(value, min, max); }, out);
}

bool ParseFlagTick(const char* flag, const std::string& value, Tick min,
                   Tick max, Tick* out) {
  return ParseFlag(flag, [&] { return ParseTick(value, min, max); }, out);
}

bool ParseFlagInt(const char* flag, const std::string& value, int min,
                  int max, int* out) {
  return ParseFlag(flag, [&] { return ParseInt64(value, min, max); }, out);
}

int JobsFromEnv(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  auto parsed = ParseInt64(raw, 1, 1024);
  if (!parsed.ok()) {
    std::fprintf(stderr, "warning: ignoring %s=%s (%s); using %d\n", name,
                 raw, parsed.status().message().c_str(), fallback);
    return fallback;
  }
  return static_cast<int>(parsed.value());
}

}  // namespace pcpda
