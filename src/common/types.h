#ifndef PCPDA_COMMON_TYPES_H_
#define PCPDA_COMMON_TYPES_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace pcpda {

/// Simulation time in integer ticks. The paper's figures use unit time; the
/// simulator advances one tick at a time.
using Tick = std::int64_t;

/// Sentinel for "no deadline / unbounded horizon".
inline constexpr Tick kNoTick = std::numeric_limits<Tick>::max();

/// Index of a transaction spec (the static, periodic transaction). Specs are
/// ordered by priority: spec 0 is T_1 in the paper (highest priority).
using SpecId = std::int32_t;

/// A data item in the memory-resident database.
using ItemId = std::int32_t;

/// A running transaction instance (job). Unique within one simulation run.
using JobId = std::int64_t;

inline constexpr SpecId kInvalidSpec = -1;
inline constexpr ItemId kInvalidItem = -1;
inline constexpr JobId kInvalidJob = -1;

/// Transaction priority. Higher `level` means higher priority (the paper's
/// P_1 > P_2 > ... maps to larger levels). `Priority::Dummy()` is the
/// paper's "dummy" ceiling, lower than every real transaction priority.
class Priority {
 public:
  constexpr Priority() : level_(kDummyLevel) {}
  constexpr explicit Priority(int level) : level_(level) {}

  /// The ceiling value lower than all transaction priorities.
  static constexpr Priority Dummy() { return Priority(); }

  constexpr int level() const { return level_; }
  constexpr bool is_dummy() const { return level_ == kDummyLevel; }

  friend constexpr auto operator<=>(Priority a, Priority b) = default;

  /// Human-readable form: "P1" for the highest priority of an n-spec set is
  /// produced by callers that know n; here we print the raw level.
  std::string DebugString() const;

 private:
  static constexpr int kDummyLevel = std::numeric_limits<int>::min();
  int level_;
};

constexpr Priority Max(Priority a, Priority b) { return a < b ? b : a; }

/// Rate-monotonic priority for the spec at (0-based) `index` in a set of
/// `count` specs sorted from highest to lowest priority: T_1 (index 0) gets
/// the largest level so that comparisons match the paper's P_1 > P_2 > ...
constexpr Priority PriorityForSpecIndex(SpecId index, SpecId count) {
  return Priority(static_cast<int>(count - index));
}

/// Lock modes. PCP-DA write locks protect a workspace update (and are
/// compatible with each other); baseline protocols treat them as exclusive.
enum class LockMode : std::uint8_t {
  kRead,
  kWrite,
};

inline const char* ToString(LockMode mode) {
  return mode == LockMode::kRead ? "read" : "write";
}

/// Why a lock request was denied (Section 3 of the paper distinguishes the
/// two kinds of blocking a priority ceiling protocol can cause).
enum class BlockReason : std::uint8_t {
  kNone = 0,
  /// Conflict blocking: the requested item itself is locked in an
  /// incompatible mode.
  kConflict,
  /// Ceiling blocking: the requester's priority does not clear the system
  /// priority ceiling (or a locking-condition guard), although the item
  /// itself is available.
  kCeiling,
};

inline const char* ToString(BlockReason reason) {
  switch (reason) {
    case BlockReason::kNone:
      return "none";
    case BlockReason::kConflict:
      return "conflict";
    case BlockReason::kCeiling:
      return "ceiling";
  }
  return "unknown";
}

}  // namespace pcpda

template <>
struct std::hash<pcpda::Priority> {
  std::size_t operator()(pcpda::Priority p) const noexcept {
    return std::hash<int>()(p.level());
  }
};

#endif  // PCPDA_COMMON_TYPES_H_
