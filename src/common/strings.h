#ifndef PCPDA_COMMON_STRINGS_H_
#define PCPDA_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace pcpda {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Pads `s` with spaces on the right to at least `width` characters.
std::string PadRight(std::string s, std::size_t width);

/// Pads `s` with spaces on the left to at least `width` characters.
std::string PadLeft(std::string s, std::size_t width);

}  // namespace pcpda

#endif  // PCPDA_COMMON_STRINGS_H_
