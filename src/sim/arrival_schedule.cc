#include "sim/arrival_schedule.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

ArrivalSchedule::ArrivalSchedule(std::vector<Arrival> arrivals)
    : arrivals_(std::move(arrivals)) {}

ArrivalSchedule ArrivalSchedule::Finalize(std::vector<Arrival> arrivals) {
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.tick != b.tick) return a.tick < b.tick;
                     return a.spec < b.spec;
                   });
  std::map<SpecId, int> next_instance;
  for (Arrival& arrival : arrivals) {
    arrival.instance = next_instance[arrival.spec]++;
  }
  return ArrivalSchedule(std::move(arrivals));
}

ArrivalSchedule ArrivalSchedule::Periodic(const TransactionSet& set,
                                          Tick horizon) {
  return Finalize(ArrivalCalendar(&set).Before(horizon));
}

ArrivalSchedule ArrivalSchedule::Sporadic(const TransactionSet& set,
                                          Tick horizon, double max_jitter,
                                          Rng& rng) {
  PCPDA_CHECK(max_jitter >= 0.0);
  std::vector<Arrival> arrivals;
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    if (spec.period <= 0) {
      if (spec.offset < horizon) arrivals.push_back({spec.offset, i, 0});
      continue;
    }
    const Tick max_gap = static_cast<Tick>(std::llround(
        static_cast<double>(spec.period) * (1.0 + max_jitter)));
    Tick t = spec.offset;
    while (t < horizon) {
      arrivals.push_back({t, i, 0});
      t += rng.UniformInt(spec.period, std::max(spec.period, max_gap));
    }
  }
  return Finalize(std::move(arrivals));
}

ArrivalSchedule ArrivalSchedule::Poisson(const TransactionSet& set,
                                         Tick horizon, double load,
                                         Rng& rng) {
  PCPDA_CHECK(load > 0.0);
  std::vector<Arrival> arrivals;
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    if (spec.period <= 0) {
      if (spec.offset < horizon) arrivals.push_back({spec.offset, i, 0});
      continue;
    }
    const double mean = static_cast<double>(spec.period) / load;
    Tick t = spec.offset;
    while (t < horizon) {
      arrivals.push_back({t, i, 0});
      // Exponential inter-arrival, at least one tick. 1 - U avoids log(0).
      const double u = 1.0 - rng.UniformDouble();
      const Tick gap = std::max<Tick>(
          1, static_cast<Tick>(std::llround(-mean * std::log(u))));
      t += gap;
    }
  }
  return Finalize(std::move(arrivals));
}

StatusOr<ArrivalSchedule> ArrivalSchedule::FromArrivals(
    const TransactionSet& set, std::vector<Arrival> arrivals) {
  Tick previous = 0;
  for (const Arrival& arrival : arrivals) {
    if (arrival.tick < 0) {
      return Status::InvalidArgument("arrival before time 0");
    }
    if (arrival.tick < previous) {
      return Status::InvalidArgument("arrivals not sorted by tick");
    }
    previous = arrival.tick;
    if (arrival.spec < 0 || arrival.spec >= set.size()) {
      return Status::InvalidArgument(
          StrFormat("arrival for unknown spec %d", arrival.spec));
    }
  }
  return Finalize(std::move(arrivals));
}

std::vector<Arrival> ArrivalSchedule::At(Tick tick) const {
  std::vector<Arrival> out;
  // Binary search for the first arrival at `tick`.
  auto it = std::lower_bound(
      arrivals_.begin(), arrivals_.end(), tick,
      [](const Arrival& a, Tick t) { return a.tick < t; });
  for (; it != arrivals_.end() && it->tick == tick; ++it) {
    out.push_back(*it);
  }
  return out;
}

int ArrivalSchedule::CountFor(SpecId spec) const {
  int count = 0;
  for (const Arrival& arrival : arrivals_) {
    if (arrival.spec == spec) ++count;
  }
  return count;
}

}  // namespace pcpda
