#ifndef PCPDA_SIM_CALENDAR_H_
#define PCPDA_SIM_CALENDAR_H_

#include <vector>

#include "common/types.h"
#include "txn/spec.h"

namespace pcpda {

/// A scheduled release of one job.
struct Arrival {
  Tick tick = 0;
  SpecId spec = kInvalidSpec;
  /// 0-based instance index of the spec.
  int instance = 0;

  friend bool operator==(const Arrival&, const Arrival&) = default;
};

/// Generates the release calendar of a transaction set.
///
/// Arrival semantics — the single definition every query below (and the
/// Cursor) is implemented against:
///
///   * A periodic spec (period > 0) releases instance k at tick
///     offset + k * period, for k = 0, 1, 2, ...
///   * A one-shot spec (period == 0) releases exactly one instance,
///     instance 0, at tick `offset`.
///   * "Before H" always means the half-open window [0, H): an arrival at
///     tick H-1 is included, an arrival at exactly H is not. At(t),
///     Before(H) and CountBefore(spec, H) agree on this boundary for
///     periodic and one-shot specs alike.
///   * Simultaneous arrivals are ordered by spec id — the higher-priority
///     spec (smaller id) first.
class ArrivalCalendar {
 public:
  explicit ArrivalCalendar(const TransactionSet* set);

  /// Walks the calendar in (tick, spec) order, yielding each next arrival
  /// in O(log specs) instead of the O(specs) full scan At() performs per
  /// tick. The event-driven simulator core drives job releases and
  /// idle-gap skipping off this.
  class Cursor {
   public:
    explicit Cursor(const TransactionSet* set);

    /// Tick of the earliest arrival not yet popped; kNoTick if exhausted.
    Tick NextTick() const;

    /// Pops and returns the arrivals at exactly `tick` (spec-id order;
    /// empty when `tick` has none). Requires every arrival before `tick`
    /// to have been popped already — the cursor only moves forward.
    std::vector<Arrival> PopAt(Tick tick);

   private:
    /// Min-heap on (tick, spec); periodic specs are re-armed on pop.
    struct Entry {
      Tick tick = 0;
      SpecId spec = kInvalidSpec;
      int instance = 0;
    };
    static bool Later(const Entry& a, const Entry& b);

    const TransactionSet* set_;
    std::vector<Entry> heap_;
  };

  Cursor MakeCursor() const { return Cursor(set_); }

  /// All arrivals in [0, horizon), in (tick, spec) order.
  std::vector<Arrival> Before(Tick horizon) const;

  /// Arrivals at exactly `tick` (ordered by spec id).
  std::vector<Arrival> At(Tick tick) const;

  /// Number of instances of `spec` released in [0, horizon).
  int CountBefore(SpecId spec, Tick horizon) const;

 private:
  const TransactionSet* set_;
};

}  // namespace pcpda

#endif  // PCPDA_SIM_CALENDAR_H_
