#ifndef PCPDA_SIM_CALENDAR_H_
#define PCPDA_SIM_CALENDAR_H_

#include <vector>

#include "common/types.h"
#include "txn/spec.h"

namespace pcpda {

/// A scheduled release of one job.
struct Arrival {
  Tick tick = 0;
  SpecId spec = kInvalidSpec;
  /// 0-based instance index of the spec.
  int instance = 0;

  friend bool operator==(const Arrival&, const Arrival&) = default;
};

/// Generates the release calendar of a transaction set: periodic specs
/// release at offset, offset+period, ...; one-shot specs release once at
/// their offset. Arrivals are produced in (tick, spec) order — at equal
/// ticks the higher-priority spec (smaller id) first.
class ArrivalCalendar {
 public:
  explicit ArrivalCalendar(const TransactionSet* set);

  /// All arrivals with tick < horizon.
  std::vector<Arrival> Before(Tick horizon) const;

  /// Arrivals at exactly `tick` (ordered by spec id).
  std::vector<Arrival> At(Tick tick) const;

  /// Number of instances of `spec` released strictly before `horizon`.
  int CountBefore(SpecId spec, Tick horizon) const;

 private:
  const TransactionSet* set_;
};

}  // namespace pcpda

#endif  // PCPDA_SIM_CALENDAR_H_
