#include "sim/calendar.h"

#include <algorithm>

#include "common/check.h"

namespace pcpda {

ArrivalCalendar::ArrivalCalendar(const TransactionSet* set) : set_(set) {
  PCPDA_CHECK(set != nullptr);
}

bool ArrivalCalendar::Cursor::Later(const Entry& a, const Entry& b) {
  // std::push_heap builds a max-heap; invert to keep the earliest
  // (tick, spec) on top.
  if (a.tick != b.tick) return a.tick > b.tick;
  return a.spec > b.spec;
}

ArrivalCalendar::Cursor::Cursor(const TransactionSet* set) : set_(set) {
  PCPDA_CHECK(set != nullptr);
  heap_.reserve(static_cast<std::size_t>(set->size()));
  for (SpecId i = 0; i < set->size(); ++i) {
    heap_.push_back({set->spec(i).offset, i, 0});
  }
  std::make_heap(heap_.begin(), heap_.end(), Later);
}

Tick ArrivalCalendar::Cursor::NextTick() const {
  return heap_.empty() ? kNoTick : heap_.front().tick;
}

std::vector<Arrival> ArrivalCalendar::Cursor::PopAt(Tick tick) {
  std::vector<Arrival> due;
  while (!heap_.empty() && heap_.front().tick == tick) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    const Entry entry = heap_.back();
    heap_.pop_back();
    due.push_back({entry.tick, entry.spec, entry.instance});
    const TransactionSpec& spec = set_->spec(entry.spec);
    if (spec.period > 0) {
      heap_.push_back(
          {entry.tick + spec.period, entry.spec, entry.instance + 1});
      std::push_heap(heap_.begin(), heap_.end(), Later);
    }
  }
  PCPDA_CHECK_MSG(heap_.empty() || heap_.front().tick > tick,
                  "cursor moved past unpopped arrivals");
  return due;
}

std::vector<Arrival> ArrivalCalendar::Before(Tick horizon) const {
  // Drain a cursor so this enumeration and the simulator's event loop
  // share one arrival semantics by construction. The heap pops already
  // yield (tick, spec) order — no sort needed.
  std::vector<Arrival> arrivals;
  Cursor cursor(set_);
  for (Tick next = cursor.NextTick();
       next != kNoTick && next < horizon; next = cursor.NextTick()) {
    for (const Arrival& arrival : cursor.PopAt(next)) {
      arrivals.push_back(arrival);
    }
  }
  return arrivals;
}

std::vector<Arrival> ArrivalCalendar::At(Tick tick) const {
  std::vector<Arrival> arrivals;
  for (SpecId i = 0; i < set_->size(); ++i) {
    const TransactionSpec& spec = set_->spec(i);
    if (spec.period <= 0) {
      if (spec.offset == tick) arrivals.push_back({tick, i, 0});
      continue;
    }
    if (tick >= spec.offset && (tick - spec.offset) % spec.period == 0) {
      arrivals.push_back(
          {tick, i, static_cast<int>((tick - spec.offset) / spec.period)});
    }
  }
  return arrivals;
}

int ArrivalCalendar::CountBefore(SpecId spec_id, Tick horizon) const {
  PCPDA_CHECK(spec_id >= 0 && spec_id < set_->size());
  const TransactionSpec& spec = set_->spec(spec_id);
  // The [0, horizon) window: a release at exactly `horizon` is out, so a
  // spec whose first release is at or past the horizon never fits.
  if (spec.offset >= horizon) return 0;
  if (spec.period <= 0) return 1;
  return static_cast<int>((horizon - 1 - spec.offset) / spec.period) + 1;
}

}  // namespace pcpda
