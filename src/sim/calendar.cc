#include "sim/calendar.h"

#include <algorithm>

#include "common/check.h"

namespace pcpda {

ArrivalCalendar::ArrivalCalendar(const TransactionSet* set) : set_(set) {
  PCPDA_CHECK(set != nullptr);
}

std::vector<Arrival> ArrivalCalendar::Before(Tick horizon) const {
  std::vector<Arrival> arrivals;
  for (SpecId i = 0; i < set_->size(); ++i) {
    const TransactionSpec& spec = set_->spec(i);
    if (spec.period <= 0) {
      if (spec.offset < horizon) arrivals.push_back({spec.offset, i, 0});
      continue;
    }
    int instance = 0;
    for (Tick t = spec.offset; t < horizon; t += spec.period) {
      arrivals.push_back({t, i, instance++});
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.tick != b.tick) return a.tick < b.tick;
                     return a.spec < b.spec;
                   });
  return arrivals;
}

std::vector<Arrival> ArrivalCalendar::At(Tick tick) const {
  std::vector<Arrival> arrivals;
  for (SpecId i = 0; i < set_->size(); ++i) {
    const TransactionSpec& spec = set_->spec(i);
    if (spec.period <= 0) {
      if (spec.offset == tick) arrivals.push_back({tick, i, 0});
      continue;
    }
    if (tick >= spec.offset && (tick - spec.offset) % spec.period == 0) {
      arrivals.push_back(
          {tick, i, static_cast<int>((tick - spec.offset) / spec.period)});
    }
  }
  return arrivals;
}

int ArrivalCalendar::CountBefore(SpecId spec_id, Tick horizon) const {
  PCPDA_CHECK(spec_id >= 0 && spec_id < set_->size());
  const TransactionSpec& spec = set_->spec(spec_id);
  if (spec.offset >= horizon) return 0;
  if (spec.period <= 0) return 1;
  return static_cast<int>((horizon - 1 - spec.offset) / spec.period) + 1;
}

}  // namespace pcpda
