#ifndef PCPDA_SIM_ARRIVAL_SCHEDULE_H_
#define PCPDA_SIM_ARRIVAL_SCHEDULE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/calendar.h"
#include "txn/spec.h"

namespace pcpda {

/// An explicit release schedule, overriding the strictly periodic calendar
/// the paper assumes. Lets the simulator run the arrival models of the
/// soft real-time database literature (release jitter, sporadic minimum
/// inter-arrival, Poisson aperiodic load) and replay recorded traces.
///
/// Arrivals are sorted by (tick, spec) and instance-numbered per spec in
/// release order.
class ArrivalSchedule {
 public:
  /// The paper's model: releases at offset, offset+period, ... — identical
  /// to what the simulator does without a schedule.
  static ArrivalSchedule Periodic(const TransactionSet& set, Tick horizon);

  /// Sporadic releases: each spec's inter-arrival time is drawn uniformly
  /// from [period, period * (1 + max_jitter)] — the period becomes a
  /// MINIMUM inter-arrival time. One-shot specs release once at their
  /// offset. Requires max_jitter >= 0.
  static ArrivalSchedule Sporadic(const TransactionSet& set, Tick horizon,
                                  double max_jitter, Rng& rng);

  /// Poisson (memoryless) releases: each spec's inter-arrival time is
  /// exponential with mean period / load, so load = 1 reproduces the
  /// periodic spec's average rate and load > 1 overdrives it. Inter-
  /// arrivals are at least 1 tick. Requires load > 0.
  static ArrivalSchedule Poisson(const TransactionSet& set, Tick horizon,
                                 double load, Rng& rng);

  /// An explicit trace. Validates: ticks non-negative and sorted, spec
  /// ids in range, per-spec instances consecutive from 0.
  static StatusOr<ArrivalSchedule> FromArrivals(
      const TransactionSet& set, std::vector<Arrival> arrivals);

  const std::vector<Arrival>& arrivals() const { return arrivals_; }

  /// Arrivals at exactly `tick`.
  std::vector<Arrival> At(Tick tick) const;

  /// Number of releases of `spec` in the schedule.
  int CountFor(SpecId spec) const;

 private:
  explicit ArrivalSchedule(std::vector<Arrival> arrivals);

  /// Sorts and assigns per-spec instance numbers.
  static ArrivalSchedule Finalize(std::vector<Arrival> arrivals);

  std::vector<Arrival> arrivals_;
};

}  // namespace pcpda

#endif  // PCPDA_SIM_ARRIVAL_SCHEDULE_H_
