#ifndef PCPDA_HISTORY_REPLAY_CHECKER_H_
#define PCPDA_HISTORY_REPLAY_CHECKER_H_

#include <string>
#include <vector>

#include "history/history.h"

namespace pcpda {

/// A read whose observed value disagrees with the serial replay.
struct ReplayMismatch {
  JobId job = kInvalidJob;
  ItemId item = kInvalidItem;
  Tick tick = 0;
  /// What the transaction actually observed during the run.
  Value observed;
  /// What it would observe executing serially in the witness order.
  Value replayed;

  std::string DebugString() const;
};

/// Outcome of the replay check.
struct ReplayResult {
  bool serializable = false;
  /// Empty when every read matches the serial replay.
  std::vector<ReplayMismatch> mismatches;
  /// Reads that observed a value from a job absent from the committed
  /// history (still in flight when the horizon ended, under early lock
  /// release). The committed projection cannot validate them; they are
  /// skipped, not flagged.
  std::int64_t censored_reads = 0;

  bool ok() const { return serializable && mismatches.empty(); }
};

/// End-to-end witness validation, one level stronger than SG acyclicity:
/// extracts a serial order from the (acyclic) serialization graph, then
/// REPLAYS the committed transactions in that order against a fresh
/// database and verifies every recorded read observes exactly the value
/// the serial execution would produce. Conflict equivalence guarantees
/// this succeeds for any correct protocol + history capture, so a
/// mismatch pinpoints a bug in either. Reads from a transaction's own
/// workspace are validated against its own preceding write.
ReplayResult ReplaySerialWitness(const History& history,
                                 ItemId item_count);

}  // namespace pcpda

#endif  // PCPDA_HISTORY_REPLAY_CHECKER_H_
