#include "history/serialization_graph.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

const std::set<JobId> SerializationGraph::kNoSuccessors;

namespace {

/// One operation tagged with its owning transaction, for per-item ordering.
struct TaggedOp {
  JobId job;
  HistoryOp::Kind kind;
  Tick tick;
  std::int64_t seq;
};

bool Conflicts(HistoryOp::Kind a, HistoryOp::Kind b) {
  return a == HistoryOp::Kind::kWrite || b == HistoryOp::Kind::kWrite;
}

}  // namespace

SerializationGraph SerializationGraph::Build(const History& history) {
  SerializationGraph graph;
  std::map<ItemId, std::vector<TaggedOp>> per_item;
  for (const CommittedTxn& txn : history.committed()) {
    graph.nodes_.push_back(txn.job);
    graph.edges_[txn.job];  // ensure node exists even with no edges
    for (const HistoryOp& op : txn.ops) {
      if (op.own_read) continue;  // local to the transaction
      per_item[op.item].push_back({txn.job, op.kind, op.tick, op.seq});
    }
  }
  for (auto& [item, ops] : per_item) {
    std::sort(ops.begin(), ops.end(),
              [](const TaggedOp& a, const TaggedOp& b) {
                if (a.tick != b.tick) return a.tick < b.tick;
                return a.seq < b.seq;
              });
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (ops[i].job == ops[j].job) continue;
        if (!Conflicts(ops[i].kind, ops[j].kind)) continue;
        graph.edges_[ops[i].job].insert(ops[j].job);
      }
    }
  }
  return graph;
}

std::size_t SerializationGraph::edge_count() const {
  std::size_t count = 0;
  for (const auto& [node, successors] : edges_) count += successors.size();
  return count;
}

const std::set<JobId>& SerializationGraph::successors(JobId job) const {
  auto it = edges_.find(job);
  return it == edges_.end() ? kNoSuccessors : it->second;
}

bool SerializationGraph::HasEdge(JobId from, JobId to) const {
  return successors(from).contains(to);
}

SerializationGraph::Result SerializationGraph::CheckAcyclic() const {
  Result result;
  // Iterative three-color DFS; records a back edge's cycle if found,
  // otherwise emits reverse-post-order as the serial-order witness.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::map<JobId, Color> color;
  for (JobId node : nodes_) color[node] = Color::kWhite;

  std::vector<JobId> post_order;
  for (JobId root : nodes_) {
    if (color[root] != Color::kWhite) continue;
    // Stack of (node, next-successor iterator position).
    std::vector<std::pair<JobId, std::set<JobId>::const_iterator>> stack;
    color[root] = Color::kGray;
    stack.emplace_back(root, successors(root).begin());
    while (!stack.empty()) {
      auto& [node, it] = stack.back();
      if (it == successors(node).end()) {
        color[node] = Color::kBlack;
        post_order.push_back(node);
        stack.pop_back();
        continue;
      }
      const JobId next = *it;
      ++it;
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.emplace_back(next, successors(next).begin());
      } else if (color[next] == Color::kGray) {
        // Back edge: extract the cycle from the stack.
        result.serializable = false;
        std::vector<JobId> cycle;
        bool in_cycle = false;
        for (const auto& [n, unused] : stack) {
          if (n == next) in_cycle = true;
          if (in_cycle) cycle.push_back(n);
        }
        cycle.push_back(next);
        result.cycle = std::move(cycle);
        return result;
      }
    }
  }
  result.serial_order.assign(post_order.rbegin(), post_order.rend());
  return result;
}

std::string SerializationGraph::DebugString() const {
  std::vector<std::string> lines;
  for (const auto& [node, successors] : edges_) {
    std::vector<std::string> targets;
    targets.reserve(successors.size());
    for (JobId to : successors) {
      targets.push_back(StrFormat("%lld", static_cast<long long>(to)));
    }
    lines.push_back(StrFormat("%lld -> {%s}",
                              static_cast<long long>(node),
                              Join(targets, ",").c_str()));
  }
  return Join(lines, "\n");
}

bool IsSerializable(const History& history) {
  return SerializationGraph::Build(history).CheckAcyclic().serializable;
}

}  // namespace pcpda
