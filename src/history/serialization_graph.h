#ifndef PCPDA_HISTORY_SERIALIZATION_GRAPH_H_
#define PCPDA_HISTORY_SERIALIZATION_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "history/history.h"

namespace pcpda {

/// The conflict serialization graph SG(H) over the committed transactions
/// of a history (Section 8 of the paper). Nodes are committed jobs; there
/// is an edge T_i -> T_j when an operation of T_i precedes and conflicts
/// with an operation of T_j (read/write or write/write on the same item,
/// ordered by effective time). Reads satisfied from the reader's own
/// workspace touch no other transaction and create no edges.
class SerializationGraph {
 public:
  /// Builds SG(H) from the committed transactions of `history`.
  static SerializationGraph Build(const History& history);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const;
  const std::vector<JobId>& nodes() const { return nodes_; }
  const std::set<JobId>& successors(JobId job) const;
  bool HasEdge(JobId from, JobId to) const;

  /// Result of the acyclicity check.
  struct Result {
    bool serializable = true;
    /// A witness serial order (topological order of SG) when serializable.
    std::vector<JobId> serial_order;
    /// A cycle (first node repeated at the end) when not serializable.
    std::vector<JobId> cycle;
  };

  /// Checks acyclicity; produces a serial-order witness or a cycle.
  Result CheckAcyclic() const;

  std::string DebugString() const;

 private:
  std::vector<JobId> nodes_;
  std::map<JobId, std::set<JobId>> edges_;

  static const std::set<JobId> kNoSuccessors;
};

/// Convenience: true when the history is conflict serializable.
bool IsSerializable(const History& history);

}  // namespace pcpda

#endif  // PCPDA_HISTORY_SERIALIZATION_GRAPH_H_
