#ifndef PCPDA_HISTORY_HISTORY_H_
#define PCPDA_HISTORY_HISTORY_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "db/value.h"

namespace pcpda {

/// One read or write operation as it took effect in the execution history.
///
/// Effective times follow the transaction model: reads take effect when the
/// read step is admitted; update-in-place writes when the write step
/// completes; update-in-workspace writes at commit (this deferral is
/// exactly the paper's "dynamic adjustment of serialization order").
struct HistoryOp {
  enum class Kind : std::uint8_t { kRead, kWrite };

  Kind kind = Kind::kRead;
  ItemId item = kInvalidItem;
  Tick tick = 0;
  /// Global tie-breaker: total order of effects within a tick.
  std::int64_t seq = 0;
  /// For reads: the value observed.
  Value observed;
  /// For reads: satisfied from the job's own workspace (its own earlier
  /// write). Such reads create no inter-transaction conflicts.
  bool own_read = false;

  std::string DebugString() const;
};

/// The operations of one committed transaction.
struct CommittedTxn {
  JobId job = kInvalidJob;
  SpecId spec = kInvalidSpec;
  int instance = 0;
  Tick commit_tick = 0;
  std::int64_t commit_seq = 0;
  std::vector<HistoryOp> ops;
};

/// Accumulates the execution history of a run. Operations are buffered per
/// job and enter the committed history only when the job commits; aborted
/// work (2PL-HP restarts, deadlock victims) leaves no trace, matching the
/// standard definition of a history over committed transactions.
class History {
 public:
  void RecordRead(JobId job, ItemId item, Tick tick, std::int64_t seq,
                  Value observed, bool own_read);
  void RecordWrite(JobId job, ItemId item, Tick tick, std::int64_t seq);

  /// Moves the job's buffered operations into the committed history.
  void RecordCommit(JobId job, SpecId spec, int instance, Tick tick,
                    std::int64_t seq);
  /// Discards the job's buffered operations (abort/restart/drop).
  void DiscardPending(JobId job);

  const std::vector<CommittedTxn>& committed() const { return committed_; }
  std::size_t pending_jobs() const { return pending_.size(); }

  std::string DebugString() const;

 private:
  std::map<JobId, std::vector<HistoryOp>> pending_;
  std::vector<CommittedTxn> committed_;
};

}  // namespace pcpda

#endif  // PCPDA_HISTORY_HISTORY_H_
