#include "history/history.h"

#include "common/strings.h"

namespace pcpda {

std::string HistoryOp::DebugString() const {
  return StrFormat("%s(d%d)@%lld.%lld%s",
                   kind == Kind::kRead ? "r" : "w", item,
                   static_cast<long long>(tick),
                   static_cast<long long>(seq), own_read ? "[own]" : "");
}

void History::RecordRead(JobId job, ItemId item, Tick tick,
                         std::int64_t seq, Value observed, bool own_read) {
  pending_[job].push_back(
      {HistoryOp::Kind::kRead, item, tick, seq, observed, own_read});
}

void History::RecordWrite(JobId job, ItemId item, Tick tick,
                          std::int64_t seq) {
  pending_[job].push_back(
      {HistoryOp::Kind::kWrite, item, tick, seq, Value{}, false});
}

void History::RecordCommit(JobId job, SpecId spec, int instance, Tick tick,
                           std::int64_t seq) {
  CommittedTxn txn;
  txn.job = job;
  txn.spec = spec;
  txn.instance = instance;
  txn.commit_tick = tick;
  txn.commit_seq = seq;
  auto it = pending_.find(job);
  if (it != pending_.end()) {
    txn.ops = std::move(it->second);
    pending_.erase(it);
  }
  committed_.push_back(std::move(txn));
}

void History::DiscardPending(JobId job) { pending_.erase(job); }

std::string History::DebugString() const {
  std::vector<std::string> lines;
  lines.reserve(committed_.size());
  for (const CommittedTxn& txn : committed_) {
    std::vector<std::string> ops;
    ops.reserve(txn.ops.size());
    for (const HistoryOp& op : txn.ops) ops.push_back(op.DebugString());
    lines.push_back(StrFormat("job %lld (spec %d#%d) commit@%lld: %s",
                              static_cast<long long>(txn.job), txn.spec,
                              txn.instance,
                              static_cast<long long>(txn.commit_tick),
                              Join(ops, " ").c_str()));
  }
  return Join(lines, "\n");
}

}  // namespace pcpda
