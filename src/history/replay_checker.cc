#include "history/replay_checker.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "history/serialization_graph.h"

namespace pcpda {

std::string ReplayMismatch::DebugString() const {
  return StrFormat(
      "job %lld read d%d at t=%lld: observed %s, serial replay gives %s",
      static_cast<long long>(job), item, static_cast<long long>(tick),
      observed.DebugString().c_str(), replayed.DebugString().c_str());
}

ReplayResult ReplaySerialWitness(const History& history,
                                 ItemId item_count) {
  ReplayResult result;
  const auto graph = SerializationGraph::Build(history);
  const auto check = graph.CheckAcyclic();
  result.serializable = check.serializable;
  if (!check.serializable) return result;

  std::map<JobId, const CommittedTxn*> by_job;
  for (const CommittedTxn& txn : history.committed()) {
    by_job[txn.job] = &txn;
  }

  // Replay state: the job whose write each item currently carries
  // (kInvalidJob = initial state). Reads-from identity is compared by
  // writer; version stamps differ between run and replay by construction.
  std::vector<JobId> last_writer(static_cast<std::size_t>(item_count),
                                 kInvalidJob);

  for (JobId job : check.serial_order) {
    const CommittedTxn* txn = by_job.at(job);
    // Ops within a transaction replay in effect order.
    std::vector<const HistoryOp*> ops;
    ops.reserve(txn->ops.size());
    for (const HistoryOp& op : txn->ops) ops.push_back(&op);
    std::sort(ops.begin(), ops.end(),
              [](const HistoryOp* a, const HistoryOp* b) {
                return a->seq < b->seq;
              });
    // The transaction's own workspace during replay.
    std::map<ItemId, JobId> own_writes;
    for (const HistoryOp* op : ops) {
      if (op->kind == HistoryOp::Kind::kWrite) {
        own_writes[op->item] = job;
        continue;
      }
      JobId expected;
      if (op->own_read) {
        auto it = own_writes.find(op->item);
        expected = it != own_writes.end() ? it->second : job;
      } else {
        // A read that observed a writer absent from the committed
        // history (a job still in flight when the horizon ended — legal
        // under early lock release, e.g. CCP) cannot be validated
        // against the committed projection: the serial witness has no
        // position for that writer. Count it as censored instead of
        // mismatched; dirty reads from *aborted* jobs never get here,
        // because strictness/workspace isolation (audited per tick)
        // keeps uncommitted-then-undone writes invisible.
        if (op->observed.writer != kInvalidJob &&
            !by_job.contains(op->observed.writer)) {
          ++result.censored_reads;
          continue;
        }
        expected =
            last_writer[static_cast<std::size_t>(op->item)];
      }
      if (op->observed.writer != expected) {
        ReplayMismatch mismatch;
        mismatch.job = job;
        mismatch.item = op->item;
        mismatch.tick = op->tick;
        mismatch.observed = op->observed;
        mismatch.replayed = Value{expected, 0};
        result.mismatches.push_back(mismatch);
      }
    }
    // Apply the transaction's writes at its (replayed) commit.
    for (const auto& [item, writer] : own_writes) {
      last_writer[static_cast<std::size_t>(item)] = writer;
    }
  }
  return result;
}

}  // namespace pcpda
