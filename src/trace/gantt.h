#ifndef PCPDA_TRACE_GANTT_H_
#define PCPDA_TRACE_GANTT_H_

#include <string>

#include "trace/trace.h"
#include "txn/spec.h"

namespace pcpda {

/// Options for the ASCII Gantt chart.
struct GanttOptions {
  /// Show the Max_Sysceil row (the paper's dotted line in Figs 4-5).
  bool show_ceiling = true;
  /// Legend under the chart.
  bool show_legend = true;
};

/// Renders the run as one row per transaction over the simulated ticks, in
/// the style of the paper's figures:
///
///   r/w/#  executing a read / write / compute tick
///   B      blocked (outstanding denied lock request)
///   .      released but preempted
///   ^      arrival (when otherwise idle at that tick)
///   C      commit (the tick after the last executed one)
///   !      deadline miss
///
/// The ceiling row prints the Max_Sysceil level as the index of the
/// transaction with that priority ('1' = P1), or '-' when nothing is
/// raised.
std::string RenderGantt(const TransactionSet& set, const Trace& trace,
                        const GanttOptions& options = {});

}  // namespace pcpda

#endif  // PCPDA_TRACE_GANTT_H_
