#ifndef PCPDA_TRACE_TRACE_H_
#define PCPDA_TRACE_TRACE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "txn/step.h"

namespace pcpda {

/// Discrete simulator events.
enum class TraceKind : std::uint8_t {
  kArrival,
  kLockGrant,
  /// First tick a job becomes blocked on a request (re-issued denials of
  /// the same request are not re-traced).
  kBlock,
  kEarlyRelease,  // CCP unlocking before commit
  kCommit,
  kRestart,       // 2PL-HP abort / deadlock-resolution victim
  kDeadlineMiss,
  kDeadlock,
  kDrop,          // job dropped by the deadline-miss policy
  kFault,         // injected fault applied (note names the kind)
  kAuditViolation,  // invariant auditor finding (note has the check)
};

const char* ToString(TraceKind kind);

/// One discrete event.
struct TraceEvent {
  Tick tick = 0;
  TraceKind kind = TraceKind::kArrival;
  JobId job = kInvalidJob;
  SpecId spec = kInvalidSpec;
  int instance = 0;
  ItemId item = kInvalidItem;
  LockMode mode = LockMode::kRead;
  BlockReason reason = BlockReason::kNone;
  /// Blockers (kBlock), deadlock cycle members (kDeadlock), or victims.
  std::vector<JobId> others;
  /// Free-form annotation, e.g. the locking condition that granted ("LC2").
  std::string note;

  std::string DebugString() const;
};

/// A job observed blocked at some tick.
struct BlockedSample {
  JobId job = kInvalidJob;
  SpecId spec = kInvalidSpec;
  ItemId item = kInvalidItem;
  LockMode mode = LockMode::kRead;
  BlockReason reason = BlockReason::kNone;
  std::vector<JobId> blockers;
};

/// The processor state during one tick [tick, tick+1).
struct TickRecord {
  Tick tick = 0;
  JobId running_job = kInvalidJob;    // kInvalidJob => idle
  SpecId running_spec = kInvalidSpec;
  StepKind running_kind = StepKind::kCompute;
  /// The protocol's current maximum raised ceiling (the paper's
  /// Max_Sysceil dotted line); dummy when nothing is raised.
  Priority ceiling;
  std::vector<BlockedSample> blocked;
};

/// Full record of one simulation run: the per-tick schedule plus discrete
/// events, with query helpers used by tests and the Gantt renderer.
///
/// By default every event and tick record is retained. SetCapacity turns
/// the trace into a bounded ring holding the most recent records, so
/// week-long horizons don't accumulate an unbounded event vector; all
/// query helpers then answer over the retained window only.
class Trace {
 public:
  /// Bounds the retained window to (at least) the most recent `max_events`
  /// discrete events and the same number of tick records; 0 restores the
  /// unbounded default. Appends stay amortized O(1): each buffer compacts
  /// back down to `max_events` once it grows to twice that.
  void SetCapacity(std::size_t max_events);

  void AddEvent(TraceEvent event);
  void AddTick(TickRecord record);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<TickRecord>& ticks() const { return ticks_; }

  /// Records evicted by the capacity bound (0 for unbounded traces).
  std::int64_t dropped_events() const { return dropped_events_; }
  std::int64_t dropped_ticks() const { return dropped_ticks_; }

  /// Events of one kind, in order.
  std::vector<TraceEvent> EventsOfKind(TraceKind kind) const;
  /// Events of one kind for one spec.
  std::vector<TraceEvent> EventsOfKind(TraceKind kind, SpecId spec) const;
  /// The first event of `kind` for `job`, if any.
  std::optional<TraceEvent> FirstEvent(TraceKind kind, JobId job) const;

  /// The spec running at `tick` (kInvalidSpec if idle or out of range).
  SpecId RunningSpecAt(Tick tick) const;
  /// Ticks during which `spec` was running.
  Tick RunningTicks(SpecId spec) const;
  /// Ticks during which `job` appears blocked.
  Tick BlockedTicks(JobId job) const;
  /// Max ceiling level observed over the run (the paper's Max_Sysceil).
  Priority MaxCeiling() const;

  std::string DebugString() const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<TickRecord> ticks_;
  std::size_t capacity_ = 0;
  std::int64_t dropped_events_ = 0;
  std::int64_t dropped_ticks_ = 0;
};

}  // namespace pcpda

#endif  // PCPDA_TRACE_TRACE_H_
