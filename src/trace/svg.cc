#include "trace/svg.h"

#include <algorithm>
#include <vector>

#include "common/strings.h"

namespace pcpda {
namespace {

constexpr int kMarginLeft = 90;
constexpr int kMarginTop = 34;
constexpr int kAxisHeight = 24;
constexpr int kCeilingHeight = 40;

const char* FillFor(StepKind kind) {
  switch (kind) {
    case StepKind::kRead:
      return "#4e9a06";  // green
    case StepKind::kWrite:
      return "#c4500e";  // orange
    case StepKind::kCompute:
      return "#3465a4";  // blue
  }
  return "#888888";
}

}  // namespace

std::string RenderSvg(const TransactionSet& set, const Trace& trace,
                      const SvgOptions& options) {
  const int ticks = static_cast<int>(trace.ticks().size());
  const int rows = static_cast<int>(set.size());
  const int chart_w = ticks * options.tick_width;
  const int chart_h = rows * options.row_height;
  const int width = kMarginLeft + chart_w + 20;
  const int height = kMarginTop + chart_h + kAxisHeight +
                     (options.show_ceiling ? kCeilingHeight : 0) + 14;

  std::vector<std::string> out;
  out.push_back(StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
      "height=\"%d\" font-family=\"sans-serif\" font-size=\"11\">",
      width, height));
  out.push_back(StrFormat(
      "<defs><pattern id=\"blocked\" width=\"6\" height=\"6\" "
      "patternUnits=\"userSpaceOnUse\" patternTransform=\"rotate(45)\">"
      "<rect width=\"6\" height=\"6\" fill=\"#f3d9d9\"/>"
      "<line x1=\"0\" y1=\"0\" x2=\"0\" y2=\"6\" stroke=\"#cc0000\" "
      "stroke-width=\"2\"/></pattern></defs>"));
  if (!options.title.empty()) {
    out.push_back(StrFormat(
        "<text x=\"%d\" y=\"18\" font-size=\"14\" font-weight=\"bold\">"
        "%s</text>",
        kMarginLeft, options.title.c_str()));
  }

  auto row_y = [&](SpecId spec) {
    return kMarginTop + static_cast<int>(spec) * options.row_height;
  };
  auto tick_x = [&](Tick t) {
    return kMarginLeft + static_cast<int>(t) * options.tick_width;
  };

  // Row labels and separators.
  for (SpecId i = 0; i < set.size(); ++i) {
    out.push_back(StrFormat(
        "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>",
        kMarginLeft - 8, row_y(i) + options.row_height / 2 + 4,
        set.spec(i).name.c_str()));
    out.push_back(StrFormat(
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#dddddd\"/>",
        kMarginLeft, row_y(i), kMarginLeft + chart_w, row_y(i)));
  }

  // Execution and blocking cells.
  const int pad = 4;
  const int cell_h = options.row_height - 2 * pad;
  for (const TickRecord& record : trace.ticks()) {
    if (record.running_spec != kInvalidSpec) {
      out.push_back(StrFormat(
          "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
          "fill=\"%s\"/>",
          tick_x(record.tick), row_y(record.running_spec) + pad,
          options.tick_width, cell_h, FillFor(record.running_kind)));
    }
    for (const BlockedSample& blocked : record.blocked) {
      out.push_back(StrFormat(
          "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
          "fill=\"url(#blocked)\"/>",
          tick_x(record.tick), row_y(blocked.spec) + pad,
          options.tick_width, cell_h));
    }
  }

  // Event markers: arrivals (up arrow), commits (flag), misses (cross).
  for (const TraceEvent& e : trace.events()) {
    if (e.spec == kInvalidSpec || e.tick < 0 || e.tick > ticks) continue;
    const int x = tick_x(e.tick);
    const int y = row_y(e.spec);
    switch (e.kind) {
      case TraceKind::kArrival:
        out.push_back(StrFormat(
            "<path d=\"M%d %d l4 7 h-8 z\" fill=\"#000000\"/>", x,
            y + 2));
        break;
      case TraceKind::kCommit:
        out.push_back(StrFormat(
            "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" "
            "stroke=\"#000000\" stroke-width=\"2\"/>",
            x, y + 2, x, y + options.row_height - 2));
        break;
      case TraceKind::kDeadlineMiss:
        out.push_back(StrFormat(
            "<text x=\"%d\" y=\"%d\" fill=\"#cc0000\" "
            "font-weight=\"bold\">x</text>",
            x - 3, y + options.row_height - 6));
        break;
      default:
        break;
    }
  }

  // Tick axis (every 5 ticks).
  const int axis_y = kMarginTop + chart_h + 14;
  for (Tick t = 0; t <= ticks; t += 5) {
    out.push_back(StrFormat(
        "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" "
        "fill=\"#555555\">%lld</text>",
        tick_x(t), axis_y, static_cast<long long>(t)));
    out.push_back(StrFormat(
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" "
        "stroke=\"#bbbbbb\"/>",
        tick_x(t), kMarginTop, tick_x(t), kMarginTop + chart_h));
  }

  // Max_Sysceil step line mapped onto priority levels.
  if (options.show_ceiling && ticks > 0) {
    const int base_y = axis_y + kCeilingHeight;
    const int top = set.priority(0).level();
    const int bottom = set.priority(set.size() - 1).level();
    const int span = std::max(1, top - bottom + 1);
    auto level_y = [&](Priority p) {
      if (p.is_dummy()) return base_y;
      const int rel = p.level() - bottom + 1;
      return base_y - rel * (kCeilingHeight - 12) / span;
    };
    std::string points;
    for (const TickRecord& record : trace.ticks()) {
      const int y = level_y(record.ceiling);
      points += StrFormat("%d,%d %d,%d ", tick_x(record.tick), y,
                          tick_x(record.tick + 1), y);
    }
    out.push_back(StrFormat(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"#888888\" "
        "stroke-dasharray=\"4 3\"/>",
        points.c_str()));
    out.push_back(StrFormat(
        "<text x=\"%d\" y=\"%d\" text-anchor=\"end\" fill=\"#888888\">"
        "Max_Sysceil</text>",
        kMarginLeft - 8, base_y - kCeilingHeight / 2));
  }

  out.push_back("</svg>");
  return Join(out, "\n");
}

}  // namespace pcpda
