#include "trace/trace.h"

#include <cstddef>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

const char* ToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kArrival:
      return "arrival";
    case TraceKind::kLockGrant:
      return "lock-grant";
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kEarlyRelease:
      return "early-release";
    case TraceKind::kCommit:
      return "commit";
    case TraceKind::kRestart:
      return "restart";
    case TraceKind::kDeadlineMiss:
      return "deadline-miss";
    case TraceKind::kDeadlock:
      return "deadlock";
    case TraceKind::kDrop:
      return "drop";
    case TraceKind::kFault:
      return "fault";
    case TraceKind::kAuditViolation:
      return "audit-violation";
  }
  return "unknown";
}

std::string TraceEvent::DebugString() const {
  std::string out =
      StrFormat("t=%lld %s job=%lld spec=%d", static_cast<long long>(tick),
                pcpda::ToString(kind), static_cast<long long>(job), spec);
  if (item != kInvalidItem) {
    out += StrFormat(" item=d%d mode=%s", item, pcpda::ToString(mode));
  }
  if (reason != BlockReason::kNone) {
    out += StrFormat(" reason=%s", pcpda::ToString(reason));
  }
  if (!others.empty()) {
    std::vector<std::string> ids;
    ids.reserve(others.size());
    for (JobId j : others) {
      ids.push_back(StrFormat("%lld", static_cast<long long>(j)));
    }
    out += " others=[" + Join(ids, ",") + "]";
  }
  if (!note.empty()) out += " note=" + note;
  return out;
}

namespace {

/// Evicts the oldest entries once `buffer` holds twice the capacity,
/// keeping the newest `capacity`. Amortized O(1) per append.
template <typename T>
std::int64_t CompactToCapacity(std::vector<T>& buffer,
                               std::size_t capacity) {
  if (capacity == 0 || buffer.size() < 2 * capacity) return 0;
  const std::size_t evict = buffer.size() - capacity;
  buffer.erase(buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(evict));
  return static_cast<std::int64_t>(evict);
}

}  // namespace

void Trace::SetCapacity(std::size_t max_events) {
  capacity_ = max_events;
  dropped_events_ += CompactToCapacity(events_, capacity_);
  dropped_ticks_ += CompactToCapacity(ticks_, capacity_);
}

void Trace::AddEvent(TraceEvent event) {
  events_.push_back(std::move(event));
  dropped_events_ += CompactToCapacity(events_, capacity_);
}

void Trace::AddTick(TickRecord record) {
  PCPDA_CHECK(ticks_.empty() || ticks_.back().tick + 1 == record.tick);
  ticks_.push_back(std::move(record));
  dropped_ticks_ += CompactToCapacity(ticks_, capacity_);
}

std::vector<TraceEvent> Trace::EventsOfKind(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Trace::EventsOfKind(TraceKind kind,
                                            SpecId spec) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind && e.spec == spec) out.push_back(e);
  }
  return out;
}

std::optional<TraceEvent> Trace::FirstEvent(TraceKind kind,
                                            JobId job) const {
  for (const TraceEvent& e : events_) {
    if (e.kind == kind && e.job == job) return e;
  }
  return std::nullopt;
}

SpecId Trace::RunningSpecAt(Tick tick) const {
  // Tick records are consecutive, so index relative to the first retained
  // one (tick 0 unless a capacity bound evicted the front of the run).
  if (ticks_.empty()) return kInvalidSpec;
  const Tick first = ticks_.front().tick;
  if (tick < first ||
      static_cast<std::size_t>(tick - first) >= ticks_.size()) {
    return kInvalidSpec;
  }
  return ticks_[static_cast<std::size_t>(tick - first)].running_spec;
}

Tick Trace::RunningTicks(SpecId spec) const {
  Tick total = 0;
  for (const TickRecord& r : ticks_) {
    if (r.running_spec == spec) ++total;
  }
  return total;
}

Tick Trace::BlockedTicks(JobId job) const {
  Tick total = 0;
  for (const TickRecord& r : ticks_) {
    for (const BlockedSample& b : r.blocked) {
      if (b.job == job) {
        ++total;
        break;
      }
    }
  }
  return total;
}

Priority Trace::MaxCeiling() const {
  Priority max = Priority::Dummy();
  for (const TickRecord& r : ticks_) max = Max(max, r.ceiling);
  return max;
}

std::string Trace::DebugString() const {
  std::vector<std::string> lines;
  lines.reserve(events_.size());
  for (const TraceEvent& e : events_) lines.push_back(e.DebugString());
  return Join(lines, "\n");
}

}  // namespace pcpda
