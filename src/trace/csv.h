#ifndef PCPDA_TRACE_CSV_H_
#define PCPDA_TRACE_CSV_H_

#include <string>

#include "sched/metrics.h"
#include "trace/trace.h"
#include "txn/spec.h"

namespace pcpda {

/// Discrete events as CSV: tick,kind,job,spec,instance,item,mode,reason,
/// others,note.
std::string TraceEventsCsv(const Trace& trace);

/// Per-tick schedule as CSV: tick,running_spec,running_kind,ceiling_level,
/// blocked_specs.
std::string ScheduleCsv(const TransactionSet& set, const Trace& trace);

/// Per-spec metrics as CSV.
std::string MetricsCsv(const TransactionSet& set, const RunMetrics& metrics);

}  // namespace pcpda

#endif  // PCPDA_TRACE_CSV_H_
