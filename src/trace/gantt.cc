#include "trace/gantt.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/strings.h"

namespace pcpda {

namespace {

char RunChar(StepKind kind) {
  switch (kind) {
    case StepKind::kRead:
      return 'r';
    case StepKind::kWrite:
      return 'w';
    case StepKind::kCompute:
      return '#';
  }
  return '#';
}

/// Priority level -> '1'-based spec index character ('1' = highest).
char CeilingChar(Priority ceiling, const TransactionSet& set) {
  if (ceiling.is_dummy()) return '-';
  for (SpecId i = 0; i < set.size(); ++i) {
    if (set.priority(i) == ceiling) {
      const int index = static_cast<int>(i) + 1;
      if (index <= 9) return static_cast<char>('0' + index);
      return '+';
    }
  }
  return '?';
}

}  // namespace

std::string RenderGantt(const TransactionSet& set, const Trace& trace,
                        const GanttOptions& options) {
  const std::size_t width = trace.ticks().size();
  const std::size_t rows = static_cast<std::size_t>(set.size());
  std::vector<std::string> grid(rows, std::string(width + 1, ' '));

  // Released-but-unfinished spans from arrival/commit/drop events.
  struct Span {
    SpecId spec;
    Tick from;
    Tick to;  // exclusive
  };
  std::map<JobId, Span> spans;
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceKind::kArrival:
        spans[e.job] = {e.spec, e.tick, static_cast<Tick>(width)};
        break;
      case TraceKind::kCommit:
      case TraceKind::kDrop:
        if (auto it = spans.find(e.job); it != spans.end()) {
          it->second.to = e.tick;
        }
        break;
      default:
        break;
    }
  }
  for (const auto& [job, span] : spans) {
    auto& row = grid[static_cast<std::size_t>(span.spec)];
    for (Tick t = span.from; t < span.to && t <= static_cast<Tick>(width);
         ++t) {
      if (row[static_cast<std::size_t>(t)] == ' ') {
        row[static_cast<std::size_t>(t)] = '.';
      }
    }
  }

  // Per-tick running/blocked states.
  for (const TickRecord& record : trace.ticks()) {
    const auto t = static_cast<std::size_t>(record.tick);
    if (record.running_spec != kInvalidSpec) {
      grid[static_cast<std::size_t>(record.running_spec)][t] =
          RunChar(record.running_kind);
    }
    for (const BlockedSample& blocked : record.blocked) {
      grid[static_cast<std::size_t>(blocked.spec)][t] = 'B';
    }
  }

  // Event markers.
  for (const TraceEvent& e : trace.events()) {
    if (e.spec == kInvalidSpec || e.tick < 0 ||
        static_cast<std::size_t>(e.tick) > width) {
      continue;
    }
    auto& cell = grid[static_cast<std::size_t>(e.spec)]
                     [static_cast<std::size_t>(e.tick)];
    switch (e.kind) {
      case TraceKind::kArrival:
        if (cell == ' ' || cell == '.') cell = '^';
        break;
      case TraceKind::kCommit:
        if (cell == ' ' || cell == '.') cell = 'C';
        break;
      case TraceKind::kDeadlineMiss:
        cell = '!';
        break;
      default:
        break;
    }
  }

  // Assemble: tick ruler, rows, ceiling row.
  std::vector<std::string> lines;
  std::string ruler = PadRight("", 9);
  for (std::size_t t = 0; t <= width; ++t) {
    ruler += (t % 5 == 0) ? StrFormat("%zu", t % 10)[0] : ' ';
  }
  lines.push_back(ruler);
  for (SpecId i = 0; i < set.size(); ++i) {
    lines.push_back(PadRight(set.spec(i).name, 8) + "|" +
                    grid[static_cast<std::size_t>(i)]);
  }
  if (options.show_ceiling) {
    std::string ceiling_row(width, '-');
    for (const TickRecord& record : trace.ticks()) {
      ceiling_row[static_cast<std::size_t>(record.tick)] =
          CeilingChar(record.ceiling, set);
    }
    lines.push_back(PadRight("ceiling", 8) + "|" + ceiling_row);
  }
  if (options.show_legend) {
    lines.push_back(
        "legend: r/w/# run (read/write/compute), B blocked, . preempted, "
        "^ arrival, C commit, ! miss; ceiling row = Max_Sysceil as the "
        "index of the transaction holding that priority");
  }
  return Join(lines, "\n");
}

}  // namespace pcpda
