#include "trace/csv.h"

#include <vector>

#include "common/strings.h"

namespace pcpda {

std::string TraceEventsCsv(const Trace& trace) {
  std::vector<std::string> lines;
  lines.push_back("tick,kind,job,spec,instance,item,mode,reason,others,note");
  for (const TraceEvent& e : trace.events()) {
    std::vector<std::string> others;
    others.reserve(e.others.size());
    for (JobId j : e.others) {
      others.push_back(StrFormat("%lld", static_cast<long long>(j)));
    }
    lines.push_back(StrFormat(
        "%lld,%s,%lld,%d,%d,%d,%s,%s,%s,%s",
        static_cast<long long>(e.tick), ToString(e.kind),
        static_cast<long long>(e.job), e.spec, e.instance, e.item,
        ToString(e.mode), ToString(e.reason),
        Join(others, ";").c_str(), e.note.c_str()));
  }
  return Join(lines, "\n") + "\n";
}

std::string ScheduleCsv(const TransactionSet& set, const Trace& trace) {
  std::vector<std::string> lines;
  lines.push_back("tick,running_spec,running_kind,ceiling_level,blocked");
  for (const TickRecord& r : trace.ticks()) {
    std::vector<std::string> blocked;
    blocked.reserve(r.blocked.size());
    for (const BlockedSample& b : r.blocked) {
      blocked.push_back(set.spec(b.spec).name);
    }
    const char* kind = r.running_kind == StepKind::kRead    ? "read"
                       : r.running_kind == StepKind::kWrite ? "write"
                                                            : "compute";
    lines.push_back(StrFormat(
        "%lld,%s,%s,%s,%s", static_cast<long long>(r.tick),
        r.running_spec == kInvalidSpec
            ? "-"
            : set.spec(r.running_spec).name.c_str(),
        r.running_spec == kInvalidSpec ? "-" : kind,
        r.ceiling.is_dummy()
            ? std::string("-").c_str()
            : StrFormat("%d", r.ceiling.level()).c_str(),
        Join(blocked, ";").c_str()));
  }
  return Join(lines, "\n") + "\n";
}

std::string MetricsCsv(const TransactionSet& set,
                       const RunMetrics& metrics) {
  std::vector<std::string> lines;
  lines.push_back(
      "spec,released,committed,missed,dropped,restarts,busy,blocked,"
      "effective_blocking,max_effective_blocking,preempted,ceiling_blocks,"
      "conflict_blocks,max_response,mean_response");
  for (SpecId i = 0;
       i < set.size() &&
       static_cast<std::size_t>(i) < metrics.per_spec.size();
       ++i) {
    const SpecMetrics& m = metrics.per_spec[static_cast<std::size_t>(i)];
    lines.push_back(StrFormat(
        "%s,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,"
        "%lld,%.3f",
        set.spec(i).name.c_str(), static_cast<long long>(m.released),
        static_cast<long long>(m.committed),
        static_cast<long long>(m.deadline_misses),
        static_cast<long long>(m.dropped),
        static_cast<long long>(m.restarts),
        static_cast<long long>(m.busy_ticks),
        static_cast<long long>(m.blocked_ticks),
        static_cast<long long>(m.effective_blocking_ticks),
        static_cast<long long>(m.max_effective_blocking),
        static_cast<long long>(m.preempted_ticks),
        static_cast<long long>(m.ceiling_blocks),
        static_cast<long long>(m.conflict_blocks),
        static_cast<long long>(m.max_response), m.MeanResponse()));
  }
  return Join(lines, "\n") + "\n";
}

}  // namespace pcpda
