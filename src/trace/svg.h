#ifndef PCPDA_TRACE_SVG_H_
#define PCPDA_TRACE_SVG_H_

#include <string>

#include "trace/trace.h"
#include "txn/spec.h"

namespace pcpda {

/// Options for the SVG Gantt renderer.
struct SvgOptions {
  /// Pixels per tick.
  int tick_width = 14;
  /// Pixels per transaction row.
  int row_height = 26;
  /// Draw the Max_Sysceil step line under the rows (the paper's dotted
  /// line in Figures 4-5).
  bool show_ceiling = true;
  /// Chart title ("" = none).
  std::string title;
};

/// Renders the run as a publication-style SVG Gantt chart: one row per
/// transaction with colored execution segments (read/write/compute),
/// hatched blocking segments, arrival/commit/deadline-miss markers, a tick
/// axis, and optionally the system-ceiling step line. Self-contained SVG
/// (inline styles, no external fonts).
std::string RenderSvg(const TransactionSet& set, const Trace& trace,
                      const SvgOptions& options = {});

}  // namespace pcpda

#endif  // PCPDA_TRACE_SVG_H_
