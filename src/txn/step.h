#ifndef PCPDA_TXN_STEP_H_
#define PCPDA_TXN_STEP_H_

#include <string>

#include "common/types.h"

namespace pcpda {

/// What one step of a transaction body does.
enum class StepKind : std::uint8_t {
  /// Pure computation; consumes CPU, touches no data item.
  kCompute,
  /// Reads a data item. Acquires a read lock before the step's first tick.
  kRead,
  /// Writes a data item. Acquires a write lock before the step's first
  /// tick. Under update-in-workspace the value reaches the database at
  /// commit; under update-in-place it is applied when the step completes.
  kWrite,
};

/// One step of a transaction body. Passive data; invariants are validated
/// by TransactionSet::Create.
struct Step {
  StepKind kind = StepKind::kCompute;
  ItemId item = kInvalidItem;
  /// CPU ticks the step consumes once it is allowed to run (>= 1). The
  /// paper's worked examples use 1 tick per operation.
  Tick duration = 1;

  std::string DebugString() const;

  friend bool operator==(const Step&, const Step&) = default;
};

/// Convenience constructors mirroring the paper's Read_i(x)/Write_i(x).
inline Step Compute(Tick duration) {
  return Step{StepKind::kCompute, kInvalidItem, duration};
}
inline Step Read(ItemId item, Tick duration = 1) {
  return Step{StepKind::kRead, item, duration};
}
inline Step Write(ItemId item, Tick duration = 1) {
  return Step{StepKind::kWrite, item, duration};
}

}  // namespace pcpda

#endif  // PCPDA_TXN_STEP_H_
