#ifndef PCPDA_TXN_SPEC_H_
#define PCPDA_TXN_SPEC_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/step.h"

namespace pcpda {

/// A static transaction description: either a periodic transaction (the
/// paper's model: released every `period` ticks with deadline at the end of
/// the period) or a one-shot transaction (period == 0, released once at
/// `offset`; used by the paper's worked examples).
///
/// Passive data carrier; TransactionSet::Create validates it and assigns
/// priorities.
struct TransactionSpec {
  /// Display name, e.g. "T1". Must be unique within a set; empty names are
  /// auto-filled as "T<i+1>".
  std::string name;
  /// Release period in ticks; 0 means one-shot.
  Tick period = 0;
  /// First release time (phase), >= 0.
  Tick offset = 0;
  /// Deadline relative to release. 0 means "use the period" for periodic
  /// transactions and "none" for one-shot transactions.
  Tick relative_deadline = 0;
  /// The transaction body, executed in order.
  std::vector<Step> body;

  /// Sum of step durations: the execution time C_i.
  Tick ExecutionTime() const;
  /// Items the transaction may read (from kRead steps).
  std::set<ItemId> ReadSet() const;
  /// WriteSet(T_i) in the paper: items the transaction may write.
  std::set<ItemId> WriteSet() const;
  /// All items touched.
  std::set<ItemId> AccessSet() const;

  std::string DebugString() const;
};

/// How TransactionSet::Create orders priorities.
enum class PriorityAssignment {
  /// Rate-monotonic: shorter period = higher priority (the paper's
  /// assumption). One-shot specs keep their listed order after periodic
  /// ones of shorter period; ties broken by listed order.
  kRateMonotonic,
  /// The listed order is the priority order: the first spec is T_1, the
  /// highest priority (used by the paper's worked examples).
  kAsListed,
  /// Deadline-monotonic (extension): shorter effective relative deadline
  /// (explicit deadline, else period) = higher priority. Optimal among
  /// fixed-priority assignments when deadlines may be shorter than
  /// periods.
  kDeadlineMonotonic,
};

/// An immutable, validated set of transaction specs with a total priority
/// order. Index 0 is T_1 in the paper (highest priority); the priority of
/// spec i compares higher than spec j whenever i < j.
class TransactionSet {
 public:
  /// Validates and orders `specs`. Fails if a spec has an empty body, a
  /// non-positive step duration, a missing item id on a data step, a
  /// negative offset/period/deadline, a deadline exceeding the period, or a
  /// duplicate name.
  static StatusOr<TransactionSet> Create(
      std::vector<TransactionSpec> specs,
      PriorityAssignment assignment = PriorityAssignment::kRateMonotonic);

  SpecId size() const { return static_cast<SpecId>(specs_.size()); }
  const TransactionSpec& spec(SpecId id) const;
  /// P_i in the paper. Higher for smaller i.
  Priority priority(SpecId id) const;
  /// Deadline relative to release, or kNoTick if the spec has none.
  Tick RelativeDeadline(SpecId id) const;

  /// One more than the largest item id referenced by any spec (0 if no
  /// data steps exist).
  ItemId item_count() const { return item_count_; }

  /// Total processor utilization sum(C_i / Pd_i) over periodic specs.
  double Utilization() const;

  /// Hyperperiod (LCM of periods) of the periodic specs, or 0 if none.
  /// Saturates at kNoTick on overflow.
  Tick Hyperperiod() const;

  std::string DebugString() const;

 private:
  explicit TransactionSet(std::vector<TransactionSpec> specs);

  std::vector<TransactionSpec> specs_;
  ItemId item_count_ = 0;
};

}  // namespace pcpda

#endif  // PCPDA_TXN_SPEC_H_
