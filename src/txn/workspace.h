#ifndef PCPDA_TXN_WORKSPACE_H_
#define PCPDA_TXN_WORKSPACE_H_

#include <map>
#include <optional>

#include "common/types.h"
#include "db/value.h"

namespace pcpda {

/// A transaction's private workspace (the update-in-workspace model of
/// Section 4 of the paper). Writes are buffered here during execution and
/// reach the database only at commit; the owning transaction's own reads
/// see the workspace first.
class Workspace {
 public:
  /// Buffers a write of `value` to `item`, replacing any earlier buffered
  /// write of the same item.
  void Put(ItemId item, Value value);

  /// The buffered value for `item`, if the transaction has written it.
  std::optional<Value> Get(ItemId item) const;

  bool Contains(ItemId item) const;
  bool empty() const { return writes_.empty(); }
  std::size_t size() const { return writes_.size(); }

  /// Buffered writes in item order (deterministic commit application).
  const std::map<ItemId, Value>& writes() const { return writes_; }

  void Clear();

 private:
  std::map<ItemId, Value> writes_;
};

}  // namespace pcpda

#endif  // PCPDA_TXN_WORKSPACE_H_
