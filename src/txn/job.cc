#include "txn/job.h"

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

const char* ToString(JobState state) {
  switch (state) {
    case JobState::kActive:
      return "active";
    case JobState::kCommitted:
      return "committed";
    case JobState::kDropped:
      return "dropped";
  }
  return "unknown";
}

Job::Job(JobId id, const TransactionSet* set, SpecId spec_id, int instance,
         Tick release_time, Tick absolute_deadline)
    : id_(id),
      set_(set),
      spec_id_(spec_id),
      instance_(instance),
      release_time_(release_time),
      absolute_deadline_(absolute_deadline),
      running_priority_(set->priority(spec_id)),
      remaining_in_step_(set->spec(spec_id).body.front().duration) {
  PCPDA_CHECK(set != nullptr);
}

const Step& Job::current_step() const {
  PCPDA_CHECK(!BodyDone());
  return spec().body[step_index_];
}

bool Job::ExecuteTick() {
  PCPDA_CHECK(!BodyDone());
  PCPDA_CHECK(remaining_in_step_ > 0);
  --remaining_in_step_;
  if (remaining_in_step_ > 0) return false;
  ++step_index_;
  step_admitted_ = false;
  if (!BodyDone()) {
    remaining_in_step_ = current_step().duration;
  }
  return true;
}

void Job::InflateCurrentStep(Tick extra) {
  PCPDA_CHECK(!BodyDone());
  PCPDA_CHECK(extra > 0);
  remaining_in_step_ += extra;
}

Tick Job::RemainingWork() const {
  if (BodyDone()) return 0;
  Tick total = remaining_in_step_;
  const auto& body = spec().body;
  for (std::size_t i = step_index_ + 1; i < body.size(); ++i) {
    total += body[i].duration;
  }
  return total;
}

void Job::MarkCommitted(Tick tick) {
  PCPDA_CHECK(state_ == JobState::kActive);
  PCPDA_CHECK(BodyDone());
  state_ = JobState::kCommitted;
  commit_time_ = tick;
}

void Job::RecordUndo(ItemId item, const Value& before) {
  // First write wins: the oldest pre-image is what an abort must restore.
  undo_log_.try_emplace(item, before);
}

void Job::ResetForRestart() {
  PCPDA_CHECK(state_ == JobState::kActive);
  step_index_ = 0;
  remaining_in_step_ = spec().body.front().duration;
  step_admitted_ = false;
  data_read_.clear();
  workspace_.Clear();
  undo_log_.clear();
  ++restarts_;
}

std::string Job::DebugName() const {
  return StrFormat("%s#%d", spec().name.c_str(), instance_);
}

}  // namespace pcpda
