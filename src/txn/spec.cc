#include "txn/spec.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

Tick TransactionSpec::ExecutionTime() const {
  Tick total = 0;
  for (const Step& step : body) total += step.duration;
  return total;
}

std::set<ItemId> TransactionSpec::ReadSet() const {
  std::set<ItemId> items;
  for (const Step& step : body) {
    if (step.kind == StepKind::kRead) items.insert(step.item);
  }
  return items;
}

std::set<ItemId> TransactionSpec::WriteSet() const {
  std::set<ItemId> items;
  for (const Step& step : body) {
    if (step.kind == StepKind::kWrite) items.insert(step.item);
  }
  return items;
}

std::set<ItemId> TransactionSpec::AccessSet() const {
  std::set<ItemId> items = ReadSet();
  std::set<ItemId> writes = WriteSet();
  items.insert(writes.begin(), writes.end());
  return items;
}

std::string Step::DebugString() const {
  switch (kind) {
    case StepKind::kCompute:
      return StrFormat("Compute(%lld)", static_cast<long long>(duration));
    case StepKind::kRead:
      return StrFormat("Read(d%d,%lld)", item,
                       static_cast<long long>(duration));
    case StepKind::kWrite:
      return StrFormat("Write(d%d,%lld)", item,
                       static_cast<long long>(duration));
  }
  PCPDA_UNREACHABLE("bad StepKind");
}

std::string TransactionSpec::DebugString() const {
  std::vector<std::string> steps;
  steps.reserve(body.size());
  for (const Step& step : body) steps.push_back(step.DebugString());
  return StrFormat("%s{period=%lld offset=%lld body=[%s]}", name.c_str(),
                   static_cast<long long>(period),
                   static_cast<long long>(offset),
                   Join(steps, ", ").c_str());
}

namespace {

Status ValidateSpec(const TransactionSpec& spec, int index) {
  const std::string tag =
      spec.name.empty() ? StrFormat("spec #%d", index) : spec.name;
  if (spec.body.empty()) {
    return Status::InvalidArgument(tag + ": empty body");
  }
  if (spec.period < 0 || spec.offset < 0 || spec.relative_deadline < 0) {
    return Status::InvalidArgument(tag +
                                   ": negative period/offset/deadline");
  }
  if (spec.period > 0 && spec.relative_deadline > spec.period) {
    return Status::InvalidArgument(
        tag + ": deadline exceeds period (the paper assumes deadline at "
              "the end of the period)");
  }
  for (const Step& step : spec.body) {
    if (step.duration <= 0) {
      return Status::InvalidArgument(tag + ": non-positive step duration");
    }
    const bool data_step = step.kind != StepKind::kCompute;
    if (data_step && step.item < 0) {
      return Status::InvalidArgument(tag + ": data step with invalid item");
    }
    if (!data_step && step.item != kInvalidItem) {
      return Status::InvalidArgument(tag + ": compute step names an item");
    }
  }
  // An execution time exceeding the deadline or period makes the spec
  // infeasible but still simulatable (overload and miss-policy
  // experiments rely on that), so it is deliberately not rejected here;
  // the offline analyses report such sets as unschedulable.
  return Status::Ok();
}

}  // namespace

TransactionSet::TransactionSet(std::vector<TransactionSpec> specs)
    : specs_(std::move(specs)) {
  for (const TransactionSpec& spec : specs_) {
    for (const Step& step : spec.body) {
      if (step.kind != StepKind::kCompute) {
        item_count_ = std::max(item_count_, step.item + 1);
      }
    }
  }
}

StatusOr<TransactionSet> TransactionSet::Create(
    std::vector<TransactionSpec> specs, PriorityAssignment assignment) {
  if (specs.empty()) {
    return Status::InvalidArgument("transaction set is empty");
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    PCPDA_RETURN_IF_ERROR(ValidateSpec(specs[i], static_cast<int>(i)));
  }
  if (assignment != PriorityAssignment::kAsListed) {
    // Stable sort: periodic specs by the monotonic key (shorter = higher
    // priority), then one-shot specs in listed order. The DM key is the
    // effective relative deadline; the RM key is the period.
    const bool dm = assignment == PriorityAssignment::kDeadlineMonotonic;
    auto key = [dm](const TransactionSpec& spec) {
      if (dm && spec.relative_deadline > 0) return spec.relative_deadline;
      return spec.period;
    };
    std::stable_sort(specs.begin(), specs.end(),
                     [&key](const TransactionSpec& a,
                            const TransactionSpec& b) {
                       const bool a_periodic = a.period > 0;
                       const bool b_periodic = b.period > 0;
                       if (a_periodic != b_periodic) return a_periodic;
                       if (!a_periodic) return false;  // keep listed order
                       return key(a) < key(b);
                     });
  }
  // Fill default names after ordering so "T1" is the highest priority.
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name.empty()) {
      specs[i].name = StrFormat("T%d", static_cast<int>(i) + 1);
    }
    if (!names.insert(specs[i].name).second) {
      return Status::InvalidArgument("duplicate spec name: " +
                                     specs[i].name);
    }
  }
  return TransactionSet(std::move(specs));
}

const TransactionSpec& TransactionSet::spec(SpecId id) const {
  PCPDA_CHECK(id >= 0 && id < size());
  return specs_[static_cast<std::size_t>(id)];
}

Priority TransactionSet::priority(SpecId id) const {
  PCPDA_CHECK(id >= 0 && id < size());
  return PriorityForSpecIndex(id, size());
}

Tick TransactionSet::RelativeDeadline(SpecId id) const {
  const TransactionSpec& s = spec(id);
  if (s.relative_deadline > 0) return s.relative_deadline;
  if (s.period > 0) return s.period;
  return kNoTick;
}

double TransactionSet::Utilization() const {
  double total = 0.0;
  for (const TransactionSpec& spec : specs_) {
    if (spec.period > 0) {
      total += static_cast<double>(spec.ExecutionTime()) /
               static_cast<double>(spec.period);
    }
  }
  return total;
}

Tick TransactionSet::Hyperperiod() const {
  Tick lcm = 0;
  for (const TransactionSpec& spec : specs_) {
    if (spec.period <= 0) continue;
    if (lcm == 0) {
      lcm = spec.period;
      continue;
    }
    const Tick g = std::gcd(lcm, spec.period);
    const Tick factor = spec.period / g;
    if (lcm > kNoTick / factor) return kNoTick;  // saturate
    lcm *= factor;
  }
  return lcm;
}

std::string TransactionSet::DebugString() const {
  std::vector<std::string> lines;
  lines.reserve(specs_.size());
  for (SpecId i = 0; i < size(); ++i) {
    lines.push_back(StrFormat("[P=%d] %s", priority(i).level(),
                              specs_[static_cast<std::size_t>(i)]
                                  .DebugString()
                                  .c_str()));
  }
  return Join(lines, "\n");
}

}  // namespace pcpda
