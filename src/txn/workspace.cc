#include "txn/workspace.h"

namespace pcpda {

void Workspace::Put(ItemId item, Value value) { writes_[item] = value; }

std::optional<Value> Workspace::Get(ItemId item) const {
  auto it = writes_.find(item);
  if (it == writes_.end()) return std::nullopt;
  return it->second;
}

bool Workspace::Contains(ItemId item) const {
  return writes_.contains(item);
}

void Workspace::Clear() { writes_.clear(); }

}  // namespace pcpda
