#ifndef PCPDA_TXN_JOB_H_
#define PCPDA_TXN_JOB_H_

#include <map>
#include <set>
#include <string>

#include "common/types.h"
#include "db/value.h"
#include "txn/spec.h"
#include "txn/workspace.h"

namespace pcpda {

/// Lifecycle of a job.
enum class JobState : std::uint8_t {
  /// Released; may run or be blocked depending on locks and priority.
  kActive,
  /// Committed successfully.
  kCommitted,
  /// Dropped by the deadline-miss policy.
  kDropped,
};

const char* ToString(JobState state);

/// One released instance of a transaction spec. Owned by the simulator;
/// protocols observe jobs through const references.
class Job {
 public:
  Job(JobId id, const TransactionSet* set, SpecId spec_id, int instance,
      Tick release_time, Tick absolute_deadline);

  JobId id() const { return id_; }
  SpecId spec_id() const { return spec_id_; }
  const TransactionSpec& spec() const { return set_->spec(spec_id_); }
  /// 0-based release index of this instance.
  int instance() const { return instance_; }
  Tick release_time() const { return release_time_; }
  /// Absolute deadline, or kNoTick if none.
  Tick absolute_deadline() const { return absolute_deadline_; }

  JobState state() const { return state_; }
  bool active() const { return state_ == JobState::kActive; }

  /// The original (assigned) priority P_i of the paper.
  Priority base_priority() const { return set_->priority(spec_id_); }
  /// The running priority: base priority possibly raised by inheritance.
  /// Maintained by the scheduler every tick.
  Priority running_priority() const { return running_priority_; }
  void set_running_priority(Priority p) { running_priority_ = p; }

  // --- Execution progress -------------------------------------------------

  /// Index of the step the job executes next (== body size when done).
  std::size_t step_index() const { return step_index_; }
  /// Ticks still to execute in the current step.
  Tick remaining_in_step() const { return remaining_in_step_; }
  /// The current step. Requires !BodyDone().
  const Step& current_step() const;
  bool BodyDone() const { return step_index_ >= spec().body.size(); }
  /// True while the current step's lock has been granted (or none needed).
  bool step_admitted() const { return step_admitted_; }
  void set_step_admitted(bool admitted) { step_admitted_ = admitted; }

  /// Consumes one CPU tick; advances to the next step when the current one
  /// completes. Returns true if the tick finished a step.
  bool ExecuteTick();

  /// Extends the current step by `extra` ticks (injected WCET overrun).
  /// Requires an unfinished body and extra > 0.
  void InflateCurrentStep(Tick extra);

  /// Remaining execution demand in ticks.
  Tick RemainingWork() const;

  // --- Data state ---------------------------------------------------------

  /// DataRead(T_i) in the paper: the items this job has read so far.
  const std::set<ItemId>& data_read() const { return data_read_; }
  void RecordRead(ItemId item) { data_read_.insert(item); }

  /// WriteSet(T_i): statically declared items the job may write.
  std::set<ItemId> write_set() const { return spec().WriteSet(); }

  Workspace& workspace() { return workspace_; }
  const Workspace& workspace() const { return workspace_; }

  /// Undo log for update-in-place protocols: the value each item held
  /// before this job's first in-place write of it. Restored on abort.
  void RecordUndo(ItemId item, const Value& before);
  const std::map<ItemId, Value>& undo_log() const { return undo_log_; }

  // --- Lifecycle ----------------------------------------------------------

  void MarkCommitted(Tick tick);
  void MarkDropped() { state_ = JobState::kDropped; }
  Tick commit_time() const { return commit_time_; }

  /// Restarts the job from its first step (2PL-HP abort). Clears progress,
  /// data-read set and workspace; the restart count increments.
  void ResetForRestart();
  int restarts() const { return restarts_; }

  /// Records that the deadline miss for this job has been counted.
  bool deadline_miss_recorded() const { return deadline_miss_recorded_; }
  void set_deadline_miss_recorded() { deadline_miss_recorded_ = true; }

  /// "T3#2" style label.
  std::string DebugName() const;

 private:
  JobId id_;
  const TransactionSet* set_;
  SpecId spec_id_;
  int instance_;
  Tick release_time_;
  Tick absolute_deadline_;

  JobState state_ = JobState::kActive;
  Priority running_priority_;

  std::size_t step_index_ = 0;
  Tick remaining_in_step_;
  bool step_admitted_ = false;

  std::set<ItemId> data_read_;
  Workspace workspace_;
  std::map<ItemId, Value> undo_log_;

  Tick commit_time_ = kNoTick;
  int restarts_ = 0;
  bool deadline_miss_recorded_ = false;
};

}  // namespace pcpda

#endif  // PCPDA_TXN_JOB_H_
