#include "plan/compiled_plan.h"

#include <utility>

#include "lint/lint.h"

namespace pcpda {
namespace {

/// Horizon resolution shared with the oracle planner: explicit scenario
/// horizon wins, else twice the hyperperiod, else 0 ("caller decides").
Tick ResolveHorizon(const Scenario& scenario) {
  if (scenario.horizon > 0) return scenario.horizon;
  const Tick hyper = scenario.set.Hyperperiod();
  return hyper > 0 && hyper < kNoTick / 2 ? 2 * hyper : 0;
}

void SetBit(std::vector<std::uint64_t>& bits, std::size_t words_per_spec,
            SpecId spec, ItemId item) {
  const std::size_t word = static_cast<std::size_t>(spec) * words_per_spec +
                           static_cast<std::size_t>(item) / 64;
  bits[word] |= std::uint64_t{1} << (static_cast<std::size_t>(item) % 64);
}

}  // namespace

StatusOr<CompiledPlan> CompiledPlan::Compile(Scenario scenario,
                                             const CompileOptions& options) {
  if (options.lint) {
    LintReport report = LintScenario(scenario, LintFilterOptions());
    if (!report.clean()) {
      return Status::InvalidArgument("scenario failed lint:\n" +
                                     report.Render(scenario.name));
    }
  }

  auto impl = std::make_shared<Impl>(std::move(scenario));
  impl->resolved_horizon = ResolveHorizon(impl->scenario);

  const TransactionSet& set = impl->scenario.set;
  const std::size_t words =
      (static_cast<std::size_t>(set.item_count()) + 63) / 64;
  impl->words_per_spec = words;
  impl->read_bits.assign(static_cast<std::size_t>(set.size()) * words, 0);
  impl->write_bits.assign(static_cast<std::size_t>(set.size()) * words, 0);
  for (SpecId spec = 0; spec < set.size(); ++spec) {
    for (ItemId item : set.spec(spec).ReadSet()) {
      SetBit(impl->read_bits, words, spec, item);
    }
    for (ItemId item : set.spec(spec).WriteSet()) {
      SetBit(impl->write_bits, words, spec, item);
    }
  }

  return CompiledPlan(std::move(impl));
}

StatusOr<CompiledPlan> CompiledPlan::Compile(std::string name,
                                             TransactionSet set, Tick horizon,
                                             const CompileOptions& options) {
  Scenario scenario{std::move(name), std::move(set), horizon, {}, {}, {}, {}};
  return Compile(std::move(scenario), options);
}

}  // namespace pcpda
