#ifndef PCPDA_PLAN_COMPILED_PLAN_H_
#define PCPDA_PLAN_COMPILED_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "db/ceilings.h"
#include "sim/calendar.h"
#include "workload/scenario.h"

namespace pcpda {

struct CompileOptions {
  /// Run the static analyzer as a compile gate: scenarios with lint
  /// errors are refused (InvalidArgument carrying the rendered report).
  /// Callers that have already linted — or that compile generated
  /// workloads the generator guarantees well-formed — turn this off to
  /// keep behavior and cost identical to the interpreted path.
  bool lint = true;
};

/// The compile-once/execute-many artifact of ROADMAP item 4: everything
/// that is static per scenario, lowered exactly once.
///
///   * the parsed scenario itself (owned; entity ids — specs, items —
///     are already dense [0, N) indexes in this codebase, so no extra
///     remap table is needed);
///   * the static priority ceilings (Wceil/Aceil plus writer/reader
///     tables) the protocols consult on every lock decision;
///   * the arrival calendar with a prebuilt cursor heap, copied (O(specs))
///     into each run instead of being reconstructed;
///   * per-spec read/write access bitsets (one 64-bit word block per
///     spec), the dense form of the access sets the lint pass derives —
///     shared by analyses that would otherwise re-walk std::set<ItemId>.
///
/// A CompiledPlan is an immutable value: the state lives behind a shared
/// pointer, so copies are cheap and a grid of concurrent runs can share
/// one plan without synchronization. Pointers and references obtained
/// from accessors stay valid for the lifetime of any copy.
class CompiledPlan {
 public:
  /// An empty plan (ok() == false); Compile is the real constructor.
  CompiledPlan() = default;

  /// Lowers a parsed scenario. The scenario is moved into the plan.
  static StatusOr<CompiledPlan> Compile(Scenario scenario,
                                        const CompileOptions& options = {});
  /// Convenience for generated workloads: wraps a bare TransactionSet
  /// into a scenario named `name` and compiles it.
  static StatusOr<CompiledPlan> Compile(std::string name,
                                        TransactionSet set, Tick horizon,
                                        const CompileOptions& options = {});

  bool ok() const { return impl_ != nullptr; }

  const Scenario& scenario() const { return impl().scenario; }
  const TransactionSet& set() const { return impl().scenario.set; }
  const StaticCeilings& ceilings() const { return impl().ceilings; }
  const ArrivalCalendar& calendar() const { return impl().calendar; }
  /// A fresh cursor positioned at tick 0 — a copy of the prebuilt heap,
  /// byte-identical in pop order to ArrivalCalendar::MakeCursor().
  ArrivalCalendar::Cursor MakeCursor() const {
    return impl().initial_cursor;
  }

  /// The scenario's declared horizon, falling back to twice the
  /// hyperperiod (0 when neither is usable) — the same resolution the
  /// batch CLIs apply.
  Tick horizon() const { return impl().resolved_horizon; }

  SpecId spec_count() const { return impl().scenario.set.size(); }
  ItemId item_count() const { return impl().scenario.set.item_count(); }

  /// Dense access bitsets: true when `spec` may read / write `item`.
  bool SpecReads(SpecId spec, ItemId item) const {
    return TestBit(impl().read_bits, spec, item);
  }
  bool SpecWrites(SpecId spec, ItemId item) const {
    return TestBit(impl().write_bits, spec, item);
  }

 private:
  struct Impl {
    explicit Impl(Scenario s)
        : scenario(std::move(s)),
          ceilings(scenario.set),
          calendar(&scenario.set),
          initial_cursor(calendar.MakeCursor()) {}

    Scenario scenario;
    StaticCeilings ceilings;
    ArrivalCalendar calendar;
    ArrivalCalendar::Cursor initial_cursor;
    Tick resolved_horizon = 0;
    std::size_t words_per_spec = 0;
    std::vector<std::uint64_t> read_bits;
    std::vector<std::uint64_t> write_bits;
  };

  explicit CompiledPlan(std::shared_ptr<const Impl> impl)
      : impl_(std::move(impl)) {}

  const Impl& impl() const {
    PCPDA_CHECK_MSG(impl_ != nullptr, "empty CompiledPlan");
    return *impl_;
  }

  bool TestBit(const std::vector<std::uint64_t>& bits, SpecId spec,
               ItemId item) const {
    const Impl& plan = impl();
    PCPDA_CHECK(spec >= 0 && spec < plan.scenario.set.size());
    PCPDA_CHECK(item >= 0 && item < plan.scenario.set.item_count());
    const std::size_t word = static_cast<std::size_t>(spec) *
                                 plan.words_per_spec +
                             static_cast<std::size_t>(item) / 64;
    return (bits[word] >> (static_cast<std::size_t>(item) % 64)) & 1u;
  }

  std::shared_ptr<const Impl> impl_;
};

}  // namespace pcpda

#endif  // PCPDA_PLAN_COMPILED_PLAN_H_
