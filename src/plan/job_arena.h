#ifndef PCPDA_PLAN_JOB_ARENA_H_
#define PCPDA_PLAN_JOB_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace pcpda {

/// Dense JobId-indexed slot map: the struct-of-arrays arena primitive
/// behind the simulator's per-job hot state. Job ids are assigned densely
/// from 0 within a run (the jobs_ archive is a vector indexed by id), so a
/// flat slot vector plus a presence flag gives O(1) find/insert/erase with
/// no node allocations, while a separately maintained ascending id list
/// reproduces the iteration order of the std::map<JobId, T> it replaces —
/// the goldens in tests/determinism_test.cc depend on that order.
///
/// Slots are never shrunk: erase clears the presence flag but keeps the
/// payload's capacity (strings, vectors, sets), so steady-state ticks
/// allocate nothing. clear() is O(live entries), not O(highest id).
template <typename T>
class JobSlotMap {
 public:
  bool empty() const { return ids_.empty(); }
  std::size_t size() const { return ids_.size(); }

  /// Live ids in ascending order — the std::map iteration order.
  const std::vector<JobId>& ids() const { return ids_; }

  bool contains(JobId id) const {
    const std::size_t slot = static_cast<std::size_t>(id);
    return id >= 0 && slot < present_.size() && present_[slot] != 0;
  }

  const T* find(JobId id) const {
    return contains(id) ? &slots_[static_cast<std::size_t>(id)] : nullptr;
  }
  T* find(JobId id) {
    return contains(id) ? &slots_[static_cast<std::size_t>(id)] : nullptr;
  }

  /// The live entry for `id`; the id must be present.
  const T& at(JobId id) const {
    const T* entry = find(id);
    PCPDA_CHECK_MSG(entry != nullptr, "JobSlotMap::at on an absent id");
    return *entry;
  }
  T& at(JobId id) {
    T* entry = find(id);
    PCPDA_CHECK_MSG(entry != nullptr, "JobSlotMap::at on an absent id");
    return *entry;
  }

  /// Inserts a default-constructed entry when absent (the reused slot is
  /// reset to T{} so stale payload never leaks into a new job).
  T& operator[](JobId id) {
    PCPDA_CHECK(id >= 0);
    const std::size_t slot = static_cast<std::size_t>(id);
    if (slot >= slots_.size()) {
      slots_.resize(slot + 1);
      present_.resize(slot + 1, 0);
    }
    if (present_[slot] == 0) {
      present_[slot] = 1;
      slots_[slot] = T{};
      ids_.insert(std::upper_bound(ids_.begin(), ids_.end(), id), id);
    }
    return slots_[slot];
  }

  void erase(JobId id) {
    if (!contains(id)) return;
    present_[static_cast<std::size_t>(id)] = 0;
    ids_.erase(std::lower_bound(ids_.begin(), ids_.end(), id));
  }

  void clear() {
    for (JobId id : ids_) present_[static_cast<std::size_t>(id)] = 0;
    ids_.clear();
  }

  void swap(JobSlotMap& other) {
    slots_.swap(other.slots_);
    present_.swap(other.present_);
    ids_.swap(other.ids_);
  }

 private:
  std::vector<T> slots_;
  std::vector<std::uint8_t> present_;
  std::vector<JobId> ids_;
};

}  // namespace pcpda

#endif  // PCPDA_PLAN_JOB_ARENA_H_
