#include "core/serialization_order.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace pcpda {

std::string OrderConstraint::DebugString() const {
  return StrFormat("job %lld before job %lld via d%d (read@%lld)",
                   static_cast<long long>(reader),
                   static_cast<long long>(writer), item,
                   static_cast<long long>(read_tick));
}

namespace {

struct Effect {
  JobId job;
  bool is_write;
  Tick tick;
  std::int64_t seq;
};

std::map<ItemId, std::vector<Effect>> EffectsByItem(const History& history) {
  std::map<ItemId, std::vector<Effect>> by_item;
  for (const CommittedTxn& txn : history.committed()) {
    for (const HistoryOp& op : txn.ops) {
      if (op.own_read) continue;
      by_item[op.item].push_back({txn.job,
                                  op.kind == HistoryOp::Kind::kWrite,
                                  op.tick, op.seq});
    }
  }
  for (auto& [item, effects] : by_item) {
    std::sort(effects.begin(), effects.end(),
              [](const Effect& a, const Effect& b) { return a.seq < b.seq; });
  }
  return by_item;
}

}  // namespace

std::vector<OrderConstraint> DeriveOrderConstraints(const History& history) {
  std::vector<OrderConstraint> constraints;
  for (const auto& [item, effects] : EffectsByItem(history)) {
    for (std::size_t i = 0; i < effects.size(); ++i) {
      if (effects[i].is_write) continue;
      for (std::size_t j = i + 1; j < effects.size(); ++j) {
        if (!effects[j].is_write) continue;
        if (effects[j].job == effects[i].job) continue;
        constraints.push_back(
            {effects[i].job, effects[j].job, item, effects[i].tick});
      }
    }
  }
  return constraints;
}

std::vector<OrderConstraint> FindCommitOrderViolations(
    const History& history) {
  std::map<JobId, std::int64_t> commit_seq;
  for (const CommittedTxn& txn : history.committed()) {
    commit_seq[txn.job] = txn.commit_seq;
  }
  std::vector<OrderConstraint> violations;
  for (const OrderConstraint& c : DeriveOrderConstraints(history)) {
    if (commit_seq.at(c.reader) > commit_seq.at(c.writer)) {
      violations.push_back(c);
    }
  }
  return violations;
}

}  // namespace pcpda
