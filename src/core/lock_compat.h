#ifndef PCPDA_CORE_LOCK_COMPAT_H_
#define PCPDA_CORE_LOCK_COMPAT_H_

#include <set>

#include "common/types.h"

namespace pcpda {

/// Table 1 of the paper: lock compatibility between a holder T_L and a
/// requester T_H under the update-in-workspace model.
///
///               | T_H requests read | T_H requests write
///  T_L holds R  |        OK         |       NOT OK
///  T_L holds W  |       OK *        |         OK
///
/// (*) only under DataRead(T_L) ∩ WriteSet(T_H) = ∅, which guarantees T_H
/// is never blocked by T_L and hence commits first, fixing the
/// serialization order T_H -> T_L.
enum class Table1Compat : std::uint8_t {
  kOk,
  /// Compatible only when the starred condition holds.
  kConditional,
  kNotOk,
};

/// The static entry of Table 1 for (held, requested).
Table1Compat LockCompatibility(LockMode held, LockMode requested);

/// Evaluates Table 1 including the starred condition against the holder's
/// current DataRead set and the requester's declared WriteSet.
bool Table1Allows(LockMode held, LockMode requested,
                  const std::set<ItemId>& holder_data_read,
                  const std::set<ItemId>& requester_write_set);

/// True when the two sets intersect (the paper's
/// DataRead(T_L) ∩ WriteSet(T_H) ≠ ∅ test).
bool SetsIntersect(const std::set<ItemId>& a, const std::set<ItemId>& b);

}  // namespace pcpda

#endif  // PCPDA_CORE_LOCK_COMPAT_H_
