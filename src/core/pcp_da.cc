#include "core/pcp_da.h"

#include <algorithm>

#include "common/check.h"
#include "core/lock_compat.h"

namespace pcpda {

PcpDa::PcpDa(PcpDaOptions options) : options_(options) {}

PcpDa::SysceilInfo PcpDa::ComputeSysceil(JobId self) const {
  SysceilInfo info;
  info.sysceil = Priority::Dummy();
  const LockTable& locks = view().locks();
  for (JobId holder : locks.holders()) {
    if (holder == self) continue;
    for (ItemId item : locks.read_items(holder)) {
      const Priority w = view().ceilings().Wceil(item);
      if (w.is_dummy()) continue;
      if (w > info.sysceil) {
        info.sysceil = w;
        info.tstar.assign(1, holder);
      } else if (w == info.sysceil &&
                 std::find(info.tstar.begin(), info.tstar.end(), holder) ==
                     info.tstar.end()) {
        info.tstar.push_back(holder);
      }
    }
  }
  return info;
}

LockDecision PcpDa::Decide(const LockRequest& request) const {
  PCPDA_CHECK(request.job != nullptr);
  const Job& job = *request.job;
  const JobId self = job.id();
  const ItemId x = request.item;
  const LockTable& locks = view().locks();

  if (request.mode == LockMode::kWrite) {
    // LC1: grant unless another transaction read-locks x. Write locks by
    // others do not conflict (blind workspace writes).
    std::vector<JobId> other_readers;
    for (JobId reader : locks.readers(x)) {
      if (reader != self) other_readers.push_back(reader);
    }
    if (other_readers.empty()) return LockDecision::Grant("LC1");
    return LockDecision::Block(BlockReason::kConflict,
                               std::move(other_readers), "LC1-denied");
  }

  // Read request. First the Table-1 starred condition against current
  // write-lock holders of x: reading under T_L's write lock fixes the
  // serialization order requester -> T_L, which is only safe when
  // DataRead(T_L) ∩ WriteSet(requester) = ∅ (Case 2 otherwise).
  if (options_.enable_wr_guard) {
    std::vector<JobId> conflicting_writers;
    const std::set<ItemId> write_set = job.write_set();
    for (JobId writer : locks.writers(x)) {
      if (writer == self) continue;
      const Job* holder = view().job(writer);
      PCPDA_CHECK(holder != nullptr);
      if (SetsIntersect(holder->data_read(), write_set)) {
        conflicting_writers.push_back(writer);
      }
    }
    if (!conflicting_writers.empty()) {
      return LockDecision::Block(BlockReason::kConflict,
                                 std::move(conflicting_writers),
                                 "wr-guard");
    }
  }

  const Priority p = job.running_priority();
  const SysceilInfo info = ComputeSysceil(self);

  // LC2: the requester's priority clears the system ceiling.
  if (p > info.sysceil) return LockDecision::Grant("LC2");

  // LC3/LC4 share the guard that T* will not write-lock x (otherwise the
  // new read lock could block T*, which may be executing at an inherited
  // priority above P_i — the deadlock of Example 5).
  bool tstar_guard_ok = true;
  if (options_.enable_tstar_guard) {
    for (JobId holder_id : info.tstar) {
      const Job* holder = view().job(holder_id);
      PCPDA_CHECK(holder != nullptr);
      if (holder->write_set().contains(x)) {
        tstar_guard_ok = false;
        break;
      }
    }
  }
  const Priority hpw = view().ceilings().Wceil(x);
  if (tstar_guard_ok) {
    // LC3: nobody at or above P_i will ever write x.
    if (p > hpw) return LockDecision::Grant("LC3");
    // LC4: the requester itself is the highest-priority writer of x, and
    // no other transaction currently read-locks x.
    if (p == hpw && locks.NoReaderOtherThan(self, x)) {
      return LockDecision::Grant("LC4");
    }
  }

  // Ceiling blocking by T* (unique per Lemma 6 in the paper's setting).
  return LockDecision::Block(BlockReason::kCeiling, info.tstar,
                             "LC-denied");
}

Priority PcpDa::CurrentCeiling() const {
  Priority ceiling = Priority::Dummy();
  const LockTable& locks = view().locks();
  for (JobId holder : locks.holders()) {
    for (ItemId item : locks.read_items(holder)) {
      ceiling = Max(ceiling, view().ceilings().Wceil(item));
    }
  }
  return ceiling;
}

}  // namespace pcpda
