#ifndef PCPDA_CORE_SERIALIZATION_ORDER_H_
#define PCPDA_CORE_SERIALIZATION_ORDER_H_

#include <string>
#include <vector>

#include "history/history.h"

namespace pcpda {

/// One serialization-order constraint PCP-DA established at run time: the
/// reader observed the value of `item` from before `writer`'s update, so
/// the reader precedes the writer in any witness serial order, and —
/// because restarts are forbidden — the protocol must make the reader
/// commit first (Case 1 of Section 4.1).
struct OrderConstraint {
  JobId reader = kInvalidJob;
  JobId writer = kInvalidJob;
  ItemId item = kInvalidItem;
  /// When the read took effect.
  Tick read_tick = 0;

  std::string DebugString() const;

  friend bool operator==(const OrderConstraint&,
                         const OrderConstraint&) = default;
};

/// Extracts the dynamic serialization-order constraints from a committed
/// history: for every committed read of `item` and every committed write
/// of `item` that took effect after the read (by a different transaction),
/// the reader must precede the writer.
std::vector<OrderConstraint> DeriveOrderConstraints(const History& history);

/// Verifies the paper's Case-1 guarantee on a PCP-DA history: every
/// constraint's reader committed before its writer (equivalently, a
/// committed transaction never has write-read conflicts with transactions
/// that were still executing — Lemma 9). Returns the violated constraints
/// (empty means the guarantee held).
std::vector<OrderConstraint> FindCommitOrderViolations(
    const History& history);

}  // namespace pcpda

#endif  // PCPDA_CORE_SERIALIZATION_ORDER_H_
