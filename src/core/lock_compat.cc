#include "core/lock_compat.h"

namespace pcpda {

Table1Compat LockCompatibility(LockMode held, LockMode requested) {
  if (held == LockMode::kRead) {
    return requested == LockMode::kRead ? Table1Compat::kOk
                                        : Table1Compat::kNotOk;
  }
  // Holder has a write lock. Writes live in the holder's workspace:
  // another write is blind (commit order decides) and a read sees the
  // committed value, admissible under the starred condition.
  return requested == LockMode::kRead ? Table1Compat::kConditional
                                      : Table1Compat::kOk;
}

bool SetsIntersect(const std::set<ItemId>& a, const std::set<ItemId>& b) {
  // Linear merge over the sorted sets.
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

bool Table1Allows(LockMode held, LockMode requested,
                  const std::set<ItemId>& holder_data_read,
                  const std::set<ItemId>& requester_write_set) {
  switch (LockCompatibility(held, requested)) {
    case Table1Compat::kOk:
      return true;
    case Table1Compat::kNotOk:
      return false;
    case Table1Compat::kConditional:
      return !SetsIntersect(holder_data_read, requester_write_set);
  }
  return false;
}

}  // namespace pcpda
