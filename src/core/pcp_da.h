#ifndef PCPDA_CORE_PCP_DA_H_
#define PCPDA_CORE_PCP_DA_H_

#include <vector>

#include "protocols/protocol.h"

namespace pcpda {

/// Options for PcpDa, mainly for the ablation benches.
struct PcpDaOptions {
  /// The "x ∉ WriteSet(T*)" guard of LC3/LC4. Disabling it yields the
  /// naive "condition (2)" protocol of the paper's Example 5, which can
  /// deadlock; keep it on for the real protocol.
  bool enable_tstar_guard = true;
  /// The Table-1 starred condition (DataRead(T_L) ∩ WriteSet(T_H) = ∅)
  /// checked against current write-lock holders before a read is granted.
  /// Required for serializability (Lemma 9); disabling is for ablation
  /// only.
  bool enable_wr_guard = true;
};

/// PCP-DA — the paper's contribution (Section 5): a priority ceiling
/// protocol with dynamic adjustment of serialization order.
///
/// Transactions defer updates to a private workspace (update-in-workspace
/// model), which makes write operations preemptable: write locks raise no
/// ceiling and write/write conflicts vanish. Each data item carries a
/// single static write priority ceiling Wceil(x) (= HPW(x)), effective
/// only while the item is read-locked. A request by T_i is granted when
/// one of the locking conditions holds:
///
///   LC1  Wlock_i(x) and no other transaction read-locks x.
///   LC2  Rlock_i(x) and P_i > Sysceil_i (the highest Wceil among items
///        read-locked by others).
///   LC3  Rlock_i(x) and P_i > HPW(x) and x ∉ WriteSet(T*).
///   LC4  Rlock_i(x) and P_i = HPW(x) and no other transaction read-locks
///        x and x ∉ WriteSet(T*).
///
/// where T* holds the read-locked item whose Wceil equals Sysceil_i.
/// Reads of items write-locked by others additionally pass Table 1's
/// starred condition. Priority inheritance applies on blocking.
///
/// Properties (proved in the paper, verified by this repo's tests):
/// single blocking, deadlock freedom, serializability, and no restarts.
class PcpDa : public Protocol {
 public:
  explicit PcpDa(PcpDaOptions options = {});

  const char* name() const override { return "PCP-DA"; }
  UpdateModel update_model() const override {
    return UpdateModel::kWorkspace;
  }
  CeilingRule ceiling_rule() const override {
    return CeilingRule::kWriteOnRead;
  }

  LockDecision Decide(const LockRequest& request) const override;

  /// Max Wceil over all currently read-locked items (write locks raise
  /// nothing).
  Priority CurrentCeiling() const override;

  const PcpDaOptions& options() const { return options_; }

 private:
  struct SysceilInfo {
    Priority sysceil;          // dummy when nothing is read-locked
    std::vector<JobId> tstar;  // holder(s) of the ceiling item(s)
  };

  /// Sysceil_i and T* with respect to `self`: computed over items
  /// read-locked by transactions other than `self`.
  SysceilInfo ComputeSysceil(JobId self) const;

  PcpDaOptions options_;
};

}  // namespace pcpda

#endif  // PCPDA_CORE_PCP_DA_H_
