#include "fuzz/shrinker.h"

#include <optional>
#include <utility>
#include <vector>

#include "lint/lint.h"

namespace pcpda {
namespace {

/// Mutable decomposition of a scenario. Specs are kept in priority order
/// and re-assembled as-listed, so priorities survive every edit; fault
/// spec ids index into `specs` and are remapped when a spec is dropped.
struct Candidate {
  std::string name;
  Tick horizon = 0;
  std::vector<TransactionSpec> specs;
  FaultConfig faults;
};

Candidate FromScenario(const Scenario& scenario) {
  Candidate candidate;
  candidate.name = scenario.name;
  candidate.horizon = scenario.horizon;
  for (SpecId i = 0; i < scenario.set.size(); ++i) {
    candidate.specs.push_back(scenario.set.spec(i));
  }
  candidate.faults = scenario.faults;
  return candidate;
}

/// Rebuilds the candidate into a parsed scenario through the .scn text
/// format. Returning through ParseScenario guarantees that whatever the
/// shrinker accepts also reproduces from the serialized file.
std::optional<std::pair<std::string, Scenario>> Materialize(
    const Candidate& candidate) {
  auto set = TransactionSet::Create(candidate.specs,
                                    PriorityAssignment::kAsListed);
  if (!set.ok()) return std::nullopt;
  const Scenario assembled{candidate.name, std::move(set).value(),
                           candidate.horizon, {}, candidate.faults,
                           {}, {}};
  // Guard FormatScenario's spec-name lookups before serializing.
  for (const FaultSpec& fault : candidate.faults.faults) {
    if (fault.spec != kInvalidSpec &&
        (fault.spec < 0 || fault.spec >= assembled.set.size())) {
      return std::nullopt;
    }
  }
  std::string text = FormatScenario(assembled);
  auto parsed = ParseScenario(text);
  if (!parsed.ok()) return std::nullopt;
  // Static pre-flight: a candidate the analyzer rejects outright would
  // report its defect through lint, not through an oracle, so it cannot
  // be a faithful minimization of the original finding.
  if (LintRejects(parsed.value())) return std::nullopt;
  return std::make_pair(std::move(text), std::move(parsed).value());
}

class ShrinkRun {
 public:
  ShrinkRun(const OracleOptions& oracles, const OracleFailure& failure,
            const ShrinkOptions& options)
      : oracles_(oracles), failure_(failure), options_(options) {}

  ShrinkResult Minimize(const Scenario& input) {
    current_ = FromScenario(input);
    if (!Reproduces_(current_)) {
      // Flaky or round-trip-sensitive finding; report it unshrunk.
      return ShrinkResult{false, FormatScenario(input), input, evals_, 0};
    }
    int rounds = 0;
    bool changed = true;
    while (changed && rounds < options_.max_rounds && !Exhausted()) {
      changed = false;
      changed |= DropTransactions();
      changed |= DropFaults();
      changed |= DropSteps();
      changed |= ShrinkDurations();
      changed |= SimplifySpecs();
      changed |= SimplifyFaultAttrs();
      changed |= ShrinkHorizon();
      ++rounds;
    }
    auto materialized = Materialize(current_);
    PCPDA_CHECK_MSG(materialized.has_value(),
                    "accepted shrink candidate failed to materialize");
    return ShrinkResult{true, std::move(materialized->first),
                        std::move(materialized->second), evals_, rounds};
  }

 private:
  bool Exhausted() const { return evals_ >= options_.max_evals; }

  /// True when `candidate` still reproduces the target failure from its
  /// serialized form. Consumes one evaluation.
  bool Reproduces_(const Candidate& candidate) {
    if (Exhausted()) return false;
    ++evals_;
    const auto materialized = Materialize(candidate);
    if (!materialized.has_value()) return false;
    return Reproduces(materialized->second, oracles_, failure_);
  }

  /// Accepts `candidate` as the new current scenario if it reproduces.
  bool TryAccept(Candidate candidate) {
    if (!Reproduces_(candidate)) return false;
    current_ = std::move(candidate);
    return true;
  }

  bool DropTransactions() {
    bool changed = false;
    // Lowest priority first: victims of blocking usually sit at the top,
    // so the tail is the likelier dead weight.
    for (int i = static_cast<int>(current_.specs.size()) - 1;
         i >= 0 && !Exhausted(); --i) {
      if (current_.specs.size() <= 1) break;
      Candidate candidate = current_;
      candidate.specs.erase(candidate.specs.begin() + i);
      std::vector<FaultSpec> kept;
      for (FaultSpec fault : candidate.faults.faults) {
        if (fault.spec == static_cast<SpecId>(i)) continue;
        if (fault.spec != kInvalidSpec &&
            fault.spec > static_cast<SpecId>(i)) {
          --fault.spec;
        }
        kept.push_back(fault);
      }
      candidate.faults.faults = std::move(kept);
      changed |= TryAccept(std::move(candidate));
    }
    return changed;
  }

  bool DropFaults() {
    bool changed = false;
    for (int i = static_cast<int>(current_.faults.faults.size()) - 1;
         i >= 0 && !Exhausted(); --i) {
      Candidate candidate = current_;
      candidate.faults.faults.erase(candidate.faults.faults.begin() + i);
      changed |= TryAccept(std::move(candidate));
    }
    return changed;
  }

  bool DropSteps() {
    bool changed = false;
    for (std::size_t s = 0; s < current_.specs.size(); ++s) {
      for (int i =
               static_cast<int>(current_.specs[s].body.size()) - 1;
           i >= 0 && !Exhausted(); --i) {
        if (current_.specs[s].body.size() <= 1) break;
        Candidate candidate = current_;
        candidate.specs[s].body.erase(candidate.specs[s].body.begin() +
                                      i);
        changed |= TryAccept(std::move(candidate));
      }
    }
    return changed;
  }

  bool ShrinkDurations() {
    bool changed = false;
    for (std::size_t s = 0; s < current_.specs.size(); ++s) {
      for (std::size_t i = 0;
           i < current_.specs[s].body.size() && !Exhausted(); ++i) {
        const Tick duration = current_.specs[s].body[i].duration;
        if (duration <= 1) continue;
        Candidate candidate = current_;
        candidate.specs[s].body[i].duration = 1;
        if (TryAccept(std::move(candidate))) {
          changed = true;
          continue;
        }
        if (duration > 2) {
          candidate = current_;
          candidate.specs[s].body[i].duration = duration / 2;
          changed |= TryAccept(std::move(candidate));
        }
      }
    }
    return changed;
  }

  bool SimplifySpecs() {
    bool changed = false;
    for (std::size_t s = 0; s < current_.specs.size() && !Exhausted();
         ++s) {
      if (current_.specs[s].offset > 0) {
        Candidate candidate = current_;
        candidate.specs[s].offset = 0;
        changed |= TryAccept(std::move(candidate));
      }
      if (current_.specs[s].relative_deadline > 0) {
        Candidate candidate = current_;
        candidate.specs[s].relative_deadline = 0;
        changed |= TryAccept(std::move(candidate));
      }
      const Tick period = current_.specs[s].period;
      if (period > 0) {
        // One-shot first (fewer jobs), then a shorter period.
        Candidate candidate = current_;
        candidate.specs[s].period = 0;
        if (TryAccept(std::move(candidate))) {
          changed = true;
          continue;
        }
        if (period > 1) {
          candidate = current_;
          candidate.specs[s].period = period / 2;
          if (candidate.specs[s].offset >= candidate.specs[s].period) {
            candidate.specs[s].offset = 0;
          }
          changed |= TryAccept(std::move(candidate));
        }
      }
    }
    return changed;
  }

  bool SimplifyFaultAttrs() {
    bool changed = false;
    for (std::size_t i = 0;
         i < current_.faults.faults.size() && !Exhausted(); ++i) {
      // Re-read current_ in each branch: an accepted TryAccept replaces
      // current_, so a reference held across it would dangle.
      if (current_.faults.faults[i].extra > 1) {
        Candidate candidate = current_;
        candidate.faults.faults[i].extra = 1;
        changed |= TryAccept(std::move(candidate));
      }
      if (current_.faults.faults[i].count > 1) {
        Candidate candidate = current_;
        candidate.faults.faults[i].count = 1;
        changed |= TryAccept(std::move(candidate));
      }
      const Tick at = current_.faults.faults[i].at;
      if (at != kNoTick && at > 0) {
        Candidate candidate = current_;
        candidate.faults.faults[i].at = 0;
        if (TryAccept(std::move(candidate))) {
          changed = true;
        } else if (at > 1) {
          candidate = current_;
          candidate.faults.faults[i].at = at / 2;
          changed |= TryAccept(std::move(candidate));
        }
      }
    }
    return changed;
  }

  bool ShrinkHorizon() {
    // An explicit oracle horizon overrides the scenario's, so shrinking
    // the scenario field would succeed vacuously.
    if (oracles_.horizon > 0) return false;
    bool changed = false;
    while (current_.horizon > 1 && !Exhausted()) {
      Candidate candidate = current_;
      candidate.horizon = current_.horizon / 2;
      if (!TryAccept(std::move(candidate))) break;
      changed = true;
    }
    return changed;
  }

  const OracleOptions& oracles_;
  const OracleFailure& failure_;
  const ShrinkOptions& options_;
  Candidate current_;
  int evals_ = 0;
};

}  // namespace

ShrinkResult Shrink(const Scenario& input, const OracleOptions& oracles,
                    const OracleFailure& failure,
                    const ShrinkOptions& options) {
  return ShrinkRun(oracles, failure, options).Minimize(input);
}

}  // namespace pcpda
