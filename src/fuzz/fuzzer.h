#ifndef PCPDA_FUZZ_FUZZER_H_
#define PCPDA_FUZZ_FUZZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fuzz/oracles.h"
#include "fuzz/shrinker.h"
#include "workload/scenario.h"

namespace pcpda {

class BatchRunner;

/// Configuration of one differential fuzzing campaign. Everything is
/// derived from `seed`, so a campaign is reproducible from a single
/// uint64: the same seed and iteration count always generate the same
/// scenarios, verdicts, shrinks and corpus files.
struct FuzzOptions {
  std::uint64_t seed = 1;
  int iterations = 100;
  /// Concurrent executors for each iteration's protocol fan-out (the
  /// CheckOne batch). Findings are byte-identical for every value; see
  /// DESIGN.md §10.
  int jobs = 1;
  /// Upper bound on per-scenario simulation horizons (the drawn horizon
  /// is uniform in [horizon_cap/2, horizon_cap]).
  Tick horizon_cap = 240;
  /// Probability a generated scenario carries a randomized fault plan.
  double fault_probability = 0.5;
  /// Stop the campaign after this many findings.
  int max_findings = 8;
  /// Run the static analyzer (error-level rules only) on every generated
  /// scenario before simulating it. A lint rejection of a generator
  /// output is a finding of its own class: the generator and the
  /// analyzer disagree about scenario validity.
  bool lint = true;
  /// Protocol selection and the broken-build test hook.
  OracleOptions oracles;
  ShrinkOptions shrink;
  /// Directory crash repros are serialized into (created on demand);
  /// empty keeps findings in memory only.
  std::string corpus_dir;
  /// Directory of .scn files replayed through the oracle stack before
  /// the generated campaign — the bridge from the campaign engine's
  /// quarantine records (and earlier corpus dirs) back into the fuzzer:
  /// a poisoned scenario becomes a shrinker seed. Files are taken in
  /// sorted order; empty replays nothing.
  std::string replay_dir;
};

/// One oracle failure, minimized.
struct FuzzFinding {
  int iteration = 0;
  /// Seed of the scenario's own generator stream (derived from the
  /// campaign seed and iteration; reported so a single scenario can be
  /// regenerated without replaying the campaign).
  std::uint64_t scenario_seed = 0;
  OracleFailure failure;
  /// The generated scenario, pre-shrink.
  std::string original_text;
  /// The minimal repro (equals original_text when shrinking failed to
  /// reproduce the flake).
  std::string minimal_text;
  bool shrunk = false;
  int shrink_evals = 0;
  /// Corpus path when FuzzOptions.corpus_dir was set.
  std::string corpus_file;
};

/// Campaign outcome.
struct FuzzReport {
  int iterations = 0;
  int scenarios_with_faults = 0;
  /// Scenario files replayed from FuzzOptions.replay_dir.
  int replayed = 0;
  std::vector<FuzzFinding> findings;
  /// Non-OK when corpus files could not be written.
  Status io_status;

  bool ok() const { return findings.empty() && io_status.ok(); }
  std::string Summary() const;
};

/// The differential scenario fuzzer: composes GenerateWorkload with
/// randomized fault plans, runs each generated scenario through the
/// oracle stack over all configured protocols, and delta-debugs every
/// failure down to a minimal .scn repro.
class ScenarioFuzzer {
 public:
  explicit ScenarioFuzzer(FuzzOptions options);

  /// The deterministic scenario for `iteration` of this campaign.
  /// Exposed so tests and the CLI can regenerate a single case.
  StatusOr<Scenario> MakeScenario(int iteration) const;

  /// Runs the campaign.
  FuzzReport Run();

 private:
  /// Lints `scenario`, runs the oracle stack, shrinks and records any
  /// finding. `iteration` is the campaign iteration (-1 for replayed
  /// files). Returns true when the findings budget is exhausted.
  bool CheckScenario(BatchRunner& runner, const Scenario& scenario,
                     int iteration, std::uint64_t scenario_seed,
                     FuzzReport& report);
  /// Replays every .scn in options_.replay_dir (sorted) through
  /// CheckScenario. Returns true when the findings budget is exhausted.
  bool ReplayCorpus(BatchRunner& runner, FuzzReport& report);

  FuzzOptions options_;
};

}  // namespace pcpda

#endif  // PCPDA_FUZZ_FUZZER_H_
