#include "fuzz/fuzzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "common/strings.h"
#include "lint/lint.h"
#include "runner/batch_runner.h"
#include "workload/generator.h"

namespace pcpda {
namespace {

/// Each iteration's scenario gets an independent, reproducible stream
/// derived from the campaign seed alone.
std::uint64_t MixSeed(std::uint64_t seed, int iteration) {
  return SplitMixSeed(seed, static_cast<std::uint64_t>(iteration));
}

FaultKind DrawFaultKind(Rng& rng) {
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return FaultKind::kAbort;
    case 1:
      return FaultKind::kRestartInCs;
    case 2:
      return FaultKind::kOverrun;
    case 3:
      return FaultKind::kDelayArrival;
    default:
      return FaultKind::kBurstArrival;
  }
}

FaultConfig DrawFaultConfig(Rng& rng, SpecId num_specs, Tick horizon) {
  FaultConfig config;
  config.seed = rng.Next();
  const int count = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < count; ++i) {
    FaultSpec fault;
    fault.kind = DrawFaultKind(rng);
    fault.spec = rng.Bernoulli(0.3)
                     ? kInvalidSpec
                     : static_cast<SpecId>(
                           rng.UniformInt(0, num_specs - 1));
    if (rng.Bernoulli(0.5)) {
      fault.at = rng.UniformInt(0, horizon - 1);
    } else {
      fault.probability = rng.UniformRange(0.01, 0.25);
    }
    fault.extra = rng.UniformInt(1, 5);
    fault.count = static_cast<int>(rng.UniformInt(1, 3));
    config.faults.push_back(fault);
  }
  return config;
}

std::string CorpusFileName(const FuzzFinding& finding) {
  std::string oracle = finding.failure.oracle;
  for (char& c : oracle) {
    if (c == '/' || c == ' ') c = '-';
  }
  return StrFormat("crash-%s-s%016llx-i%d.scn", oracle.c_str(),
                   static_cast<unsigned long long>(finding.scenario_seed),
                   finding.iteration);
}

}  // namespace

ScenarioFuzzer::ScenarioFuzzer(FuzzOptions options)
    : options_(std::move(options)) {}

StatusOr<Scenario> ScenarioFuzzer::MakeScenario(int iteration) const {
  const std::uint64_t scenario_seed = MixSeed(options_.seed, iteration);
  Rng rng(scenario_seed);

  WorkloadParams params;
  params.num_transactions = static_cast<int>(rng.UniformInt(2, 6));
  params.num_items = static_cast<int>(rng.UniformInt(2, 8));
  params.total_utilization = rng.UniformRange(0.3, 0.95);
  params.min_period = rng.UniformInt(20, 40);
  params.max_period = params.min_period + rng.UniformInt(20, 160);
  params.min_ops = 1;
  params.max_ops = static_cast<int>(
      rng.UniformInt(1, std::min(4, params.num_items)));
  params.write_fraction = rng.UniformRange(0.0, 0.8);

  auto set = GenerateWorkload(params, rng);
  PCPDA_RETURN_IF_ERROR(set.status());

  const Tick cap = options_.horizon_cap > 16 ? options_.horizon_cap : 16;
  const Tick horizon = rng.UniformInt(cap / 2 > 0 ? cap / 2 : 1, cap);

  FaultConfig faults;
  if (rng.Bernoulli(options_.fault_probability)) {
    faults = DrawFaultConfig(rng, set->size(), horizon);
  }

  Scenario scenario{
      StrFormat("fuzz_%016llx_i%d",
                static_cast<unsigned long long>(scenario_seed), iteration),
      std::move(set).value(), horizon, {}, std::move(faults), {}, {}};
  return scenario;
}

bool ScenarioFuzzer::CheckScenario(BatchRunner& runner,
                                   const Scenario& scenario, int iteration,
                                   std::uint64_t scenario_seed,
                                   FuzzReport& report) {
  const auto budget_spent = [&] {
    return static_cast<int>(report.findings.size()) >=
           options_.max_findings;
  };

  if (options_.lint) {
    const LintReport lint = LintScenario(scenario, LintFilterOptions());
    if (!lint.clean()) {
      // The scenario is statically invalid: for generated scenarios a
      // disagreement between the generator's and the analyzer's validity
      // definitions, for replayed files a stale or corrupt corpus entry.
      // Simulating it would test nothing, so report and move on.
      FuzzFinding finding;
      finding.iteration = iteration;
      finding.scenario_seed = scenario_seed;
      finding.failure = OracleFailure{
          "lint", "",
          StrFormat("%d lint error(s): %s", lint.errors(),
                    lint.diagnostics.front().message.c_str())};
      finding.original_text = FormatScenario(scenario);
      finding.minimal_text = finding.original_text;
      report.findings.push_back(std::move(finding));
      return budget_spent();
    }
  }

  // Compile once (the lint gate already ran above; replayed corpus files
  // skip it the same way they always did), so the protocol x repeat
  // fan-out shares one ceiling/calendar lowering. A scenario the
  // compiler cannot take falls back to the interpreted fan-out.
  CompileOptions compile_options;
  compile_options.lint = false;
  auto compiled = CompiledPlan::Compile(scenario, compile_options);
  const std::vector<RunSpec> plan =
      compiled.ok() ? PlanOracleRuns(compiled.value(), options_.oracles)
                    : PlanOracleRuns(scenario, options_.oracles);
  const std::vector<SimResult> results = runner.Run(plan);
  const OracleVerdict verdict =
      EvaluateOracleRuns(scenario, options_.oracles, results);
  if (verdict.ok()) return false;

  FuzzFinding finding;
  finding.iteration = iteration;
  finding.scenario_seed = scenario_seed;
  finding.failure = verdict.failures.front();
  finding.original_text = FormatScenario(scenario);

  const ShrinkResult shrunk = Shrink(scenario, options_.oracles,
                                     finding.failure, options_.shrink);
  finding.shrunk = shrunk.reproduced;
  finding.shrink_evals = shrunk.evals;
  finding.minimal_text =
      shrunk.reproduced ? shrunk.scn_text : finding.original_text;

  if (!options_.corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.corpus_dir, ec);
    const std::string path =
        options_.corpus_dir + "/" + CorpusFileName(finding);
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) {
      report.io_status =
          Status::Internal("cannot write corpus file: " + path);
    } else {
      out << "# fuzz finding: " << finding.failure.DebugString() << "\n";
      out << StrFormat("# campaign seed=%llu iteration=%d "
                       "scenario_seed=%016llx shrink_evals=%d\n",
                       static_cast<unsigned long long>(options_.seed),
                       iteration,
                       static_cast<unsigned long long>(
                           finding.scenario_seed),
                       finding.shrink_evals);
      out << finding.minimal_text;
      finding.corpus_file = path;
    }
  }

  report.findings.push_back(std::move(finding));
  return budget_spent();
}

bool ScenarioFuzzer::ReplayCorpus(BatchRunner& runner,
                                  FuzzReport& report) {
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.replay_dir, ec)) {
    if (entry.path().extension() == ".scn") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    report.io_status = Status::Internal(
        StrFormat("cannot read replay dir %s: %s",
                  options_.replay_dir.c_str(), ec.message().c_str()));
    return false;
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    auto scenario = LoadScenarioFile(path);
    if (!scenario.ok()) {
      // A replay file that no longer parses is itself a finding: the
      // corpus and the parser have drifted apart.
      FuzzFinding finding;
      finding.iteration = -1;
      finding.failure = OracleFailure{
          "replay-load", "",
          path + ": " + scenario.status().ToString()};
      report.findings.push_back(std::move(finding));
    } else {
      ++report.replayed;
      if (CheckScenario(runner, *scenario, -1, 0, report)) return true;
    }
    if (static_cast<int>(report.findings.size()) >=
        options_.max_findings) {
      return true;
    }
  }
  return false;
}

FuzzReport ScenarioFuzzer::Run() {
  FuzzReport report;
  // One pool for the whole campaign: every iteration's protocol fan-out
  // (8 protocols x 2 runs under the determinism oracle) is one batch.
  // Shrinking stays serial — it is a sequential search by nature.
  BatchRunner runner(BatchOptions{options_.jobs});

  // Replayed corpus/quarantine scenarios run first: known-bad inputs are
  // the cheapest place to find a regression.
  if (!options_.replay_dir.empty() && ReplayCorpus(runner, report)) {
    return report;
  }

  for (int iteration = 0; iteration < options_.iterations; ++iteration) {
    report.iterations = iteration + 1;
    auto scenario = MakeScenario(iteration);
    if (!scenario.ok()) {
      // Generation parameters are drawn inside validated ranges, so this
      // indicates a generator/validation bug — report it as a finding.
      FuzzFinding finding;
      finding.iteration = iteration;
      finding.scenario_seed = MixSeed(options_.seed, iteration);
      finding.failure = OracleFailure{"generator", "",
                                      scenario.status().ToString()};
      report.findings.push_back(std::move(finding));
      if (static_cast<int>(report.findings.size()) >=
          options_.max_findings) {
        break;
      }
      continue;
    }
    if (scenario->faults.enabled()) ++report.scenarios_with_faults;

    if (CheckScenario(runner, *scenario, iteration,
                      MixSeed(options_.seed, iteration), report)) {
      break;
    }
  }
  return report;
}

std::string FuzzReport::Summary() const {
  std::vector<std::string> lines;
  lines.push_back(StrFormat(
      "%d iteration(s), %d with fault plans%s: %zu finding(s)",
      iterations, scenarios_with_faults,
      replayed > 0 ? StrFormat(", %d replayed", replayed).c_str() : "",
      findings.size()));
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const FuzzFinding& finding = findings[i];
    lines.push_back(StrFormat(
        "  #%zu iter=%d seed=%016llx %s%s", i, finding.iteration,
        static_cast<unsigned long long>(finding.scenario_seed),
        finding.failure.DebugString().c_str(),
        finding.shrunk
            ? StrFormat(" (shrunk, %d evals)", finding.shrink_evals)
                  .c_str()
            : " (not shrunk)"));
    if (!finding.corpus_file.empty()) {
      lines.push_back("    repro: " + finding.corpus_file);
    }
  }
  if (!io_status.ok()) lines.push_back("io: " + io_status.ToString());
  return Join(lines, "\n");
}

}  // namespace pcpda
