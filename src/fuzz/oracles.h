#ifndef PCPDA_FUZZ_ORACLES_H_
#define PCPDA_FUZZ_ORACLES_H_

#include <string>
#include <vector>

#include "core/pcp_da.h"
#include "protocols/factory.h"
#include "runner/batch_runner.h"
#include "workload/scenario.h"

namespace pcpda {

/// Seeded defects for the analysis oracles, driven by `pcpda_fuzz
/// --break=bound|rta`. Each weakens one analytical result so the
/// corresponding oracle must fire on ordinary scenarios — the self-test
/// that proves the oracle is alive.
enum class AnalysisDefect : std::uint8_t {
  kNone,
  /// blocking-bound compares observed blocking against 0 instead of B_i.
  kZeroBlockingBound,
  /// sched-sound runs the RTA with B_i = 0 and no restart costs — the
  /// classic optimistic analysis that ignores data contention.
  kOptimisticRta,
};

/// Configuration for one oracle-stack evaluation of a scenario.
struct OracleOptions {
  /// Simulation horizon; 0 falls back to the scenario's own horizon and
  /// then to twice its hyperperiod.
  Tick horizon = 0;
  /// Protocols to run; empty means all 8 kinds from the factory.
  std::vector<ProtocolKind> protocols;
  /// Options for the PCP-DA instance. The fuzzer's acceptance test turns
  /// the locking-condition guards off here to prove the oracles catch an
  /// intentionally broken protocol build.
  PcpDaOptions pcp_da;
  /// Re-run every simulation a second time and compare the rendered
  /// trace/metrics/history bytes (nondeterminism oracle). Doubles the
  /// simulation cost; the shrinker turns it off while minimizing a
  /// failure found by a cheaper oracle.
  bool check_determinism = true;
  /// Deliberately weakened analysis for the --break= self-tests; part of
  /// the options so shrinking and reproduction carry the defect along.
  AnalysisDefect analysis_defect = AnalysisDefect::kNone;
};

/// One oracle violation. `oracle` is a stable identifier the shrinker
/// matches on while minimizing:
///
///   config           simulator rejected the run configuration
///   audit            per-tick invariant auditor reported violations
///   serializability  committed history has a cyclic serialization graph
///   replay           serial-witness replay observed a mismatched read
///   deadlock-free    a ceiling protocol hit a wait-for cycle
///   no-restarts      a ceiling protocol restarted jobs in a fault-free run
///   blocking-bound   fault-free per-job blocking exceeded the analytical
///                    B_i (every protocol with a finite bound)
///   sched-sound      the response-time analysis claimed a spec
///                    schedulable but a fault-free run missed a deadline
///   metrics-sane     counter bookkeeping inconsistent (ratios, totals)
///   released-equal   fault-free runs released different job counts
///                    across protocols
///   determinism      re-running the same configuration diverged
///
/// The fuzzer additionally emits findings with oracle ids outside this
/// table: "generator" (MakeScenario itself failed) and "lint" (the
/// static analyzer proves a generated scenario invalid before any
/// simulation — a generator/analyzer disagreement; see lint/lint.h).
struct OracleFailure {
  std::string oracle;
  /// Protocol name, empty for cross-protocol oracles (released-equal).
  std::string protocol;
  std::string detail;

  std::string DebugString() const;
};

/// Everything the oracle stack concluded about one scenario.
struct OracleVerdict {
  std::vector<OracleFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string DebugString() const;
};

/// Runs `scenario` through every configured protocol and applies the
/// oracle stack:
///   (a) the per-tick invariant auditor accepts every tick;
///   (b) the committed history is conflict serializable and survives the
///       serial-witness replay;
///   (c) metamorphic bounds: ceiling protocols never deadlock, fault-free
///       ceiling runs never restart, fault-free runs respect the
///       protocol's analytical worst-case blocking bound and never miss a
///       deadline the response-time analysis claimed safe, counters stay
///       internally consistent, and fault-free runs release identical job
///       counts under every protocol;
///   (d) re-running the same configuration is bit-identical.
/// All failures are collected (no early exit) so the caller can report
/// every protocol the scenario broke.
OracleVerdict RunOracles(const Scenario& scenario,
                         const OracleOptions& options);

/// The simulation jobs RunOracles would execute for `scenario`: per
/// configured protocol one run, plus an adjacent re-run when
/// check_determinism is set. Empty when the scenario has no usable
/// horizon (EvaluateOracleRuns then reports the config failure). The
/// returned specs point into `scenario`, which must outlive them.
std::vector<RunSpec> PlanOracleRuns(const Scenario& scenario,
                                    const OracleOptions& options);

/// Compiled variant: the same fan-out with every spec sharing `plan` —
/// one ceiling/calendar lowering for all protocol x repeat runs instead
/// of one per run. The specs point into `plan` (and its owned scenario),
/// which must outlive them. Results are byte-identical to the Scenario
/// overload on the scenario the plan was compiled from.
std::vector<RunSpec> PlanOracleRuns(const CompiledPlan& plan,
                                    const OracleOptions& options);

/// Applies the oracle stack to precomputed results, which must be in
/// PlanOracleRuns order (the caller typically produced them through a
/// BatchRunner). Verdicts are byte-identical to RunOracles regardless of
/// how many jobs computed the results.
OracleVerdict EvaluateOracleRuns(const Scenario& scenario,
                                 const OracleOptions& options,
                                 const std::vector<SimResult>& results);

/// True when re-checking `scenario` still produces a failure of the same
/// oracle (and, for protocol-specific oracles, the same protocol) as
/// `failure`. The shrinker's reproduction predicate: restricting the
/// check to the failing protocol keeps minimization cheap.
bool Reproduces(const Scenario& scenario, const OracleOptions& options,
                const OracleFailure& failure);

}  // namespace pcpda

#endif  // PCPDA_FUZZ_ORACLES_H_
