#include "fuzz/oracles.h"

#include <map>
#include <memory>
#include <sstream>

#include "analysis/blocking.h"
#include "analysis/response_time.h"
#include "common/check.h"
#include "common/strings.h"
#include "history/replay_checker.h"
#include "history/serialization_graph.h"
#include "sched/simulator.h"

namespace pcpda {
namespace {

Tick ResolveHorizon(const Scenario& scenario, const OracleOptions& options) {
  if (options.horizon > 0) return options.horizon;
  if (scenario.horizon > 0) return scenario.horizon;
  const Tick hyper = scenario.set.Hyperperiod();
  return hyper > 0 && hyper < kNoTick / 2 ? 2 * hyper : 0;
}

std::unique_ptr<Protocol> MakeOracleProtocol(ProtocolKind kind,
                                             const OracleOptions& options) {
  if (kind == ProtocolKind::kPcpDa) {
    return std::make_unique<PcpDa>(options.pcp_da);
  }
  return MakeProtocol(kind);
}

std::vector<ProtocolKind> ResolveKinds(const OracleOptions& options) {
  return options.protocols.empty() ? AllProtocolKinds() : options.protocols;
}

std::string RenderTick(const TickRecord& record) {
  std::string out = StrFormat(
      "t=%lld run=%lld spec=%d kind=%d ceil=%s",
      static_cast<long long>(record.tick),
      static_cast<long long>(record.running_job), record.running_spec,
      static_cast<int>(record.running_kind),
      record.ceiling.DebugString().c_str());
  for (const BlockedSample& blocked : record.blocked) {
    std::vector<std::string> ids;
    for (JobId id : blocked.blockers) {
      ids.push_back(StrFormat("%lld", static_cast<long long>(id)));
    }
    out += StrFormat(" blocked{job=%lld item=d%d mode=%s reason=%s by=[%s]}",
                     static_cast<long long>(blocked.job), blocked.item,
                     ToString(blocked.mode), ToString(blocked.reason),
                     Join(ids, ",").c_str());
  }
  return out;
}

/// Every observable byte of one run, for the nondeterminism oracle: any
/// divergence between two same-seed runs shows up as a digest diff.
std::string RenderDigest(const Scenario& scenario, const SimResult& result) {
  std::ostringstream out;
  out << "status: " << result.status.ToString() << "\n";
  out << "audit: " << result.audit.DebugString() << "\n";
  out << "[metrics]\n" << result.metrics.DebugString(scenario.set) << "\n";
  out << "[events]\n" << result.trace.DebugString() << "\n";
  out << "[ticks]\n";
  for (const TickRecord& record : result.trace.ticks()) {
    out << RenderTick(record) << "\n";
  }
  out << "[history]\n" << result.history.DebugString() << "\n";
  return out.str();
}

std::size_t FirstDivergence(const std::string& a, const std::string& b) {
  std::size_t at = 0;
  while (at < a.size() && at < b.size() && a[at] == b[at]) ++at;
  return at;
}

class OracleRunner {
 public:
  OracleRunner(const Scenario& scenario, const OracleOptions& options)
      : scenario_(scenario), options_(options) {}

  OracleVerdict Evaluate(const std::vector<SimResult>& results) {
    const Tick horizon = ResolveHorizon(scenario_, options_);
    if (horizon <= 0) {
      Fail("config", "",
           "no usable horizon: scenario has none and no finite "
           "hyperperiod");
      return std::move(verdict_);
    }
    const std::vector<ProtocolKind> kinds = ResolveKinds(options_);
    const std::size_t repeats = options_.check_determinism ? 2 : 1;
    PCPDA_CHECK_MSG(results.size() == kinds.size() * repeats,
                    "results are not in PlanOracleRuns order");

    const bool fault_free = scenario_.faults.faults.empty();
    std::map<std::string, std::int64_t> released_by_protocol;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const ProtocolKind kind = kinds[k];
      const SimResult& result = results[k * repeats];
      CheckOne(kind, horizon, result, fault_free);
      if (result.status.ok()) {
        released_by_protocol[ToString(kind)] =
            result.metrics.TotalReleased();
      }
      if (options_.check_determinism) {
        const SimResult& again = results[k * repeats + 1];
        const std::string first = RenderDigest(scenario_, result);
        const std::string second = RenderDigest(scenario_, again);
        if (first != second) {
          const std::size_t at = FirstDivergence(first, second);
          Fail("determinism", ToString(kind),
               StrFormat("re-run diverges at digest byte %zu: ...%s... "
                         "vs ...%s...",
                         at, first.substr(at, 48).c_str(),
                         second.substr(at, 48).c_str()));
        }
      }
    }
    if (fault_free && released_by_protocol.size() > 1) {
      const auto& first = *released_by_protocol.begin();
      for (const auto& [name, released] : released_by_protocol) {
        if (released != first.second) {
          Fail("released-equal", "",
               StrFormat("%s released %lld jobs but %s released %lld in "
                         "a fault-free run",
                         first.first.c_str(),
                         static_cast<long long>(first.second),
                         name.c_str(), static_cast<long long>(released)));
          break;
        }
      }
    }
    return std::move(verdict_);
  }

 private:
  void Fail(const char* oracle, std::string protocol, std::string detail) {
    verdict_.failures.push_back(
        OracleFailure{oracle, std::move(protocol), std::move(detail)});
  }

  void CheckOne(ProtocolKind kind, Tick horizon, const SimResult& result,
                bool fault_free) {
    const char* name = ToString(kind);
    const bool ceiling =
        MakeOracleProtocol(kind, options_)->ceiling_rule() !=
        CeilingRule::kNone;

    // (a) the per-tick invariant auditor accepted every tick.
    if (!result.audit.ok()) {
      const auto& violations = result.audit.violations;
      Fail("audit", name,
           StrFormat("%zu violation(s), first: %s", violations.size(),
                     violations.empty()
                         ? "(suppressed)"
                         : violations.front().DebugString().c_str()));
    }
    if (!result.status.ok()) {
      Fail("config", name, result.status.ToString());
      return;  // The run never completed; nothing further to check.
    }

    // (b) committed history serializable, and the serial witness replays.
    if (!IsSerializable(result.history)) {
      const auto check =
          SerializationGraph::Build(result.history).CheckAcyclic();
      std::vector<std::string> ids;
      for (JobId id : check.cycle) {
        ids.push_back(StrFormat("%lld", static_cast<long long>(id)));
      }
      Fail("serializability", name,
           "serialization graph cycle: " + Join(ids, " -> "));
    } else {
      const ReplayResult replay = ReplaySerialWitness(
          result.history, scenario_.set.item_count());
      if (!replay.ok()) {
        Fail("replay", name,
             replay.mismatches.empty()
                 ? "witness extraction failed"
                 : replay.mismatches.front().DebugString());
      }
    }

    // (c) metamorphic bounds.
    const RunMetrics& metrics = result.metrics;
    if (ceiling && (result.deadlock_detected || metrics.deadlocks > 0)) {
      Fail("deadlock-free", name,
           StrFormat("ceiling protocol hit %lld wait-for cycle(s)",
                     static_cast<long long>(metrics.deadlocks)));
    }
    if (ceiling && fault_free && metrics.TotalRestarts() > 0) {
      Fail("no-restarts", name,
           StrFormat("ceiling protocol restarted %lld job(s) without "
                     "injected faults",
                     static_cast<long long>(metrics.TotalRestarts())));
    }
    if (fault_free && TraitsOf(kind).analyzable()) {
      CheckBlockingBound(kind, metrics);
    }
    if (fault_free) CheckSchedSoundness(kind, metrics);
    CheckMetricsSane(name, horizon, metrics);
  }

  void CheckBlockingBound(ProtocolKind kind, const RunMetrics& metrics) {
    // Every protocol whose traits report a finite bound (all but
    // 2PL-PI); for PCP-DA the guard ablation can only loosen behavior
    // the other oracles see, so the bound stays meaningful under the
    // test hook.
    const BlockingAnalysis analysis =
        ComputeBlocking(scenario_.set, kind);
    const bool zeroed =
        options_.analysis_defect == AnalysisDefect::kZeroBlockingBound;
    for (SpecId i = 0;
         i < static_cast<SpecId>(metrics.per_spec.size()); ++i) {
      const Tick bound = zeroed ? 0 : analysis.B(i);
      const Tick observed =
          metrics.per_spec[static_cast<std::size_t>(i)]
              .max_effective_blocking;
      if (observed > bound) {
        Fail("blocking-bound", ToString(kind),
             StrFormat("%s blocked %lld ticks, analytical bound B=%lld",
                       scenario_.set.spec(i).name.c_str(),
                       static_cast<long long>(observed),
                       static_cast<long long>(bound)));
      }
    }
  }

  /// A deadline miss in a fault-free simulation run refutes a
  /// kSchedulable claim — the analysis must never be optimistic.
  /// kUnknown/kUnschedulable claims assert nothing about the run.
  void CheckSchedSoundness(ProtocolKind kind, const RunMetrics& metrics) {
    BlockingAnalysis analysis = ComputeBlocking(scenario_.set, kind);
    if (options_.analysis_defect == AnalysisDefect::kOptimisticRta) {
      analysis.bounded = true;
      for (SpecBlocking& sb : analysis.per_spec) {
        sb.worst_blocking = 0;
        sb.bounded = true;
        sb.restart_sources.clear();
      }
    }
    const SchedAnalysis sched =
        AnalyzeResponseTimes(scenario_.set, analysis);
    for (SpecId i = 0;
         i < static_cast<SpecId>(metrics.per_spec.size()); ++i) {
      const SpecSchedResult& sr =
          sched.per_spec[static_cast<std::size_t>(i)];
      if (sr.verdict != SchedVerdict::kSchedulable) continue;
      const std::int64_t misses =
          metrics.per_spec[static_cast<std::size_t>(i)].deadline_misses;
      if (misses > 0) {
        Fail("sched-sound", ToString(kind),
             StrFormat("%s missed %lld deadline(s) but the analysis "
                       "claimed R=%lld within the deadline",
                       scenario_.set.spec(i).name.c_str(),
                       static_cast<long long>(misses),
                       static_cast<long long>(sr.response)));
      }
    }
  }

  void CheckMetricsSane(const char* name, Tick horizon,
                        const RunMetrics& metrics) {
    const double miss_ratio = metrics.MissRatio();
    if (miss_ratio < 0.0 || miss_ratio > 1.0) {
      Fail("metrics-sane", name,
           StrFormat("miss ratio %g outside [0, 1]", miss_ratio));
    }
    if (metrics.TotalCommitted() > metrics.TotalReleased()) {
      Fail("metrics-sane", name,
           StrFormat("committed %lld > released %lld",
                     static_cast<long long>(metrics.TotalCommitted()),
                     static_cast<long long>(metrics.TotalReleased())));
    }
    Tick busy = 0;
    for (const SpecMetrics& spec : metrics.per_spec) {
      busy += spec.busy_ticks;
      if (spec.committed + spec.dropped + spec.pending_at_horizon >
          spec.released) {
        Fail("metrics-sane", name,
             StrFormat("per-spec outcomes %lld exceed releases %lld",
                       static_cast<long long>(spec.committed +
                                              spec.dropped +
                                              spec.pending_at_horizon),
                       static_cast<long long>(spec.released)));
      }
      if (spec.max_effective_blocking > spec.effective_blocking_ticks) {
        Fail("metrics-sane", name,
             "per-instance max effective blocking exceeds the spec "
             "total");
      }
    }
    const bool halted =
        metrics.halted_on_deadlock || metrics.halted_on_miss;
    if (busy + metrics.idle_ticks > horizon ||
        (!halted && busy + metrics.idle_ticks != horizon)) {
      Fail("metrics-sane", name,
           StrFormat("busy %lld + idle %lld vs horizon %lld",
                     static_cast<long long>(busy),
                     static_cast<long long>(metrics.idle_ticks),
                     static_cast<long long>(horizon)));
    }
  }

  const Scenario& scenario_;
  const OracleOptions& options_;
  OracleVerdict verdict_;
};

}  // namespace

std::string OracleFailure::DebugString() const {
  std::string out = "[" + oracle + "]";
  if (!protocol.empty()) out += " " + protocol;
  return out + ": " + detail;
}

std::string OracleVerdict::DebugString() const {
  if (ok()) return "all oracles passed";
  std::vector<std::string> lines;
  for (const OracleFailure& failure : failures) {
    lines.push_back(failure.DebugString());
  }
  return Join(lines, "\n");
}

OracleVerdict RunOracles(const Scenario& scenario,
                         const OracleOptions& options) {
  const std::vector<RunSpec> plan = PlanOracleRuns(scenario, options);
  std::vector<SimResult> results;
  results.reserve(plan.size());
  for (const RunSpec& spec : plan) {
    results.push_back(BatchRunner::RunOne(spec));
  }
  return EvaluateOracleRuns(scenario, options, results);
}

std::vector<RunSpec> PlanOracleRuns(const Scenario& scenario,
                                    const OracleOptions& options) {
  const Tick horizon = ResolveHorizon(scenario, options);
  if (horizon <= 0) return {};
  const int repeats = options.check_determinism ? 2 : 1;
  std::vector<RunSpec> specs;
  for (ProtocolKind kind : ResolveKinds(options)) {
    for (int repeat = 0; repeat < repeats; ++repeat) {
      RunSpec spec;
      spec.scenario = &scenario;
      spec.protocol = kind;
      spec.pcp_da = options.pcp_da;
      spec.options.horizon = horizon;
      spec.options.faults = scenario.faults;
      spec.options.audit = true;
      spec.options.deadlock_policy = DeadlockPolicy::kAbortLowestPriority;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<RunSpec> PlanOracleRuns(const CompiledPlan& plan,
                                    const OracleOptions& options) {
  std::vector<RunSpec> specs = PlanOracleRuns(plan.scenario(), options);
  for (RunSpec& spec : specs) spec.plan = &plan;
  return specs;
}

OracleVerdict EvaluateOracleRuns(const Scenario& scenario,
                                 const OracleOptions& options,
                                 const std::vector<SimResult>& results) {
  return OracleRunner(scenario, options).Evaluate(results);
}

bool Reproduces(const Scenario& scenario, const OracleOptions& options,
                const OracleFailure& failure) {
  OracleOptions restricted = options;
  // The determinism oracle is the only one that needs the double run.
  restricted.check_determinism = failure.oracle == "determinism";
  if (!failure.protocol.empty()) {
    for (ProtocolKind kind : AllProtocolKinds()) {
      if (failure.protocol == ToString(kind)) {
        restricted.protocols = {kind};
        break;
      }
    }
  }
  const OracleVerdict verdict = RunOracles(scenario, restricted);
  for (const OracleFailure& got : verdict.failures) {
    if (got.oracle != failure.oracle) continue;
    if (failure.protocol.empty() || got.protocol == failure.protocol) {
      return true;
    }
  }
  return false;
}

}  // namespace pcpda
