#ifndef PCPDA_FUZZ_SHRINKER_H_
#define PCPDA_FUZZ_SHRINKER_H_

#include <string>

#include "fuzz/oracles.h"
#include "workload/scenario.h"

namespace pcpda {

struct ShrinkOptions {
  /// Budget of reproduction attempts (each one re-simulates the failing
  /// protocol over the candidate scenario).
  int max_evals = 400;
  /// Passes repeat until a full round removes nothing; this caps the
  /// rounds as a backstop.
  int max_rounds = 8;
};

/// Outcome of minimizing one oracle failure.
struct ShrinkResult {
  /// False when the original scenario did not reproduce the failure at
  /// all (flaky finding — the fuzzer reports it unshrunk).
  bool reproduced = false;
  /// The minimal scenario text, already round-tripped through
  /// FormatScenario -> ParseScenario, so saving it to a .scn file is
  /// guaranteed to reproduce.
  std::string scn_text;
  /// The parsed form of `scn_text`.
  Scenario scenario;
  int evals = 0;
  int rounds = 0;
};

/// Delta-debugging minimizer. Starting from `input`, greedily applies
/// shrinking transformations — drop whole transactions, drop fault
/// events, drop steps, collapse durations to 1, zero offsets/deadlines,
/// halve periods and the horizon, simplify fault attributes — keeping a
/// candidate whenever the failure still reproduces (same oracle, same
/// protocol, re-checked through a FormatScenario/ParseScenario round
/// trip). Passes loop to a fixpoint within the evaluation budget.
/// Deterministic: same input and budget yield the same minimal scenario.
ShrinkResult Shrink(const Scenario& input, const OracleOptions& oracles,
                    const OracleFailure& failure,
                    const ShrinkOptions& options = {});

}  // namespace pcpda

#endif  // PCPDA_FUZZ_SHRINKER_H_
