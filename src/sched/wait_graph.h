#ifndef PCPDA_SCHED_WAIT_GRAPH_H_
#define PCPDA_SCHED_WAIT_GRAPH_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"

namespace pcpda {

/// The wait-for graph: an edge waiter -> holder means the waiter's lock
/// request is currently denied because of the holder. Rebuilt every tick by
/// the simulator; a cycle is a deadlock.
class WaitGraph {
 public:
  void Clear();

  /// Replaces the waiter's outgoing edges.
  void SetWaits(JobId waiter, std::vector<JobId> holders);
  void ClearWaits(JobId waiter);

  bool IsWaiting(JobId waiter) const;
  const std::set<JobId>& HoldersBlocking(JobId waiter) const;
  /// Jobs currently waiting (have outgoing edges).
  std::vector<JobId> waiters() const;

  /// Finds a wait-for cycle if one exists. The returned cycle lists each
  /// member once, starting from the smallest job id in the cycle.
  std::optional<std::vector<JobId>> FindCycle() const;

  std::string DebugString() const;

 private:
  std::map<JobId, std::set<JobId>> edges_;

  static const std::set<JobId> kNoHolders;
};

}  // namespace pcpda

#endif  // PCPDA_SCHED_WAIT_GRAPH_H_
