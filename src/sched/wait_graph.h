#ifndef PCPDA_SCHED_WAIT_GRAPH_H_
#define PCPDA_SCHED_WAIT_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "plan/job_arena.h"

namespace pcpda {

/// The wait-for graph: an edge waiter -> holder means the waiter's lock
/// request is currently denied because of the holder. Rebuilt every tick by
/// the simulator; a cycle is a deadlock.
///
/// Edges live in a dense JobId-indexed slot map (see plan/job_arena.h):
/// holder lists are sorted-unique vectors, so lookups are O(1), iteration
/// is in ascending waiter id, and steady-state edge churn allocates
/// nothing — byte-identical to the std::map<JobId, std::set<JobId>> it
/// replaced.
class WaitGraph {
 public:
  void Clear();

  /// Replaces the waiter's outgoing edges. Duplicate holders collapse.
  void SetWaits(JobId waiter, std::vector<JobId> holders);
  void ClearWaits(JobId waiter);

  bool IsWaiting(JobId waiter) const;
  /// Holders blocking `waiter`, ascending by id; empty when not waiting.
  const std::vector<JobId>& HoldersBlocking(JobId waiter) const;
  /// Jobs currently waiting (have outgoing edges), ascending by id.
  std::vector<JobId> waiters() const;
  /// Same ids without the copy; invalidated by any mutation.
  const std::vector<JobId>& waiter_ids() const { return edges_.ids(); }

  /// Finds a wait-for cycle if one exists. The returned cycle lists each
  /// member once, starting from the smallest job id in the cycle.
  std::optional<std::vector<JobId>> FindCycle() const;

  std::string DebugString() const;

 private:
  JobSlotMap<std::vector<JobId>> edges_;

  static const std::vector<JobId> kNoHolders;
};

}  // namespace pcpda

#endif  // PCPDA_SCHED_WAIT_GRAPH_H_
