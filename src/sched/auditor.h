#ifndef PCPDA_SCHED_AUDITOR_H_
#define PCPDA_SCHED_AUDITOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "db/ceilings.h"
#include "db/database.h"
#include "db/lock_table.h"
#include "protocols/protocol.h"
#include "sched/wait_graph.h"
#include "txn/job.h"
#include "txn/spec.h"

namespace pcpda {

/// One invariant violation found by the auditor.
struct AuditViolation {
  Tick tick = 0;
  /// The check that fired, e.g. "sysceil" or "single-blocking".
  std::string check;
  std::string detail;

  std::string DebugString() const;
};

/// The auditor's verdict over a run: empty means every audited tick upheld
/// every applicable invariant.
struct AuditReport {
  std::vector<AuditViolation> violations;
  /// Violations beyond the retention cap (counted, not stored).
  std::int64_t suppressed = 0;
  Tick ticks_audited = 0;

  bool ok() const { return violations.empty() && suppressed == 0; }
  std::string DebugString() const;
};

/// Everything one tick's audit inspects. All pointers are non-owning and
/// must stay valid for the AuditTick call.
struct AuditScope {
  Tick tick = 0;
  const TransactionSet* set = nullptr;
  const StaticCeilings* ceilings = nullptr;
  const Protocol* protocol = nullptr;
  const LockTable* locks = nullptr;
  const Database* database = nullptr;
  const WaitGraph* waits = nullptr;
  /// The jobs the tick's audit scans: every active job, plus the jobs
  /// that retired (committed or dropped) during this tick so their
  /// end-state invariants are still checked at retirement time. Long-
  /// retired jobs are reachable through `lookup` instead of being
  /// rescanned every tick.
  const std::vector<const Job*>* jobs = nullptr;
  /// Resolves any historical job id (e.g. a stale lock holder) that is no
  /// longer in `jobs`. Optional; without it such ids read as unknown.
  const SimView* lookup = nullptr;
  /// Jobs blocked at dispatch time -> their direct blockers.
  const std::map<JobId, std::vector<JobId>>* blocked = nullptr;
};

/// Per-tick invariant auditor: re-derives the protocol guarantees the
/// paper proves (Theorems 1-3) plus the runtime bookkeeping they rest on,
/// independently of the simulator's own data structures, and records every
/// divergence. Checks are gated on protocol traits:
///
///   always            lock holders are active jobs; lock table internally
///                     consistent; blocked jobs and blockers sane
///   ceiling_rule()    protocol ceiling == independently recomputed
///                     ceiling; at most one genuine lower-priority blocker
///                     per blocked job (Theorem 1); wait-for graph acyclic
///                     (Theorem 2)
///   inheritance       running priorities == transitive max over waiters
///   kWorkspace model  no active job's uncommitted write visible in the
///                     database; undo logs unused
///   kInPlace model    at most one writer per item, no foreign readers
///                     beside it; undo-logged items still write-locked
///                     (strictness; skipped for early-release protocols)
///
/// The workspace-isolation and strictness checks are what make abort paths
/// auditable: a cleanup that forgets to release a lock, discard a
/// workspace, or undo an in-place write trips them on the very next tick.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(std::size_t max_violations = 64);

  void AuditTick(const AuditScope& scope);

  const AuditReport& report() const { return report_; }
  AuditReport TakeReport() { return std::move(report_); }

 private:
  void Violate(Tick tick, const char* check, std::string detail);

  std::size_t max_violations_;
  AuditReport report_;
};

}  // namespace pcpda

#endif  // PCPDA_SCHED_AUDITOR_H_
