#include "sched/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

namespace {

// Nearest-rank: the smallest response r such that at least p*n of the
// samples are <= r, i.e. index ceil(p*n)-1. p=0 is the minimum and p=1
// the maximum, exactly.
std::size_t PercentileRank(double p, std::size_t n) {
  PCPDA_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0;
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(p * static_cast<double>(n))) - 1;
  return std::min(rank, n - 1);
}

}  // namespace

Tick SpecMetrics::ResponsePercentile(double p) const {
  return ResponsePercentiles({p}).front();
}

std::vector<Tick> SpecMetrics::ResponsePercentiles(
    const std::vector<double>& ps) const {
  std::vector<Tick> out(ps.size(), 0);
  if (responses.empty() || ps.empty()) return out;
  const std::size_t n = responses.size();
  // One copy of the sample serves every quantile. Past two quantiles a
  // full sort is cheaper than repeated nth_element passes (and repeated
  // nth_element on the already-partitioned scratch stays correct: the
  // rank statistic is permutation-invariant).
  std::vector<Tick> scratch = responses;
  if (ps.size() > 2) {
    std::sort(scratch.begin(), scratch.end());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out[i] = scratch[PercentileRank(ps[i], n)];
    }
  } else {
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const std::size_t rank = PercentileRank(ps[i], n);
      std::nth_element(scratch.begin(),
                       scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                       scratch.end());
      out[i] = scratch[rank];
    }
  }
  return out;
}

std::int64_t RunMetrics::TotalReleased() const {
  std::int64_t total = 0;
  for (const SpecMetrics& m : per_spec) total += m.released;
  return total;
}

std::int64_t RunMetrics::TotalCommitted() const {
  std::int64_t total = 0;
  for (const SpecMetrics& m : per_spec) total += m.committed;
  return total;
}

std::int64_t RunMetrics::TotalMisses() const {
  std::int64_t total = 0;
  for (const SpecMetrics& m : per_spec) total += m.deadline_misses;
  return total;
}

std::int64_t RunMetrics::TotalRestarts() const {
  std::int64_t total = 0;
  for (const SpecMetrics& m : per_spec) total += m.restarts;
  return total;
}

std::int64_t RunMetrics::TotalPending() const {
  std::int64_t total = 0;
  for (const SpecMetrics& m : per_spec) total += m.pending_at_horizon;
  return total;
}

double RunMetrics::MissRatio() const {
  // Censoring correction: a job released just before the horizon whose
  // deadline lies beyond it neither met nor missed — dividing by all
  // releases would count it as a met deadline.
  const std::int64_t decided = TotalReleased() - TotalPending();
  if (decided <= 0) return 0.0;
  return static_cast<double>(TotalMisses()) /
         static_cast<double>(decided);
}

std::string RunMetrics::DebugString(const TransactionSet& set) const {
  std::vector<std::string> lines;
  lines.push_back(StrFormat(
      "horizon=%lld idle=%lld deadlocks=%lld max_ceiling=%s",
      static_cast<long long>(horizon), static_cast<long long>(idle_ticks),
      static_cast<long long>(deadlocks),
      max_ceiling.DebugString().c_str()));
  if (faults.TotalInjected() > 0 || faults.skipped_aborts > 0) {
    lines.push_back(StrFormat(
        "faults: aborts=%lld restarts=%lld skipped=%lld overruns=%lld "
        "(+%lld ticks) delayed=%lld (+%lld ticks) bursts=%lld",
        static_cast<long long>(faults.injected_aborts),
        static_cast<long long>(faults.injected_restarts),
        static_cast<long long>(faults.skipped_aborts),
        static_cast<long long>(faults.overruns),
        static_cast<long long>(faults.overrun_ticks),
        static_cast<long long>(faults.delayed_arrivals),
        static_cast<long long>(faults.delay_ticks),
        static_cast<long long>(faults.burst_arrivals)));
  }
  for (SpecId i = 0; i < set.size() &&
                     static_cast<std::size_t>(i) < per_spec.size();
       ++i) {
    const SpecMetrics& m = per_spec[static_cast<std::size_t>(i)];
    lines.push_back(StrFormat(
        "%s: released=%lld committed=%lld missed=%lld restarts=%lld "
        "busy=%lld blocked=%lld effective_block=%lld (max %lld) "
        "preempted=%lld blocks[ceil=%lld conf=%lld] max_resp=%lld",
        set.spec(i).name.c_str(), static_cast<long long>(m.released),
        static_cast<long long>(m.committed),
        static_cast<long long>(m.deadline_misses),
        static_cast<long long>(m.restarts),
        static_cast<long long>(m.busy_ticks),
        static_cast<long long>(m.blocked_ticks),
        static_cast<long long>(m.effective_blocking_ticks),
        static_cast<long long>(m.max_effective_blocking),
        static_cast<long long>(m.preempted_ticks),
        static_cast<long long>(m.ceiling_blocks),
        static_cast<long long>(m.conflict_blocks),
        static_cast<long long>(m.max_response)));
  }
  return Join(lines, "\n");
}

}  // namespace pcpda
