#include "sched/scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace pcpda {
namespace {

/// The dispatch comparator is a strict total order (job id breaks every
/// tie), so the non-stable std::sort is deterministic.
bool DispatchBefore(const Job* a, const Priority& ra, const Job* b,
                    const Priority& rb) {
  if (ra != rb) return ra > rb;
  if (a->base_priority() != b->base_priority()) {
    return a->base_priority() > b->base_priority();
  }
  if (a->release_time() != b->release_time()) {
    return a->release_time() < b->release_time();
  }
  return a->id() < b->id();
}

}  // namespace

std::vector<Job*> DispatchOrder(
    const std::vector<Job*>& active,
    const std::map<JobId, Priority>& running_priorities) {
  std::vector<Job*> order = active;
  auto running = [&](const Job* job) {
    auto it = running_priorities.find(job->id());
    PCPDA_CHECK_MSG(it != running_priorities.end(),
                    "active job missing a running priority");
    return it->second;
  };
  std::sort(order.begin(), order.end(), [&](const Job* a, const Job* b) {
    return DispatchBefore(a, running(a), b, running(b));
  });
  return order;
}

void SortDispatchOrder(std::vector<Job*>& order) {
  std::sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return DispatchBefore(a, a->running_priority(), b,
                          b->running_priority());
  });
}

}  // namespace pcpda
