#include "sched/scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace pcpda {

std::vector<Job*> DispatchOrder(
    const std::vector<Job*>& active,
    const std::map<JobId, Priority>& running_priorities) {
  std::vector<Job*> order = active;
  auto running = [&](const Job* job) {
    auto it = running_priorities.find(job->id());
    PCPDA_CHECK_MSG(it != running_priorities.end(),
                    "active job missing a running priority");
    return it->second;
  };
  std::sort(order.begin(), order.end(), [&](const Job* a, const Job* b) {
    const Priority ra = running(a);
    const Priority rb = running(b);
    if (ra != rb) return ra > rb;
    if (a->base_priority() != b->base_priority()) {
      return a->base_priority() > b->base_priority();
    }
    if (a->release_time() != b->release_time()) {
      return a->release_time() < b->release_time();
    }
    return a->id() < b->id();
  });
  return order;
}

}  // namespace pcpda
