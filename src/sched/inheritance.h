#ifndef PCPDA_SCHED_INHERITANCE_H_
#define PCPDA_SCHED_INHERITANCE_H_

#include <map>

#include "common/types.h"
#include "plan/job_arena.h"
#include "sched/wait_graph.h"

namespace pcpda {

/// Computes running priorities under (transitive) priority inheritance:
///
///   running(j) = max(base(j), max over waiters w blocked on j of
///                              running(w))
///
/// A blocker executes at the highest priority among the transactions it
/// (transitively) blocks, and returns to its base priority when the waits
/// disappear — the paper's inheritance mechanism. With inheritance
/// disabled (2PL-HP) every job runs at its base priority.
///
/// The fixpoint is well defined even on cyclic wait graphs (a deadlock
/// collapses the cycle to its maximum priority); the caller detects and
/// handles deadlocks separately.
std::map<JobId, Priority> ComputeRunningPriorities(
    const std::map<JobId, Priority>& base, const WaitGraph& waits,
    bool enable_inheritance);

/// Dense in-place variant for the simulator's per-sweep fixpoint:
/// `running` arrives preloaded with the live jobs' base priorities and is
/// relaxed to the same fixpoint as the map overload, with no per-call
/// allocation. Ids absent from `running` are ignored exactly as the map
/// version ignores no-longer-live waiters and holders.
void ComputeRunningPrioritiesDense(JobSlotMap<Priority>& running,
                                   const WaitGraph& waits,
                                   bool enable_inheritance);

}  // namespace pcpda

#endif  // PCPDA_SCHED_INHERITANCE_H_
