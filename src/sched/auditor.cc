#include "sched/auditor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "common/strings.h"
#include "sched/inheritance.h"

namespace pcpda {
namespace {

/// Job lookup by id: first the scope's (small) scan list, then the
/// simulator's archive of every released job via scope.lookup — so a
/// retired job named by a stale lock or wait edge is still reported by
/// its real state, not as unknown.
const Job* FindJob(const AuditScope& scope, JobId id) {
  for (const Job* job : *scope.jobs) {
    if (job->id() == id) return job;
  }
  if (scope.lookup != nullptr) return scope.lookup->job(id);
  return nullptr;
}

/// The ceiling the rule says `holder`'s lock on `item` raises in `mode`.
Priority RuleCeiling(CeilingRule rule, const StaticCeilings& ceilings,
                     ItemId item, LockMode mode) {
  switch (rule) {
    case CeilingRule::kNone:
      return Priority::Dummy();
    case CeilingRule::kAbsolute:
      return ceilings.Aceil(item);
    case CeilingRule::kReadWrite:
      return mode == LockMode::kWrite ? ceilings.Aceil(item)
                                      : ceilings.Wceil(item);
    case CeilingRule::kWriteOnRead:
      return mode == LockMode::kWrite ? Priority::Dummy()
                                      : ceilings.Wceil(item);
  }
  PCPDA_UNREACHABLE("bad CeilingRule");
}

}  // namespace

std::string AuditViolation::DebugString() const {
  return StrFormat("t=%lld [%s] %s", static_cast<long long>(tick),
                   check.c_str(), detail.c_str());
}

std::string AuditReport::DebugString() const {
  if (ok()) {
    return StrFormat("audit ok (%lld ticks)",
                     static_cast<long long>(ticks_audited));
  }
  std::vector<std::string> lines;
  lines.push_back(StrFormat(
      "audit FAILED: %d violation(s) over %lld ticks%s",
      static_cast<int>(violations.size()),
      static_cast<long long>(ticks_audited),
      suppressed > 0
          ? StrFormat(" (+%lld suppressed)",
                      static_cast<long long>(suppressed))
                .c_str()
          : ""));
  for (const AuditViolation& v : violations) {
    lines.push_back("  " + v.DebugString());
  }
  return Join(lines, "\n");
}

InvariantAuditor::InvariantAuditor(std::size_t max_violations)
    : max_violations_(max_violations) {}

void InvariantAuditor::Violate(Tick tick, const char* check,
                               std::string detail) {
  if (report_.violations.size() >= max_violations_) {
    ++report_.suppressed;
    return;
  }
  report_.violations.push_back({tick, check, std::move(detail)});
}

void InvariantAuditor::AuditTick(const AuditScope& scope) {
  PCPDA_CHECK(scope.set != nullptr && scope.ceilings != nullptr &&
              scope.protocol != nullptr && scope.locks != nullptr &&
              scope.database != nullptr && scope.waits != nullptr &&
              scope.jobs != nullptr && scope.blocked != nullptr);
  ++report_.ticks_audited;
  const Tick tick = scope.tick;
  const LockTable& locks = *scope.locks;
  const Protocol& protocol = *scope.protocol;
  const CeilingRule rule = protocol.ceiling_rule();

  // --- Lock table: holders are active, both index directions agree. ------
  std::size_t counted_locks = 0;
  for (JobId holder : locks.holders()) {
    const Job* job = FindJob(scope, holder);
    if (job == nullptr || !job->active()) {
      Violate(tick, "lock-holder-active",
              StrFormat("job %lld holds locks but is %s",
                        static_cast<long long>(holder),
                        job == nullptr ? "unknown"
                                       : ToString(job->state())));
      continue;
    }
    for (ItemId item : locks.read_items(holder)) {
      if (!locks.readers(item).contains(holder)) {
        Violate(tick, "lock-symmetry",
                StrFormat("job %lld lists read d%d but d%d's readers "
                          "disagree",
                          static_cast<long long>(holder), item, item));
      }
    }
    for (ItemId item : locks.write_items(holder)) {
      if (!locks.writers(item).contains(holder)) {
        Violate(tick, "lock-symmetry",
                StrFormat("job %lld lists write d%d but d%d's writers "
                          "disagree",
                          static_cast<long long>(holder), item, item));
      }
    }
  }
  for (ItemId item = 0; item < locks.item_count(); ++item) {
    counted_locks += locks.readers(item).size();
    counted_locks += locks.writers(item).size();
    for (JobId reader : locks.readers(item)) {
      if (!locks.read_items(reader).contains(item)) {
        Violate(tick, "lock-symmetry",
                StrFormat("d%d lists reader %lld but the job index "
                          "disagrees",
                          item, static_cast<long long>(reader)));
      }
    }
    for (JobId writer : locks.writers(item)) {
      if (!locks.write_items(writer).contains(item)) {
        Violate(tick, "lock-symmetry",
                StrFormat("d%d lists writer %lld but the job index "
                          "disagrees",
                          item, static_cast<long long>(writer)));
      }
    }
  }
  if (counted_locks != locks.lock_count()) {
    Violate(tick, "lock-count",
            StrFormat("lock_count()=%d but %d locks enumerated",
                      static_cast<int>(locks.lock_count()),
                      static_cast<int>(counted_locks)));
  }

  // --- Update-model invariants. ------------------------------------------
  if (protocol.update_model() == UpdateModel::kInPlace) {
    // Exclusive writers: one writer per item, no foreign readers beside it.
    for (ItemId item = 0; item < locks.item_count(); ++item) {
      const auto& writers = locks.writers(item);
      if (writers.size() > 1) {
        Violate(tick, "exclusive-write",
                StrFormat("d%d has %d concurrent writers", item,
                          static_cast<int>(writers.size())));
      }
      if (writers.size() == 1) {
        const JobId writer = *writers.begin();
        for (JobId reader : locks.readers(item)) {
          if (reader != writer) {
            Violate(tick, "exclusive-write",
                    StrFormat("d%d read-locked by %lld while %lld holds "
                              "the write lock",
                              item, static_cast<long long>(reader),
                              static_cast<long long>(writer)));
          }
        }
      }
    }
    // Strictness: in-place writes stay lock-protected until commit/abort,
    // so an undo-logged item must still be write-locked. Early-release
    // protocols (CCP) intentionally break this; they assume no aborts.
    if (!protocol.releases_early()) {
      for (const Job* job : *scope.jobs) {
        if (!job->active()) continue;
        for (const auto& [item, before] : job->undo_log()) {
          if (!locks.HoldsWrite(job->id(), item)) {
            Violate(tick, "strict-locks",
                    StrFormat("%s wrote d%d in place but no longer holds "
                              "its write lock",
                              job->DebugName().c_str(), item));
          }
        }
      }
    }
  } else {
    // Workspace isolation: no uncommitted write visible, no undo logging.
    for (ItemId item = 0; item < scope.database->item_count(); ++item) {
      const JobId writer = scope.database->Read(item).writer;
      if (writer == kInvalidJob) continue;
      const Job* job = FindJob(scope, writer);
      if (job != nullptr && job->active()) {
        Violate(tick, "workspace-isolation",
                StrFormat("d%d carries a write by active (uncommitted) "
                          "job %s",
                          item, job->DebugName().c_str()));
      }
    }
    for (const Job* job : *scope.jobs) {
      if (job->active() && !job->undo_log().empty()) {
        Violate(tick, "workspace-isolation",
                StrFormat("%s has in-place undo entries under the "
                          "workspace model",
                          job->DebugName().c_str()));
      }
    }
  }

  // --- Ceiling-protocol invariants. ---------------------------------------
  if (rule != CeilingRule::kNone) {
    // Sysceil: the protocol's reported ceiling must equal the maximum the
    // rule derives from the lock table (Max_Sysceil of the paper).
    Priority expected = Priority::Dummy();
    for (JobId holder : locks.holders()) {
      for (ItemId item : locks.read_items(holder)) {
        expected = Max(expected, RuleCeiling(rule, *scope.ceilings, item,
                                             LockMode::kRead));
      }
      for (ItemId item : locks.write_items(holder)) {
        expected = Max(expected, RuleCeiling(rule, *scope.ceilings, item,
                                             LockMode::kWrite));
      }
    }
    const Priority reported = protocol.CurrentCeiling();
    if (reported != expected) {
      Violate(tick, "sysceil",
              StrFormat("protocol reports ceiling %s but the lock table "
                        "implies %s",
                        reported.DebugString().c_str(),
                        expected.DebugString().c_str()));
    }

    // Theorem 1 (single blocking): a blocked job has at most one genuine
    // lower-priority blocker. A blocker whose running priority reaches the
    // blocked job's base priority is executing on behalf of an even
    // higher-priority waiter (inheritance) and is not a second independent
    // inversion source.
    for (const auto& [blocked_id, blockers] : *scope.blocked) {
      const Job* blocked = FindJob(scope, blocked_id);
      if (blocked == nullptr || !blocked->active()) continue;
      std::set<JobId> lower;
      for (JobId blocker_id : blockers) {
        const Job* blocker = FindJob(scope, blocker_id);
        if (blocker == nullptr || !blocker->active()) continue;
        if (blocker->base_priority() < blocked->base_priority() &&
            blocker->running_priority() < blocked->base_priority()) {
          lower.insert(blocker_id);
        }
      }
      if (lower.size() > 1) {
        Violate(tick, "single-blocking",
                StrFormat("%s is blocked by %d lower-priority jobs",
                          blocked->DebugName().c_str(),
                          static_cast<int>(lower.size())));
      }
    }
  }

  // --- Wait graph: restricted to active jobs. -----------------------------
  WaitGraph active_waits;
  std::map<JobId, Priority> base;
  for (const Job* job : *scope.jobs) {
    if (job->active()) base[job->id()] = job->base_priority();
  }
  for (JobId waiter : scope.waits->waiters()) {
    if (!base.contains(waiter)) continue;
    std::vector<JobId> holders;
    for (JobId holder : scope.waits->HoldersBlocking(waiter)) {
      if (base.contains(holder)) holders.push_back(holder);
    }
    if (!holders.empty()) active_waits.SetWaits(waiter, std::move(holders));
  }

  // Theorem 2 (deadlock freedom): ceiling protocols never build a cycle.
  if (rule != CeilingRule::kNone) {
    if (auto cycle = active_waits.FindCycle(); cycle.has_value()) {
      std::vector<std::string> ids;
      for (JobId id : *cycle) {
        ids.push_back(StrFormat("%lld", static_cast<long long>(id)));
      }
      Violate(tick, "wait-acyclic",
              "wait-for cycle [" + Join(ids, ",") + "]");
    }
  }

  // Inheritance: each active job's running priority equals the transitive
  // max over the waiters it blocks (or its base priority without
  // inheritance).
  const std::map<JobId, Priority> running = ComputeRunningPriorities(
      base, active_waits, protocol.uses_priority_inheritance());
  for (const Job* job : *scope.jobs) {
    if (!job->active()) continue;
    const auto it = running.find(job->id());
    PCPDA_CHECK(it != running.end());
    if (job->running_priority() != it->second) {
      Violate(tick, "inheritance",
              StrFormat("%s runs at %s but the wait graph implies %s",
                        job->DebugName().c_str(),
                        job->running_priority().DebugString().c_str(),
                        it->second.DebugString().c_str()));
    }
  }

  // --- Blocked bookkeeping sanity. ----------------------------------------
  for (const auto& [blocked_id, blockers] : *scope.blocked) {
    const Job* blocked = FindJob(scope, blocked_id);
    if (blocked == nullptr) {
      Violate(tick, "blocked-sane",
              StrFormat("unknown job %lld recorded as blocked",
                        static_cast<long long>(blocked_id)));
      continue;
    }
    if (std::find(blockers.begin(), blockers.end(), blocked_id) !=
        blockers.end()) {
      Violate(tick, "blocked-sane",
              blocked->DebugName() + " is recorded as blocking itself");
    }
  }
}

}  // namespace pcpda
