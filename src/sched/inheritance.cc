#include "sched/inheritance.h"

namespace pcpda {

std::map<JobId, Priority> ComputeRunningPriorities(
    const std::map<JobId, Priority>& base, const WaitGraph& waits,
    bool enable_inheritance) {
  std::map<JobId, Priority> running = base;
  if (!enable_inheritance) return running;
  // Iterative relaxation; each pass propagates priorities one edge
  // further, so |base| passes suffice (priorities only increase and are
  // bounded by the maximum base priority).
  bool changed = true;
  std::size_t guard = base.size() + 1;
  while (changed && guard-- > 0) {
    changed = false;
    for (JobId waiter : waits.waiters()) {
      auto wit = running.find(waiter);
      if (wit == running.end()) continue;  // waiter no longer live
      for (JobId holder : waits.HoldersBlocking(waiter)) {
        auto hit = running.find(holder);
        if (hit == running.end()) continue;  // holder no longer live
        if (hit->second < wit->second) {
          hit->second = wit->second;
          changed = true;
        }
      }
    }
  }
  return running;
}

void ComputeRunningPrioritiesDense(JobSlotMap<Priority>& running,
                                   const WaitGraph& waits,
                                   bool enable_inheritance) {
  if (!enable_inheritance || waits.waiter_ids().empty()) return;
  bool changed = true;
  std::size_t guard = running.size() + 1;
  while (changed && guard-- > 0) {
    changed = false;
    for (JobId waiter : waits.waiter_ids()) {
      const Priority* donated = running.find(waiter);
      if (donated == nullptr) continue;  // waiter no longer live
      for (JobId holder : waits.HoldersBlocking(waiter)) {
        Priority* inherited = running.find(holder);
        if (inherited == nullptr) continue;  // holder no longer live
        if (*inherited < *donated) {
          *inherited = *donated;
          changed = true;
        }
      }
    }
  }
}

}  // namespace pcpda
