#include "sched/wait_graph.h"

#include <algorithm>

#include "common/strings.h"

namespace pcpda {

const std::vector<JobId> WaitGraph::kNoHolders;

void WaitGraph::Clear() { edges_.clear(); }

void WaitGraph::SetWaits(JobId waiter, std::vector<JobId> holders) {
  if (holders.empty()) {
    edges_.erase(waiter);
    return;
  }
  std::sort(holders.begin(), holders.end());
  holders.erase(std::unique(holders.begin(), holders.end()),
                holders.end());
  edges_[waiter] = std::move(holders);
}

void WaitGraph::ClearWaits(JobId waiter) { edges_.erase(waiter); }

bool WaitGraph::IsWaiting(JobId waiter) const {
  return edges_.contains(waiter);
}

const std::vector<JobId>& WaitGraph::HoldersBlocking(JobId waiter) const {
  const std::vector<JobId>* holders = edges_.find(waiter);
  return holders == nullptr ? kNoHolders : *holders;
}

std::vector<JobId> WaitGraph::waiters() const { return edges_.ids(); }

std::optional<std::vector<JobId>> WaitGraph::FindCycle() const {
  if (edges_.empty()) return std::nullopt;
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  // Colors in a flat array over [0, max id]: ids are dense per run, and
  // the graph is only non-empty under contention, so one block beats a
  // node-allocating map.
  JobId max_id = 0;
  for (JobId waiter : edges_.ids()) {
    max_id = std::max(max_id, waiter);
    for (JobId h : edges_.at(waiter)) max_id = std::max(max_id, h);
  }
  std::vector<Color> color(static_cast<std::size_t>(max_id) + 1,
                           Color::kWhite);
  auto paint = [&color](JobId id) -> Color& {
    return color[static_cast<std::size_t>(id)];
  };
  std::vector<JobId> path;
  // Recursive DFS expressed iteratively via an explicit stack of
  // (node, next successor index).
  auto successors = [this](JobId node) -> const std::vector<JobId>& {
    return HoldersBlocking(node);
  };
  for (JobId root : edges_.ids()) {
    if (paint(root) != Color::kWhite) continue;
    std::vector<std::pair<JobId, std::size_t>> stack;
    paint(root) = Color::kGray;
    stack.emplace_back(root, 0);
    path.assign(1, root);
    while (!stack.empty()) {
      auto& [node, next_index] = stack.back();
      const std::vector<JobId>& succ = successors(node);
      if (next_index == succ.size()) {
        paint(node) = Color::kBlack;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const JobId next = succ[next_index++];
      if (paint(next) == Color::kGray) {
        // Cycle: slice the current path from `next` onwards.
        auto start = std::find(path.begin(), path.end(), next);
        std::vector<JobId> cycle(start, path.end());
        // Rotate so the smallest id comes first (stable for tests).
        auto smallest = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        return cycle;
      }
      if (paint(next) == Color::kWhite) {
        paint(next) = Color::kGray;
        stack.emplace_back(next, 0);
        path.push_back(next);
      }
    }
  }
  return std::nullopt;
}

std::string WaitGraph::DebugString() const {
  std::vector<std::string> lines;
  for (JobId waiter : edges_.ids()) {
    std::vector<std::string> ids;
    const std::vector<JobId>& holders = edges_.at(waiter);
    ids.reserve(holders.size());
    for (JobId h : holders) {
      ids.push_back(StrFormat("%lld", static_cast<long long>(h)));
    }
    lines.push_back(StrFormat("%lld waits-for {%s}",
                              static_cast<long long>(waiter),
                              Join(ids, ",").c_str()));
  }
  return lines.empty() ? "(no waits)" : Join(lines, "\n");
}

}  // namespace pcpda
